//! Walks through the paper's two illustrative examples (Fig. 1 and Fig. 2)
//! with the actual library types, printing the same numbers the figures
//! report.
//!
//! ```text
//! cargo run --release --example illustrative
//! ```

use vcs::core::examples::{fig1_instance, fig1_profiles, fig2_instance, FIG2_ROWS, FIG_ALPHA};
use vcs::core::ids::UserId;
use vcs::prelude::*;

fn main() {
    fig1_walkthrough();
    println!();
    fig2_walkthrough();
}

fn fig1_walkthrough() {
    println!("--- Fig. 1: why neither greed nor the centralized optimum suffices");
    let game = fig1_instance();
    let unscale = 1.0 / FIG_ALPHA;
    for (name, choices) in [
        ("maximum reward   ", fig1_profiles::MAXIMUM_REWARD),
        ("distributed equil.", fig1_profiles::DISTRIBUTED_EQUILIBRIUM),
        ("centralized optim.", fig1_profiles::CENTRALIZED_OPTIMAL),
    ] {
        let profile = Profile::new(&game, choices.to_vec());
        let total = profile.total_profit(&game) * unscale;
        let nash = is_nash(&game, &profile);
        println!("  {name}: total ${total:>4.1}  equilibrium: {nash}");
    }
    // u3's deviation from the centralized optimum, exactly as the figure says.
    let optimal = Profile::new(&game, fig1_profiles::CENTRALIZED_OPTIMAL.to_vec());
    let response = best_route_set(&game, &optimal, UserId(2));
    println!(
        "  u3 deviates from the optimum for +${:.1} -> the optimum is not stable",
        response.gain * unscale
    );
    // And the dynamics land exactly on the distributed equilibrium.
    let out = run_distributed(&game, DistributedAlgorithm::Dgrn, &RunConfig::with_seed(1));
    assert_eq!(
        out.profile.choices(),
        fig1_profiles::DISTRIBUTED_EQUILIBRIUM.as_slice()
    );
    println!(
        "  DGRN converges to the distributed equilibrium in {} slots",
        out.slots
    );
}

fn fig2_walkthrough() {
    println!("--- Fig. 2: the platform's knobs phi (detour) and theta (congestion)");
    for (phi, theta) in FIG2_ROWS {
        let game = fig2_instance(phi, theta);
        let out = run_distributed(&game, DistributedAlgorithm::Dgrn, &RunConfig::with_seed(2));
        assert!(out.converged);
        let p = &out.profile;
        let route = |i: u32| p.choice(UserId(i)).0 + 1;
        let selected = |i: u32| &game.user(UserId(i)).routes[p.choice(UserId(i)).index()];
        let detour: f64 = (0..2).map(|i| selected(i).detour).sum();
        let congestion: f64 = (0..2).map(|i| selected(i).congestion).sum();
        println!(
            "  phi={phi:<4} theta={theta:<4} -> u1:r{} u2:r{}  tasks={} detour={detour:.0} congestion={congestion:.0}",
            route(0),
            route(1),
            p.covered_tasks(),
        );
    }
}
