//! Quickstart: build a trace-based scenario, run the paper's distributed
//! route-navigation algorithm (DGRN), and inspect the equilibrium.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use vcs::prelude::*;

fn main() {
    // 1. Build the Shanghai-like substrate once: synthetic city, taxi traces,
    //    OD extraction, navigation-style route recommendation.
    let pool = UserPool::build(Dataset::Shanghai, 7);
    println!(
        "substrate: {} road nodes, {} commuters with recommended routes",
        pool.graph.node_count(),
        pool.len()
    );

    // 2. Instantiate a game: 15 users, 30 tasks, Table 2 parameters.
    let game = pool.instantiate(&ScenarioConfig {
        n_users: 15,
        n_tasks: 30,
        seed: 42,
        params: ScenarioParams::default(),
    });
    println!(
        "game: {} users, {} tasks",
        game.user_count(),
        game.task_count()
    );

    // 3. Run DGRN to a Nash equilibrium.
    let outcome = run_distributed(&game, DistributedAlgorithm::Dgrn, &RunConfig::with_seed(42));
    assert!(outcome.converged, "the potential game always converges");
    assert!(
        is_nash(&game, &outcome.profile),
        "termination implies equilibrium"
    );
    println!(
        "converged after {} decision slots ({} decision updates)",
        outcome.slots, outcome.updates
    );

    // 4. Inspect the allocation.
    println!("total profit : {:.2}", outcome.profile.total_profit(&game));
    println!("coverage     : {:.2}", coverage(&game, &outcome.profile));
    println!(
        "avg reward   : {:.2}",
        average_reward(&game, &outcome.profile)
    );
    println!(
        "fairness     : {:.3}",
        profile_jain_index(&game, &outcome.profile)
    );
    println!("potential    : {:.2}", potential(&game, &outcome.profile));

    // 5. Each user ends on the route it is happiest with given the others.
    for user in game.users().iter().take(5) {
        let route = outcome.profile.choice(user.id);
        let profit = outcome.profile.profit(&game, user.id);
        println!(
            "  user {:>2} -> route {} (profit {:.2})",
            user.id.0, route.0, profit
        );
    }
    println!("  ... ({} more users)", game.user_count().saturating_sub(5));
}
