//! Live monitoring: attach a `/metrics` endpoint to an online churn
//! simulation and scrape it over plain HTTP — no Prometheus server needed,
//! `curl` (or here, a raw `TcpStream`) is enough.
//!
//! ```text
//! cargo run --release --example live_monitor
//! ```
//!
//! A long-running sim normally serves while it works; this example runs a
//! short churn scenario to completion and then scrapes all three endpoints
//! (`/metrics`, `/healthz`, `/snapshot`) from the still-live listener, so
//! the output is deterministic-ish and the whole flow fits in one process.

use std::io::{Read, Write};
use std::net::TcpStream;
use vcs::obs::validate_prometheus_text;
use vcs::online::{synthetic_stream, OnlineAlgorithm, OnlineSim, StreamConfig};

/// Minimal HTTP/1.1 GET, the same bytes `curl` would send.
fn http_get(addr: std::net::SocketAddr, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect to monitor");
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n"
    )
    .expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    response
}

fn main() {
    // 1. A small churn scenario: 60 users, 4 epochs of 10% join/leave churn.
    let config = StreamConfig {
        initial_users: 60,
        n_tasks: 60,
        epochs: 4,
        churn_rate: 0.1,
        seed: 7,
    };
    let (game, stream) = synthetic_stream(&config);
    let mut sim = OnlineSim::new(game, OnlineAlgorithm::Dgrn, 7, 1_000_000);

    // 2. Bind the live endpoint on an ephemeral port. From here on, every
    //    warm-path event the sim emits lands in the endpoint's
    //    StatsSubscriber — `curl http://<addr>/metrics` works mid-run.
    let addr = sim.attach_monitor("127.0.0.1:0").expect("bind monitor");
    println!("serving /metrics on http://{addr}");

    // 3. Run the churn stream to its warm equilibria.
    let report = sim.run(&stream);
    println!(
        "ran {} epochs, warm re-equilibration {} slots total",
        report.epochs.len(),
        report.warm_slots()
    );

    // 4. Scrape. `/healthz` is a liveness probe, `/metrics` the Prometheus
    //    text exposition, `/snapshot` a JSON dump of the same counters.
    let health = http_get(addr, "/healthz");
    assert!(health.starts_with("HTTP/1.1 200"), "healthz: {health}");

    let metrics = http_get(addr, "/metrics");
    let body = metrics.split("\r\n\r\n").nth(1).expect("metrics body");
    validate_prometheus_text(body).expect("valid exposition");
    println!(
        "\nscraped {} metric lines; a few of them:",
        body.lines().count()
    );
    for line in body.lines().filter(|l| {
        l.starts_with("vcs_slots_total")
            || l.starts_with("vcs_epochs_converged_total")
            || l.starts_with("vcs_span_slot_seconds_count")
            || l.starts_with("vcs_span_epoch_reconverge_seconds_count")
            || l.starts_with("vcs_phi ")
    }) {
        println!("  {line}");
    }

    let snapshot = http_get(addr, "/snapshot");
    assert!(snapshot.starts_with("HTTP/1.1 200"), "snapshot: {snapshot}");
    println!("\n/snapshot JSON and /healthz both answered 200 — done.");
}
