//! City-scale navigation: the workload the paper's introduction motivates —
//! a hundred commuters across a city, tasks scattered on the street network,
//! and the platform steering them to an equilibrium allocation.
//!
//! Compares the paper's sequential scheduler (DGRN/SUU) with the parallel
//! one (MUUN/PUU) and the non-strategic baseline (RRN) on all three dataset
//! analogues.
//!
//! ```text
//! cargo run --release --example city_navigation
//! ```

use vcs::prelude::*;

fn main() {
    println!(
        "{:<10} {:>6} {:>12} {:>10} {:>10} {:>10}",
        "dataset", "algo", "total profit", "coverage", "fairness", "slots"
    );
    for dataset in Dataset::ALL {
        let pool = UserPool::build(dataset, 11);
        let game = pool.instantiate(&ScenarioConfig {
            n_users: 100.min(pool.len()),
            n_tasks: 80,
            seed: 3,
            params: ScenarioParams::default(),
        });

        for (name, profile, slots) in [
            run_algo(&game, DistributedAlgorithm::Dgrn),
            run_algo(&game, DistributedAlgorithm::Muun),
            rrn_row(&game),
        ] {
            println!(
                "{:<10} {:>6} {:>12.2} {:>10.3} {:>10.3} {:>10}",
                dataset.name(),
                name,
                profile.total_profit(&game),
                coverage(&game, &profile),
                profile_jain_index(&game, &profile),
                slots,
            );
        }
        // The parallel scheduler reaches the same kind of equilibrium in far
        // fewer decision slots — the paper's Fig. 4 message.
    }
}

fn run_algo(game: &Game, algo: DistributedAlgorithm) -> (&'static str, Profile, String) {
    let out = run_distributed(game, algo, &RunConfig::with_seed(99));
    assert!(out.converged && is_nash(game, &out.profile));
    let name = match algo {
        DistributedAlgorithm::Dgrn => "DGRN",
        DistributedAlgorithm::Muun => "MUUN",
        _ => "?",
    };
    (name, out.profile, out.slots.to_string())
}

fn rrn_row(game: &Game) -> (&'static str, Profile, String) {
    ("RRN", run_rrn(game, 99), "-".to_string())
}
