//! Distributed execution: runs the actual Alg. 1 / Alg. 2 message protocol
//! with one OS thread per vehicle, exchanging binary frames over channels —
//! then cross-checks the result against the single-threaded reference
//! runtime (bit-identical) and the game-level Nash test.
//!
//! ```text
//! cargo run --release --example distributed_threads
//! ```

use std::time::Instant;
use vcs::prelude::*;

fn main() {
    let pool = UserPool::build(Dataset::Epfl, 21);
    let game = pool.instantiate(&ScenarioConfig {
        n_users: 60,
        n_tasks: 50,
        seed: 8,
        params: ScenarioParams::default(),
    });
    println!(
        "{} user agents, {} tasks",
        game.user_count(),
        game.task_count()
    );

    for scheduler in [SchedulerKind::Suu, SchedulerKind::Puu] {
        let t0 = Instant::now();
        let threaded = run_threaded(&game, scheduler, 77, 1_000_000);
        let threaded_time = t0.elapsed();
        let t1 = Instant::now();
        let sync = run_sync(&game, scheduler, 77, 1_000_000);
        let sync_time = t1.elapsed();

        assert!(threaded.converged, "protocol terminates at equilibrium");
        assert!(
            is_nash(&game, &threaded.profile),
            "termination implies Nash"
        );
        assert_eq!(
            threaded, sync,
            "threaded and reference runtimes are bit-identical"
        );
        println!(
            "{scheduler:?}: {} slots, {} updates | threaded {:.1} ms vs sync {:.1} ms | equilibrium verified",
            threaded.slots,
            threaded.updates,
            threaded_time.as_secs_f64() * 1e3,
            sync_time.as_secs_f64() * 1e3,
        );
    }
    println!("PUU grants conflict-free batches, so it needs far fewer decision slots.");
}
