//! Fault tolerance: the route-navigation protocol over an unreliable
//! network. Frames are dropped i.i.d.; the platform retransmits
//! (stop-and-wait). Because every protocol message is idempotent, the run
//! reaches the *identical* equilibrium as the lossless execution — loss only
//! costs retransmissions — and stale-information operation (counts refreshed
//! every K slots) still terminates at a verified Nash equilibrium.
//!
//! ```text
//! cargo run --release --example lossy_network
//! ```

use vcs::prelude::*;
use vcs::runtime::{run_lossy, run_stale, LossConfig};

fn main() {
    let pool = UserPool::build(Dataset::Roma, 13);
    let game = pool.instantiate(&ScenarioConfig {
        n_users: 30,
        n_tasks: 40,
        seed: 6,
        params: ScenarioParams::default(),
    });
    println!("{} users, {} tasks\n", game.user_count(), game.task_count());

    // Reference: lossless protocol run.
    let reference = run_sync(&game, SchedulerKind::Puu, 42, 1_000_000);
    println!(
        "lossless : {} slots, {} frames ({:.1} KiB)",
        reference.slots,
        reference.telemetry.total_msgs(),
        reference.telemetry.total_bytes() as f64 / 1024.0
    );

    // The same run over increasingly hostile channels.
    for drop_probability in [0.05, 0.2, 0.4] {
        let loss = LossConfig {
            drop_probability,
            seed: 1,
            max_retries: 100_000,
        };
        let (out, stats) = run_lossy(&game, SchedulerKind::Puu, 42, 1_000_000, &loss);
        assert_eq!(
            out.profile, reference.profile,
            "loss must not change the equilibrium"
        );
        assert_eq!(out.slots, reference.slots);
        println!(
            "loss {:>3.0}% : same equilibrium; {} drops, {} retransmissions, {} frames ({:.1} KiB)",
            drop_probability * 100.0,
            stats.dropped_frames,
            stats.retransmissions,
            out.telemetry.total_msgs(),
            out.telemetry.total_bytes() as f64 / 1024.0
        );
    }

    // Stale information: counts refreshed every K slots only.
    println!();
    for refresh in [1usize, 2, 4, 8] {
        let out = run_stale(&game, SchedulerKind::Puu, 42, 1_000_000, refresh);
        assert!(out.converged);
        assert!(
            is_nash(&game, &out.profile),
            "stale operation must still end at Nash"
        );
        println!(
            "refresh every {refresh} slot(s): {} slots to a verified Nash equilibrium",
            out.slots
        );
    }
    println!("\nloss costs bandwidth, staleness costs slots - neither costs correctness.");
}
