//! Platform tuning: how the platform steers the population by adjusting its
//! two weights — `φ` (detour) and `θ` (congestion) — without touching any
//! user's code. Reproduces the Fig. 2 / Fig. 12 story on a live scenario.
//!
//! ```text
//! cargo run --release --example platform_tuning
//! ```

use vcs::metrics::{total_congestion, total_detour};
use vcs::prelude::*;

fn main() {
    let pool = UserPool::build(Dataset::Shanghai, 5);

    println!("platform objective sweep (20 users, 40 tasks, DGRN equilibrium)");
    println!(
        "{:>5} {:>6} | {:>10} {:>9} {:>11} {:>9}",
        "phi", "theta", "avg reward", "coverage", "detour(km)", "congest."
    );
    for (phi, theta, label) in [
        (0.05, 0.05, "maximize task completion"),
        (0.80, 0.05, "minimize detours"),
        (0.05, 0.80, "avoid congestion"),
        (0.45, 0.45, "balanced (Table 2 midpoint)"),
    ] {
        // Average over a few seeds so the story is not one lucky draw.
        let mut reward = 0.0;
        let mut cov = 0.0;
        let mut detour = 0.0;
        let mut congestion = 0.0;
        const REPS: usize = 10;
        for seed in 0..REPS as u64 {
            let game = pool.instantiate(&ScenarioConfig {
                n_users: 20,
                n_tasks: 40,
                seed,
                params: ScenarioParams::with_platform(phi, theta),
            });
            let out = run_distributed(
                &game,
                DistributedAlgorithm::Dgrn,
                &RunConfig::with_seed(seed),
            );
            assert!(out.converged);
            reward += average_reward(&game, &out.profile) / REPS as f64;
            cov += coverage(&game, &out.profile) / REPS as f64;
            detour += total_detour(&game, &out.profile) / REPS as f64;
            congestion += total_congestion(&game, &out.profile) / REPS as f64;
        }
        println!(
            "{phi:>5.2} {theta:>6.2} | {reward:>10.2} {cov:>9.3} {detour:>11.2} {congestion:>9.2}   <- {label}"
        );
    }
    println!();
    println!("reading the table:");
    println!("  * low (phi, theta)  -> users chase rewards: highest coverage and reward");
    println!("  * high phi          -> users stick to shortest routes: detour collapses");
    println!("  * high theta        -> users avoid congested streets: congestion collapses");
}
