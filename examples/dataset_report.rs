//! Prints a substrate report for each dataset analogue: road network shape,
//! trace statistics (trip lengths, durations, demand spread) and route-set
//! characteristics — the numbers that make the three synthetic datasets
//! comparable to their real counterparts.
//!
//! ```text
//! cargo run --release --example dataset_report
//! ```

use vcs::prelude::*;
use vcs::traces::trace_stats;

fn main() {
    for dataset in Dataset::ALL {
        let graph = dataset.city_config(7).generate();
        let traces = generate_traces(&graph, &dataset.trace_config(8));
        let stats = trace_stats(&traces);
        let pool = UserPool::build(dataset, 7);

        println!("=== {} ===", dataset.name());
        println!(
            "road network : {} nodes, {} directed edges, strongly connected: {}",
            graph.node_count(),
            graph.edge_count(),
            graph.is_strongly_connected()
        );
        println!(
            "traces       : {} trips, {} GPS points",
            stats.traces, stats.points
        );
        println!(
            "trip length  : min {:.1} / median {:.1} / mean {:.1} / max {:.1} km",
            stats.length_km.min, stats.length_km.median, stats.length_km.mean, stats.length_km.max
        );
        println!(
            "trip duration: median {:.0} s, mean {:.0} s",
            stats.duration_s.median, stats.duration_s.mean
        );
        println!(
            "demand       : origin spread {:.2} km around ({:.1}, {:.1})",
            stats.origin_spread_km, stats.origin_centroid.0, stats.origin_centroid.1
        );
        let route_counts: Vec<usize> = pool.users.iter().map(|u| u.routes.len()).collect();
        let mean_routes =
            route_counts.iter().sum::<usize>() as f64 / route_counts.len().max(1) as f64;
        let mean_detour: f64 = pool
            .users
            .iter()
            .flat_map(|u| u.routes.iter().map(|r| r.detour))
            .sum::<f64>()
            / pool
                .users
                .iter()
                .map(|u| u.routes.len())
                .sum::<usize>()
                .max(1) as f64;
        println!(
            "navigation   : {} commuters, {:.1} routes/commuter, mean raw detour {:.2} km",
            pool.len(),
            mean_routes,
            mean_detour
        );
        println!();
    }
    println!("Roma's origin spread is the smallest (centre-biased demand),");
    println!(
        "Shanghai's the largest (uniform grid demand) - matching the real datasets' character."
    );
}
