//! Extension beyond the paper: closed-loop platform control.
//!
//! The paper shows (Fig. 12) that the platform weights `φ` and `θ` steer the
//! equilibrium's total detour and congestion, and leaves choosing them to the
//! operator. This example closes the loop: the platform runs a bisection on
//! `φ` so the *equilibrium* total detour meets a target budget — each probe
//! re-equilibrates the whole population, exploiting that the equilibrium
//! detour is monotone (non-increasing) in `φ`.
//!
//! ```text
//! cargo run --release --example adaptive_platform
//! ```

use vcs::metrics::total_detour;
use vcs::prelude::*;

/// Mean equilibrium total detour at a given φ over a few replicates.
fn equilibrium_detour(pool: &UserPool, phi: f64) -> f64 {
    const REPS: u64 = 8;
    (0..REPS)
        .map(|seed| {
            let game = pool.instantiate(&ScenarioConfig {
                n_users: 25,
                n_tasks: 40,
                seed,
                params: ScenarioParams::with_platform(phi, 0.4),
            });
            let out = run_distributed(
                &game,
                DistributedAlgorithm::Dgrn,
                &RunConfig::with_seed(seed),
            );
            assert!(out.converged);
            total_detour(&game, &out.profile)
        })
        .sum::<f64>()
        / REPS as f64
}

fn main() {
    let pool = UserPool::build(Dataset::Shanghai, 33);

    // Probe the two extremes first: the unconstrained detour and the floor
    // that even the strongest platform pressure cannot push below (detours
    // that are reward-justified regardless of φ).
    let unconstrained = equilibrium_detour(&pool, 0.05);
    let floor = equilibrium_detour(&pool, 0.95);
    let target = floor + 0.4 * (unconstrained - floor);
    println!("equilibrium detour at φ=0.05: {unconstrained:.2} km");
    println!("equilibrium detour at φ=0.95: {floor:.2} km (achievable floor)");
    println!("platform target budget      : {target:.2} km (floor + 40% of the range)");

    // Bisection on φ ∈ [0.05, 0.95]: detour is non-increasing in φ.
    let (mut lo, mut hi) = (0.05f64, 0.95f64);
    let mut best = (lo, unconstrained);
    for step in 0..12 {
        let mid = 0.5 * (lo + hi);
        let detour = equilibrium_detour(&pool, mid);
        println!("  step {step:>2}: φ={mid:.4} -> equilibrium detour {detour:.2} km");
        if detour > target {
            lo = mid;
        } else {
            hi = mid;
            best = (mid, detour);
        }
    }
    println!(
        "chosen φ = {:.4} meets the budget: {:.2} km ≤ {target:.2} km",
        best.0, best.1
    );
    assert!(
        best.1 <= target * 1.05,
        "bisection should land under (or at most 5% above) the budget"
    );
    println!("the same loop works for θ against a congestion budget (Fig. 12c).");
}
