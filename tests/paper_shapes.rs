//! Qualitative reproduction tests: the orderings and trends the paper's
//! evaluation reports must hold on modest replicate counts.

use vcs::prelude::*;

const REPS: u64 = 6;

fn mean_over_reps(f: impl Fn(u64) -> f64) -> f64 {
    (0..REPS).map(&f).sum::<f64>() / REPS as f64
}

fn game_for(pool: &UserPool, n_users: usize, n_tasks: usize, seed: u64) -> Game {
    pool.instantiate(&ScenarioConfig {
        n_users,
        n_tasks,
        seed,
        params: ScenarioParams::default(),
    })
}

/// Fig. 4/5 ordering: MUUN converges in the fewest slots, BATS in the most.
#[test]
fn convergence_ordering_matches_paper() {
    let pool = UserPool::build(Dataset::Shanghai, 51);
    let slots_of = |algo: DistributedAlgorithm| {
        mean_over_reps(|rep| {
            let game = game_for(&pool, 30, 40, replicate_seed(51, 1, rep));
            run_distributed(&game, algo, &RunConfig::with_seed(rep)).slots as f64
        })
    };
    let muun = slots_of(DistributedAlgorithm::Muun);
    let buau = slots_of(DistributedAlgorithm::Buau);
    let dgrn = slots_of(DistributedAlgorithm::Dgrn);
    let bats = slots_of(DistributedAlgorithm::Bats);
    assert!(muun <= buau + 1.0, "MUUN {muun} vs BUAU {buau}");
    assert!(muun < dgrn, "MUUN {muun} vs DGRN {dgrn}");
    assert!(dgrn < bats, "DGRN {dgrn} vs BATS {bats}");
}

/// Fig. 4 trend: more users, more decision slots.
#[test]
fn slots_grow_with_users() {
    let pool = UserPool::build(Dataset::Epfl, 52);
    let slots_at = |n_users: usize| {
        mean_over_reps(|rep| {
            let game = game_for(&pool, n_users, 40, replicate_seed(52, 2, rep));
            run_distributed(
                &game,
                DistributedAlgorithm::Dgrn,
                &RunConfig::with_seed(rep),
            )
            .slots as f64
        })
    };
    let small = slots_at(10);
    let large = slots_at(60);
    assert!(
        large > small,
        "slots at 60 users ({large}) not above 10 users ({small})"
    );
}

/// Fig. 7: total profit ordering RRN < DGRN ≤ CORN in aggregate.
#[test]
fn profit_ordering_matches_paper() {
    let pool = UserPool::build(Dataset::Shanghai, 53);
    let mut dgrn_sum = 0.0;
    let mut corn_sum = 0.0;
    let mut rrn_sum = 0.0;
    for rep in 0..REPS {
        let game = game_for(&pool, 12, 20, replicate_seed(53, 3, rep));
        dgrn_sum += run_distributed(
            &game,
            DistributedAlgorithm::Dgrn,
            &RunConfig::with_seed(rep),
        )
        .profile
        .total_profit(&game);
        corn_sum += run_corn(&game).total_profit;
        rrn_sum += run_rrn(&game, rep).total_profit(&game);
    }
    assert!(
        corn_sum >= dgrn_sum - 1e-9,
        "CORN {corn_sum} vs DGRN {dgrn_sum}"
    );
    assert!(dgrn_sum > rrn_sum, "DGRN {dgrn_sum} vs RRN {rrn_sum}");
    // The paper's headline: DGRN is close to optimal. Require ≥ 80% here
    // (the paper's Table 4 reports ≥ 96% at 500 repetitions).
    assert!(
        dgrn_sum / corn_sum > 0.8,
        "DGRN/CORN ratio {} too low",
        dgrn_sum / corn_sum
    );
}

/// Fig. 8: DGRN's coverage beats RRN's and grows with the user count.
#[test]
fn coverage_shape_matches_paper() {
    let pool = UserPool::build(Dataset::Roma, 54);
    let cov = |n_users: usize, algo: Option<DistributedAlgorithm>| {
        mean_over_reps(|rep| {
            let game = game_for(&pool, n_users, 50, replicate_seed(54, 4, rep));
            let profile = match algo {
                Some(a) => run_distributed(&game, a, &RunConfig::with_seed(rep)).profile,
                None => run_rrn(&game, rep),
            };
            coverage(&game, &profile)
        })
    };
    let dgrn_20 = cov(20, Some(DistributedAlgorithm::Dgrn));
    let dgrn_60 = cov(60, Some(DistributedAlgorithm::Dgrn));
    let rrn_60 = cov(60, None);
    assert!(dgrn_60 > dgrn_20, "coverage must grow with users");
    assert!(dgrn_60 > rrn_60, "DGRN coverage must beat RRN");
}

/// Fig. 9/11: average reward grows with the task count and shrinks with the
/// user count.
#[test]
fn reward_trends_match_paper() {
    let pool = UserPool::build(Dataset::Shanghai, 55);
    let reward = |n_users: usize, n_tasks: usize| {
        mean_over_reps(|rep| {
            let game = game_for(&pool, n_users, n_tasks, replicate_seed(55, 5, rep));
            let out = run_distributed(
                &game,
                DistributedAlgorithm::Dgrn,
                &RunConfig::with_seed(rep),
            );
            average_reward(&game, &out.profile)
        })
    };
    assert!(
        reward(20, 80) > reward(20, 20),
        "reward must grow with tasks"
    );
    assert!(
        reward(20, 60) > reward(80, 60),
        "reward must shrink with users"
    );
}

/// Fig. 10: DGRN's fairness is at least RRN's in aggregate.
#[test]
fn fairness_shape_matches_paper() {
    let pool = UserPool::build(Dataset::Epfl, 56);
    let mut dgrn = 0.0;
    let mut rrn = 0.0;
    for rep in 0..REPS {
        let game = game_for(&pool, 12, 20, replicate_seed(56, 6, rep));
        dgrn += profile_jain_index(
            &game,
            &run_distributed(
                &game,
                DistributedAlgorithm::Dgrn,
                &RunConfig::with_seed(rep),
            )
            .profile,
        );
        rrn += profile_jain_index(&game, &run_rrn(&game, rep));
    }
    assert!(dgrn >= rrn, "DGRN fairness {dgrn} below RRN {rrn}");
}

/// Fig. 12 / Table 5 direction: a high platform detour weight suppresses
/// detours at equilibrium.
#[test]
fn platform_weights_steer_equilibrium() {
    use vcs::metrics::total_detour;
    let pool = UserPool::build(Dataset::Shanghai, 57);
    let detour_at = |phi: f64| {
        mean_over_reps(|rep| {
            let params = ScenarioParams::with_platform(phi, 0.4);
            let game = pool.instantiate(&ScenarioConfig {
                n_users: 20,
                n_tasks: 40,
                seed: replicate_seed(57, 7, rep),
                params,
            });
            let out = run_distributed(
                &game,
                DistributedAlgorithm::Dgrn,
                &RunConfig::with_seed(rep),
            );
            total_detour(&game, &out.profile)
        })
    };
    let low = detour_at(0.05);
    let high = detour_at(0.8);
    assert!(high <= low, "detour at φ=0.8 ({high}) above φ=0.05 ({low})");
}
