//! Property-based tests of the game's theoretical backbone (Theorem 2).

use proptest::prelude::*;
use vcs::core::ids::{RouteId, TaskId, UserId};
use vcs::core::{
    potential, potential_delta, weighted_potential_defect, Game, PlatformParams, Profile, Route,
    Task, User, UserPrefs,
};

/// A generated random game instance plus a valid strategy profile.
#[derive(Debug, Clone)]
struct Instance {
    game: Game,
    choices: Vec<RouteId>,
}

prop_compose! {
    fn arb_instance()(
        n_tasks in 1usize..8,
        n_users in 1usize..6,
        seed in any::<u64>(),
    ) -> Instance {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let tasks: Vec<Task> = (0..n_tasks)
            .map(|k| Task::new(
                TaskId::from_index(k),
                rng.random_range(10.0..20.0),
                rng.random_range(0.0..1.0),
            ))
            .collect();
        let users: Vec<User> = (0..n_users)
            .map(|i| {
                let n_routes = rng.random_range(1..=4usize);
                let routes = (0..n_routes)
                    .map(|r| {
                        let mut covered: Vec<TaskId> = (0..rng.random_range(0..4usize))
                            .map(|_| TaskId::from_index(rng.random_range(0..n_tasks)))
                            .collect();
                        covered.sort_unstable();
                        covered.dedup();
                        Route::new(
                            RouteId::from_index(r),
                            covered,
                            rng.random_range(0.0..5.0),
                            rng.random_range(0.0..5.0),
                        )
                    })
                    .collect();
                User::new(
                    UserId::from_index(i),
                    UserPrefs::new(
                        rng.random_range(0.1..0.9),
                        rng.random_range(0.1..0.9),
                        rng.random_range(0.1..0.9),
                    ),
                    routes,
                )
            })
            .collect();
        let choices = users
            .iter()
            .map(|u| RouteId::from_index(rng.random_range(0..u.routes.len())))
            .collect();
        let game = Game::with_paper_bounds(
            tasks,
            users,
            PlatformParams::new(rng.random_range(0.1..0.8), rng.random_range(0.1..0.8)),
        )
        .expect("generated instance is valid");
        Instance { game, choices }
    }
}

proptest! {
    /// Eq. 11: `P_i(s') − P_i(s) = α_i (ϕ(s') − ϕ(s))` for every unilateral
    /// deviation of every user.
    #[test]
    fn weighted_potential_identity(inst in arb_instance()) {
        let profile = Profile::new(&inst.game, inst.choices.clone());
        for user in inst.game.users() {
            for r in 0..user.routes.len() {
                let defect = weighted_potential_defect(
                    &inst.game, &profile, user.id, RouteId::from_index(r),
                );
                prop_assert!(defect < 1e-8, "Eq. 11 defect {defect}");
            }
        }
    }

    /// The incremental potential delta matches full recomputation.
    #[test]
    fn potential_delta_matches_recompute(inst in arb_instance()) {
        let profile = Profile::new(&inst.game, inst.choices.clone());
        let before = potential(&inst.game, &profile);
        for user in inst.game.users() {
            for r in 0..user.routes.len() {
                let candidate = RouteId::from_index(r);
                let delta = potential_delta(&inst.game, &profile, user.id, candidate);
                let mut moved = profile.clone();
                moved.apply_move(&inst.game, user.id, candidate);
                let after = potential(&inst.game, &moved);
                prop_assert!((delta - (after - before)).abs() < 1e-8);
            }
        }
    }

    /// A move strictly improves a user's profit iff it strictly increases the
    /// potential (sign equivalence behind the finite improvement property).
    #[test]
    fn improvement_sign_equivalence(inst in arb_instance()) {
        let profile = Profile::new(&inst.game, inst.choices.clone());
        for user in inst.game.users() {
            for r in 0..user.routes.len() {
                let candidate = RouteId::from_index(r);
                let gain = profile.profit_if_switched(&inst.game, user.id, candidate)
                    - profile.profit(&inst.game, user.id);
                let phi_delta = potential_delta(&inst.game, &profile, user.id, candidate);
                if gain > 1e-9 {
                    prop_assert!(phi_delta > 0.0);
                }
                if phi_delta > 1e-9 / 0.1 {
                    prop_assert!(gain > 0.0);
                }
            }
        }
    }

    /// Incremental participant counts always agree with a fresh recount.
    #[test]
    fn counts_stay_consistent_along_random_walk(
        inst in arb_instance(),
        moves in prop::collection::vec((any::<u32>(), any::<u32>()), 0..20),
    ) {
        let mut profile = Profile::new(&inst.game, inst.choices.clone());
        for (u_raw, r_raw) in moves {
            let user = UserId::from_index(u_raw as usize % inst.game.user_count());
            let n_routes = inst.game.users()[user.index()].routes.len();
            let route = RouteId::from_index(r_raw as usize % n_routes);
            profile.apply_move(&inst.game, user, route);
            prop_assert!(profile.counts_consistent(&inst.game));
        }
    }

    /// Reward shares decrease in the participant count for Table 2 parameters.
    #[test]
    fn shares_monotone_decreasing(a in 10.0f64..20.0, mu in 0.0f64..1.0, x in 1u32..50) {
        let task = Task::new(TaskId(0), a, mu);
        prop_assert!(task.share(x) > task.share(x + 1));
    }
}
