//! Cross-crate tests of the communication telemetry and convergence
//! analytics extensions.

use vcs::algorithms::{run_anneal, summarize, AnnealConfig};
use vcs::prelude::*;

fn scenario_game(seed: u64) -> Game {
    let pool = UserPool::build(Dataset::Shanghai, 3);
    pool.instantiate(&ScenarioConfig {
        n_users: 20,
        n_tasks: 30,
        seed,
        params: ScenarioParams::default(),
    })
}

#[test]
fn telemetry_identical_across_runtimes() {
    let game = scenario_game(1);
    for scheduler in [SchedulerKind::Suu, SchedulerKind::Puu] {
        let sync = run_sync(&game, scheduler, 5, 1_000_000);
        let threaded = run_threaded(&game, scheduler, 5, 1_000_000);
        assert_eq!(
            sync.telemetry, threaded.telemetry,
            "telemetry diverged: {scheduler:?}"
        );
        assert!(sync.telemetry.total_msgs() > 0);
        assert!(sync.telemetry.total_bytes() > sync.telemetry.total_msgs());
    }
}

#[test]
fn telemetry_accounting_is_closed() {
    // The dirty-set protocol exchanges, over a whole run: M Initial + M Init
    // + M Terminate, one Counts/reply pair per *polled* (dirty) agent, and
    // one Grant/Updated pair per applied update. So the books close exactly:
    // platform frames (init + counts + grants + terminate) exceed user
    // frames (initial + replies + updates) by precisely M.
    let game = scenario_game(2);
    let m = game.user_count();
    let out = run_sync(&game, SchedulerKind::Puu, 9, 1_000_000);
    assert!(out.converged);
    let t = out.telemetry;
    assert_eq!(
        t.platform_msgs,
        t.user_msgs + m,
        "accounting identity broken"
    );
    // The first slot polls everyone; every update costs one more exchange.
    assert!(t.user_msgs >= 2 * m + out.updates);
    // Selective polling never exceeds the dense protocol's one-poll-per-user
    // -per-slot budget.
    assert!(t.user_msgs <= m + (out.slots + 1) * m + out.updates);
    // Byte counts are at least one byte per message (tag).
    assert!(t.platform_bytes >= t.platform_msgs);
    assert!(t.user_bytes >= t.user_msgs);
}

#[test]
fn convergence_summary_consistent_on_scenarios() {
    let game = scenario_game(4);
    for algo in DistributedAlgorithm::ALL {
        let out = run_distributed(&game, algo, &RunConfig::with_seed(4));
        let s = summarize(&out);
        assert!(s.final_potential >= s.initial_potential - 1e-9, "{algo:?}");
        assert!(s.slots_to_90_percent <= s.slots, "{algo:?}");
        assert!(s.max_slot_gain >= 0.0, "{algo:?}");
        // 90% of the gain arrives no later than (usually well before) the end.
        if s.potential_gain > 1e-6 {
            assert!(s.slots_to_90_percent > 0 || s.slots == 0, "{algo:?}");
        }
    }
}

#[test]
fn anneal_tracks_or_beats_equilibria_on_scenarios() {
    let mut anneal_total = 0.0;
    let mut eq_total = 0.0;
    for seed in 0..3u64 {
        let game = scenario_game(seed + 10);
        anneal_total += run_anneal(&game, &AnnealConfig::with_seed(seed)).total_profit;
        eq_total += run_distributed(
            &game,
            DistributedAlgorithm::Dgrn,
            &RunConfig::with_seed(seed),
        )
        .profile
        .total_profit(&game);
    }
    assert!(
        anneal_total >= 0.95 * eq_total,
        "anneal {anneal_total} far below equilibrium {eq_total}"
    );
}
