//! Cross-crate equilibrium tests: every solver, on real scenario instances,
//! terminates at a Nash equilibrium and respects the paper's theorems.

use vcs::core::bounds::slot_upper_bound;
use vcs::core::poa::{poa_lower_bound, SpecialCaseGame, SpecialCaseSpec};
use vcs::prelude::*;

fn scenario_game(dataset: Dataset, n_users: usize, n_tasks: usize, seed: u64) -> Game {
    let pool = UserPool::build(dataset, seed);
    pool.instantiate(&ScenarioConfig {
        n_users,
        n_tasks,
        seed,
        params: ScenarioParams::default(),
    })
}

#[test]
fn all_distributed_algorithms_reach_nash_on_all_datasets() {
    for dataset in Dataset::ALL {
        let game = scenario_game(dataset, 25, 40, 17);
        for algo in DistributedAlgorithm::ALL {
            let out = run_distributed(&game, algo, &RunConfig::with_seed(17));
            assert!(
                out.converged,
                "{:?} did not converge on {}",
                algo,
                dataset.name()
            );
            assert!(
                is_nash(&game, &out.profile),
                "{:?} off-equilibrium on {}",
                algo,
                dataset.name()
            );
        }
    }
}

#[test]
fn potential_is_monotone_along_all_dynamics() {
    let game = scenario_game(Dataset::Roma, 20, 30, 5);
    for algo in DistributedAlgorithm::ALL {
        let out = run_distributed(&game, algo, &RunConfig::with_seed(5));
        for w in out.slot_trace.windows(2) {
            assert!(
                w[1].potential >= w[0].potential - 1e-9,
                "{algo:?}: potential decreased"
            );
        }
    }
}

/// Theorem 4: the observed number of decision slots is below the bound
/// computed from the observed minimum improvement.
#[test]
fn theorem4_slot_bound_holds() {
    for seed in [3u64, 7, 11] {
        let game = scenario_game(Dataset::Shanghai, 20, 30, seed);
        let out = run_distributed(
            &game,
            DistributedAlgorithm::Dgrn,
            &RunConfig::with_seed(seed),
        );
        if out.updates == 0 {
            continue; // already at equilibrium; bound trivially holds
        }
        let bound = slot_upper_bound(&game, out.min_improvement);
        assert!(
            (out.slots as f64) < bound,
            "slots {} ≥ Theorem 4 bound {bound}",
            out.slots
        );
    }
}

/// CORN is exact: it weakly dominates every equilibrium and every random
/// profile.
#[test]
fn corn_dominates_equilibria_and_random() {
    let game = scenario_game(Dataset::Epfl, 10, 20, 9);
    let corn = run_corn(&game);
    for seed in 0..5u64 {
        let eq = run_distributed(
            &game,
            DistributedAlgorithm::Dgrn,
            &RunConfig::with_seed(seed),
        );
        assert!(corn.total_profit >= eq.profile.total_profit(&game) - 1e-9);
        let rrn = run_rrn(&game, seed);
        assert!(corn.total_profit >= rrn.total_profit(&game) - 1e-9);
    }
}

/// Theorem 5: on the structured special case, every equilibrium's total
/// profit stays above `bound × OPT`.
#[test]
fn theorem5_poa_bound_on_special_cases() {
    for seed in 0..5u64 {
        let n_users = 6 + (seed as usize % 4);
        let sc = SpecialCaseGame::build(SpecialCaseSpec {
            shared_base_reward: 10.0 + seed as f64,
            private_rewards: (0..n_users).map(|i| 2.0 + 1.7 * i as f64).collect(),
            shared_tasks: 3,
        });
        let corn = run_corn(&sc.game);
        let bound = poa_lower_bound(&sc);
        for run_seed in 0..4u64 {
            let eq = run_distributed(
                &sc.game,
                DistributedAlgorithm::Dgrn,
                &RunConfig::with_seed(run_seed),
            );
            assert!(is_nash(&sc.game, &eq.profile));
            let ratio = eq.profile.total_profit(&sc.game) / corn.total_profit;
            assert!(
                ratio >= bound - 1e-9,
                "PoA ratio {ratio} below Theorem 5 bound {bound} (seed {seed}/{run_seed})"
            );
            assert!(ratio <= 1.0 + 1e-9);
        }
    }
}

/// The equilibria of different distributed algorithms can differ, but all
/// leave no user with an improving deviation — and their potentials are all
/// local maxima reachable from random starts.
#[test]
fn different_algorithms_may_find_different_but_valid_equilibria() {
    let game = scenario_game(Dataset::Shanghai, 15, 25, 23);
    let mut potentials = Vec::new();
    for algo in DistributedAlgorithm::ALL {
        let out = run_distributed(&game, algo, &RunConfig::with_seed(23));
        assert!(is_nash(&game, &out.profile));
        potentials.push(out.final_potential());
    }
    // All potentials are finite and positive for this scenario scale.
    assert!(potentials.iter().all(|p| p.is_finite()));
}

/// MUUN's parallel batches never grant two users whose affected task sets
/// intersect, so the potential gain per slot equals the sum of the granted
/// users' `τ_i` — cross-checked through the recorded trace.
#[test]
fn muun_batches_preserve_potential_accounting() {
    let game = scenario_game(Dataset::Roma, 30, 40, 31);
    let out = run_distributed(&game, DistributedAlgorithm::Muun, &RunConfig::with_seed(31));
    // Every slot's potential increase must be strictly positive.
    for w in out.slot_trace.windows(2) {
        if w[1].updated_users > 0 {
            assert!(w[1].potential > w[0].potential - 1e-9);
        }
    }
    assert!(out.converged);
}
