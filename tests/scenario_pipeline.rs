//! End-to-end pipeline tests: city → traces → CSV → OD → routes → game.

use vcs::prelude::*;
use vcs::roadnet::recommend_routes;
use vcs::traces::{extract_all, parse_traces, write_traces};

#[test]
fn full_pipeline_through_csv_roundtrip() {
    // Generate synthetic traces, dump them to the CSV format, re-parse, and
    // confirm the OD pairs survive the round trip — the path a real CRAWDAD
    // dump would take.
    let dataset = Dataset::Shanghai;
    let graph = dataset.city_config(3).generate();
    let traces = generate_traces(
        &graph,
        &TraceGenConfig {
            n_traces: 40,
            ..TraceGenConfig::paper_defaults(dataset.trace_profile(), 3)
        },
    );
    let csv = write_traces(&traces);
    let reparsed = parse_traces(&csv).expect("self-written CSV parses");
    let od_direct = extract_all(&graph, &traces);
    let od_roundtrip = extract_all(&graph, &reparsed);
    assert_eq!(od_direct, od_roundtrip);
    assert_eq!(od_direct.len(), 40);
}

#[test]
fn recommended_routes_feed_valid_games_on_all_datasets() {
    for dataset in Dataset::ALL {
        let pool = UserPool::build(dataset, 2);
        assert!(
            pool.len() >= 100,
            "{}: pool too small ({})",
            dataset.name(),
            pool.len()
        );
        let game = pool.instantiate(&ScenarioConfig {
            n_users: 30,
            n_tasks: 50,
            seed: 6,
            params: ScenarioParams::default(),
        });
        // Structure: 1–5 routes per user, shortest first with zero detour.
        for user in game.users() {
            assert!((1..=5).contains(&user.routes.len()));
            assert_eq!(user.routes[0].detour, 0.0);
            for route in &user.routes {
                assert!(route.detour >= 0.0);
                assert!(route.congestion >= 0.0);
            }
        }
    }
}

#[test]
fn route_recommendation_is_consistent_with_graph_shortest_paths() {
    let dataset = Dataset::Epfl;
    let graph = dataset.city_config(9).generate();
    let traces = generate_traces(&graph, &dataset.trace_config(10));
    let ods = extract_all(&graph, &traces);
    let od = ods[0];
    let routes = recommend_routes(&graph, od.origin, od.destination, &Default::default());
    assert!(!routes.is_empty());
    // The first recommendation is the shortest path: its detour is zero and
    // every alternative is at least as long.
    assert_eq!(routes[0].detour, 0.0);
    for r in &routes {
        assert!(r.path.length >= routes[0].path.length - 1e-9);
        // Paths are simple and reach the destination.
        assert!(!r.path.has_cycle(&graph, od.origin));
        assert_eq!(r.path.destination(&graph, od.origin), od.destination);
    }
}

#[test]
fn scenario_replicates_are_independent_but_reproducible() {
    let pool = UserPool::build(Dataset::Roma, 14);
    let params = ScenarioParams::default();
    let a1 = pool.instantiate(&ScenarioConfig {
        n_users: 10,
        n_tasks: 20,
        seed: 100,
        params,
    });
    let a2 = pool.instantiate(&ScenarioConfig {
        n_users: 10,
        n_tasks: 20,
        seed: 100,
        params,
    });
    let b = pool.instantiate(&ScenarioConfig {
        n_users: 10,
        n_tasks: 20,
        seed: 101,
        params,
    });
    assert_eq!(a1, a2, "same seed must reproduce the identical game");
    assert_ne!(a1, b, "different seeds must vary the game");
}

#[test]
fn replicate_seeds_are_unique_across_experiments() {
    use std::collections::HashSet;
    let mut seen = HashSet::new();
    for experiment in 0..20u64 {
        for rep in 0..50u64 {
            assert!(
                seen.insert(replicate_seed(1, experiment, rep)),
                "seed collision at ({experiment}, {rep})"
            );
        }
    }
}
