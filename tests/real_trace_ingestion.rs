//! End-to-end ingestion of a "real" trace dump: the fixture CSV in
//! `tests/data/sample_traces.csv` plays the role of a projected CRAWDAD
//! extract and flows through the exact pipeline a real dataset would —
//! parse → OD extraction → route recommendation → game → equilibrium.

use vcs::prelude::*;
use vcs::roadnet::{recommend_routes, RecommendConfig};
use vcs::traces::{extract_all, parse_traces, trace_stats};

const FIXTURE: &str = include_str!("data/sample_traces.csv");

#[test]
fn fixture_parses_and_summarizes() {
    let traces = parse_traces(FIXTURE).expect("fixture is well-formed");
    assert_eq!(traces.len(), 6);
    let stats = trace_stats(&traces);
    assert_eq!(stats.traces, 6);
    assert!(stats.length_km.mean > 3.0, "fixture trips are city-scale");
    assert!(stats.duration_s.min > 0.0);
}

#[test]
fn fixture_drives_the_full_pipeline() {
    // A 10×10 km grid city covering the fixture's coordinate frame.
    let graph = vcs::roadnet::CityConfig {
        kind: vcs::roadnet::CityKind::Grid {
            nx: 10,
            ny: 10,
            spacing: 1.0,
        },
        seed: 77,
    }
    .generate();
    let traces = parse_traces(FIXTURE).unwrap();
    let ods = extract_all(&graph, &traces);
    assert!(!ods.is_empty(), "fixture trips snap to distinct nodes");

    // Navigation-style recommendations for every commuter.
    let mut users = Vec::new();
    let mut geometries = Vec::new();
    for od in &ods {
        let routes = recommend_routes(
            &graph,
            od.origin,
            od.destination,
            &RecommendConfig::default(),
        );
        assert!(!routes.is_empty());
        assert_eq!(routes[0].detour, 0.0);
        geometries.push(routes.iter().map(|r| r.path.length).collect::<Vec<_>>());
        users.push(routes);
    }

    // Build a small hand-rolled game over the recommended routes: three
    // tasks pinned near the city centre, covered by any route passing close.
    use vcs::core::ids::{RouteId, TaskId, UserId};
    let tasks: Vec<Task> = (0..3)
        .map(|k| Task::at(TaskId(k), 12.0 + k as f64, 0.5, (4.5 + k as f64 * 0.4, 4.5)))
        .collect();
    let capture = 0.6;
    let game_users: Vec<User> = users
        .iter()
        .enumerate()
        .map(|(i, routes)| {
            let od = ods[i];
            let routes: Vec<Route> = routes
                .iter()
                .enumerate()
                .map(|(ri, rec)| {
                    let geom = rec.path.geometry(&graph, od.origin);
                    let covered: Vec<TaskId> = tasks
                        .iter()
                        .filter(|t| {
                            let loc = t.location.unwrap();
                            geom.windows(2).any(|w| {
                                // coarse point-to-segment test via midpoint
                                let mid = ((w[0].0 + w[1].0) / 2.0, (w[0].1 + w[1].1) / 2.0);
                                ((mid.0 - loc.0).powi(2) + (mid.1 - loc.1).powi(2)).sqrt() < capture
                            })
                        })
                        .map(|t| t.id)
                        .collect();
                    Route::new(RouteId::from_index(ri), covered, rec.detour, rec.congestion)
                })
                .collect();
            User::new(UserId::from_index(i), UserPrefs::neutral(), routes)
        })
        .collect();
    let game = Game::with_paper_bounds(tasks, game_users, PlatformParams::new(0.4, 0.4)).unwrap();

    // The distributed dynamics equilibrate on real-trace-derived commuters.
    let out = run_distributed(&game, DistributedAlgorithm::Dgrn, &RunConfig::with_seed(1));
    assert!(out.converged);
    assert!(is_nash(&game, &out.profile));
}
