//! The distributed runtimes (message-passing agents) against the game-level
//! semantics: local agent decisions must match the centralized evaluation,
//! the threaded runtime must be bit-identical to the reference runtime, and
//! every run must terminate at a Nash equilibrium.

use vcs::core::ids::UserId;
use vcs::prelude::*;
use vcs::runtime::{PlatformState, UserAgent};

fn scenario_game(seed: u64, n_users: usize) -> Game {
    let pool = UserPool::build(Dataset::Shanghai, 1);
    pool.instantiate(&ScenarioConfig {
        n_users,
        n_tasks: 30,
        seed,
        params: ScenarioParams::default(),
    })
}

#[test]
fn sync_runtime_terminates_at_nash() {
    let game = scenario_game(2, 20);
    for scheduler in [SchedulerKind::Suu, SchedulerKind::Puu] {
        let out = run_sync(&game, scheduler, 4, 1_000_000);
        assert!(out.converged);
        assert!(is_nash(&game, &out.profile));
    }
}

#[test]
fn threaded_matches_sync_on_scenario_games() {
    for seed in [0u64, 1, 2] {
        let game = scenario_game(seed, 15);
        for scheduler in [SchedulerKind::Suu, SchedulerKind::Puu] {
            let sync = run_sync(&game, scheduler, seed, 1_000_000);
            let threaded = run_threaded(&game, scheduler, seed, 1_000_000);
            assert_eq!(
                sync, threaded,
                "divergence: scheduler {scheduler:?} seed {seed}"
            );
        }
    }
}

/// The agent's local best-route computation agrees with the centralized
/// `best_route_set` on the same state: same improvement decision and, when
/// improving, the same profit gain.
#[test]
fn agent_request_matches_centralized_best_response() {
    let game = scenario_game(5, 12);
    let profile = Profile::all_first(&game);
    let platform = PlatformState::new(&game, SchedulerKind::Suu, 0, profile.choices().to_vec());
    for user in game.users() {
        let mut agent = UserAgent::new(
            user.id,
            user.prefs,
            &user.routes,
            game.params().phi,
            game.params().theta,
            profile.choice(user.id),
        );
        agent.handle(platform.init_msg_for(user.id));
        let reply = agent
            .handle(platform.counts_msg_for(user.id))
            .expect("counts always answered");
        let centralized = best_route_set(&game, &profile, user.id);
        match reply {
            vcs::runtime::UserMsg::Request {
                gain, new_route, ..
            } => {
                assert!(
                    centralized.can_improve(),
                    "agent requested but core says stay"
                );
                assert!(
                    (gain - centralized.gain).abs() < 1e-9,
                    "gain mismatch: agent {gain} vs core {}",
                    centralized.gain
                );
                // The agent picks the lowest-index best route.
                assert_eq!(Some(new_route), centralized.first());
            }
            vcs::runtime::UserMsg::NoRequest { .. } => {
                assert!(!centralized.can_improve(), "core improves but agent stays");
            }
            other => panic!("unexpected reply {other:?}"),
        }
    }
}

/// The platform's final profile matches what the agents believe: no stale
/// local state survives the protocol (checked internally via debug asserts;
/// here we re-run and compare potentials between schedulers).
#[test]
fn runtime_profiles_validate_against_game() {
    let game = scenario_game(8, 25);
    let out = run_threaded(&game, SchedulerKind::Puu, 123, 1_000_000);
    assert!(game.validate_profile(out.profile.choices()).is_ok());
    // Every user is on one of its own routes and cannot improve.
    for i in 0..game.user_count() {
        let user = UserId::from_index(i);
        assert!(!best_route_set(&game, &out.profile, user).can_improve());
    }
}

/// PUU runtimes use strictly fewer (or equal) slots than SUU on the same
/// instance — the Fig. 4 story at the protocol level.
#[test]
fn puu_runtime_needs_fewer_slots() {
    let mut suu_total = 0usize;
    let mut puu_total = 0usize;
    for seed in 0..5u64 {
        let game = scenario_game(seed + 40, 30);
        suu_total += run_sync(&game, SchedulerKind::Suu, seed, 1_000_000).slots;
        puu_total += run_sync(&game, SchedulerKind::Puu, seed, 1_000_000).slots;
    }
    assert!(
        puu_total <= suu_total,
        "PUU used {puu_total} slots vs SUU {suu_total}"
    );
}
