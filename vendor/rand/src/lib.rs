//! Offline drop-in subset of the `rand` crate.
//!
//! The build environment has no access to a crates registry, so this crate
//! implements exactly the surface the workspace consumes: a deterministic
//! [`rngs::StdRng`] seeded via [`SeedableRng::seed_from_u64`] and uniform
//! range sampling via [`RngExt::random_range`]. The generator is
//! xoshiro256++ with a splitmix64 seed expansion; it is **not** the upstream
//! `StdRng` (ChaCha12), so absolute draw sequences differ from upstream, but
//! every consumer in this workspace only relies on determinism per seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Core source of pseudo-random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of generators from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// The splitmix64 finalizer used to expand seeds into full generator state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Concrete generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// xoshiro256++ generator: fast, 256-bit state, passes BigCrush.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let mut s = [0u64; 4];
            for word in &mut s {
                *word = splitmix64(&mut state);
            }
            // All-zero state is a fixed point of xoshiro; splitmix64 cannot
            // produce four zero outputs in a row, so `s` is always valid.
            Self { s }
        }
    }

    impl StdRng {
        /// The generator's full internal state, for checkpoint codecs that
        /// must resume the exact draw stream in another process.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a state captured with
        /// [`state`](StdRng::state). An all-zero state is a fixed point of
        /// xoshiro (it would emit zeros forever), so it is rejected by
        /// falling back to the seeded construction of seed 0.
        pub fn from_state(s: [u64; 4]) -> Self {
            if s == [0; 4] {
                return <Self as SeedableRng>::seed_from_u64(0);
            }
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Maps 64 random bits to a uniform index in `[0, span)` (Lemire
/// multiply-shift; span 0 means the full 2^64 range).
fn bounded(word: u64, span: u64) -> u64 {
    if span == 0 {
        word
    } else {
        ((u128::from(word) * u128::from(span)) >> 64) as u64
    }
}

/// 53-bit mantissa fraction in `[0, 1)`.
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Scalar types that support uniform sampling from a range.
///
/// Mirrors upstream's blanket `SampleRange<T> for Range<T>` structure, which
/// type inference relies on to pin unsuffixed numeric literals in calls like
/// `rng.random_range(-0.05..0.05)`.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from `[start, end)` when `inclusive` is false, else
    /// from `[start, end]`. Callers guarantee the range is non-empty.
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, start: Self, end: Self, inclusive: bool)
        -> Self;
}

macro_rules! uint_sample_uniform {
    ($($ty:ty),*) => {$(
        impl SampleUniform for $ty {
            fn sample_in<R: RngCore + ?Sized>(
                rng: &mut R,
                start: Self,
                end: Self,
                inclusive: bool,
            ) -> Self {
                let span = (end - start) as u64;
                let span = if inclusive { span.wrapping_add(1) } else { span };
                start + bounded(rng.next_u64(), span) as $ty
            }
        }
    )*};
}

uint_sample_uniform!(u8, u16, u32, u64, usize);

macro_rules! int_sample_uniform {
    ($($ty:ty => $unsigned:ty),*) => {$(
        impl SampleUniform for $ty {
            fn sample_in<R: RngCore + ?Sized>(
                rng: &mut R,
                start: Self,
                end: Self,
                inclusive: bool,
            ) -> Self {
                let span = end.wrapping_sub(start) as $unsigned as u64;
                let span = if inclusive { span.wrapping_add(1) } else { span };
                start.wrapping_add(bounded(rng.next_u64(), span) as $ty)
            }
        }
    )*};
}

int_sample_uniform!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

macro_rules! float_sample_uniform {
    ($($ty:ty),*) => {$(
        impl SampleUniform for $ty {
            fn sample_in<R: RngCore + ?Sized>(
                rng: &mut R,
                start: Self,
                end: Self,
                _inclusive: bool,
            ) -> Self {
                let u = unit_f64(rng.next_u64()) as $ty;
                start + u * (end - start)
            }
        }
    )*};
}

float_sample_uniform!(f32, f64);

/// Range types that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_in(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = self.into_inner();
        assert!(start <= end, "cannot sample empty range");
        T::sample_in(rng, start, end, true)
    }
}

/// Convenience sampling methods, blanket-implemented for every generator.
pub trait RngExt: RngCore {
    /// Uniform sample from `range`.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn random_range<T, S>(&mut self, range: S) -> T
    where
        T: SampleUniform,
        S: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn int_ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: u32 = rng.random_range(3..9);
            assert!((3..9).contains(&x));
            let y: usize = rng.random_range(0..=4);
            assert!(y <= 4);
            let z: i64 = rng.random_range(-5..5);
            assert!((-5..5).contains(&z));
        }
    }

    #[test]
    fn unsuffixed_float_literals_infer() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let x = rng.random_range(-0.5..0.5);
            assert!((-0.5..0.5).contains(&x));
            let y = rng.random_range(1.0..=2.0) + 0.0f64;
            assert!((1.0..=2.0).contains(&y));
        }
    }

    #[test]
    fn rough_uniformity() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut buckets = [0usize; 10];
        for _ in 0..10_000 {
            buckets[rng.random_range(0..10usize)] += 1;
        }
        for &b in &buckets {
            assert!(
                (800..1200).contains(&b),
                "bucket count {b} far from uniform"
            );
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _: u32 = rng.random_range(5..5);
    }
}
