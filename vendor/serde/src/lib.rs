//! Offline stand-in for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its domain types for
//! downstream consumers, but never serializes through serde itself (the wire
//! codec in `vcs-runtime` is hand-rolled). With no registry access, this
//! crate supplies the marker traits and re-exports no-op derive macros so the
//! annotations stay in place and compile.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize<'de>`.
pub trait Deserialize<'de> {}
