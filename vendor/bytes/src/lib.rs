//! Offline subset of the `bytes` crate.
//!
//! Implements the surface the `vcs-runtime` wire codec uses: an immutable,
//! cheaply cloneable [`Bytes`] view, a growable [`BytesMut`] builder, and the
//! big-endian [`Buf`]/[`BufMut`] accessors. Semantics match upstream for this
//! subset (network byte order, `freeze`, sub-slicing without copying).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;
use std::sync::Arc;

/// Immutable byte buffer; clones share the underlying allocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Empty buffer.
    pub fn new() -> Self {
        Self::from_static(&[])
    }

    /// Wraps a static slice (no allocation is shared, but the copy is cheap
    /// and one-time).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Self::from(bytes.to_vec())
    }

    /// Number of readable bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether no bytes remain.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Sub-view of `range` (relative to this view) sharing the allocation.
    ///
    /// # Panics
    ///
    /// Panics when `range` is out of bounds.
    pub fn slice(&self, range: Range<usize>) -> Self {
        assert!(
            range.start <= range.end && range.end <= self.len(),
            "slice range {range:?} out of bounds for Bytes of length {}",
            self.len()
        );
        Self {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Self::new()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        let end = data.len();
        Self {
            data: data.into(),
            start: 0,
            end,
        }
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

/// Growable byte buffer for building frames.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// Empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// With pre-reserved capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            buf: Vec::with_capacity(capacity),
        }
    }

    /// Number of written bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Converts the builder into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

/// Read access to a byte cursor (big-endian, as on the wire).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Whether any bytes are left.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Skips `count` bytes.
    ///
    /// # Panics
    ///
    /// Panics when fewer than `count` bytes remain.
    fn advance(&mut self, count: usize);

    /// Reads one byte.
    ///
    /// # Panics
    ///
    /// Panics when empty. Callers check [`Buf::remaining`] first.
    fn get_u8(&mut self) -> u8;

    /// Reads a big-endian `u32`.
    ///
    /// # Panics
    ///
    /// Panics when fewer than 4 bytes remain.
    fn get_u32(&mut self) -> u32;

    /// Reads a big-endian `u64`.
    ///
    /// # Panics
    ///
    /// Panics when fewer than 8 bytes remain.
    fn get_u64(&mut self) -> u64;

    /// Reads a big-endian `f64`.
    ///
    /// # Panics
    ///
    /// Panics when fewer than 8 bytes remain.
    fn get_f64(&mut self) -> f64;
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, count: usize) {
        assert!(count <= self.len(), "advance past end of Bytes");
        self.start += count;
    }

    fn get_u8(&mut self) -> u8 {
        let byte = self.as_slice()[0];
        self.start += 1;
        byte
    }

    fn get_u32(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        raw.copy_from_slice(&self.as_slice()[..4]);
        self.start += 4;
        u32::from_be_bytes(raw)
    }

    fn get_u64(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.as_slice()[..8]);
        self.start += 8;
        u64::from_be_bytes(raw)
    }

    fn get_f64(&mut self) -> f64 {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.as_slice()[..8]);
        self.start += 8;
        f64::from_be_bytes(raw)
    }
}

/// Write access to a byte builder (big-endian, as on the wire).
pub trait BufMut {
    /// Appends one byte.
    fn put_u8(&mut self, value: u8);

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, value: u32);

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, value: u64);

    /// Appends a big-endian `f64`.
    fn put_f64(&mut self, value: f64);
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, value: u8) {
        self.buf.push(value);
    }

    fn put_u32(&mut self, value: u32) {
        self.buf.extend_from_slice(&value.to_be_bytes());
    }

    fn put_u64(&mut self, value: u64) {
        self.buf.extend_from_slice(&value.to_be_bytes());
    }

    fn put_f64(&mut self, value: f64) {
        self.buf.extend_from_slice(&value.to_be_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_big_endian() {
        let mut buf = BytesMut::new();
        buf.put_u8(7);
        buf.put_u32(0xDEAD_BEEF);
        buf.put_u64(0xFEED_FACE_CAFE_F00D);
        buf.put_f64(-2.5);
        let mut frame = buf.freeze();
        assert_eq!(frame.remaining(), 21);
        assert_eq!(frame.get_u8(), 7);
        assert_eq!(frame.get_u32(), 0xDEAD_BEEF);
        assert_eq!(frame.get_u64(), 0xFEED_FACE_CAFE_F00D);
        assert_eq!(frame.get_f64(), -2.5);
        assert!(!frame.has_remaining());
    }

    #[test]
    fn u32_is_network_order() {
        let mut buf = BytesMut::new();
        buf.put_u32(1);
        assert_eq!(buf.freeze().as_ref(), &[0, 0, 0, 1]);
    }

    #[test]
    fn slice_shares_and_offsets() {
        let bytes = Bytes::from(vec![1, 2, 3, 4, 5]);
        let mut mid = bytes.slice(1..4);
        assert_eq!(mid.len(), 3);
        assert_eq!(mid.get_u8(), 2);
        assert_eq!(mid.slice(0..2).as_ref(), &[3, 4]);
        // Original view is unaffected.
        assert_eq!(bytes.as_ref(), &[1, 2, 3, 4, 5]);
    }

    #[test]
    fn advance_moves_cursor() {
        let mut bytes = Bytes::from(vec![9, 8, 7]);
        bytes.advance(2);
        assert_eq!(bytes.remaining(), 1);
        assert_eq!(bytes.get_u8(), 7);
    }
}
