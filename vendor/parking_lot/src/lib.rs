//! Offline subset of `parking_lot`.
//!
//! Wraps `std::sync::Mutex` behind parking_lot's poison-free `lock()`
//! signature; a poisoned std lock is recovered rather than propagated, which
//! matches parking_lot's no-poisoning semantics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync;

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

/// Mutual exclusion without lock poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wraps `value`.
    pub fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Blocks until the lock is held; never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn contended_increments() {
        let counter = Arc::new(Mutex::new(0u32));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let counter = Arc::clone(&counter);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *counter.lock() += 1;
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        assert_eq!(*counter.lock(), 4000);
        let owned = Arc::into_inner(counter).expect("all threads joined");
        assert_eq!(owned.into_inner(), 4000);
    }
}
