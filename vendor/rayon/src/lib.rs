//! Offline subset of `rayon`.
//!
//! Supports the one shape this workspace uses:
//! `(range).into_par_iter().map(f).collect::<Vec<_>>()`. Work is split into
//! one contiguous chunk per available core and run on scoped threads; results
//! are concatenated in index order, so output is identical to the sequential
//! map (the property `vcs-metrics` relies on for bit-identical replication).
//!
//! The worker count can be pinned globally via
//! [`ThreadPoolBuilder::build_global`] (the `VCS_THREADS` plumbing in the
//! workspace bins); [`current_num_threads`] reports the effective width.
//! Pinning to `1` makes every pipeline run strictly sequentially on the
//! calling thread — the explicit reproducibility fallback. Unlike upstream
//! rayon there is no persistent pool (workers are scoped threads spawned per
//! pipeline), so re-pinning later is permitted rather than an error.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;

/// Global worker-count override; `0` means "use available parallelism".
static POOL_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Effective number of worker threads a pipeline will use: the pinned global
/// value if [`ThreadPoolBuilder::build_global`] was called with a non-zero
/// width, otherwise the machine's available parallelism.
pub fn current_num_threads() -> usize {
    match POOL_THREADS.load(Ordering::Relaxed) {
        0 => thread::available_parallelism().map_or(1, |n| n.get()),
        n => n,
    }
}

/// Error type of [`ThreadPoolBuilder::build_global`], kept for API parity
/// with upstream rayon. This offline subset has no persistent pool to race
/// against, so building the global "pool" never actually fails.
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "global thread pool could not be configured")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Configures the global worker count (offline counterpart of rayon's
/// builder). Only `num_threads` is supported.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Starts a builder with the default (machine-width) configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pins the worker count; `0` restores the machine-width default and `1`
    /// forces strictly sequential execution.
    #[must_use]
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Installs the configuration globally for all subsequent pipelines.
    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        POOL_THREADS.store(self.num_threads, Ordering::Relaxed);
        Ok(())
    }
}

/// The customary glob import.
pub mod prelude {
    pub use crate::{FromParallelIterator, IntoParallelIterator, ParallelIterator};
}

/// Conversion into a parallel iterator.
pub trait IntoParallelIterator {
    /// Element type.
    type Item: Send;
    /// The produced parallel iterator.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Converts `self`.
    fn into_par_iter(self) -> Self::Iter;
}

/// A data-parallel pipeline stage.
pub trait ParallelIterator: Sized {
    /// Element type.
    type Item: Send;

    /// Evaluates the pipeline, yielding elements in index order.
    fn run(self) -> Vec<Self::Item>;

    /// Maps each element through `f` in parallel.
    fn map<T, F>(self, f: F) -> Map<Self, F>
    where
        T: Send,
        F: Fn(Self::Item) -> T + Sync + Send,
    {
        Map { base: self, f }
    }

    /// Collects the results in index order.
    fn collect<C>(self) -> C
    where
        C: FromParallelIterator<Self::Item>,
    {
        C::from_par_iter(self)
    }
}

/// Collection types a parallel iterator can gather into.
pub trait FromParallelIterator<T: Send> {
    /// Builds the collection from an evaluated pipeline.
    fn from_par_iter<I: ParallelIterator<Item = T>>(iter: I) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<I: ParallelIterator<Item = T>>(iter: I) -> Self {
        iter.run()
    }
}

macro_rules! range_into_par_iter {
    ($($ty:ty),*) => {$(
        impl IntoParallelIterator for Range<$ty> {
            type Item = $ty;
            type Iter = RangeParIter<$ty>;

            fn into_par_iter(self) -> Self::Iter {
                RangeParIter { range: self }
            }
        }
    )*};
}

range_into_par_iter!(u32, u64, usize);

/// Parallel iterator over an integer range.
#[derive(Debug, Clone)]
pub struct RangeParIter<T> {
    range: Range<T>,
}

macro_rules! range_par_iter_run {
    ($($ty:ty),*) => {$(
        impl ParallelIterator for RangeParIter<$ty> {
            type Item = $ty;

            fn run(self) -> Vec<$ty> {
                self.range.collect()
            }
        }
    )*};
}

range_par_iter_run!(u32, u64, usize);

/// Output of [`ParallelIterator::map`].
#[derive(Debug, Clone)]
pub struct Map<I, F> {
    base: I,
    f: F,
}

impl<I, T, F> ParallelIterator for Map<I, F>
where
    I: ParallelIterator,
    T: Send,
    F: Fn(I::Item) -> T + Sync + Send,
{
    type Item = T;

    fn run(self) -> Vec<T> {
        let items = self.base.run();
        let workers = current_num_threads();
        if workers <= 1 || items.len() <= 1 {
            return items.into_iter().map(self.f).collect();
        }
        let chunk = items.len().div_ceil(workers);
        let f = &self.f;
        // One contiguous chunk per worker keeps results trivially ordered:
        // chunk j of the output is exactly chunk j of the input mapped.
        let mut chunks: Vec<Vec<I::Item>> = Vec::new();
        let mut items = items.into_iter();
        loop {
            let batch: Vec<_> = items.by_ref().take(chunk).collect();
            if batch.is_empty() {
                break;
            }
            chunks.push(batch);
        }
        thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|batch| scope.spawn(move || batch.into_iter().map(f).collect::<Vec<T>>()))
                .collect();
            let mut out = Vec::new();
            for handle in handles {
                out.extend(handle.join().expect("rayon worker panicked"));
            }
            out
        })
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let out: Vec<u64> = (0..1000u64).into_par_iter().map(|i| i * i).collect();
        let expected: Vec<u64> = (0..1000u64).map(|i| i * i).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn empty_range() {
        let out: Vec<u32> = (5..5u32).into_par_iter().map(|i| i).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn single_element() {
        let out: Vec<usize> = (3..4usize).into_par_iter().map(|i| i + 1).collect();
        assert_eq!(out, vec![4]);
    }

    #[test]
    fn pinned_width_is_reported_and_sequential_fallback_preserves_order() {
        // Pin to 1 (strictly sequential), run, then restore the default so
        // other tests in the binary see machine width again.
        crate::ThreadPoolBuilder::new()
            .num_threads(1)
            .build_global()
            .expect("pin to one worker");
        assert_eq!(crate::current_num_threads(), 1);
        let out: Vec<u64> = (0..100u64).into_par_iter().map(|i| i * 3).collect();
        let expected: Vec<u64> = (0..100u64).map(|i| i * 3).collect();
        assert_eq!(out, expected);
        crate::ThreadPoolBuilder::new()
            .num_threads(0)
            .build_global()
            .expect("restore default width");
        assert!(crate::current_num_threads() >= 1);
    }
}
