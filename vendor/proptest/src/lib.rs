//! Offline mini property-testing framework with the `proptest` API surface
//! this workspace uses.
//!
//! Supports: [`strategy::Strategy`] with `prop_map`/`prop_flat_map`/`boxed`,
//! numeric range strategies, tuple/`Vec` composition, `any::<T>()`,
//! [`strategy::Just`], `prop::collection::{vec, btree_set}`, `prop::bool::ANY`,
//! a printable-string strategy for `&str` regex literals of the `\PC{m,n}`
//! shape, and the macros `proptest!`, `prop_compose!`, `prop_oneof!`,
//! `prop_assert!`, `prop_assert_eq!`, `prop_assert_ne!`, `prop_assume!`.
//!
//! Differences from upstream: no shrinking (failures report the generated
//! input via `Debug` where available, but are not minimized), and generation
//! is seeded deterministically from the test name, so failures reproduce
//! exactly on re-run.

#![forbid(unsafe_code)]

pub mod test_runner {
    //! Deterministic case runner: RNG, config and case-level errors.

    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    /// Per-test RNG; seeded from the test name (FNV-1a), so every run of a
    /// given test sees the same case sequence.
    #[derive(Debug, Clone)]
    pub struct TestRng(StdRng);

    impl TestRng {
        /// Deterministic RNG for the named test.
        pub fn for_test(name: &str) -> Self {
            let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
            for byte in name.bytes() {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
            }
            Self(StdRng::seed_from_u64(hash))
        }
    }

    impl RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// `prop_assume!` failed: the case does not count, generate another.
        Reject,
        /// A `prop_assert*` failed: the property is violated.
        Fail(String),
    }

    impl TestCaseError {
        /// Assertion failure with `message`.
        pub fn fail(message: String) -> Self {
            Self::Fail(message)
        }

        /// Assumption failure.
        pub fn reject() -> Self {
            Self::Reject
        }

        /// Whether this is an assumption failure.
        pub fn is_reject(&self) -> bool {
            matches!(self, Self::Reject)
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                Self::Reject => write!(f, "case rejected by prop_assume!"),
                Self::Fail(message) => write!(f, "{message}"),
            }
        }
    }

    /// Runner configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of accepted cases to run per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        /// 256 cases, overridable via the `PROPTEST_CASES` environment
        /// variable (same convention as upstream proptest) so CI can pin
        /// suite runtime without touching test sources.
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .filter(|&n| n > 0)
                .unwrap_or(256);
            Self { cases }
        }
    }
}

pub mod strategy {
    //! Value-generation strategies and combinators.

    use crate::test_runner::TestRng;
    use rand::RngExt;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of type [`Strategy::Value`].
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Post-processes generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { base: self, f }
        }

        /// Derives a second strategy from each generated value.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { base: self, f }
        }

        /// Type-erases the strategy (used by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// Object-safe view of [`Strategy`].
    trait DynStrategy<T> {
        fn dyn_generate(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.dyn_generate(rng)
        }
    }

    /// Always generates a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Output of [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.base.generate(rng))
        }
    }

    /// Output of [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        base: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;

        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.base.generate(rng)).generate(rng)
        }
    }

    /// Uniform choice among type-erased alternatives (`prop_oneof!`).
    pub struct Union<T>(Vec<BoxedStrategy<T>>);

    impl<T> Union<T> {
        /// Uniform union over `options`.
        ///
        /// # Panics
        ///
        /// Panics when `options` is empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(
                !options.is_empty(),
                "prop_oneof! needs at least one alternative"
            );
            Self(options)
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let index = rng.random_range(0..self.0.len());
            self.0[index].generate(rng)
        }
    }

    macro_rules! numeric_range_strategy {
        ($($ty:ty),*) => {$(
            impl Strategy for Range<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    rng.random_range(self.clone())
                }
            }

            impl Strategy for RangeInclusive<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }

    numeric_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! tuple_strategy {
        ($(($($name:ident . $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
    }

    /// `Vec<S>` generates one value per element strategy, in order (used by
    /// `prop_flat_map` closures that build a list of strategies).
    impl<S: Strategy> Strategy for Vec<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            self.iter().map(|strategy| strategy.generate(rng)).collect()
        }
    }

    /// Printable characters used by the string strategy: ASCII printable plus
    /// a few multi-byte code points so UTF-8 handling gets exercised.
    const PRINTABLE_EXTRA: [char; 8] = ['é', 'ß', 'λ', '中', '→', '☂', 'Ω', 'ё'];

    /// String-literal strategies: a pragmatic subset of proptest's regex
    /// strings. `\PC{m,n}` (and any pattern ending in `{m,n}`) generates
    /// `m..=n` printable characters; any other literal generates `0..=32`.
    impl Strategy for &str {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            let (lo, hi) = parse_counted_suffix(self).unwrap_or((0, 32));
            let len = rng.random_range(lo..=hi);
            (0..len)
                .map(|_| {
                    // 1-in-8 draws take a non-ASCII printable character.
                    if rng.random_range(0..8u32) == 0 {
                        PRINTABLE_EXTRA[rng.random_range(0..PRINTABLE_EXTRA.len())]
                    } else {
                        char::from(rng.random_range(0x20u8..0x7F))
                    }
                })
                .collect()
        }
    }

    /// Parses a trailing `{m,n}` quantifier, e.g. `\PC{0,400}` → `(0, 400)`.
    fn parse_counted_suffix(pattern: &str) -> Option<(usize, usize)> {
        let body = pattern.strip_suffix('}')?;
        let (_, counts) = body.rsplit_once('{')?;
        let (lo, hi) = counts.split_once(',')?;
        Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use crate::test_runner::TestRng;

        #[test]
        fn counted_suffix_parses() {
            assert_eq!(parse_counted_suffix("\\PC{0,400}"), Some((0, 400)));
            assert_eq!(parse_counted_suffix("abc"), None);
        }

        #[test]
        fn string_strategy_respects_bounds() {
            let mut rng = TestRng::for_test("string_strategy_respects_bounds");
            for _ in 0..200 {
                let s = "\\PC{0,40}".generate(&mut rng);
                assert!(s.chars().count() <= 40);
                assert!(s.chars().all(|c| !c.is_control()));
            }
        }

        #[test]
        fn map_and_flat_map_compose() {
            let mut rng = TestRng::for_test("map_and_flat_map_compose");
            let strategy = (1usize..5)
                .prop_flat_map(|n| vec![0u32..10; n])
                .prop_map(|v| v.len());
            for _ in 0..50 {
                let len = strategy.generate(&mut rng);
                assert!((1..5).contains(&len));
            }
        }
    }
}

pub mod arbitrary {
    //! `any::<T>()` and the [`Arbitrary`] trait.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::RngCore;
    use std::marker::PhantomData;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! int_arbitrary {
        ($($ty:ty),*) => {$(
            impl Arbitrary for $ty {
                #[allow(clippy::cast_possible_truncation)]
                fn arbitrary(rng: &mut TestRng) -> $ty {
                    rng.next_u64() as $ty
                }
            }
        )*};
    }

    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy returned by [`any`].
    #[derive(Debug, Clone)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The full-range strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::RngExt;
    use std::collections::BTreeSet;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive size bounds for a generated collection.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            Self {
                lo: exact,
                hi: exact,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(range: Range<usize>) -> Self {
            assert!(range.start < range.end, "empty collection size range");
            Self {
                lo: range.start,
                hi: range.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(range: RangeInclusive<usize>) -> Self {
            assert!(range.start() <= range.end(), "empty collection size range");
            Self {
                lo: *range.start(),
                hi: *range.end(),
            }
        }
    }

    impl SizeRange {
        fn sample(&self, rng: &mut TestRng) -> usize {
            rng.random_range(self.lo..=self.hi)
        }
    }

    /// Strategy for `Vec<T>` with element strategy `S`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose length lies in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<T>` with element strategy `S`.
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates sets with up to `size` elements (duplicates drawn from
    /// `element` collapse, so the realized size may be smaller — never
    /// larger than the bound).
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.size.sample(rng);
            (0..target).map(|_| self.element.generate(rng)).collect()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use crate::test_runner::TestRng;

        #[test]
        fn vec_len_in_bounds() {
            let mut rng = TestRng::for_test("vec_len_in_bounds");
            let strategy = vec(0u32..5, 2..7);
            for _ in 0..100 {
                let v = strategy.generate(&mut rng);
                assert!((2..7).contains(&v.len()));
                assert!(v.iter().all(|&x| x < 5));
            }
        }

        #[test]
        fn btree_set_size_bounded() {
            let mut rng = TestRng::for_test("btree_set_size_bounded");
            let strategy = btree_set(0u32..12, 0..5);
            for _ in 0..100 {
                let s = strategy.generate(&mut rng);
                assert!(s.len() < 5);
            }
        }
    }
}

pub mod bool {
    //! Boolean strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::RngCore;

    /// The uniform boolean strategy (`prop::bool::ANY`).
    #[derive(Debug, Clone, Copy)]
    pub struct BoolAny;

    impl Strategy for BoolAny {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Uniform true/false.
    pub const ANY: BoolAny = BoolAny;
}

/// The `prop::` namespace used from the prelude (`prop::collection::vec`,
/// `prop::bool::ANY`, …).
pub mod prop {
    pub use crate::bool;
    pub use crate::collection;
    pub use crate::strategy;
}

pub mod prelude {
    //! The customary glob import.

    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_compose, prop_oneof,
        proptest,
    };
}

/// Declares property tests. Each `#[test] fn name(bindings in strategies)`
/// item becomes a zero-argument test running `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest! { @config($config) $($rest)* }
    };

    (@config($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat_param in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            #[allow(unused_imports)]
            use $crate::strategy::Strategy as _;
            let config: $crate::test_runner::ProptestConfig = $config;
            let strategy = ($($strategy,)+);
            let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            let mut accepted: u32 = 0;
            let mut rejected: u32 = 0;
            while accepted < config.cases {
                let ($($pat,)+) = $crate::strategy::Strategy::generate(&strategy, &mut rng);
                let outcome = (move || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                })();
                match outcome {
                    Ok(()) => accepted += 1,
                    Err(error) if error.is_reject() => {
                        rejected += 1;
                        assert!(
                            rejected < config.cases.saturating_mul(64).saturating_add(1024),
                            "too many prop_assume! rejections in {}",
                            stringify!($name),
                        );
                    }
                    Err(error) => panic!(
                        "property {} failed after {} passing case(s): {}",
                        stringify!($name),
                        accepted,
                        error,
                    ),
                }
            }
        }
    )*};

    ($($rest:tt)*) => {
        $crate::proptest! { @config(<$crate::test_runner::ProptestConfig as ::std::default::Default>::default()) $($rest)* }
    };
}

/// Defines a function returning a composed strategy:
/// `prop_compose! { fn name(args)(bindings in strategies) -> Type { body } }`.
#[macro_export]
macro_rules! prop_compose {
    (
        $(#[$meta:meta])*
        $vis:vis fn $name:ident($($outer:tt)*)(
            $($pat:pat_param in $strategy:expr),+ $(,)?
        ) -> $ret:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name($($outer)*) -> impl $crate::strategy::Strategy<Value = $ret> {
            $crate::strategy::Strategy::prop_map(($($strategy,)+), move |($($pat,)+)| $body)
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Like `assert!`, but fails the current generated case instead of panicking
/// directly (usable only inside `proptest!` bodies).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Like `assert_eq!` for `proptest!` bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right,
            )));
        }
    }};
}

/// Like `assert_ne!` for `proptest!` bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        if *left == *right {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                left,
            )));
        }
    }};
}

/// Skips the current generated case when `cond` does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject());
        }
    };
}
