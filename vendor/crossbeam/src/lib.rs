//! Offline subset of `crossbeam`.
//!
//! The threaded runtime only needs unbounded MPSC channels; this wraps
//! `std::sync::mpsc` behind the crossbeam channel API names so call sites
//! stay unchanged. The std channel is MPSC (receivers are not cloneable),
//! which matches every use in this workspace: one consumer per channel.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// MPSC channels with the `crossbeam-channel` API shape.
pub mod channel {
    use std::sync::mpsc;

    /// Error returned by [`Sender::send`] when the receiver is gone.
    pub type SendError<T> = mpsc::SendError<T>;
    /// Error returned by [`Receiver::recv`] when all senders are gone.
    pub type RecvError = mpsc::RecvError;

    /// Sending half; cloneable.
    #[derive(Debug)]
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Self(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Enqueues `value`; fails only when the receiver was dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value)
        }
    }

    /// Receiving half; single consumer.
    #[derive(Debug)]
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Blocks for the next value; fails when every sender was dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, mpsc::TryRecvError> {
            self.0.try_recv()
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_across_threads() {
            let (tx, rx) = unbounded::<u32>();
            let tx2 = tx.clone();
            let handle = std::thread::spawn(move || {
                tx2.send(41).unwrap();
                tx.send(1).unwrap();
            });
            assert_eq!(rx.recv().unwrap() + rx.recv().unwrap(), 42);
            handle.join().unwrap();
            assert!(rx.recv().is_err());
        }
    }
}
