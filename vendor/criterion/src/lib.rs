//! Offline mini benchmark harness with the `criterion` API surface this
//! workspace uses: `Criterion`, `benchmark_group`/`bench_function`/
//! `bench_with_input`, `BenchmarkId`, `Bencher::iter` and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! Differences from upstream: no statistical analysis or HTML reports — each
//! benchmark is timed over a fixed number of wall-clock samples and the mean,
//! minimum, and maximum per-iteration times are printed. Timings are real;
//! confidence intervals are not.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Measures a single benchmark body.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    samples: Vec<Duration>,
}

impl Bencher {
    fn new(iters: u64) -> Self {
        Self {
            iters,
            samples: Vec::new(),
        }
    }

    /// Times `body`, calling it repeatedly per sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        // One untimed warm-up call (fills caches, resolves lazy statics).
        std::hint::black_box(body());
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(body());
        }
        self.samples
            .push(start.elapsed() / u32::try_from(self.iters).unwrap_or(u32::MAX));
    }
}

/// Identifier combining a function name and a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function/parameter` id.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Parameter-only id.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(id: &str) -> Self {
        Self { id: id.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        Self { id }
    }
}

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_count: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_count: 10 }
    }
}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(None, &id.into().id, self.sample_count, body);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_count: 10,
        }
    }
}

/// A named set of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    _criterion: &'c mut Criterion,
    name: String,
    sample_count: u64,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_count = samples.max(1) as u64;
        self
    }

    /// Runs a benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(Some(&self.name), &id.into().id, self.sample_count, body);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut body: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(Some(&self.name), &id.into().id, self.sample_count, |b| {
            body(b, input)
        });
        self
    }

    /// Ends the group (upstream flushes reports here; this is a no-op).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(group: Option<&str>, id: &str, samples: u64, mut body: F) {
    let mut bencher = Bencher::new(1);
    for _ in 0..samples.max(1) {
        body(&mut bencher);
    }
    let full_id = match group {
        Some(group) => format!("{group}/{id}"),
        None => id.to_owned(),
    };
    if bencher.samples.is_empty() {
        println!("bench {full_id:<50} (no samples)");
        return;
    }
    let mean = bencher.samples.iter().sum::<Duration>() / bencher.samples.len() as u32;
    let min = bencher.samples.iter().min().copied().unwrap_or_default();
    let max = bencher.samples.iter().max().copied().unwrap_or_default();
    println!(
        "bench {full_id:<50} mean {mean:>12.3?}  min {min:>12.3?}  max {max:>12.3?}  ({} samples)",
        bencher.samples.len()
    );
}

/// Bundles benchmark functions into one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    ($name:ident; $($rest:tt)*) => {
        $crate::criterion_group!($name, $($rest)*);
    };
}

/// Entry point running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_body() {
        let mut counter = 0u64;
        Criterion::default().bench_function("counter", |b| b.iter(|| counter += 1));
        assert!(counter > 0);
    }

    #[test]
    fn group_runs_with_input() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("g");
        group.sample_size(3);
        let mut hits = 0u32;
        group.bench_with_input(BenchmarkId::new("f", 7), &7u32, |b, &x| {
            b.iter(|| x * 2);
            hits += 1;
        });
        group.finish();
        assert_eq!(hits, 3);
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("f", 10).id, "f/10");
        assert_eq!(BenchmarkId::from_parameter("3u_4t").id, "3u_4t");
    }
}
