//! No-op derive macros backing the offline `serde` stand-in.
//!
//! The derives accept (and ignore) `#[serde(...)]` attributes and emit no
//! code: the stand-in traits are markers with no items, and nothing in the
//! workspace serializes through serde.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` and emits nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` and emits nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
