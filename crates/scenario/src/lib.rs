//! # vcs-scenario — scenario construction
//!
//! Binds the substrates together: synthetic city ([`vcs_roadnet`]) →
//! synthetic traces and OD extraction ([`vcs_traces`]) → navigation route
//! recommendation → a playable [`vcs_core::Game`] with Table 2 parameters.
//!
//! The heavy substrate product is cached in a per-dataset [`UserPool`];
//! replicates are instantiated cheaply from it (see [`UserPool::instantiate`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod dataset;
pub mod geometry;
pub mod params;

pub use builder::{replicate_seed, PoolUser, ScenarioConfig, UserPool};
pub use dataset::Dataset;
pub use params::ScenarioParams;
