//! The three evaluation datasets and their synthetic analogues.

use serde::{Deserialize, Serialize};
use vcs_roadnet::{CityConfig, CityKind};
use vcs_traces::{CityProfile, TraceGenConfig};

/// The paper's three trace-based datasets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Dataset {
    /// Shanghai taxi traces [32]: dense downtown grid, 200 selected traces.
    Shanghai,
    /// Roma taxi traces [1]: radial historic centre, 150 selected traces.
    Roma,
    /// EPFL/San-Francisco cab traces [21]: peninsular corridor, 200 traces.
    Epfl,
}

impl Dataset {
    /// All three datasets, in the paper's presentation order.
    pub const ALL: [Dataset; 3] = [Dataset::Shanghai, Dataset::Roma, Dataset::Epfl];

    /// Human-readable name used in experiment output.
    pub fn name(self) -> &'static str {
        match self {
            Dataset::Shanghai => "Shanghai",
            Dataset::Roma => "Roma",
            Dataset::Epfl => "Epfl",
        }
    }

    /// The synthetic city standing in for this dataset's road network.
    pub fn city_config(self, seed: u64) -> CityConfig {
        match self {
            Dataset::Shanghai => CityConfig {
                kind: CityKind::Grid {
                    nx: 11,
                    ny: 11,
                    spacing: 1.0,
                },
                seed,
            },
            Dataset::Roma => CityConfig {
                kind: CityKind::Radial {
                    rings: 5,
                    spokes: 14,
                    ring_spacing: 0.9,
                },
                seed,
            },
            Dataset::Epfl => CityConfig {
                kind: CityKind::Irregular {
                    nx: 14,
                    ny: 7,
                    spacing: 1.0,
                    removal: 0.15,
                },
                seed,
            },
        }
    }

    /// The demand profile of the synthetic trace generator.
    pub fn trace_profile(self) -> CityProfile {
        match self {
            Dataset::Shanghai => CityProfile::Shanghai,
            Dataset::Roma => CityProfile::Roma,
            Dataset::Epfl => CityProfile::Epfl,
        }
    }

    /// Trace-generator configuration mirroring the paper's selection sizes.
    pub fn trace_config(self, seed: u64) -> TraceGenConfig {
        TraceGenConfig::paper_defaults(self.trace_profile(), seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_match_paper() {
        assert_eq!(Dataset::Shanghai.name(), "Shanghai");
        assert_eq!(Dataset::Roma.name(), "Roma");
        assert_eq!(Dataset::Epfl.name(), "Epfl");
    }

    #[test]
    fn trace_counts_match_paper() {
        assert_eq!(Dataset::Shanghai.trace_config(0).n_traces, 200);
        assert_eq!(Dataset::Roma.trace_config(0).n_traces, 150);
        assert_eq!(Dataset::Epfl.trace_config(0).n_traces, 200);
    }

    #[test]
    fn cities_generate_connected_networks() {
        for ds in Dataset::ALL {
            let g = ds.city_config(1).generate();
            assert!(g.is_strongly_connected(), "{} city disconnected", ds.name());
            assert!(g.node_count() >= 60, "{} city too small", ds.name());
        }
    }
}
