//! Scenario construction: from a dataset to a playable [`Game`] instance.
//!
//! The expensive substrate work — generating the city, synthesizing traces,
//! extracting OD pairs and computing alternative routes — is done **once per
//! dataset** in a [`UserPool`]. Individual replicates then *instantiate*
//! cheap game instances from the pool: sample users, place tasks, draw
//! preference weights, and test task-route coverage geometrically. This keeps
//! 500-replicate Monte-Carlo sweeps tractable while preserving the paper's
//! pipeline (traces → OD → navigation routes → game).

use crate::dataset::Dataset;
use crate::geometry::{point_polyline_distance, point_segment_distance};
use crate::params::ScenarioParams;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use vcs_core::ids::{RouteId, TaskId, UserId};
use vcs_core::{Game, PlatformParams, Route, Task, User, UserPrefs, UserSpec, WeightBounds};
use vcs_roadnet::{recommend_routes, RecommendConfig, RecommendedRoute, RoadGraph};
use vcs_traces::{extract_all_timed, generate_traces, OdPair};

/// A pool member: one trace-derived commuter with its recommended routes.
#[derive(Debug, Clone)]
pub struct PoolUser {
    /// The commuter's origin–destination pair.
    pub od: OdPair,
    /// Departure time of the underlying trace (seconds, trace clock) — the
    /// arrival timestamp an online stream admits this commuter at.
    pub depart: f64,
    /// Up to five recommended alternatives (shortest first), with geometry.
    pub routes: Vec<RecommendedRoute>,
    /// Cached polyline geometry of each route.
    pub geometries: Vec<Vec<(f64, f64)>>,
}

/// The reusable per-dataset substrate product.
#[derive(Debug, Clone)]
pub struct UserPool {
    /// The synthetic city road network.
    pub graph: RoadGraph,
    /// The dataset this pool models.
    pub dataset: Dataset,
    /// All usable commuters extracted from the synthetic traces.
    pub users: Vec<PoolUser>,
}

impl UserPool {
    /// Builds the pool: city → traces → OD pairs → route recommendations.
    ///
    /// Deterministic in `(dataset, seed)`. Commuters with fewer than one
    /// recommended route are dropped (unreachable destinations cannot occur
    /// in the strongly connected synthetic cities, but the guard stays).
    pub fn build(dataset: Dataset, seed: u64) -> Self {
        let graph = dataset.city_config(seed).generate();
        let traces = generate_traces(&graph, &dataset.trace_config(seed.wrapping_add(1)));
        let ods = extract_all_timed(&graph, &traces);
        let rec_cfg = RecommendConfig::default();
        let users = ods
            .into_iter()
            .filter_map(|timed| {
                let od = timed.od;
                let routes = recommend_routes(&graph, od.origin, od.destination, &rec_cfg);
                if routes.is_empty() {
                    return None;
                }
                let geometries = routes
                    .iter()
                    .map(|r| r.path.geometry(&graph, od.origin))
                    .collect();
                Some(PoolUser {
                    od,
                    depart: timed.depart,
                    routes,
                    geometries,
                })
            })
            .collect();
        Self {
            graph,
            dataset,
            users,
        }
    }

    /// Number of usable commuters.
    pub fn len(&self) -> usize {
        self.users.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.users.is_empty()
    }

    /// Instantiates a game replicate. See [`ScenarioConfig`].
    ///
    /// # Panics
    ///
    /// Panics if the pool holds fewer commuters than `config.n_users`.
    pub fn instantiate(&self, config: &ScenarioConfig) -> Game {
        assert!(
            config.n_users <= self.len(),
            "pool has {} commuters but {} users requested",
            self.len(),
            config.n_users
        );
        let params = &config.params;
        let mut rng = StdRng::seed_from_u64(config.seed);
        // ---- 1. Sample the commuters participating in this replicate.
        let mut indices: Vec<usize> = (0..self.len()).collect();
        // Partial Fisher–Yates: we only need the first n_users entries.
        for i in 0..config.n_users {
            let j = rng.random_range(i..indices.len());
            indices.swap(i, j);
        }
        indices.truncate(config.n_users);
        // ---- 2. Place the tasks along random street segments.
        let tasks: Vec<Task> = (0..config.n_tasks)
            .map(|k| {
                let edge = &self.graph.edges()[rng.random_range(0..self.graph.edge_count())];
                let a = self.graph.node(edge.from).pos;
                let b = self.graph.node(edge.to).pos;
                let t = rng.random_range(0.0..1.0);
                let pos = (a.0 + t * (b.0 - a.0), a.1 + t * (b.1 - a.1));
                let reward = rng.random_range(params.reward_range.0..=params.reward_range.1);
                let mu = rng.random_range(params.mu_range.0..=params.mu_range.1);
                Task::at(TaskId::from_index(k), reward, mu, pos)
            })
            .collect();
        // ---- 3. Build the users: route subsets, coverage, preferences.
        let users: Vec<User> = indices
            .iter()
            .enumerate()
            .map(|(ui, &pool_idx)| {
                let spec = user_spec(&self.users[pool_idx], &tasks, params, &mut rng);
                User::new(UserId::from_index(ui), spec.prefs, spec.routes)
            })
            .collect();
        let bounds = WeightBounds {
            e_min: params.weight_range.0 - 1e-9,
            e_max: params.weight_range.1 + 1e-9,
        };
        Game::new(
            tasks,
            users,
            PlatformParams::new(params.phi, params.theta),
            bounds,
        )
        .expect("scenario construction yields a valid game")
    }

    /// Samples one arriving commuter against an existing task deployment: a
    /// uniformly random pool member, instantiated with the same route-subset,
    /// coverage and preference rules as [`instantiate`](Self::instantiate).
    /// This is what an online `Join` event carries — the task set is fixed by
    /// the running game, only the user is new.
    ///
    /// # Panics
    ///
    /// Panics when the pool is empty or a task lacks a location.
    pub fn sample_arrival(
        &self,
        tasks: &[Task],
        params: &ScenarioParams,
        rng: &mut StdRng,
    ) -> UserSpec {
        assert!(
            !self.is_empty(),
            "cannot sample an arrival from an empty pool"
        );
        let pool_user = &self.users[rng.random_range(0..self.len())];
        user_spec(pool_user, tasks, params, rng)
    }

    /// Distance from a task location to the nearest point of the street
    /// network (diagnostic; should be ~0 for generated tasks).
    pub fn distance_to_network(&self, pos: (f64, f64)) -> f64 {
        self.graph
            .edges()
            .iter()
            .map(|e| {
                point_segment_distance(pos, self.graph.node(e.from).pos, self.graph.node(e.to).pos)
            })
            .fold(f64::INFINITY, f64::min)
    }
}

/// Builds one user's spec from a pool commuter: draws the route-set size
/// (Table 2: 1–5 routes), tests task coverage geometrically against the
/// given deployment, scales costs and samples preference weights. Shared by
/// [`UserPool::instantiate`] and [`UserPool::sample_arrival`]; the RNG draw
/// order (route count, then α, β, γ) is part of replicate determinism.
fn user_spec(
    pool_user: &PoolUser,
    tasks: &[Task],
    params: &ScenarioParams,
    rng: &mut StdRng,
) -> UserSpec {
    let available = pool_user.routes.len();
    let n_routes = rng.random_range(1..=params.max_routes.min(available).max(1));
    let routes: Vec<Route> = (0..n_routes)
        .map(|ri| {
            let rec = &pool_user.routes[ri];
            let geom = &pool_user.geometries[ri];
            let covered: Vec<TaskId> = tasks
                .iter()
                .filter(|task| {
                    let loc = task.location.expect("scenario tasks have locations");
                    point_polyline_distance(loc, geom) <= params.capture_radius
                })
                .map(|task| task.id)
                .collect();
            Route::new(
                RouteId::from_index(ri),
                covered,
                rec.detour * params.detour_scale,
                rec.congestion * params.congestion_scale,
            )
            .with_geometry(geom.clone())
        })
        .collect();
    let prefs = match params.fixed_prefs {
        Some((alpha, beta, gamma)) => UserPrefs::new(alpha, beta, gamma),
        None => {
            let (lo, hi) = params.weight_range;
            UserPrefs::new(
                rng.random_range(lo..=hi),
                rng.random_range(lo..=hi),
                rng.random_range(lo..=hi),
            )
        }
    };
    UserSpec::new(prefs, routes)
}

/// Configuration of a single game replicate drawn from a [`UserPool`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScenarioConfig {
    /// Number of participating users `|U|`.
    pub n_users: usize,
    /// Number of tasks `|L|`.
    pub n_tasks: usize,
    /// Replicate seed (controls sampling, placement and weights).
    pub seed: u64,
    /// Parameter ranges (Table 2 defaults).
    pub params: ScenarioParams,
}

/// Derives a replicate seed from a base seed, an experiment tag and a
/// replicate index (splitmix64 finalizer, so rayon-parallel replication is
/// order-independent).
pub fn replicate_seed(base: u64, experiment: u64, replicate: u64) -> u64 {
    let mut z = base
        .wrapping_add(experiment.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(replicate.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_pool() -> UserPool {
        UserPool::build(Dataset::Shanghai, 77)
    }

    #[test]
    fn pool_builds_usable_commuters() {
        let pool = small_pool();
        assert!(pool.len() >= 150, "pool too small: {}", pool.len());
        for u in &pool.users {
            assert!(!u.routes.is_empty() && u.routes.len() <= 5);
            assert_eq!(u.routes[0].detour, 0.0, "first route is the shortest");
        }
    }

    #[test]
    fn instantiate_produces_valid_game() {
        let pool = small_pool();
        let cfg = ScenarioConfig {
            n_users: 20,
            n_tasks: 40,
            seed: 5,
            params: ScenarioParams::default(),
        };
        let game = pool.instantiate(&cfg);
        assert_eq!(game.user_count(), 20);
        assert_eq!(game.task_count(), 40);
        for user in game.users() {
            assert!(!user.routes.is_empty() && user.routes.len() <= 5);
            let p = user.prefs;
            for w in [p.alpha, p.beta, p.gamma] {
                assert!((0.1..=0.9).contains(&w));
            }
        }
        for task in game.tasks() {
            assert!((10.0..=20.0).contains(&task.base_reward));
            assert!((0.0..=1.0).contains(&task.increment));
        }
    }

    #[test]
    fn instantiation_deterministic_per_seed() {
        let pool = small_pool();
        let cfg = ScenarioConfig {
            n_users: 10,
            n_tasks: 20,
            seed: 42,
            params: ScenarioParams::default(),
        };
        assert_eq!(pool.instantiate(&cfg), pool.instantiate(&cfg));
        let other = ScenarioConfig { seed: 43, ..cfg };
        assert_ne!(pool.instantiate(&cfg), pool.instantiate(&other));
    }

    #[test]
    fn routes_cover_nearby_tasks_only() {
        let pool = small_pool();
        let cfg = ScenarioConfig {
            n_users: 15,
            n_tasks: 50,
            seed: 3,
            params: ScenarioParams::default(),
        };
        let game = pool.instantiate(&cfg);
        for user in game.users() {
            for route in &user.routes {
                let geom = route
                    .geometry
                    .as_ref()
                    .expect("scenario routes carry geometry");
                for &tid in &route.tasks {
                    let loc = game.task(tid).location.unwrap();
                    let d = point_polyline_distance(loc, geom);
                    assert!(
                        d <= cfg.params.capture_radius + 1e-9,
                        "task {tid} at {d} km"
                    );
                }
            }
        }
    }

    #[test]
    fn some_tasks_get_covered() {
        let pool = small_pool();
        let cfg = ScenarioConfig {
            n_users: 30,
            n_tasks: 60,
            seed: 8,
            params: ScenarioParams::default(),
        };
        let game = pool.instantiate(&cfg);
        let covered: usize = game
            .users()
            .iter()
            .flat_map(|u| u.routes.iter())
            .map(|r| r.task_count())
            .sum();
        assert!(
            covered > 10,
            "routes cover almost no tasks ({covered} task slots)"
        );
    }

    #[test]
    fn fixed_prefs_applied_to_all_users() {
        let pool = small_pool();
        let params = ScenarioParams {
            fixed_prefs: Some((0.3, 0.7, 0.2)),
            ..ScenarioParams::default()
        };
        let cfg = ScenarioConfig {
            n_users: 5,
            n_tasks: 10,
            seed: 1,
            params,
        };
        let game = pool.instantiate(&cfg);
        for user in game.users() {
            assert_eq!(
                (user.prefs.alpha, user.prefs.beta, user.prefs.gamma),
                (0.3, 0.7, 0.2)
            );
        }
    }

    #[test]
    fn tasks_lie_on_the_network() {
        let pool = small_pool();
        let cfg = ScenarioConfig {
            n_users: 5,
            n_tasks: 30,
            seed: 2,
            params: ScenarioParams::default(),
        };
        let game = pool.instantiate(&cfg);
        for task in game.tasks() {
            let d = pool.distance_to_network(task.location.unwrap());
            assert!(d < 1e-6, "task off-network by {d} km");
        }
    }

    #[test]
    fn sampled_arrival_matches_instantiate_rules() {
        let pool = small_pool();
        let cfg = ScenarioConfig {
            n_users: 10,
            n_tasks: 30,
            seed: 13,
            params: ScenarioParams::default(),
        };
        let game = pool.instantiate(&cfg);
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..20 {
            let spec = pool.sample_arrival(game.tasks(), &cfg.params, &mut rng);
            assert!(!spec.routes.is_empty() && spec.routes.len() <= 5);
            for w in [spec.prefs.alpha, spec.prefs.beta, spec.prefs.gamma] {
                assert!((0.1..=0.9).contains(&w));
            }
            for route in &spec.routes {
                let geom = route
                    .geometry
                    .as_ref()
                    .expect("arrival routes keep geometry");
                for &tid in &route.tasks {
                    let loc = game.task(tid).location.unwrap();
                    assert!(point_polyline_distance(loc, geom) <= cfg.params.capture_radius + 1e-9);
                }
            }
        }
    }

    #[test]
    fn pool_departures_are_finite() {
        let pool = small_pool();
        assert!(pool.users.iter().all(|u| u.depart.is_finite()));
    }

    #[test]
    fn replicate_seed_spreads() {
        let a = replicate_seed(1, 2, 3);
        let b = replicate_seed(1, 2, 4);
        let c = replicate_seed(1, 3, 3);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }

    #[test]
    #[should_panic(expected = "commuters")]
    fn oversubscribed_pool_panics() {
        let pool = small_pool();
        let cfg = ScenarioConfig {
            n_users: pool.len() + 1,
            n_tasks: 5,
            seed: 0,
            params: ScenarioParams::default(),
        };
        let _ = pool.instantiate(&cfg);
    }
}
