//! Simulation parameters (Table 2 of the paper).

use serde::{Deserialize, Serialize};

/// Parameter ranges and knobs of a scenario, defaulting to Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScenarioParams {
    /// Range of the base task reward `a_k` (Table 2: 10–20).
    pub reward_range: (f64, f64),
    /// Range of the reward-increment weight `μ_k` (Table 2: 0–1).
    pub mu_range: (f64, f64),
    /// Range of the user weights `α_i, β_i, γ_i` (Table 2: 0.1–0.9).
    pub weight_range: (f64, f64),
    /// Platform detour weight `φ` (Table 2 range 0.1–0.8; default midpoint).
    pub phi: f64,
    /// Platform congestion weight `θ` (Table 2 range 0.1–0.8; default midpoint).
    pub theta: f64,
    /// Maximum recommended routes per user (Table 2: 1–5). Each user draws a
    /// route-set size uniformly from `1..=max_routes`.
    pub max_routes: usize,
    /// Capture radius in km: a route covers a task whose location lies within
    /// this distance of the route polyline.
    pub capture_radius: f64,
    /// Unit scale applied to the raw detour distance (km) when building the
    /// game's `h(r)`. Calibrated so the Table 2 platform/user weights produce
    /// route costs of the same magnitude as one task's reward share — the
    /// regime the paper's Fig. 12 operates in (detour levels ≈ 8–13).
    pub detour_scale: f64,
    /// Unit scale applied to the raw mean congestion factor (`[0, 1]`) when
    /// building the game's `c(r)`; same calibration rationale (congestion
    /// levels ≈ 8–13 in Fig. 12).
    pub congestion_scale: f64,
    /// Fixed preference override: when set, every user gets exactly these
    /// `(α, β, γ)` instead of sampled ones (used by Table 5 for one user).
    pub fixed_prefs: Option<(f64, f64, f64)>,
}

impl Default for ScenarioParams {
    fn default() -> Self {
        Self {
            reward_range: (10.0, 20.0),
            mu_range: (0.0, 1.0),
            weight_range: (0.1, 0.9),
            phi: 0.45,
            theta: 0.45,
            max_routes: 5,
            capture_radius: 0.2,
            detour_scale: 4.0,
            congestion_scale: 25.0,
            fixed_prefs: None,
        }
    }
}

impl ScenarioParams {
    /// Table 2 defaults with explicit platform weights.
    pub fn with_platform(phi: f64, theta: f64) -> Self {
        Self {
            phi,
            theta,
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table2() {
        let p = ScenarioParams::default();
        assert_eq!(p.reward_range, (10.0, 20.0));
        assert_eq!(p.mu_range, (0.0, 1.0));
        assert_eq!(p.weight_range, (0.1, 0.9));
        assert_eq!(p.max_routes, 5);
        assert!(p.phi > 0.0 && p.phi < 1.0);
    }

    #[test]
    fn with_platform_overrides_weights() {
        let p = ScenarioParams::with_platform(0.2, 0.7);
        assert_eq!((p.phi, p.theta), (0.2, 0.7));
        assert_eq!(p.max_routes, 5);
    }
}
