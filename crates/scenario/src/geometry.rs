//! Small planar-geometry helpers for task-route coverage tests.

/// Squared Euclidean distance between two points.
#[inline]
pub fn dist2(a: (f64, f64), b: (f64, f64)) -> f64 {
    (a.0 - b.0).powi(2) + (a.1 - b.1).powi(2)
}

/// Distance from point `p` to the segment `a`–`b`.
pub fn point_segment_distance(p: (f64, f64), a: (f64, f64), b: (f64, f64)) -> f64 {
    let ab = (b.0 - a.0, b.1 - a.1);
    let ap = (p.0 - a.0, p.1 - a.1);
    let len2 = ab.0 * ab.0 + ab.1 * ab.1;
    if len2 <= f64::EPSILON {
        return dist2(p, a).sqrt();
    }
    let t = ((ap.0 * ab.0 + ap.1 * ab.1) / len2).clamp(0.0, 1.0);
    let proj = (a.0 + t * ab.0, a.1 + t * ab.1);
    dist2(p, proj).sqrt()
}

/// Distance from point `p` to a polyline; `f64::INFINITY` for polylines with
/// fewer than two vertices.
pub fn point_polyline_distance(p: (f64, f64), polyline: &[(f64, f64)]) -> f64 {
    polyline
        .windows(2)
        .map(|w| point_segment_distance(p, w[0], w[1]))
        .fold(f64::INFINITY, f64::min)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segment_distance_interior_projection() {
        let d = point_segment_distance((1.0, 1.0), (0.0, 0.0), (2.0, 0.0));
        assert!((d - 1.0).abs() < 1e-12);
    }

    #[test]
    fn segment_distance_clamps_to_endpoints() {
        let d = point_segment_distance((-3.0, 4.0), (0.0, 0.0), (2.0, 0.0));
        assert!((d - 5.0).abs() < 1e-12);
        let d2 = point_segment_distance((5.0, 4.0), (0.0, 0.0), (2.0, 0.0));
        assert!((d2 - 5.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_segment_is_point_distance() {
        let d = point_segment_distance((3.0, 4.0), (0.0, 0.0), (0.0, 0.0));
        assert!((d - 5.0).abs() < 1e-12);
    }

    #[test]
    fn polyline_takes_minimum() {
        let poly = [(0.0, 0.0), (2.0, 0.0), (2.0, 2.0)];
        let d = point_polyline_distance((2.5, 1.0), &poly);
        assert!((d - 0.5).abs() < 1e-12);
        assert_eq!(
            point_polyline_distance((0.0, 0.0), &[(1.0, 1.0)]),
            f64::INFINITY
        );
    }
}
