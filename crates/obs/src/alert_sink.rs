//! Alert push routing: deliver each latched [`Alert`] to an operator-facing
//! sink the moment it fires.
//!
//! The [`WatchdogSubscriber`] latches violations and serves them *on pull*
//! (`alerts()`, the exporter's `/alerts` endpoint) — fine for a test
//! harness, useless for a soak run nobody is polling. An [`AlertSink`]
//! attached via [`WatchdogSubscriber::with_sink`] turns every raise into a
//! push: the alert is delivered **exactly once**, at the instant it latches
//! (first violation per epoch for the latched kinds), to one of
//!
//! * **stderr** — one JSON line per alert, prefixed `vcs-watchdog:`;
//! * **a file** — append-only JSONL, fsync-free (alerts are rare and the
//!   line write is atomic at these sizes);
//! * **an HTTP endpoint** — `POST` with a JSON body, fire-and-forget over a
//!   fresh connection with short timeouts so a dead webhook cannot stall
//!   the driver thread that raised the alert.
//!
//! Exactly-once is structural, not best-effort bookkeeping: the watchdog's
//! `raise` path is the only producer of alerts and each latched alert passes
//! through it once, so the sink sees each alert once per run. Sinks count
//! deliveries ([`AlertSink::delivered`]) so tests and runtimes can assert
//! that property end to end.
//!
//! [`WatchdogSubscriber`]: crate::WatchdogSubscriber
//! [`WatchdogSubscriber::with_sink`]: crate::WatchdogSubscriber::with_sink

use crate::watchdog::Alert;
use parking_lot::Mutex;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::net::{TcpStream, ToSocketAddrs};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A push destination for watchdog alerts. Implementations must tolerate
/// being called from whatever thread drives the event stream and must not
/// panic on I/O failure — a broken sink loses the push, never the run.
pub trait AlertSink: Send + Sync + fmt::Debug {
    /// Pushes one alert. Called exactly once per latched alert.
    fn deliver(&self, alert: &Alert);

    /// Number of alerts successfully delivered so far.
    fn delivered(&self) -> u64;
}

/// Stderr sink: one `vcs-watchdog: {...}` JSON line per alert.
#[derive(Debug, Default)]
pub struct StderrAlertSink {
    delivered: AtomicU64,
}

impl StderrAlertSink {
    /// A fresh stderr sink.
    pub fn new() -> Self {
        Self::default()
    }
}

impl AlertSink for StderrAlertSink {
    fn deliver(&self, alert: &Alert) {
        eprintln!("vcs-watchdog: {}", alert.to_json());
        self.delivered.fetch_add(1, Ordering::Relaxed);
    }

    fn delivered(&self) -> u64 {
        self.delivered.load(Ordering::Relaxed)
    }
}

/// Append-only JSONL file sink.
#[derive(Debug)]
pub struct FileAlertSink {
    file: Mutex<File>,
    delivered: AtomicU64,
}

impl FileAlertSink {
    /// Creates (or appends to) the alert log at `path`.
    pub fn create(path: &Path) -> std::io::Result<Self> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(FileAlertSink {
            file: Mutex::new(file),
            delivered: AtomicU64::new(0),
        })
    }
}

impl AlertSink for FileAlertSink {
    fn deliver(&self, alert: &Alert) {
        let mut file = self.file.lock();
        let line = alert.to_json() + "\n";
        if file.write_all(line.as_bytes()).is_ok() {
            let _ = file.flush();
            self.delivered.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn delivered(&self) -> u64 {
        self.delivered.load(Ordering::Relaxed)
    }
}

/// Timeout for webhook connect/write: long enough for a LAN collector,
/// short enough that a dead webhook cannot make the watchdog's raise path
/// (which runs on the event-driving thread) hang noticeably.
const HTTP_TIMEOUT: Duration = Duration::from_millis(500);

/// Fire-and-forget HTTP `POST` webhook sink (dependency-free, same
/// hand-rolled HTTP/1.1 as the `/metrics` exporter). The response is not
/// read: delivery counts once the request bytes are written.
#[derive(Debug)]
pub struct HttpAlertSink {
    addr: String,
    path: String,
    delivered: AtomicU64,
    failed: AtomicU64,
}

impl HttpAlertSink {
    /// A webhook sink posting to `http://{addr}{path}` (`addr` is
    /// `host:port`, `path` starts with `/`).
    pub fn new(addr: impl Into<String>, path: impl Into<String>) -> Self {
        HttpAlertSink {
            addr: addr.into(),
            path: path.into(),
            delivered: AtomicU64::new(0),
            failed: AtomicU64::new(0),
        }
    }

    /// Number of pushes that failed (connect/write error or timeout).
    pub fn failed(&self) -> u64 {
        self.failed.load(Ordering::Relaxed)
    }

    fn post(&self, body: &str) -> std::io::Result<()> {
        let addr = self
            .addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| std::io::Error::other("webhook address resolves to nothing"))?;
        let mut stream = TcpStream::connect_timeout(&addr, HTTP_TIMEOUT)?;
        stream.set_write_timeout(Some(HTTP_TIMEOUT))?;
        let request = format!(
            "POST {} HTTP/1.1\r\nHost: {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
            self.path,
            self.addr,
            body.len(),
            body
        );
        stream.write_all(request.as_bytes())
    }
}

impl AlertSink for HttpAlertSink {
    fn deliver(&self, alert: &Alert) {
        match self.post(&alert.to_json()) {
            Ok(()) => self.delivered.fetch_add(1, Ordering::Relaxed),
            Err(_) => self.failed.fetch_add(1, Ordering::Relaxed),
        };
    }

    fn delivered(&self) -> u64 {
        self.delivered.load(Ordering::Relaxed)
    }
}

/// A parsed sink specification, as taken on a command line:
/// `stderr`, `file:<path>`, or `http://host:port[/path]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AlertRoute {
    /// Route alerts to stderr.
    Stderr,
    /// Append alerts to a JSONL file.
    File(PathBuf),
    /// POST alerts to a webhook.
    Http {
        /// `host:port` of the collector.
        addr: String,
        /// Request path (starts with `/`).
        path: String,
    },
}

impl AlertRoute {
    /// Parses a sink spec. Accepted forms: `stderr`, `file:<path>`,
    /// `http://host:port[/path]`.
    pub fn parse(spec: &str) -> Result<Self, String> {
        if spec == "stderr" {
            return Ok(AlertRoute::Stderr);
        }
        if let Some(path) = spec.strip_prefix("file:") {
            if path.is_empty() {
                return Err("file: route needs a path".into());
            }
            return Ok(AlertRoute::File(PathBuf::from(path)));
        }
        if let Some(rest) = spec.strip_prefix("http://") {
            let (addr, path) = match rest.find('/') {
                Some(at) => (&rest[..at], &rest[at..]),
                None => (rest, "/"),
            };
            if addr.is_empty() {
                return Err("http:// route needs host:port".into());
            }
            return Ok(AlertRoute::Http {
                addr: addr.to_string(),
                path: path.to_string(),
            });
        }
        Err(format!(
            "unknown alert route `{spec}` (use stderr, file:<path> or http://host:port[/path])"
        ))
    }

    /// Opens the sink this route describes.
    pub fn open(&self) -> std::io::Result<Arc<dyn AlertSink>> {
        Ok(match self {
            AlertRoute::Stderr => Arc::new(StderrAlertSink::new()),
            AlertRoute::File(path) => Arc::new(FileAlertSink::create(path)?),
            AlertRoute::Http { addr, path } => Arc::new(HttpAlertSink::new(addr, path)),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::watchdog::AlertKind;

    fn alert(kind: AlertKind) -> Alert {
        Alert {
            kind,
            epoch: 2,
            slot: 17,
            detail: "test detail".into(),
        }
    }

    #[test]
    fn parse_accepts_the_three_route_forms() {
        assert_eq!(AlertRoute::parse("stderr"), Ok(AlertRoute::Stderr));
        assert_eq!(
            AlertRoute::parse("file:/tmp/alerts.jsonl"),
            Ok(AlertRoute::File(PathBuf::from("/tmp/alerts.jsonl")))
        );
        assert_eq!(
            AlertRoute::parse("http://127.0.0.1:9999/hook"),
            Ok(AlertRoute::Http {
                addr: "127.0.0.1:9999".into(),
                path: "/hook".into(),
            })
        );
        assert_eq!(
            AlertRoute::parse("http://collector:80"),
            Ok(AlertRoute::Http {
                addr: "collector:80".into(),
                path: "/".into(),
            })
        );
        assert!(AlertRoute::parse("smtp://nope").is_err());
        assert!(AlertRoute::parse("file:").is_err());
    }

    #[test]
    fn file_sink_appends_one_json_line_per_alert() {
        let dir = std::env::temp_dir().join("vcs_alert_sink_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("alerts.jsonl");
        let _ = std::fs::remove_file(&path);
        let sink = FileAlertSink::create(&path).unwrap();
        sink.deliver(&alert(AlertKind::PhiDecrease));
        sink.deliver(&alert(AlertKind::StaleLivelock));
        assert_eq!(sink.delivered(), 2);
        let body = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = body.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"kind\":\"phi_decrease\""));
        assert!(lines[1].contains("\"kind\":\"stale_livelock\""));
        assert!(lines[0].contains("\"epoch\":2"));
    }

    #[test]
    fn http_sink_posts_the_alert_body() {
        use std::io::Read as _;
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let mut buf = Vec::new();
            stream
                .set_read_timeout(Some(Duration::from_secs(2)))
                .unwrap();
            let _ = stream.read_to_end(&mut buf);
            String::from_utf8_lossy(&buf).into_owned()
        });
        let sink = HttpAlertSink::new(addr.to_string(), "/hook");
        sink.deliver(&alert(AlertKind::SlotBudgetOverrun));
        let request = server.join().unwrap();
        assert!(request.starts_with("POST /hook HTTP/1.1\r\n"));
        assert!(request.contains("Content-Type: application/json"));
        assert!(request.ends_with("\"detail\":\"test detail\"}"));
        assert_eq!(sink.delivered(), 1);
        assert_eq!(sink.failed(), 0);
    }

    #[test]
    fn http_sink_counts_failures_without_panicking() {
        // A port nothing listens on: connect is refused immediately.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        drop(listener);
        let sink = HttpAlertSink::new(addr.to_string(), "/hook");
        sink.deliver(&alert(AlertKind::PhiDecrease));
        assert_eq!(sink.delivered(), 0);
        assert_eq!(sink.failed(), 1);
    }
}
