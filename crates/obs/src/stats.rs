//! Atomic counters and log-bucketed histograms with a Prometheus-style
//! text dump.

use crate::event::{Event, ResponseKind};
use crate::subscriber::Subscriber;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};

/// A fixed-bucket histogram safe to record into from many threads.
///
/// Buckets are cumulative-upper-bound style (Prometheus `le` semantics):
/// `bounds[j]` holds observations `v ≤ bounds[j]` not captured by an
/// earlier bucket, plus one implicit `+Inf` bucket. The sum is kept as
/// f64 bits behind a compare-exchange loop — no locks, no unsafe.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<f64>,
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum_bits: AtomicU64,
}

impl Histogram {
    /// A histogram with the given ascending upper bounds (an implicit
    /// `+Inf` bucket is appended).
    pub fn new(bounds: &[f64]) -> Self {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]), "ascending bounds");
        Self {
            bounds: bounds.to_vec(),
            buckets: (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
        }
    }

    /// Records one observation.
    pub fn record(&self, value: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let mut current = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + value).to_bits();
            match self.sum_bits.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => current = actual,
            }
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// Renders the histogram in Prometheus text exposition format.
    fn render(&self, name: &str, out: &mut String) {
        let _ = writeln!(out, "# TYPE {name} histogram");
        let mut cumulative = 0u64;
        for (j, &bound) in self.bounds.iter().enumerate() {
            cumulative += self.buckets[j].load(Ordering::Relaxed);
            let _ = writeln!(out, "{name}_bucket{{le=\"{bound:?}\"}} {cumulative}");
        }
        cumulative += self.buckets[self.bounds.len()].load(Ordering::Relaxed);
        let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cumulative}");
        let _ = writeln!(out, "{name}_sum {:?}", self.sum());
        let _ = writeln!(out, "{name}_count {}", self.count());
    }
}

macro_rules! counters {
    ($($(#[$doc:meta])* $field:ident),* $(,)?) => {
        /// Lifetime counters of the stats subscriber (all relaxed atomics).
        #[derive(Debug, Default)]
        struct Counters {
            $($(#[$doc])* $field: AtomicU64,)*
        }

        impl Counters {
            fn render(&self, out: &mut String) {
                $(
                    let _ = writeln!(out, "# TYPE vcs_{}_total counter", stringify!($field));
                    let _ = writeln!(
                        out,
                        "vcs_{}_total {}",
                        stringify!($field),
                        self.$field.load(Ordering::Relaxed)
                    );
                )*
            }
        }
    };
}

counters! {
    slots,
    moves,
    joins,
    leaves,
    best_responses,
    better_responses,
    improving_responses,
    frames_sent,
    frames_received,
    frames_dropped,
    bytes_sent,
    bytes_received,
    retransmissions,
    epochs_started,
    epochs_converged,
    runs_completed,
}

/// Aggregating subscriber: counts every event class and buckets ϕ-move
/// magnitudes, frame sizes and per-epoch re-convergence slot counts.
///
/// All updates are relaxed atomics (plus a CAS loop for the float sums), so
/// it is cheap enough to leave attached to a threaded run. Snapshot with
/// the typed accessors or dump everything with
/// [`prometheus_text`](StatsSubscriber::prometheus_text).
#[derive(Debug)]
pub struct StatsSubscriber {
    counters: Counters,
    /// `|Δϕ|` magnitudes of committed moves, decade buckets.
    phi_delta: Histogram,
    /// Sent/received frame sizes in bytes.
    frame_bytes: Histogram,
    /// Warm re-convergence slots per churn epoch.
    epoch_slots: Histogram,
}

impl Default for StatsSubscriber {
    fn default() -> Self {
        Self::new()
    }
}

impl StatsSubscriber {
    /// A fresh all-zero subscriber.
    pub fn new() -> Self {
        Self {
            counters: Counters::default(),
            phi_delta: Histogram::new(&[1e-9, 1e-7, 1e-5, 1e-3, 1e-1, 1e1, 1e3]),
            frame_bytes: Histogram::new(&[16.0, 64.0, 256.0, 1024.0, 4096.0, 16384.0]),
            epoch_slots: Histogram::new(&[1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0]),
        }
    }

    /// Decision slots completed.
    pub fn slots(&self) -> u64 {
        self.counters.slots.load(Ordering::Relaxed)
    }

    /// Route switches committed.
    pub fn moves(&self) -> u64 {
        self.counters.moves.load(Ordering::Relaxed)
    }

    /// Best-response evaluations.
    pub fn best_responses(&self) -> u64 {
        self.counters.best_responses.load(Ordering::Relaxed)
    }

    /// Better-response evaluations.
    pub fn better_responses(&self) -> u64 {
        self.counters.better_responses.load(Ordering::Relaxed)
    }

    /// Evaluations that found a strictly improving route.
    pub fn improving_responses(&self) -> u64 {
        self.counters.improving_responses.load(Ordering::Relaxed)
    }

    /// Frames sent / received / dropped.
    pub fn frames(&self) -> (u64, u64, u64) {
        (
            self.counters.frames_sent.load(Ordering::Relaxed),
            self.counters.frames_received.load(Ordering::Relaxed),
            self.counters.frames_dropped.load(Ordering::Relaxed),
        )
    }

    /// ARQ retransmissions.
    pub fn retransmissions(&self) -> u64 {
        self.counters.retransmissions.load(Ordering::Relaxed)
    }

    /// Churn epochs started / converged.
    pub fn epochs(&self) -> (u64, u64) {
        (
            self.counters.epochs_started.load(Ordering::Relaxed),
            self.counters.epochs_converged.load(Ordering::Relaxed),
        )
    }

    /// Users joined / left under observation.
    pub fn churn(&self) -> (u64, u64) {
        (
            self.counters.joins.load(Ordering::Relaxed),
            self.counters.leaves.load(Ordering::Relaxed),
        )
    }

    /// The `|Δϕ|` histogram of committed moves.
    pub fn phi_delta_histogram(&self) -> &Histogram {
        &self.phi_delta
    }

    /// The per-epoch warm re-convergence slot histogram.
    pub fn epoch_slots_histogram(&self) -> &Histogram {
        &self.epoch_slots
    }

    /// Dumps every counter and histogram in Prometheus text exposition
    /// format (`vcs_*_total` counters, `vcs_*` histograms).
    pub fn prometheus_text(&self) -> String {
        let mut out = String::new();
        self.counters.render(&mut out);
        self.phi_delta.render("vcs_phi_delta_abs", &mut out);
        self.frame_bytes.render("vcs_frame_bytes", &mut out);
        self.epoch_slots.render("vcs_epoch_slots", &mut out);
        out
    }
}

impl Subscriber for StatsSubscriber {
    fn event(&self, event: &Event) {
        let c = &self.counters;
        match *event {
            Event::EngineInit { .. } => {}
            Event::MoveCommitted { phi_delta, .. } => {
                c.moves.fetch_add(1, Ordering::Relaxed);
                self.phi_delta.record(phi_delta.abs());
            }
            Event::UserJoined { .. } => {
                c.joins.fetch_add(1, Ordering::Relaxed);
            }
            Event::UserLeft { .. } => {
                c.leaves.fetch_add(1, Ordering::Relaxed);
            }
            Event::ResponseEvaluated {
                kind, improving, ..
            } => {
                match kind {
                    ResponseKind::Best => c.best_responses.fetch_add(1, Ordering::Relaxed),
                    ResponseKind::Better => c.better_responses.fetch_add(1, Ordering::Relaxed),
                };
                if improving {
                    c.improving_responses.fetch_add(1, Ordering::Relaxed);
                }
            }
            Event::SlotCompleted { .. } => {
                c.slots.fetch_add(1, Ordering::Relaxed);
            }
            Event::FrameSent { bytes } => {
                c.frames_sent.fetch_add(1, Ordering::Relaxed);
                c.bytes_sent.fetch_add(u64::from(bytes), Ordering::Relaxed);
                self.frame_bytes.record(f64::from(bytes));
            }
            Event::FrameReceived { bytes } => {
                c.frames_received.fetch_add(1, Ordering::Relaxed);
                c.bytes_received
                    .fetch_add(u64::from(bytes), Ordering::Relaxed);
                self.frame_bytes.record(f64::from(bytes));
            }
            Event::FrameDropped { .. } => {
                c.frames_dropped.fetch_add(1, Ordering::Relaxed);
            }
            Event::Retransmission { .. } => {
                c.retransmissions.fetch_add(1, Ordering::Relaxed);
            }
            Event::EpochStarted { .. } => {
                c.epochs_started.fetch_add(1, Ordering::Relaxed);
            }
            Event::EpochConverged {
                slots, converged, ..
            } => {
                if converged {
                    c.epochs_converged.fetch_add(1, Ordering::Relaxed);
                }
                self.epoch_slots.record(slots as f64);
            }
            Event::RunCompleted { .. } => {
                c.runs_completed.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_sum() {
        let h = Histogram::new(&[1.0, 10.0]);
        h.record(0.5);
        h.record(5.0);
        h.record(50.0);
        assert_eq!(h.count(), 3);
        assert!((h.sum() - 55.5).abs() < 1e-12);
        let mut out = String::new();
        h.render("t", &mut out);
        assert!(out.contains("t_bucket{le=\"1.0\"} 1"));
        assert!(out.contains("t_bucket{le=\"10.0\"} 2"));
        assert!(out.contains("t_bucket{le=\"+Inf\"} 3"));
        assert!(out.contains("t_count 3"));
    }

    #[test]
    fn stats_counts_by_event_class() {
        let stats = StatsSubscriber::new();
        stats.event(&Event::SlotCompleted {
            slot: 1,
            updated: 2,
            phi: 0.0,
            total_profit: 0.0,
        });
        stats.event(&Event::MoveCommitted {
            user: 0,
            from_route: 0,
            to_route: 1,
            phi_delta: -0.25,
            profit_delta: -0.125,
            phi: 1.0,
            total_profit: 2.0,
        });
        stats.event(&Event::ResponseEvaluated {
            user: 0,
            kind: ResponseKind::Best,
            improving: true,
        });
        stats.event(&Event::ResponseEvaluated {
            user: 1,
            kind: ResponseKind::Better,
            improving: false,
        });
        stats.event(&Event::FrameSent { bytes: 100 });
        stats.event(&Event::FrameReceived { bytes: 100 });
        stats.event(&Event::FrameDropped { bytes: 100 });
        stats.event(&Event::Retransmission { attempt: 1 });
        stats.event(&Event::EpochStarted {
            epoch: 0,
            joins: 1,
            leaves: 0,
            active: 5,
        });
        stats.event(&Event::EpochConverged {
            epoch: 0,
            slots: 3,
            converged: true,
            phi: 1.0,
        });
        assert_eq!(stats.slots(), 1);
        assert_eq!(stats.moves(), 1);
        assert_eq!(stats.best_responses(), 1);
        assert_eq!(stats.better_responses(), 1);
        assert_eq!(stats.improving_responses(), 1);
        assert_eq!(stats.frames(), (1, 1, 1));
        assert_eq!(stats.retransmissions(), 1);
        assert_eq!(stats.epochs(), (1, 1));
        assert_eq!(stats.phi_delta_histogram().count(), 1);
        let text = stats.prometheus_text();
        assert!(text.contains("vcs_slots_total 1"));
        assert!(text.contains("vcs_bytes_sent_total 100"));
        assert!(text.contains("# TYPE vcs_phi_delta_abs histogram"));
    }
}
