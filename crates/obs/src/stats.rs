//! Atomic counters, log-bucketed histograms and span-latency tracking with
//! a Prometheus text-exposition dump, plus the exposition validator the
//! test suites and the `/metrics` exporter share.

use crate::event::{Event, ResponseKind};
use crate::span::SpanKind;
use crate::subscriber::Subscriber;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};

/// A fixed-bucket histogram safe to record into from many threads.
///
/// Buckets are cumulative-upper-bound style (Prometheus `le` semantics):
/// `bounds[j]` holds observations `v ≤ bounds[j]` not captured by an
/// earlier bucket, plus one implicit `+Inf` bucket. The sum is kept as
/// f64 bits behind a compare-exchange loop — no locks, no unsafe.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<f64>,
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum_bits: AtomicU64,
}

impl Histogram {
    /// A histogram with the given ascending upper bounds (an implicit
    /// `+Inf` bucket is appended).
    pub fn new(bounds: &[f64]) -> Self {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]), "ascending bounds");
        Self {
            bounds: bounds.to_vec(),
            buckets: (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
        }
    }

    /// Records one observation.
    pub fn record(&self, value: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let mut current = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + value).to_bits();
            match self.sum_bits.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => current = actual,
            }
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// Renders the histogram in Prometheus text exposition format.
    ///
    /// The spec requires the `+Inf` bucket and the `_count`/`_sum` series
    /// exactly once per family, with `+Inf` equal to `_count`. Both are
    /// therefore derived from **one snapshot** of the per-bucket cells: the
    /// separately maintained `count` atomic may transiently disagree with
    /// the bucket cells while another thread is mid-[`record`](Self::record)
    /// (bucket incremented, count not yet), and emitting it verbatim used
    /// to produce expositions where `+Inf ≠ _count` — which Prometheus
    /// rejects as an inconsistent histogram.
    fn render(&self, name: &str, out: &mut String) {
        let _ = writeln!(out, "# TYPE {name} histogram");
        let cells: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let mut cumulative = 0u64;
        for (j, &bound) in self.bounds.iter().enumerate() {
            cumulative += cells[j];
            let _ = writeln!(out, "{name}_bucket{{le=\"{bound:?}\"}} {cumulative}");
        }
        cumulative += cells[self.bounds.len()];
        let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cumulative}");
        let _ = writeln!(out, "{name}_sum {:?}", self.sum());
        let _ = writeln!(out, "{name}_count {cumulative}");
    }
}

/// Upper bounds of the span-latency buckets, integer nanoseconds (log
/// decades 10 ns … 10 s, plus the implicit `+Inf`).
pub(crate) const SPAN_BOUNDS_NANOS: [u64; 10] = [
    10,
    100,
    1_000,
    10_000,
    100_000,
    1_000_000,
    10_000_000,
    100_000_000,
    1_000_000_000,
    10_000_000_000,
];

/// The same bounds in seconds, pre-formatted for `le` labels (`{:?}` on
/// these exact constants keeps the exposition byte-stable).
pub(crate) const SPAN_BOUNDS_SECONDS: [f64; 10] =
    [1e-8, 1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0];

/// Cells of one span histogram: one per bound plus the `+Inf` cell. This is
/// the wire width of a telemetry span row and the table width of the fleet
/// registry's rollups.
pub(crate) const SPAN_BUCKETS: usize = SPAN_BOUNDS_NANOS.len() + 1;

/// Renders raw span-bucket cells (non-cumulative, `SPAN_BUCKETS` wide) plus
/// a nanosecond sum as one Prometheus histogram family — the shared
/// renderer of [`SpanHistogram`] and the fleet registry's cross-shard
/// rollups (which sum cells from many telemetry frames first).
pub(crate) fn render_span_cells(name: &str, cells: &[u64], sum_nanos: u64, out: &mut String) {
    debug_assert_eq!(cells.len(), SPAN_BUCKETS);
    let _ = writeln!(out, "# TYPE {name} histogram");
    let mut cumulative = 0u64;
    for (j, &bound) in SPAN_BOUNDS_SECONDS.iter().enumerate() {
        cumulative += cells[j];
        let _ = writeln!(out, "{name}_bucket{{le=\"{bound:?}\"}} {cumulative}");
    }
    cumulative += cells[SPAN_BOUNDS_NANOS.len()];
    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cumulative}");
    let _ = writeln!(out, "{name}_sum {:?}", sum_nanos as f64 * 1e-9);
    let _ = writeln!(out, "{name}_count {cumulative}");
}

/// Nearest-rank quantile (`0 < q ≤ 1`) over raw span-bucket cells,
/// nanoseconds. The rank's bucket is resolved exactly; within the decade
/// bucket the value is geometrically interpolated (the bounds are log
/// spaced, so a log-linear interpolation is the unbiased choice). The
/// `+Inf` cell reports one decade above the last finite bound. Returns 0
/// for empty cells.
pub(crate) fn span_cells_quantile(cells: &[u64], q: f64) -> u64 {
    debug_assert_eq!(cells.len(), SPAN_BUCKETS);
    let total: u64 = cells.iter().sum();
    if total == 0 {
        return 0;
    }
    let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
    let mut seen = 0u64;
    for (j, &n) in cells.iter().enumerate() {
        if n == 0 {
            continue;
        }
        let before = seen;
        seen += n;
        if seen >= rank {
            let lo = if j == 0 {
                1.0
            } else {
                SPAN_BOUNDS_NANOS[j - 1] as f64
            };
            let hi = span_bucket_upper_nanos(j) as f64;
            let frac = (rank - before) as f64 / n as f64;
            return (lo * (hi / lo).powf(frac)).round() as u64;
        }
    }
    span_bucket_upper_nanos(SPAN_BUCKETS - 1)
}

/// Upper bound of span bucket `j`, nanoseconds; the `+Inf` cell caps at one
/// decade above the last finite bound.
pub(crate) fn span_bucket_upper_nanos(j: usize) -> u64 {
    if j < SPAN_BOUNDS_NANOS.len() {
        SPAN_BOUNDS_NANOS[j]
    } else {
        SPAN_BOUNDS_NANOS[SPAN_BOUNDS_NANOS.len() - 1].saturating_mul(10)
    }
}

/// Upper bound of the highest non-empty cell — the bucket-resolution
/// estimate of the maximum recorded span. 0 for empty cells.
pub(crate) fn span_cells_max_estimate(cells: &[u64]) -> u64 {
    cells
        .iter()
        .enumerate()
        .rev()
        .find(|(_, &n)| n > 0)
        .map(|(j, _)| span_bucket_upper_nanos(j))
        .unwrap_or(0)
}

/// Quantile row of one [`SpanKind`]'s histogram — what `fleet_report` and
/// the fleet registry print instead of raw decade buckets. Quantiles are
/// bucket-resolution estimates (geometric interpolation inside a decade);
/// `max_nanos` is the upper bound of the highest occupied bucket.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanQuantiles {
    /// The summarized kind.
    pub kind: SpanKind,
    /// Spans recorded.
    pub count: u64,
    /// Estimated median, nanoseconds.
    pub p50_nanos: u64,
    /// Estimated 90th percentile, nanoseconds.
    pub p90_nanos: u64,
    /// Estimated 99th percentile, nanoseconds.
    pub p99_nanos: u64,
    /// Bucket-resolution maximum, nanoseconds.
    pub max_nanos: u64,
}

impl SpanQuantiles {
    /// Builds the row from raw span-bucket cells; `None` when empty.
    pub(crate) fn from_cells(kind: SpanKind, cells: &[u64]) -> Option<SpanQuantiles> {
        let count: u64 = cells.iter().sum();
        if count == 0 {
            return None;
        }
        Some(SpanQuantiles {
            kind,
            count,
            p50_nanos: span_cells_quantile(cells, 0.50),
            p90_nanos: span_cells_quantile(cells, 0.90),
            p99_nanos: span_cells_quantile(cells, 0.99),
            max_nanos: span_cells_max_estimate(cells),
        })
    }
}

/// A latency histogram specialized for span records.
///
/// Span records land on the per-slot hot path, where `obs_report` bills
/// every nanosecond of instrumentation against the <5% overhead budget —
/// so unlike the general [`Histogram`] this one works entirely in integer
/// nanoseconds: recording is three relaxed `fetch_add`s (bucket, count,
/// nanosecond sum) with no f64 compare-exchange loop. Rendering converts
/// to seconds, keeping the exposition families `vcs_span_*_seconds`.
#[derive(Debug)]
pub struct SpanHistogram {
    /// One cell per bound plus the `+Inf` cell.
    buckets: [AtomicU64; SPAN_BOUNDS_NANOS.len() + 1],
    count: AtomicU64,
    sum_nanos: AtomicU64,
}

impl Default for SpanHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl SpanHistogram {
    /// A fresh all-zero span histogram.
    pub fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_nanos: AtomicU64::new(0),
        }
    }

    /// Records one span duration.
    pub fn record_nanos(&self, nanos: u64) {
        let idx = SPAN_BOUNDS_NANOS
            .iter()
            .position(|&b| nanos <= b)
            .unwrap_or(SPAN_BOUNDS_NANOS.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_nanos.fetch_add(nanos, Ordering::Relaxed);
    }

    /// Number of spans recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded durations, in seconds.
    pub fn sum_seconds(&self) -> f64 {
        self.sum_nanos.load(Ordering::Relaxed) as f64 * 1e-9
    }

    /// One coherent read of the raw (non-cumulative) bucket cells plus the
    /// nanosecond sum — the snapshot a telemetry frame carries.
    pub(crate) fn snapshot_cells(&self) -> ([u64; SPAN_BUCKETS], u64) {
        (
            std::array::from_fn(|j| self.buckets[j].load(Ordering::Relaxed)),
            self.sum_nanos.load(Ordering::Relaxed),
        )
    }

    /// Nearest-rank quantile (`0 < q ≤ 1`) in nanoseconds — a
    /// bucket-resolution estimate (geometric interpolation inside the
    /// decade bucket). 0 when empty.
    pub fn quantile_nanos(&self, q: f64) -> u64 {
        let (cells, _) = self.snapshot_cells();
        span_cells_quantile(&cells, q)
    }

    /// The p50/p90/p99/max quantile row for this histogram, or `None` when
    /// no spans were recorded.
    pub fn quantiles(&self, kind: SpanKind) -> Option<SpanQuantiles> {
        let (cells, _) = self.snapshot_cells();
        SpanQuantiles::from_cells(kind, &cells)
    }

    /// Renders in Prometheus text exposition format, seconds-valued. Same
    /// single-snapshot discipline as [`Histogram::render`]: `+Inf` and
    /// `_count` derive from one read of the bucket cells.
    fn render(&self, name: &str, out: &mut String) {
        let (cells, sum_nanos) = self.snapshot_cells();
        render_span_cells(name, &cells, sum_nanos, out);
    }
}

macro_rules! counters {
    ($($(#[$doc:meta])* $field:ident),* $(,)?) => {
        /// Lifetime counters of the stats subscriber (all relaxed atomics).
        #[derive(Debug, Default)]
        struct Counters {
            $($(#[$doc])* $field: AtomicU64,)*
        }

        impl Counters {
            fn render(&self, out: &mut String) {
                $(
                    let _ = writeln!(out, "# TYPE vcs_{}_total counter", stringify!($field));
                    let _ = writeln!(
                        out,
                        "vcs_{}_total {}",
                        stringify!($field),
                        self.$field.load(Ordering::Relaxed)
                    );
                )*
            }

            /// Every counter as a `(name, value)` pair, in declaration
            /// order — the fixed column order of the telemetry wire format.
            fn pairs(&self) -> Vec<(&'static str, u64)> {
                vec![
                    $((stringify!($field), self.$field.load(Ordering::Relaxed)),)*
                ]
            }

            /// `"name": value` pairs, comma-separated (for the JSON snapshot).
            fn render_json(&self, out: &mut String) {
                let mut first = true;
                $(
                    if !first {
                        out.push_str(", ");
                    }
                    first = false;
                    let _ = write!(
                        out,
                        "\"{}\": {}",
                        stringify!($field),
                        self.$field.load(Ordering::Relaxed)
                    );
                )*
                let _ = first;
            }
        }
    };
}

counters! {
    slots,
    moves,
    joins,
    leaves,
    frames_sent,
    frames_received,
    frames_dropped,
    bytes_sent,
    bytes_received,
    retransmissions,
    epochs_started,
    epochs_converged,
    runs_completed,
}

/// An f64 gauge stored as bits in an atomic; NaN bits mean "never set".
#[derive(Debug)]
pub(crate) struct Gauge(AtomicU64);

impl Default for Gauge {
    fn default() -> Self {
        Gauge(AtomicU64::new(f64::NAN.to_bits()))
    }
}

impl Gauge {
    pub(crate) fn set(&self, value: f64) {
        self.0.store(value.to_bits(), Ordering::Relaxed);
    }

    pub(crate) fn get(&self) -> Option<f64> {
        let value = f64::from_bits(self.0.load(Ordering::Relaxed));
        (!value.is_nan()).then_some(value)
    }
}

fn response_lane(kind: ResponseKind, improving: bool) -> usize {
    (usize::from(matches!(kind, ResponseKind::Better)) << 1) | usize::from(improving)
}

/// Aggregating subscriber: counts every event class, buckets ϕ-move
/// magnitudes, frame sizes, per-epoch re-convergence slot counts and
/// per-[`SpanKind`] wall-clock latencies, and tracks the latest ϕ / total
/// profit the engine reported.
///
/// All updates are relaxed atomics (plus a CAS loop for the float sums), so
/// it is cheap enough to leave attached to a threaded run. Snapshot with
/// the typed accessors, dump everything with
/// [`prometheus_text`](StatsSubscriber::prometheus_text) (the `/metrics`
/// surface of [`MetricsExporter`](crate::MetricsExporter)) or
/// [`snapshot_json`](StatsSubscriber::snapshot_json) (its `/snapshot`
/// surface).
#[derive(Debug)]
pub struct StatsSubscriber {
    counters: Counters,
    /// `|Δϕ|` magnitudes of committed moves, decade buckets.
    phi_delta: Histogram,
    /// Sent/received frame sizes in bytes.
    frame_bytes: Histogram,
    /// Warm re-convergence slots per churn epoch.
    epoch_slots: Histogram,
    /// Response-evaluation counts, one lane per `(kind, improving)` pair
    /// so the hottest event in the stream costs exactly one relaxed RMW:
    /// index `(kind is Better) << 1 | improving`. The public counters are
    /// lane sums.
    responses: [AtomicU64; 4],
    /// Per-kind span latencies, log buckets 10 ns … 10 s, indexed by
    /// [`SpanKind::index`].
    span_seconds: Vec<SpanHistogram>,
    /// Latest ϕ any ϕ-carrying event reported.
    phi: Gauge,
    /// Latest total profit any profit-carrying event reported.
    total_profit: Gauge,
}

impl Default for StatsSubscriber {
    fn default() -> Self {
        Self::new()
    }
}

impl StatsSubscriber {
    /// A fresh all-zero subscriber.
    pub fn new() -> Self {
        Self {
            counters: Counters::default(),
            phi_delta: Histogram::new(&[1e-9, 1e-7, 1e-5, 1e-3, 1e-1, 1e1, 1e3]),
            frame_bytes: Histogram::new(&[16.0, 64.0, 256.0, 1024.0, 4096.0, 16384.0]),
            epoch_slots: Histogram::new(&[1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0]),
            responses: Default::default(),
            span_seconds: SpanKind::ALL.iter().map(|_| SpanHistogram::new()).collect(),
            phi: Gauge::default(),
            total_profit: Gauge::default(),
        }
    }

    /// Decision slots completed.
    pub fn slots(&self) -> u64 {
        self.counters.slots.load(Ordering::Relaxed)
    }

    /// Route switches committed.
    pub fn moves(&self) -> u64 {
        self.counters.moves.load(Ordering::Relaxed)
    }

    /// Best-response evaluations.
    pub fn best_responses(&self) -> u64 {
        self.responses[0].load(Ordering::Relaxed) + self.responses[1].load(Ordering::Relaxed)
    }

    /// Better-response evaluations.
    pub fn better_responses(&self) -> u64 {
        self.responses[2].load(Ordering::Relaxed) + self.responses[3].load(Ordering::Relaxed)
    }

    /// Evaluations that found a strictly improving route.
    pub fn improving_responses(&self) -> u64 {
        self.responses[1].load(Ordering::Relaxed) + self.responses[3].load(Ordering::Relaxed)
    }

    /// Frames sent / received / dropped.
    pub fn frames(&self) -> (u64, u64, u64) {
        (
            self.counters.frames_sent.load(Ordering::Relaxed),
            self.counters.frames_received.load(Ordering::Relaxed),
            self.counters.frames_dropped.load(Ordering::Relaxed),
        )
    }

    /// ARQ retransmissions.
    pub fn retransmissions(&self) -> u64 {
        self.counters.retransmissions.load(Ordering::Relaxed)
    }

    /// Churn epochs started / converged.
    pub fn epochs(&self) -> (u64, u64) {
        (
            self.counters.epochs_started.load(Ordering::Relaxed),
            self.counters.epochs_converged.load(Ordering::Relaxed),
        )
    }

    /// Users joined / left under observation.
    pub fn churn(&self) -> (u64, u64) {
        (
            self.counters.joins.load(Ordering::Relaxed),
            self.counters.leaves.load(Ordering::Relaxed),
        )
    }

    /// The `|Δϕ|` histogram of committed moves.
    pub fn phi_delta_histogram(&self) -> &Histogram {
        &self.phi_delta
    }

    /// The per-epoch warm re-convergence slot histogram.
    pub fn epoch_slots_histogram(&self) -> &Histogram {
        &self.epoch_slots
    }

    /// The latency histogram of one span kind.
    pub fn span_histogram(&self, kind: SpanKind) -> &SpanHistogram {
        &self.span_seconds[kind.index()]
    }

    /// Quantile rows (p50/p90/p99/max) for every kind that recorded at
    /// least one span, in [`SpanKind::ALL`] order.
    pub fn span_quantiles(&self) -> Vec<SpanQuantiles> {
        SpanKind::ALL
            .into_iter()
            .filter_map(|kind| self.span_seconds[kind.index()].quantiles(kind))
            .collect()
    }

    /// The latest ϕ reported by any ϕ-carrying event (`None` before the
    /// first such event).
    pub fn latest_phi(&self) -> Option<f64> {
        self.phi.get()
    }

    /// The latest total profit reported (`None` before the first event).
    pub fn latest_total_profit(&self) -> Option<f64> {
        self.total_profit.get()
    }

    /// Every lifetime counter as `(name, value)`, in the declaration order
    /// of the `counters!` table — the telemetry codec's column order.
    pub(crate) fn counter_pairs(&self) -> Vec<(&'static str, u64)> {
        self.counters.pairs()
    }

    /// The four raw response lanes (`(kind is Better) << 1 | improving`).
    pub(crate) fn response_lanes(&self) -> [u64; 4] {
        std::array::from_fn(|i| self.responses[i].load(Ordering::Relaxed))
    }

    /// Dumps every counter, gauge and histogram in Prometheus text
    /// exposition format (`vcs_*_total` counters, `vcs_phi` /
    /// `vcs_total_profit` gauges once set, `vcs_*` histograms, and one
    /// `vcs_span_<kind>_seconds` histogram per recorded span kind).
    pub fn prometheus_text(&self) -> String {
        let mut out = String::new();
        self.counters.render(&mut out);
        for (name, value) in [
            ("best_responses", self.best_responses()),
            ("better_responses", self.better_responses()),
            ("improving_responses", self.improving_responses()),
        ] {
            let _ = writeln!(out, "# TYPE vcs_{name}_total counter");
            let _ = writeln!(out, "vcs_{name}_total {value}");
        }
        if let Some(phi) = self.phi.get() {
            let _ = writeln!(out, "# TYPE vcs_phi gauge\nvcs_phi {phi:?}");
        }
        if let Some(profit) = self.total_profit.get() {
            let _ = writeln!(
                out,
                "# TYPE vcs_total_profit gauge\nvcs_total_profit {profit:?}"
            );
        }
        self.phi_delta.render("vcs_phi_delta_abs", &mut out);
        self.frame_bytes.render("vcs_frame_bytes", &mut out);
        self.epoch_slots.render("vcs_epoch_slots", &mut out);
        for kind in SpanKind::ALL {
            self.span_seconds[kind.index()]
                .render(&format!("vcs_span_{}_seconds", kind.tag()), &mut out);
        }
        out
    }

    /// Dumps counters, the latest ϕ / total profit and per-kind span
    /// aggregates as one JSON object (the exporter's `/snapshot` body).
    /// `phi` / `total_profit` are `null` until the first ϕ-carrying event.
    pub fn snapshot_json(&self) -> String {
        let mut out = String::from("{\"counters\": {");
        self.counters.render_json(&mut out);
        let _ = write!(
            out,
            ", \"best_responses\": {}, \"better_responses\": {}, \"improving_responses\": {}",
            self.best_responses(),
            self.better_responses(),
            self.improving_responses()
        );
        out.push_str("}, \"phi\": ");
        match self.phi.get() {
            Some(phi) => {
                let _ = write!(out, "{phi:?}");
            }
            None => out.push_str("null"),
        }
        out.push_str(", \"total_profit\": ");
        match self.total_profit.get() {
            Some(profit) => {
                let _ = write!(out, "{profit:?}");
            }
            None => out.push_str("null"),
        }
        out.push_str(", \"spans\": {");
        let mut first = true;
        for kind in SpanKind::ALL {
            let hist = &self.span_seconds[kind.index()];
            if !first {
                out.push_str(", ");
            }
            first = false;
            let _ = write!(
                out,
                "\"{}\": {{\"count\": {}, \"sum_seconds\": {:?}}}",
                kind.tag(),
                hist.count(),
                hist.sum_seconds()
            );
        }
        out.push_str("}}");
        out
    }
}

impl Subscriber for StatsSubscriber {
    fn event(&self, event: &Event) {
        let c = &self.counters;
        match *event {
            Event::EngineInit {
                phi, total_profit, ..
            } => {
                self.phi.set(phi);
                self.total_profit.set(total_profit);
            }
            Event::MoveCommitted { phi_delta, .. } => {
                c.moves.fetch_add(1, Ordering::Relaxed);
                self.phi_delta.record(phi_delta.abs());
                // No gauge stores here: moves are the hottest event, and a
                // slot completes (updating both gauges) right after every
                // commit anyway — gauges track slot/epoch granularity.
            }
            Event::UserJoined {
                phi, total_profit, ..
            } => {
                c.joins.fetch_add(1, Ordering::Relaxed);
                self.phi.set(phi);
                self.total_profit.set(total_profit);
            }
            Event::UserLeft {
                phi, total_profit, ..
            } => {
                c.leaves.fetch_add(1, Ordering::Relaxed);
                self.phi.set(phi);
                self.total_profit.set(total_profit);
            }
            Event::ResponseEvaluated {
                kind, improving, ..
            } => {
                // The single hottest event (one per candidate evaluation,
                // tens per slot): one lane-indexed RMW, no branch on
                // `improving`.
                self.responses[response_lane(kind, improving)].fetch_add(1, Ordering::Relaxed);
            }
            // A batched pass contributes its scan counts to the same
            // counters the per-user event feeds, so `vcs_*_responses_total`
            // means the same thing whichever granularity the driver emits.
            Event::RefreshPass {
                kind,
                scans,
                improving,
            } => {
                let improving = u64::from(improving);
                self.responses[response_lane(kind, true)].fetch_add(improving, Ordering::Relaxed);
                self.responses[response_lane(kind, false)].fetch_add(
                    u64::from(scans).saturating_sub(improving),
                    Ordering::Relaxed,
                );
            }
            Event::SlotCompleted {
                phi, total_profit, ..
            } => {
                c.slots.fetch_add(1, Ordering::Relaxed);
                self.phi.set(phi);
                self.total_profit.set(total_profit);
            }
            Event::FrameSent { bytes, .. } => {
                c.frames_sent.fetch_add(1, Ordering::Relaxed);
                c.bytes_sent.fetch_add(u64::from(bytes), Ordering::Relaxed);
                self.frame_bytes.record(f64::from(bytes));
            }
            Event::FrameReceived { bytes, .. } => {
                c.frames_received.fetch_add(1, Ordering::Relaxed);
                c.bytes_received
                    .fetch_add(u64::from(bytes), Ordering::Relaxed);
                self.frame_bytes.record(f64::from(bytes));
            }
            Event::FrameDropped { .. } => {
                c.frames_dropped.fetch_add(1, Ordering::Relaxed);
            }
            Event::Retransmission { .. } => {
                c.retransmissions.fetch_add(1, Ordering::Relaxed);
            }
            Event::EpochStarted { .. } => {
                c.epochs_started.fetch_add(1, Ordering::Relaxed);
            }
            Event::EpochConverged {
                slots,
                converged,
                phi,
                ..
            } => {
                if converged {
                    c.epochs_converged.fetch_add(1, Ordering::Relaxed);
                }
                self.epoch_slots.record(slots as f64);
                self.phi.set(phi);
            }
            Event::SpanRecorded { kind, nanos } => {
                self.span_seconds[kind.index()].record_nanos(nanos);
            }
            Event::RunCompleted { phi, .. } => {
                c.runs_completed.fetch_add(1, Ordering::Relaxed);
                self.phi.set(phi);
            }
        }
    }
}

/// Validates a Prometheus **text exposition** document (the format
/// `prometheus_text` and the `/metrics` endpoint emit).
///
/// Enforced rules (the subset of the exposition spec the workspace relies
/// on, checked by the satellite tests of this PR):
///
/// * every sample line parses as `name[{labels}] value` with a float value;
/// * every metric family has exactly one `# TYPE` line, appearing before
///   its samples;
/// * histogram families have exactly one `_sum`, exactly one `_count`, at
///   least one `_bucket`, no duplicate `le` labels, cumulative bucket
///   values that never decrease, and the mandatory `le="+Inf"` bucket
///   exactly once — equal to `_count`.
pub fn validate_prometheus_text(text: &str) -> Result<(), String> {
    use std::collections::HashMap;

    #[derive(Default)]
    struct HistState {
        les: Vec<(String, f64)>,
        sum: Option<f64>,
        count: Option<f64>,
    }

    let mut types: HashMap<String, String> = HashMap::new();
    let mut hists: HashMap<String, HistState> = HashMap::new();

    let parse_value = |raw: &str| -> Result<f64, String> {
        match raw {
            "+Inf" => Ok(f64::INFINITY),
            "-Inf" => Ok(f64::NEG_INFINITY),
            "NaN" => Ok(f64::NAN),
            other => other
                .parse::<f64>()
                .map_err(|_| format!("unparseable sample value {other:?}")),
        }
    };

    for (idx, line) in text.lines().enumerate() {
        let err = |detail: String| format!("exposition line {}: {detail}", idx + 1);
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let (Some(name), Some(kind), None) = (parts.next(), parts.next(), parts.next()) else {
                return Err(err(format!("malformed TYPE line {line:?}")));
            };
            if !matches!(
                kind,
                "counter" | "gauge" | "histogram" | "summary" | "untyped"
            ) {
                return Err(err(format!("unknown metric type {kind:?}")));
            }
            if types.insert(name.to_string(), kind.to_string()).is_some() {
                return Err(err(format!("duplicate TYPE for {name:?}")));
            }
            continue;
        }
        if line.starts_with('#') {
            continue; // HELP or comment
        }
        // Sample: name{labels} value  |  name value
        let (series, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| err(format!("sample without value: {line:?}")))?;
        let value = parse_value(value).map_err(err)?;
        let (name, labels) = match series.split_once('{') {
            Some((name, rest)) => {
                let labels = rest
                    .strip_suffix('}')
                    .ok_or_else(|| err(format!("unterminated label set: {series:?}")))?;
                (name, Some(labels))
            }
            None => (series, None),
        };
        // Resolve the family: histogram children carry suffixes.
        let family = ["_bucket", "_sum", "_count"]
            .iter()
            .find_map(|suffix| {
                name.strip_suffix(suffix)
                    .filter(|base| types.get(*base).map(String::as_str) == Some("histogram"))
                    .map(|base| (base, *suffix))
            })
            .map(|(base, suffix)| (base.to_string(), suffix));
        match family {
            Some((base, "_bucket")) => {
                let labels =
                    labels.ok_or_else(|| err(format!("{name} bucket without le label")))?;
                let le = labels
                    .split(',')
                    .find_map(|l| l.trim().strip_prefix("le=\""))
                    .and_then(|v| v.strip_suffix('"'))
                    .ok_or_else(|| err(format!("{name} bucket without le label")))?;
                let state = hists.entry(base).or_default();
                if state.les.iter().any(|(seen, _)| seen == le) {
                    return Err(err(format!("duplicate le={le:?} bucket for {name}")));
                }
                state.les.push((le.to_string(), value));
            }
            Some((base, "_sum")) => {
                let state = hists.entry(base.clone()).or_default();
                if state.sum.replace(value).is_some() {
                    return Err(err(format!("duplicate {base}_sum")));
                }
            }
            Some((base, "_count")) => {
                let state = hists.entry(base.clone()).or_default();
                if state.count.replace(value).is_some() {
                    return Err(err(format!("duplicate {base}_count")));
                }
            }
            _ => {
                if !types.contains_key(name) {
                    return Err(err(format!("sample {name:?} has no TYPE declaration")));
                }
            }
        }
    }

    for (base, state) in &hists {
        let count = state
            .count
            .ok_or_else(|| format!("histogram {base} has no _count"))?;
        state
            .sum
            .ok_or_else(|| format!("histogram {base} has no _sum"))?;
        if state.les.is_empty() {
            return Err(format!("histogram {base} has no buckets"));
        }
        let mut inf = None;
        let mut prev_le = f64::NEG_INFINITY;
        let mut prev_cum = 0.0f64;
        for (le, cum) in &state.les {
            let bound = if le == "+Inf" {
                if inf.replace(*cum).is_some() {
                    return Err(format!("histogram {base} has two +Inf buckets"));
                }
                f64::INFINITY
            } else {
                le.parse::<f64>()
                    .map_err(|_| format!("histogram {base}: unparseable le {le:?}"))?
            };
            if bound <= prev_le {
                return Err(format!("histogram {base}: le bounds not ascending"));
            }
            if *cum < prev_cum {
                return Err(format!("histogram {base}: cumulative buckets decrease"));
            }
            prev_le = bound;
            prev_cum = *cum;
        }
        let inf = inf.ok_or_else(|| format!("histogram {base} is missing the +Inf bucket"))?;
        if inf != count {
            return Err(format!(
                "histogram {base}: +Inf bucket {inf} != _count {count}"
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_quantiles_interpolate_within_decades() {
        let h = SpanHistogram::new();
        // 99 spans in the (100ns, 1µs] decade, one outlier in (1ms, 10ms].
        for _ in 0..99 {
            h.record_nanos(500);
        }
        h.record_nanos(5_000_000);
        let q = h.quantiles(SpanKind::Slot).expect("non-empty");
        assert_eq!(q.count, 100);
        // p50/p90 land inside the 100ns..1µs decade.
        assert!(q.p50_nanos > 100 && q.p50_nanos <= 1_000, "{}", q.p50_nanos);
        assert!(q.p90_nanos > 100 && q.p90_nanos <= 1_000);
        // p99 is the 99th of 100 — still the dense decade; max sees the outlier.
        assert!(q.p99_nanos <= 1_000);
        assert_eq!(q.max_nanos, 10_000_000);
        // Monotone in q.
        assert!(q.p50_nanos <= q.p90_nanos && q.p90_nanos <= q.p99_nanos);
        // Empty histogram has no row.
        assert!(SpanHistogram::new().quantiles(SpanKind::Slot).is_none());
        assert_eq!(SpanHistogram::new().quantile_nanos(0.99), 0);
    }

    #[test]
    fn histogram_buckets_and_sum() {
        let h = Histogram::new(&[1.0, 10.0]);
        h.record(0.5);
        h.record(5.0);
        h.record(50.0);
        assert_eq!(h.count(), 3);
        assert!((h.sum() - 55.5).abs() < 1e-12);
        let mut out = String::new();
        h.render("t", &mut out);
        assert!(out.contains("t_bucket{le=\"1.0\"} 1"));
        assert!(out.contains("t_bucket{le=\"10.0\"} 2"));
        assert!(out.contains("t_bucket{le=\"+Inf\"} 3"));
        assert!(out.contains("t_count 3"));
    }

    #[test]
    fn rendered_count_equals_inf_bucket() {
        // The +Inf bucket and _count must come from the same snapshot.
        let h = Histogram::new(&[1.0]);
        h.record(0.5);
        h.record(2.0);
        let mut out = String::new();
        h.render("x", &mut out);
        let inf_line = out
            .lines()
            .find(|l| l.contains("le=\"+Inf\""))
            .expect("+Inf bucket present");
        let count_line = out
            .lines()
            .find(|l| l.starts_with("x_count"))
            .expect("_count present");
        assert_eq!(inf_line.rsplit(' ').next(), count_line.rsplit(' ').next());
        assert_eq!(out.matches("le=\"+Inf\"").count(), 1);
        assert_eq!(out.matches("x_count").count(), 1);
        assert_eq!(out.matches("x_sum").count(), 1);
    }

    #[test]
    fn stats_counts_by_event_class() {
        let stats = StatsSubscriber::new();
        stats.event(&Event::SlotCompleted {
            slot: 1,
            updated: 2,
            phi: 0.0,
            total_profit: 0.0,
        });
        stats.event(&Event::MoveCommitted {
            user: 0,
            from_route: 0,
            to_route: 1,
            phi_delta: -0.25,
            profit_delta: -0.125,
            phi: 1.0,
            total_profit: 2.0,
        });
        stats.event(&Event::ResponseEvaluated {
            user: 0,
            kind: ResponseKind::Best,
            improving: true,
        });
        stats.event(&Event::ResponseEvaluated {
            user: 1,
            kind: ResponseKind::Better,
            improving: false,
        });
        // A batched pass feeds the same counters as per-user events.
        stats.event(&Event::RefreshPass {
            kind: ResponseKind::Best,
            scans: 40,
            improving: 7,
        });
        stats.event(&Event::FrameSent {
            bytes: 100,
            seq: 1,
            lamport: 1,
        });
        stats.event(&Event::FrameReceived {
            bytes: 100,
            seq: 1,
            lamport: 2,
        });
        stats.event(&Event::FrameDropped {
            bytes: 100,
            seq: 2,
            lamport: 3,
        });
        stats.event(&Event::Retransmission {
            attempt: 1,
            seq: 2,
            lamport: 4,
        });
        stats.event(&Event::EpochStarted {
            epoch: 0,
            joins: 1,
            leaves: 0,
            active: 5,
        });
        stats.event(&Event::EpochConverged {
            epoch: 0,
            slots: 3,
            converged: true,
            phi: 1.0,
        });
        assert_eq!(stats.slots(), 1);
        assert_eq!(stats.moves(), 1);
        assert_eq!(stats.best_responses(), 41);
        assert_eq!(stats.better_responses(), 1);
        assert_eq!(stats.improving_responses(), 8);
        assert_eq!(stats.frames(), (1, 1, 1));
        assert_eq!(stats.retransmissions(), 1);
        assert_eq!(stats.epochs(), (1, 1));
        assert_eq!(stats.phi_delta_histogram().count(), 1);
        let text = stats.prometheus_text();
        assert!(text.contains("vcs_slots_total 1"));
        assert!(text.contains("vcs_bytes_sent_total 100"));
        assert!(text.contains("# TYPE vcs_phi_delta_abs histogram"));
        validate_prometheus_text(&text).expect("valid exposition");
    }

    #[test]
    fn spans_land_in_the_right_latency_bucket() {
        let stats = StatsSubscriber::new();
        stats.event(&Event::SpanRecorded {
            kind: SpanKind::Slot,
            nanos: 1_500,
        });
        stats.event(&Event::SpanRecorded {
            kind: SpanKind::Slot,
            nanos: 2_000_000,
        });
        stats.event(&Event::SpanRecorded {
            kind: SpanKind::FrameEncode,
            nanos: 90,
        });
        let slot = stats.span_histogram(SpanKind::Slot);
        assert_eq!(slot.count(), 2);
        assert!((slot.sum_seconds() - (1.5e-6 + 2e-3)).abs() < 1e-12);
        assert_eq!(stats.span_histogram(SpanKind::FrameEncode).count(), 1);
        assert_eq!(stats.span_histogram(SpanKind::ChannelWait).count(), 0);
        let text = stats.prometheus_text();
        assert!(text.contains("# TYPE vcs_span_slot_seconds histogram"));
        assert!(text.contains("vcs_span_slot_seconds_count 2"));
        validate_prometheus_text(&text).expect("valid exposition");
    }

    #[test]
    fn gauges_track_latest_phi_and_profit() {
        let stats = StatsSubscriber::new();
        assert_eq!(stats.latest_phi(), None);
        assert_eq!(stats.latest_total_profit(), None);
        assert!(!stats.prometheus_text().contains("vcs_phi "));
        stats.event(&Event::EngineInit {
            users: 3,
            tasks: 2,
            phi: 1.25,
            total_profit: 4.0,
        });
        assert_eq!(stats.latest_phi(), Some(1.25));
        assert_eq!(stats.latest_total_profit(), Some(4.0));
        stats.event(&Event::SlotCompleted {
            slot: 1,
            updated: 1,
            phi: 2.5,
            total_profit: 5.0,
        });
        assert_eq!(stats.latest_phi(), Some(2.5));
        let text = stats.prometheus_text();
        assert!(text.contains("vcs_phi 2.5"));
        assert!(text.contains("vcs_total_profit 5.0"));
        validate_prometheus_text(&text).expect("valid exposition");
    }

    #[test]
    fn snapshot_json_has_counters_phi_and_spans() {
        let stats = StatsSubscriber::new();
        let empty = stats.snapshot_json();
        assert!(empty.contains("\"phi\": null"));
        assert!(empty.contains("\"total_profit\": null"));
        stats.event(&Event::SlotCompleted {
            slot: 1,
            updated: 1,
            phi: 3.5,
            total_profit: 7.0,
        });
        stats.event(&Event::SpanRecorded {
            kind: SpanKind::Slot,
            nanos: 1_000_000,
        });
        let json = stats.snapshot_json();
        assert!(json.contains("\"slots\": 1"));
        assert!(json.contains("\"phi\": 3.5"));
        assert!(json.contains("\"slot\": {\"count\": 1, \"sum_seconds\": 0.001}"));
    }

    #[test]
    fn validator_rejects_inconsistent_expositions() {
        // +Inf != _count.
        let bad = "# TYPE h histogram\nh_bucket{le=\"1.0\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_sum 1.0\nh_count 3\n";
        assert!(validate_prometheus_text(bad).is_err());
        // Missing +Inf bucket.
        let bad = "# TYPE h histogram\nh_bucket{le=\"1.0\"} 1\nh_sum 1.0\nh_count 1\n";
        assert!(validate_prometheus_text(bad).is_err());
        // Duplicate _count.
        let bad = "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_sum 1.0\nh_count 1\nh_count 1\n";
        assert!(validate_prometheus_text(bad).is_err());
        // Decreasing cumulative buckets.
        let bad = "# TYPE h histogram\nh_bucket{le=\"1.0\"} 2\nh_bucket{le=\"+Inf\"} 1\nh_sum 0.5\nh_count 1\n";
        assert!(validate_prometheus_text(bad).is_err());
        // Sample without a TYPE declaration.
        assert!(validate_prometheus_text("loose_metric 1\n").is_err());
        // Duplicate TYPE.
        let bad = "# TYPE c counter\n# TYPE c counter\nc 1\n";
        assert!(validate_prometheus_text(bad).is_err());
        // Unparseable value.
        assert!(validate_prometheus_text("# TYPE c counter\nc many\n").is_err());
    }
}
