//! A dependency-free live `/metrics` endpoint over `std::net`.
//!
//! [`MetricsExporter`] binds a [`TcpListener`], spawns one accept-loop
//! thread, and answers three `GET` routes off a shared
//! [`StatsSubscriber`]:
//!
//! * `/metrics` — Prometheus text exposition (`text/plain; version=0.0.4`),
//! * `/healthz` — liveness probe (`ok`),
//! * `/snapshot` — JSON counters plus the latest ϕ / total profit.
//!
//! Requests are served one at a time off a fresh snapshot, so scraping a
//! run mid-epoch is safe: the subscriber is all relaxed atomics and the
//! simulation threads never block on the exporter. There is no HTTP
//! library in the workspace and none is needed — the exposition format is
//! line-oriented text and a scrape is a single short-lived connection.
//!
//! Shutdown is cooperative: [`shutdown`](MetricsExporter::shutdown) flips a
//! flag and then self-connects once to unpark the blocking `accept`, and
//! the loop also wakes whenever any scrape arrives — no busy-wait, no
//! platform-specific socket teardown.

use crate::stats::StatsSubscriber;
use crate::subscriber::Obs;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// How long the exporter waits for a request line before dropping a
/// connection. Scrapes are local and tiny; a stuck client must not wedge
/// the accept loop.
const READ_TIMEOUT: Duration = Duration::from_millis(500);

/// A live HTTP metrics endpoint backed by a [`StatsSubscriber`].
///
/// Construct with [`MetricsExporter::bind`] (use port `0` for an ephemeral
/// port and read it back with [`addr`](MetricsExporter::addr)). The
/// endpoint serves until [`shutdown`](MetricsExporter::shutdown) or drop.
#[derive(Debug)]
pub struct MetricsExporter {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsExporter {
    /// Binds `addr` (e.g. `"127.0.0.1:0"`) and starts serving `stats`.
    pub fn bind(addr: impl ToSocketAddrs, stats: Arc<StatsSubscriber>) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let handle = {
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("vcs-metrics-exporter".into())
                .spawn(move || accept_loop(&listener, &stats, &stop))?
        };
        Ok(Self {
            addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (resolves port `0` to the actual ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the serving thread. Idempotent.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unpark the blocking accept with one throwaway connection; if the
        // connect fails the listener is already gone and the loop exits on
        // its next error anyway.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for MetricsExporter {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: &TcpListener, stats: &StatsSubscriber, stop: &AtomicBool) {
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let Ok(mut stream) = stream else { continue };
        let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
        serve_one(&mut stream, stats);
    }
}

/// Reads one request head and writes one response. Errors are swallowed:
/// a broken scrape must never take the exporter (or the run) down.
fn serve_one(stream: &mut TcpStream, stats: &StatsSubscriber) {
    let Some(path) = read_request_path(stream) else {
        return;
    };
    let (status, content_type, body) = match path.as_str() {
        "/metrics" => (
            "200 OK",
            "text/plain; version=0.0.4",
            stats.prometheus_text(),
        ),
        "/healthz" => ("200 OK", "text/plain", "ok\n".to_string()),
        "/snapshot" => ("200 OK", "application/json", stats.snapshot_json()),
        _ => ("404 Not Found", "text/plain", "not found\n".to_string()),
    };
    let _ = write!(
        stream,
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = stream.flush();
}

/// Parses the request line of one HTTP request (`GET <path> HTTP/1.x`),
/// returning the path. Non-GET methods and garbage return `None`.
fn read_request_path(stream: &mut TcpStream) -> Option<String> {
    // A scrape's request head is tiny; 2 KiB is plenty and bounds a
    // misbehaving client.
    let mut buf = [0u8; 2048];
    let mut filled = 0;
    loop {
        let n = stream.read(&mut buf[filled..]).ok()?;
        if n == 0 {
            return None;
        }
        filled += n;
        if buf[..filled].windows(2).any(|w| w == b"\r\n") || filled == buf.len() {
            break;
        }
    }
    let head = std::str::from_utf8(&buf[..filled]).ok()?;
    let request_line = head.lines().next()?;
    let mut parts = request_line.split_whitespace();
    let (method, path) = (parts.next()?, parts.next()?);
    (method == "GET").then(|| path.to_string())
}

/// A [`StatsSubscriber`] bundled with a running [`MetricsExporter`]: the
/// one-call opt-in the runtimes use for live monitoring.
///
/// [`LiveMonitor::bind`] creates the subscriber and serves it;
/// [`obs`](LiveMonitor::obs) hands out the [`Obs`] handle to attach to an
/// engine, a threaded run or an `OnlineSim`; [`stats`](LiveMonitor::stats)
/// gives direct access for end-of-run reporting after (or while) the
/// endpoint is live.
#[derive(Debug)]
pub struct LiveMonitor {
    stats: Arc<StatsSubscriber>,
    exporter: MetricsExporter,
}

impl LiveMonitor {
    /// Binds `addr` with a fresh all-zero [`StatsSubscriber`].
    pub fn bind(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let stats = Arc::new(StatsSubscriber::new());
        let exporter = MetricsExporter::bind(addr, Arc::clone(&stats))?;
        Ok(Self { stats, exporter })
    }

    /// The address the endpoint is serving on.
    pub fn addr(&self) -> SocketAddr {
        self.exporter.addr()
    }

    /// An [`Obs`] handle delivering into the monitored subscriber.
    pub fn obs(&self) -> Obs {
        Obs::new(self.stats.clone() as Arc<dyn crate::Subscriber>)
    }

    /// The monitored subscriber itself.
    pub fn stats(&self) -> &Arc<StatsSubscriber> {
        &self.stats
    }

    /// Stops serving (the stats stay readable). Idempotent; also runs on
    /// drop.
    pub fn shutdown(&mut self) {
        self.exporter.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;
    use crate::stats::validate_prometheus_text;
    use crate::Subscriber;

    /// One GET against a live exporter, returning (status line, body).
    fn get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).expect("connect");
        write!(stream, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").expect("send");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read");
        let (head, body) = response.split_once("\r\n\r\n").expect("header split");
        let status = head.lines().next().expect("status line").to_string();
        (status, body.to_string())
    }

    #[test]
    fn serves_metrics_healthz_snapshot_and_404() {
        let stats = Arc::new(StatsSubscriber::new());
        stats.event(&Event::SlotCompleted {
            slot: 1,
            updated: 1,
            phi: 2.0,
            total_profit: 3.0,
        });
        let mut exporter =
            MetricsExporter::bind("127.0.0.1:0", Arc::clone(&stats)).expect("bind ephemeral");
        let addr = exporter.addr();

        let (status, body) = get(addr, "/metrics");
        assert_eq!(status, "HTTP/1.1 200 OK");
        assert!(body.contains("vcs_slots_total 1"));
        validate_prometheus_text(&body).expect("valid exposition over HTTP");

        let (status, body) = get(addr, "/healthz");
        assert_eq!(status, "HTTP/1.1 200 OK");
        assert_eq!(body, "ok\n");

        let (status, body) = get(addr, "/snapshot");
        assert_eq!(status, "HTTP/1.1 200 OK");
        assert!(body.contains("\"phi\": 2.0"));

        let (status, _) = get(addr, "/nope");
        assert_eq!(status, "HTTP/1.1 404 Not Found");

        exporter.shutdown();
        exporter.shutdown(); // idempotent
    }

    #[test]
    fn live_monitor_observes_through_its_obs_handle() {
        let mut monitor = LiveMonitor::bind("127.0.0.1:0").expect("bind");
        let obs = monitor.obs();
        assert!(obs.enabled());
        obs.emit(|| Event::FrameSent { bytes: 64 });
        assert_eq!(monitor.stats().frames(), (1, 0, 0));
        let (status, body) = get(monitor.addr(), "/metrics");
        assert_eq!(status, "HTTP/1.1 200 OK");
        assert!(body.contains("vcs_frames_sent_total 1"));
        monitor.shutdown();
    }

    #[test]
    fn non_get_and_garbage_requests_get_no_response() {
        let stats = Arc::new(StatsSubscriber::new());
        let exporter = MetricsExporter::bind("127.0.0.1:0", stats).expect("bind");
        let addr = exporter.addr();
        let mut stream = TcpStream::connect(addr).expect("connect");
        write!(stream, "POST /metrics HTTP/1.1\r\n\r\n").expect("send");
        let mut out = String::new();
        stream.read_to_string(&mut out).expect("read");
        assert!(out.is_empty());
        // The exporter must still serve the next request.
        let (status, _) = get(addr, "/healthz");
        assert_eq!(status, "HTTP/1.1 200 OK");
    }
}
