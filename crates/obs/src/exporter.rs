//! A dependency-free live `/metrics` endpoint over `std::net`.
//!
//! [`MetricsExporter`] binds a [`TcpListener`], spawns one accept-loop
//! thread, and answers three `GET` routes off a shared
//! [`StatsSubscriber`]:
//!
//! * `/metrics` — Prometheus text exposition (`text/plain; version=0.0.4`),
//! * `/healthz` — liveness probe (`ok`),
//! * `/snapshot` — JSON counters plus the latest ϕ / total profit.
//!
//! Requests are served one at a time off a fresh snapshot, so scraping a
//! run mid-epoch is safe: the subscriber is all relaxed atomics and the
//! simulation threads never block on the exporter. There is no HTTP
//! library in the workspace and none is needed — the exposition format is
//! line-oriented text and a scrape is a single short-lived connection.
//!
//! Shutdown is cooperative: [`shutdown`](MetricsExporter::shutdown) flips a
//! flag and then self-connects once to unpark the blocking `accept`, and
//! the loop also wakes whenever any scrape arrives — no busy-wait, no
//! platform-specific socket teardown.

use crate::fleet::FleetStats;
use crate::slo::{ServeMetrics, SloMonitor};
use crate::stats::StatsSubscriber;
use crate::subscriber::{FanoutSubscriber, Obs};
use crate::watchdog::{WatchdogConfig, WatchdogSubscriber};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// How long the exporter waits for a request line before dropping a
/// connection. Scrapes are local and tiny; a stuck client must not wedge
/// the accept loop.
const READ_TIMEOUT: Duration = Duration::from_millis(500);

/// What an exporter serves: one process's own subscriber, or the
/// coordinator's fleet-level registry of ingested telemetry frames.
enum Source {
    /// This process's stats (and optionally its watchdog).
    Process {
        stats: Arc<StatsSubscriber>,
        watchdog: Option<Arc<WatchdogSubscriber>>,
    },
    /// A whole deployment, folded from worker telemetry frames.
    Fleet(Arc<FleetStats>),
    /// A long-lived serving process: the per-lane fleet registry plus the
    /// serving-layer request metrics and the SLO monitor.
    Serve {
        fleet: Arc<FleetStats>,
        serve: Arc<ServeMetrics>,
        slo: Arc<SloMonitor>,
    },
}

/// A live HTTP metrics endpoint backed by a [`StatsSubscriber`].
///
/// Construct with [`MetricsExporter::bind`] (use port `0` for an ephemeral
/// port and read it back with [`addr`](MetricsExporter::addr)). The
/// endpoint serves until [`shutdown`](MetricsExporter::shutdown) or drop.
#[derive(Debug)]
pub struct MetricsExporter {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsExporter {
    /// Binds `addr` (e.g. `"127.0.0.1:0"`) and starts serving `stats`.
    /// `/alerts` answers with an empty alert list; attach a watchdog with
    /// [`bind_with_watchdog`](MetricsExporter::bind_with_watchdog) to
    /// populate it.
    pub fn bind(addr: impl ToSocketAddrs, stats: Arc<StatsSubscriber>) -> std::io::Result<Self> {
        Self::bind_inner(
            addr,
            Source::Process {
                stats,
                watchdog: None,
            },
        )
    }

    /// [`bind`](MetricsExporter::bind), plus a [`WatchdogSubscriber`]
    /// whose structured alerts are served at `/alerts` and whose
    /// `vcs_watchdog_*` counters are appended to the `/metrics`
    /// exposition.
    pub fn bind_with_watchdog(
        addr: impl ToSocketAddrs,
        stats: Arc<StatsSubscriber>,
        watchdog: Arc<WatchdogSubscriber>,
    ) -> std::io::Result<Self> {
        Self::bind_inner(
            addr,
            Source::Process {
                stats,
                watchdog: Some(watchdog),
            },
        )
    }

    /// Serves a [`FleetStats`] registry instead of one process's stats:
    /// `/metrics` renders the per-shard-labeled fleet exposition,
    /// `/snapshot` the fleet JSON, `/alerts` the fleet alert total. This
    /// is the coordinator's endpoint in a telemetry-enabled deployment.
    pub fn bind_fleet(addr: impl ToSocketAddrs, fleet: Arc<FleetStats>) -> std::io::Result<Self> {
        Self::bind_inner(addr, Source::Fleet(fleet))
    }

    /// The serving-process endpoint: `/metrics` renders the per-lane fleet
    /// exposition followed by the `vcs_serve_*` and `vcs_slo_*` families,
    /// `/alerts` the SLO monitor's latched burn-rate alerts, `/snapshot`
    /// the fleet JSON.
    pub fn bind_serve(
        addr: impl ToSocketAddrs,
        fleet: Arc<FleetStats>,
        serve: Arc<ServeMetrics>,
        slo: Arc<SloMonitor>,
    ) -> std::io::Result<Self> {
        Self::bind_inner(addr, Source::Serve { fleet, serve, slo })
    }

    fn bind_inner(addr: impl ToSocketAddrs, source: Source) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let handle = {
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("vcs-metrics-exporter".into())
                .spawn(move || accept_loop(&listener, &source, &stop))?
        };
        Ok(Self {
            addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (resolves port `0` to the actual ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the serving thread. Idempotent.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unpark the blocking accept with one throwaway connection; if the
        // connect fails the listener is already gone and the loop exits on
        // its next error anyway.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for MetricsExporter {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: &TcpListener, source: &Source, stop: &AtomicBool) {
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let Ok(mut stream) = stream else { continue };
        let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
        serve_one(&mut stream, source);
    }
}

/// Reads one request head and writes one response. Errors are swallowed:
/// a broken scrape must never take the exporter (or the run) down.
fn serve_one(stream: &mut TcpStream, source: &Source) {
    let Some(path) = read_request_path(stream) else {
        return;
    };
    let (status, content_type, body) = match path.as_str() {
        "/metrics" => {
            let text = match source {
                Source::Process { stats, watchdog } => {
                    let mut text = stats.prometheus_text();
                    if let Some(dog) = watchdog {
                        text.push_str(&dog.prometheus_text());
                    }
                    text
                }
                Source::Fleet(fleet) => fleet.prometheus_text(),
                Source::Serve { fleet, serve, slo } => {
                    let mut text = fleet.prometheus_text();
                    text.push_str(&serve.prometheus_text());
                    text.push_str(&slo.prometheus_text());
                    text
                }
            };
            ("200 OK", "text/plain; version=0.0.4", text)
        }
        "/healthz" => ("200 OK", "text/plain", "ok\n".to_string()),
        "/snapshot" => (
            "200 OK",
            "application/json",
            match source {
                Source::Process { stats, .. } => stats.snapshot_json(),
                Source::Fleet(fleet) | Source::Serve { fleet, .. } => fleet.snapshot_json(),
            },
        ),
        "/alerts" => (
            "200 OK",
            "application/json",
            match source {
                Source::Process {
                    watchdog: Some(dog),
                    ..
                } => dog.alerts_json(),
                Source::Process { watchdog: None, .. } => "{\"alerts\":[]}\n".to_string(),
                Source::Fleet(fleet) => {
                    format!(
                        "{{\"alerts\":[],\"fleet_alerts\":{}}}\n",
                        fleet.total_alerts()
                    )
                }
                Source::Serve { slo, .. } => slo.alerts_json(),
            },
        ),
        _ => ("404 Not Found", "text/plain", "not found\n".to_string()),
    };
    let _ = write!(
        stream,
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = stream.flush();
}

/// Parses the request line of one HTTP request (`GET <path> HTTP/1.x`),
/// returning the path. Non-GET methods and garbage return `None`.
fn read_request_path(stream: &mut TcpStream) -> Option<String> {
    // A scrape's request head is tiny; 2 KiB is plenty and bounds a
    // misbehaving client.
    let mut buf = [0u8; 2048];
    let mut filled = 0;
    loop {
        let n = stream.read(&mut buf[filled..]).ok()?;
        if n == 0 {
            return None;
        }
        filled += n;
        if buf[..filled].windows(2).any(|w| w == b"\r\n") || filled == buf.len() {
            break;
        }
    }
    let head = std::str::from_utf8(&buf[..filled]).ok()?;
    let request_line = head.lines().next()?;
    let mut parts = request_line.split_whitespace();
    let (method, path) = (parts.next()?, parts.next()?);
    (method == "GET").then(|| path.to_string())
}

/// A [`StatsSubscriber`] bundled with a running [`MetricsExporter`]: the
/// one-call opt-in the runtimes use for live monitoring.
///
/// [`LiveMonitor::bind`] creates the subscriber and serves it;
/// [`obs`](LiveMonitor::obs) hands out the [`Obs`] handle to attach to an
/// engine, a threaded run or an `OnlineSim`; [`stats`](LiveMonitor::stats)
/// gives direct access for end-of-run reporting after (or while) the
/// endpoint is live.
#[derive(Debug)]
pub struct LiveMonitor {
    stats: Arc<StatsSubscriber>,
    watchdog: Option<Arc<WatchdogSubscriber>>,
    exporter: MetricsExporter,
}

impl LiveMonitor {
    /// Binds `addr` with a fresh all-zero [`StatsSubscriber`].
    pub fn bind(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let stats = Arc::new(StatsSubscriber::new());
        let exporter = MetricsExporter::bind(addr, Arc::clone(&stats))?;
        Ok(Self {
            stats,
            watchdog: None,
            exporter,
        })
    }

    /// [`bind`](LiveMonitor::bind) with a [`WatchdogSubscriber`] fanned in
    /// next to the stats: the [`obs`](LiveMonitor::obs) handle feeds both,
    /// `/alerts` serves the watchdog's structured alerts, and `/metrics`
    /// includes the `vcs_watchdog_*` counters.
    pub fn bind_watched(addr: impl ToSocketAddrs, config: WatchdogConfig) -> std::io::Result<Self> {
        let stats = Arc::new(StatsSubscriber::new());
        let watchdog = Arc::new(WatchdogSubscriber::new(config));
        let exporter =
            MetricsExporter::bind_with_watchdog(addr, Arc::clone(&stats), Arc::clone(&watchdog))?;
        Ok(Self {
            stats,
            watchdog: Some(watchdog),
            exporter,
        })
    }

    /// The address the endpoint is serving on.
    pub fn addr(&self) -> SocketAddr {
        self.exporter.addr()
    }

    /// An [`Obs`] handle delivering into the monitored subscriber (and the
    /// watchdog, when one is attached).
    pub fn obs(&self) -> Obs {
        match &self.watchdog {
            Some(dog) => FanoutSubscriber::obs(vec![
                self.stats.clone() as Arc<dyn crate::Subscriber>,
                dog.clone() as Arc<dyn crate::Subscriber>,
            ]),
            None => Obs::new(self.stats.clone() as Arc<dyn crate::Subscriber>),
        }
    }

    /// The monitored subscriber itself.
    pub fn stats(&self) -> &Arc<StatsSubscriber> {
        &self.stats
    }

    /// The attached watchdog, if the monitor was bound with one.
    pub fn watchdog(&self) -> Option<&Arc<WatchdogSubscriber>> {
        self.watchdog.as_ref()
    }

    /// Stops serving (the stats stay readable). Idempotent; also runs on
    /// drop.
    pub fn shutdown(&mut self) {
        self.exporter.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;
    use crate::stats::validate_prometheus_text;
    use crate::Subscriber;

    /// One GET against a live exporter, returning (status line, body).
    fn get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).expect("connect");
        write!(stream, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").expect("send");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read");
        let (head, body) = response.split_once("\r\n\r\n").expect("header split");
        let status = head.lines().next().expect("status line").to_string();
        (status, body.to_string())
    }

    #[test]
    fn serves_metrics_healthz_snapshot_and_404() {
        let stats = Arc::new(StatsSubscriber::new());
        stats.event(&Event::SlotCompleted {
            slot: 1,
            updated: 1,
            phi: 2.0,
            total_profit: 3.0,
        });
        let mut exporter =
            MetricsExporter::bind("127.0.0.1:0", Arc::clone(&stats)).expect("bind ephemeral");
        let addr = exporter.addr();

        let (status, body) = get(addr, "/metrics");
        assert_eq!(status, "HTTP/1.1 200 OK");
        assert!(body.contains("vcs_slots_total 1"));
        validate_prometheus_text(&body).expect("valid exposition over HTTP");

        let (status, body) = get(addr, "/healthz");
        assert_eq!(status, "HTTP/1.1 200 OK");
        assert_eq!(body, "ok\n");

        let (status, body) = get(addr, "/snapshot");
        assert_eq!(status, "HTTP/1.1 200 OK");
        assert!(body.contains("\"phi\": 2.0"));

        let (status, _) = get(addr, "/nope");
        assert_eq!(status, "HTTP/1.1 404 Not Found");

        exporter.shutdown();
        exporter.shutdown(); // idempotent
    }

    #[test]
    fn fleet_exporter_serves_labeled_exposition() {
        use crate::telemetry::TelemetryFrame;
        let fleet = Arc::new(FleetStats::new());
        let mut frame = TelemetryFrame::empty(3);
        frame.seq = 1;
        frame.counters[0] = 17;
        assert!(fleet.ingest(frame));
        let exporter =
            MetricsExporter::bind_fleet("127.0.0.1:0", Arc::clone(&fleet)).expect("bind fleet");
        let (status, body) = get(exporter.addr(), "/metrics");
        assert_eq!(status, "HTTP/1.1 200 OK");
        assert!(
            body.contains("vcs_fleet_slots_total{shard=\"3\"} 17"),
            "body: {body}"
        );
        validate_prometheus_text(&body).expect("fleet exposition over HTTP");
        let (status, body) = get(exporter.addr(), "/snapshot");
        assert_eq!(status, "HTTP/1.1 200 OK");
        assert!(body.contains("\"shard\":\"3\""));
        let (status, body) = get(exporter.addr(), "/alerts");
        assert_eq!(status, "HTTP/1.1 200 OK");
        assert!(body.contains("\"fleet_alerts\":0"));
    }

    #[test]
    fn serve_exporter_merges_fleet_serve_and_slo_families() {
        use crate::slo::{RequestKind, SloConfig};
        use crate::telemetry::TelemetryFrame;
        let fleet = Arc::new(FleetStats::new());
        let mut frame = TelemetryFrame::empty(0);
        frame.seq = 1;
        frame.counters[0] = 5;
        fleet.ingest(frame);
        let serve = Arc::new(ServeMetrics::new());
        serve.observe_request(RequestKind::Join);
        serve.observe_reply(true, 1_000_000);
        serve.roll_window(5, 1.0);
        let slo = Arc::new(SloMonitor::new(SloConfig {
            p99_budget_nanos: 1,
            burn_windows: 1,
        }));
        slo.observe_nanos(1_000_000);
        assert!(slo.roll_window().is_some());
        let exporter = MetricsExporter::bind_serve(
            "127.0.0.1:0",
            Arc::clone(&fleet),
            Arc::clone(&serve),
            Arc::clone(&slo),
        )
        .expect("bind serve");
        let (status, body) = get(exporter.addr(), "/metrics");
        assert_eq!(status, "HTTP/1.1 200 OK");
        assert!(body.contains("vcs_fleet_slots_total{shard=\"0\"} 5"));
        assert!(body.contains("vcs_serve_requests_total{kind=\"join\"} 1"));
        assert!(body.contains("vcs_serve_slots_per_sec 5.0"));
        assert!(body.contains("vcs_slo_burning 1"));
        validate_prometheus_text(&body).expect("serve exposition over HTTP");
        let (status, body) = get(exporter.addr(), "/alerts");
        assert_eq!(status, "HTTP/1.1 200 OK");
        assert!(body.contains("\"kind\":\"slo_burn_rate\""), "body: {body}");
    }

    #[test]
    fn live_monitor_observes_through_its_obs_handle() {
        let mut monitor = LiveMonitor::bind("127.0.0.1:0").expect("bind");
        let obs = monitor.obs();
        assert!(obs.enabled());
        obs.emit(|| Event::FrameSent {
            bytes: 64,
            seq: 1,
            lamport: 1,
        });
        assert_eq!(monitor.stats().frames(), (1, 0, 0));
        let (status, body) = get(monitor.addr(), "/metrics");
        assert_eq!(status, "HTTP/1.1 200 OK");
        assert!(body.contains("vcs_frames_sent_total 1"));
        monitor.shutdown();
    }

    #[test]
    fn alerts_endpoint_serves_watchdog_alerts() {
        // Without a watchdog: empty list, not a 404.
        let stats = Arc::new(StatsSubscriber::new());
        let exporter = MetricsExporter::bind("127.0.0.1:0", stats).expect("bind");
        let (status, body) = get(exporter.addr(), "/alerts");
        assert_eq!(status, "HTTP/1.1 200 OK");
        assert_eq!(body, "{\"alerts\":[]}\n");
        drop(exporter);

        // With a watchdog: the obs handle feeds stats + watchdog, and an
        // injected ϕ-decreasing move shows up on /alerts and /metrics.
        let monitor = LiveMonitor::bind_watched("127.0.0.1:0", crate::WatchdogConfig::default())
            .expect("bind");
        let obs = monitor.obs();
        obs.emit(|| Event::EngineInit {
            users: 2,
            tasks: 1,
            phi: 5.0,
            total_profit: 10.0,
        });
        obs.emit(|| Event::MoveCommitted {
            user: 0,
            from_route: 0,
            to_route: 1,
            phi_delta: -0.5,
            profit_delta: -0.25,
            phi: 4.5,
            total_profit: 9.5,
        });
        assert_eq!(monitor.stats().moves(), 1, "fanout still feeds the stats");
        let (status, body) = get(monitor.addr(), "/alerts");
        assert_eq!(status, "HTTP/1.1 200 OK");
        assert!(body.contains("\"kind\":\"phi_decrease\""), "body: {body}");
        let (status, body) = get(monitor.addr(), "/metrics");
        assert_eq!(status, "HTTP/1.1 200 OK");
        assert!(body.contains("vcs_watchdog_phi_decrease_total 1"));
        validate_prometheus_text(&body).expect("watchdog counters keep exposition valid");
    }

    #[test]
    fn non_get_and_garbage_requests_get_no_response() {
        let stats = Arc::new(StatsSubscriber::new());
        let exporter = MetricsExporter::bind("127.0.0.1:0", stats).expect("bind");
        let addr = exporter.addr();
        let mut stream = TcpStream::connect(addr).expect("connect");
        write!(stream, "POST /metrics HTTP/1.1\r\n\r\n").expect("send");
        let mut out = String::new();
        stream.read_to_string(&mut out).expect("read");
        assert!(out.is_empty());
        // The exporter must still serve the next request.
        let (status, _) = get(addr, "/healthz");
        assert_eq!(status, "HTTP/1.1 200 OK");
    }
}
