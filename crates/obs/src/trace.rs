//! JSONL trace codec and ϕ-trajectory reconstruction.
//!
//! Each event is one JSON object per line, e.g.
//!
//! ```json
//! {"type":"move_committed","user":3,"from_route":0,"to_route":1,"phi_delta":-0.25,"profit_delta":-0.125,"phi":12.5,"total_profit":30.125}
//! ```
//!
//! Floats are written with Rust's shortest-roundtrip formatting, so a
//! parsed trace reproduces the emitted `f64`s bit-exactly; that is what
//! lets [`reconstruct_phi`] rebuild the trajectory by summing per-move
//! deltas and cross-check it against the recorded absolutes within `1e-9`
//! (the engine maintains ϕ with compensated accumulation, so the two only
//! differ by genuine floating-point re-association error).

use crate::event::{Event, ResponseKind};
use std::fmt::Write as _;
use std::io::BufRead;
use std::path::Path;

/// Serializes one event as a single JSON line (no trailing newline).
pub fn event_to_json(event: &Event) -> String {
    let mut s = String::with_capacity(128);
    let _ = write!(s, "{{\"type\":\"{}\"", event.tag());
    match *event {
        Event::EngineInit {
            users,
            tasks,
            phi,
            total_profit,
        } => {
            let _ = write!(
                s,
                ",\"users\":{users},\"tasks\":{tasks},\"phi\":{phi:?},\"total_profit\":{total_profit:?}"
            );
        }
        Event::MoveCommitted {
            user,
            from_route,
            to_route,
            phi_delta,
            profit_delta,
            phi,
            total_profit,
        } => {
            let _ = write!(
                s,
                ",\"user\":{user},\"from_route\":{from_route},\"to_route\":{to_route},\"phi_delta\":{phi_delta:?},\"profit_delta\":{profit_delta:?},\"phi\":{phi:?},\"total_profit\":{total_profit:?}"
            );
        }
        Event::UserJoined {
            user,
            phi,
            total_profit,
        }
        | Event::UserLeft {
            user,
            phi,
            total_profit,
        } => {
            let _ = write!(
                s,
                ",\"user\":{user},\"phi\":{phi:?},\"total_profit\":{total_profit:?}"
            );
        }
        Event::ResponseEvaluated {
            user,
            kind,
            improving,
        } => {
            let _ = write!(
                s,
                ",\"user\":{user},\"kind\":\"{}\",\"improving\":{improving}",
                kind.tag()
            );
        }
        Event::RefreshPass {
            kind,
            scans,
            improving,
        } => {
            let _ = write!(
                s,
                ",\"kind\":\"{}\",\"scans\":{scans},\"improving\":{improving}",
                kind.tag()
            );
        }
        Event::SlotCompleted {
            slot,
            updated,
            phi,
            total_profit,
        } => {
            let _ = write!(
                s,
                ",\"slot\":{slot},\"updated\":{updated},\"phi\":{phi:?},\"total_profit\":{total_profit:?}"
            );
        }
        Event::FrameSent {
            bytes,
            seq,
            lamport,
        }
        | Event::FrameReceived {
            bytes,
            seq,
            lamport,
        }
        | Event::FrameDropped {
            bytes,
            seq,
            lamport,
        } => {
            let _ = write!(s, ",\"bytes\":{bytes},\"seq\":{seq},\"lamport\":{lamport}");
        }
        Event::Retransmission {
            attempt,
            seq,
            lamport,
        } => {
            let _ = write!(
                s,
                ",\"attempt\":{attempt},\"seq\":{seq},\"lamport\":{lamport}"
            );
        }
        Event::EpochStarted {
            epoch,
            joins,
            leaves,
            active,
        } => {
            let _ = write!(
                s,
                ",\"epoch\":{epoch},\"joins\":{joins},\"leaves\":{leaves},\"active\":{active}"
            );
        }
        Event::EpochConverged {
            epoch,
            slots,
            converged,
            phi,
        } => {
            let _ = write!(
                s,
                ",\"epoch\":{epoch},\"slots\":{slots},\"converged\":{converged},\"phi\":{phi:?}"
            );
        }
        Event::SpanRecorded { kind, nanos } => {
            let _ = write!(s, ",\"kind\":\"{}\",\"nanos\":{nanos}", kind.tag());
        }
        Event::RunCompleted {
            slots,
            updates,
            converged,
            phi,
        } => {
            let _ = write!(
                s,
                ",\"slots\":{slots},\"updates\":{updates},\"converged\":{converged},\"phi\":{phi:?}"
            );
        }
    }
    s.push('}');
    s
}

/// A malformed trace line or an inconsistent trajectory.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceError {
    /// A line failed to parse; carries the 1-based line number and detail.
    Parse {
        /// 1-based line number in the trace.
        line: usize,
        /// What was wrong.
        detail: String,
    },
    /// The trace has ϕ-carrying events but no `engine_init` anchor before
    /// the first delta.
    MissingAnchor,
    /// An I/O failure while reading the trace file.
    Io(String),
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Parse { line, detail } => write!(f, "trace line {line}: {detail}"),
            TraceError::MissingAnchor => {
                f.write_str("trace has moves before any engine_init anchor")
            }
            TraceError::Io(detail) => write!(f, "trace io error: {detail}"),
        }
    }
}

impl std::error::Error for TraceError {}

/// Field bag of one parsed JSON line.
struct Fields<'a> {
    pairs: Vec<(&'a str, &'a str)>,
}

impl<'a> Fields<'a> {
    fn get(&self, key: &str) -> Result<&'a str, String> {
        self.pairs
            .iter()
            .find(|(k, _)| *k == key)
            .map(|&(_, v)| v)
            .ok_or_else(|| format!("missing field {key:?}"))
    }

    fn str(&self, key: &str) -> Result<&'a str, String> {
        let raw = self.get(key)?;
        raw.strip_prefix('"')
            .and_then(|v| v.strip_suffix('"'))
            .ok_or_else(|| format!("field {key:?} is not a string: {raw:?}"))
    }

    fn u32(&self, key: &str) -> Result<u32, String> {
        let raw = self.get(key)?;
        raw.parse()
            .map_err(|_| format!("field {key:?} is not a u32: {raw:?}"))
    }

    fn u64(&self, key: &str) -> Result<u64, String> {
        let raw = self.get(key)?;
        raw.parse()
            .map_err(|_| format!("field {key:?} is not a u64: {raw:?}"))
    }

    /// `u64` field that may be absent: traces recorded before the causal
    /// layer (PR 3–4) have no `seq`/`lamport` on frame events, and parse
    /// with `default` (0 = "no causal information"). A *present* field
    /// still has to be a valid `u64`.
    fn u64_or(&self, key: &str, default: u64) -> Result<u64, String> {
        if self.pairs.iter().any(|(k, _)| *k == key) {
            self.u64(key)
        } else {
            Ok(default)
        }
    }

    fn f64(&self, key: &str) -> Result<f64, String> {
        let raw = self.get(key)?;
        let value: f64 = raw
            .parse()
            .map_err(|_| format!("field {key:?} is not an f64: {raw:?}"))?;
        if value.is_finite() {
            Ok(value)
        } else {
            Err(format!("field {key:?} is not finite: {raw:?}"))
        }
    }

    fn bool(&self, key: &str) -> Result<bool, String> {
        match self.get(key)? {
            "true" => Ok(true),
            "false" => Ok(false),
            raw => Err(format!("field {key:?} is not a bool: {raw:?}")),
        }
    }
}

fn split_fields(line: &str) -> Result<Fields<'_>, String> {
    let body = line
        .trim()
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .ok_or_else(|| "not a JSON object".to_string())?;
    let mut pairs = Vec::new();
    if body.is_empty() {
        return Ok(Fields { pairs });
    }
    // The emitter never nests objects/arrays and never puts ',' ':' or '"'
    // inside string values, so top-level splitting is exact for well-formed
    // traces; hand-edited lines that violate this fail field typing below.
    for part in body.split(',') {
        let (key, value) = part
            .split_once(':')
            .ok_or_else(|| format!("field without ':': {part:?}"))?;
        let key = key
            .trim()
            .strip_prefix('"')
            .and_then(|k| k.strip_suffix('"'))
            .ok_or_else(|| format!("unquoted key: {key:?}"))?;
        pairs.push((key, value.trim()));
    }
    Ok(Fields { pairs })
}

fn event_from_fields(f: &Fields<'_>) -> Result<Event, String> {
    let event = match f.str("type")? {
        "engine_init" => Event::EngineInit {
            users: f.u32("users")?,
            tasks: f.u32("tasks")?,
            phi: f.f64("phi")?,
            total_profit: f.f64("total_profit")?,
        },
        "move_committed" => Event::MoveCommitted {
            user: f.u32("user")?,
            from_route: f.u32("from_route")?,
            to_route: f.u32("to_route")?,
            phi_delta: f.f64("phi_delta")?,
            profit_delta: f.f64("profit_delta")?,
            phi: f.f64("phi")?,
            total_profit: f.f64("total_profit")?,
        },
        "user_joined" => Event::UserJoined {
            user: f.u32("user")?,
            phi: f.f64("phi")?,
            total_profit: f.f64("total_profit")?,
        },
        "user_left" => Event::UserLeft {
            user: f.u32("user")?,
            phi: f.f64("phi")?,
            total_profit: f.f64("total_profit")?,
        },
        "response_evaluated" => Event::ResponseEvaluated {
            user: f.u32("user")?,
            kind: match f.str("kind")? {
                "best" => ResponseKind::Best,
                "better" => ResponseKind::Better,
                other => return Err(format!("unknown response kind {other:?}")),
            },
            improving: f.bool("improving")?,
        },
        "refresh_pass" => Event::RefreshPass {
            kind: match f.str("kind")? {
                "best" => ResponseKind::Best,
                "better" => ResponseKind::Better,
                other => return Err(format!("unknown response kind {other:?}")),
            },
            scans: f.u32("scans")?,
            improving: f.u32("improving")?,
        },
        "slot_completed" => Event::SlotCompleted {
            slot: f.u64("slot")?,
            updated: f.u32("updated")?,
            phi: f.f64("phi")?,
            total_profit: f.f64("total_profit")?,
        },
        "frame_sent" => Event::FrameSent {
            bytes: f.u32("bytes")?,
            seq: f.u64_or("seq", 0)?,
            lamport: f.u64_or("lamport", 0)?,
        },
        "frame_received" => Event::FrameReceived {
            bytes: f.u32("bytes")?,
            seq: f.u64_or("seq", 0)?,
            lamport: f.u64_or("lamport", 0)?,
        },
        "frame_dropped" => Event::FrameDropped {
            bytes: f.u32("bytes")?,
            seq: f.u64_or("seq", 0)?,
            lamport: f.u64_or("lamport", 0)?,
        },
        "retransmission" => Event::Retransmission {
            attempt: f.u32("attempt")?,
            seq: f.u64_or("seq", 0)?,
            lamport: f.u64_or("lamport", 0)?,
        },
        "epoch_started" => Event::EpochStarted {
            epoch: f.u32("epoch")?,
            joins: f.u32("joins")?,
            leaves: f.u32("leaves")?,
            active: f.u32("active")?,
        },
        "epoch_converged" => Event::EpochConverged {
            epoch: f.u32("epoch")?,
            slots: f.u64("slots")?,
            converged: f.bool("converged")?,
            phi: f.f64("phi")?,
        },
        "span" => Event::SpanRecorded {
            kind: {
                let tag = f.str("kind")?;
                crate::SpanKind::from_tag(tag)
                    .ok_or_else(|| format!("unknown span kind {tag:?}"))?
            },
            nanos: f.u64("nanos")?,
        },
        "run_completed" => Event::RunCompleted {
            slots: f.u64("slots")?,
            updates: f.u64("updates")?,
            converged: f.bool("converged")?,
            phi: f.f64("phi")?,
        },
        other => return Err(format!("unknown event type {other:?}")),
    };
    Ok(event)
}

/// Parses one JSONL trace line back into an [`Event`].
pub fn parse_line(line: &str) -> Result<Event, String> {
    event_from_fields(&split_fields(line)?)
}

/// Reads a whole JSONL trace file (blank lines skipped).
pub fn read_trace(path: &Path) -> Result<Vec<Event>, TraceError> {
    let file = std::fs::File::open(path).map_err(|e| TraceError::Io(e.to_string()))?;
    let reader = std::io::BufReader::new(file);
    let mut events = Vec::new();
    for (idx, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| TraceError::Io(e.to_string()))?;
        if line.trim().is_empty() {
            continue;
        }
        events.push(parse_line(&line).map_err(|detail| TraceError::Parse {
            line: idx + 1,
            detail,
        })?);
    }
    Ok(events)
}

/// One point of a reconstructed ϕ trajectory.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhiPoint {
    /// Index of the source event in the trace.
    pub event_index: usize,
    /// ϕ rebuilt by summing deltas from the last anchor.
    pub reconstructed: f64,
    /// ϕ the engine recorded on the event.
    pub recorded: f64,
}

/// The result of replaying a trace's ϕ-carrying events.
#[derive(Debug, Clone, PartialEq)]
pub struct PhiReconstruction {
    /// One point per ϕ-carrying event, in trace order.
    pub points: Vec<PhiPoint>,
    /// Committed moves summed into the trajectory.
    pub moves: usize,
    /// Join/leave re-anchors encountered.
    pub anchors: usize,
    /// `max |reconstructed − recorded|` over all points.
    pub max_abs_err: f64,
}

/// Replays a trace: starting from the `engine_init` anchor, sums every
/// `move_committed` ϕ-delta and compares the running value against each
/// recorded absolute ϕ (moves, slot ends, epoch ends). Join/leave events
/// carry no delta, so they *re-anchor* the running value at their recorded
/// ϕ (and count in [`PhiReconstruction::anchors`]).
///
/// The engine maintains ϕ with Neumaier-compensated accumulation, so an
/// uncorrupted trace reconstructs within `1e-9` — the `trace_report` bin
/// asserts exactly that.
pub fn reconstruct_phi(events: &[Event]) -> Result<PhiReconstruction, TraceError> {
    let mut running: Option<f64> = None;
    let mut points = Vec::new();
    let mut moves = 0usize;
    let mut anchors = 0usize;
    let mut max_abs_err = 0.0f64;
    let mut push = |points: &mut Vec<PhiPoint>, idx: usize, reconstructed: f64, recorded: f64| {
        let err = (reconstructed - recorded).abs();
        if err > max_abs_err {
            max_abs_err = err;
        }
        points.push(PhiPoint {
            event_index: idx,
            reconstructed,
            recorded,
        });
    };
    for (idx, event) in events.iter().enumerate() {
        match *event {
            Event::EngineInit { phi, .. } => {
                running = Some(phi);
                anchors += 1;
                push(&mut points, idx, phi, phi);
            }
            Event::MoveCommitted { phi_delta, phi, .. } => {
                let current = running.ok_or(TraceError::MissingAnchor)?;
                let next = current + phi_delta;
                running = Some(next);
                moves += 1;
                push(&mut points, idx, next, phi);
            }
            Event::UserJoined { phi, .. } | Event::UserLeft { phi, .. } => {
                // No delta on churn events: re-anchor at the recorded value.
                running = Some(phi);
                anchors += 1;
                push(&mut points, idx, phi, phi);
            }
            Event::SlotCompleted { phi, .. }
            | Event::EpochConverged { phi, .. }
            | Event::RunCompleted { phi, .. } => {
                let current = running.ok_or(TraceError::MissingAnchor)?;
                push(&mut points, idx, current, phi);
            }
            _ => {}
        }
    }
    Ok(PhiReconstruction {
        points,
        moves,
        anchors,
        max_abs_err,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_events() -> Vec<Event> {
        vec![
            Event::EngineInit {
                users: 3,
                tasks: 2,
                phi: 1.5,
                total_profit: 4.25,
            },
            Event::MoveCommitted {
                user: 1,
                from_route: 0,
                to_route: 2,
                phi_delta: 0.125,
                profit_delta: 0.0625,
                phi: 1.625,
                total_profit: 4.5,
            },
            Event::UserJoined {
                user: 3,
                phi: 2.0,
                total_profit: 5.0,
            },
            Event::UserLeft {
                user: 0,
                phi: 1.0,
                total_profit: 3.0,
            },
            Event::ResponseEvaluated {
                user: 2,
                kind: ResponseKind::Better,
                improving: true,
            },
            Event::RefreshPass {
                kind: ResponseKind::Best,
                scans: 41,
                improving: 9,
            },
            Event::SlotCompleted {
                slot: 7,
                updated: 1,
                phi: 1.0,
                total_profit: 3.0,
            },
            Event::FrameSent {
                bytes: 33,
                seq: 17,
                lamport: 40,
            },
            Event::FrameReceived {
                bytes: 33,
                seq: 17,
                lamport: 41,
            },
            Event::FrameDropped {
                bytes: 12,
                seq: 18,
                lamport: 42,
            },
            Event::Retransmission {
                attempt: 2,
                seq: 18,
                lamport: 43,
            },
            Event::EpochStarted {
                epoch: 1,
                joins: 2,
                leaves: 1,
                active: 10,
            },
            Event::EpochConverged {
                epoch: 1,
                slots: 5,
                converged: true,
                phi: 1.0,
            },
            Event::SpanRecorded {
                kind: crate::SpanKind::EngineApply,
                nanos: 12_345,
            },
            Event::RunCompleted {
                slots: 12,
                updates: 9,
                converged: false,
                phi: 1.0,
            },
        ]
    }

    #[test]
    fn json_roundtrip_every_variant() {
        for event in all_events() {
            let line = event_to_json(&event);
            let parsed = parse_line(&line).unwrap_or_else(|e| panic!("{line}: {e}"));
            assert_eq!(parsed, event, "roundtrip of {line}");
        }
    }

    #[test]
    fn json_roundtrip_is_bit_exact_for_awkward_floats() {
        let event = Event::MoveCommitted {
            user: 0,
            from_route: 0,
            to_route: 1,
            phi_delta: 0.1 + 0.2,
            profit_delta: -1.0e-17,
            phi: f64::MIN_POSITIVE,
            total_profit: 1.0e300,
        };
        let parsed = parse_line(&event_to_json(&event)).unwrap();
        assert_eq!(parsed, event);
    }

    #[test]
    fn precausal_frame_lines_parse_with_zero_stamps() {
        // Exact line shapes JsonlSubscriber wrote before the causal layer
        // existed (PR 3–4): no seq/lamport fields at all.
        let cases: [(&str, Event); 4] = [
            (
                "{\"type\":\"frame_sent\",\"bytes\":33}",
                Event::FrameSent {
                    bytes: 33,
                    seq: 0,
                    lamport: 0,
                },
            ),
            (
                "{\"type\":\"frame_received\",\"bytes\":33}",
                Event::FrameReceived {
                    bytes: 33,
                    seq: 0,
                    lamport: 0,
                },
            ),
            (
                "{\"type\":\"frame_dropped\",\"bytes\":12}",
                Event::FrameDropped {
                    bytes: 12,
                    seq: 0,
                    lamport: 0,
                },
            ),
            (
                "{\"type\":\"retransmission\",\"attempt\":2}",
                Event::Retransmission {
                    attempt: 2,
                    seq: 0,
                    lamport: 0,
                },
            ),
        ];
        for (line, expected) in cases {
            let parsed = parse_line(line).unwrap_or_else(|e| panic!("{line}: {e}"));
            assert_eq!(parsed, expected, "old-style line {line}");
            // Re-emitting and re-parsing the migrated event is stable: the
            // new-style line round-trips to the same event.
            let reemitted = event_to_json(&parsed);
            assert!(reemitted.contains("\"seq\":0"));
            assert_eq!(parse_line(&reemitted).unwrap(), expected);
        }
    }

    #[test]
    fn present_causal_fields_must_still_be_valid() {
        assert!(
            parse_line("{\"type\":\"frame_sent\",\"bytes\":1,\"seq\":-3,\"lamport\":0}").is_err()
        );
        assert!(
            parse_line("{\"type\":\"frame_sent\",\"bytes\":1,\"seq\":1,\"lamport\":\"soon\"}")
                .is_err()
        );
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(parse_line("not json").is_err());
        assert!(parse_line("{}").is_err());
        assert!(parse_line("{\"type\":\"no_such_event\"}").is_err());
        assert!(parse_line("{\"type\":\"frame_sent\"}").is_err());
        assert!(parse_line("{\"type\":\"frame_sent\",\"bytes\":\"many\"}").is_err());
        assert!(parse_line("{\"type\":\"span\",\"kind\":\"warp\",\"nanos\":1}").is_err());
        assert!(parse_line("{\"type\":\"span\",\"kind\":\"slot\"}").is_err());
        assert!(parse_line("{\"type\":\"run_completed\",\"slots\":1,\"updates\":1,\"converged\":maybe,\"phi\":0.0}").is_err());
        // Non-finite floats are data corruption, not a trajectory.
        assert!(parse_line(
            "{\"type\":\"user_joined\",\"user\":1,\"phi\":NaN,\"total_profit\":0.0}"
        )
        .is_err());
    }

    #[test]
    fn reconstruction_sums_deltas_and_reanchors() {
        let events = vec![
            Event::EngineInit {
                users: 2,
                tasks: 1,
                phi: 10.0,
                total_profit: 0.0,
            },
            Event::MoveCommitted {
                user: 0,
                from_route: 0,
                to_route: 1,
                phi_delta: 2.5,
                profit_delta: 1.25,
                phi: 12.5,
                total_profit: 0.0,
            },
            Event::SlotCompleted {
                slot: 1,
                updated: 1,
                phi: 12.5,
                total_profit: 0.0,
            },
            Event::UserJoined {
                user: 2,
                phi: 20.0,
                total_profit: 0.0,
            },
            Event::MoveCommitted {
                user: 2,
                from_route: 0,
                to_route: 1,
                phi_delta: -1.0,
                profit_delta: -0.5,
                phi: 19.0,
                total_profit: 0.0,
            },
        ];
        let rec = reconstruct_phi(&events).unwrap();
        assert_eq!(rec.moves, 2);
        assert_eq!(rec.anchors, 2);
        assert_eq!(rec.points.len(), 5);
        assert!(rec.max_abs_err < 1e-12, "err {}", rec.max_abs_err);
        assert_eq!(rec.points.last().unwrap().reconstructed, 19.0);
    }

    #[test]
    fn reconstruction_requires_an_anchor() {
        let events = vec![Event::MoveCommitted {
            user: 0,
            from_route: 0,
            to_route: 1,
            phi_delta: 1.0,
            profit_delta: 0.5,
            phi: 1.0,
            total_profit: 0.0,
        }];
        assert_eq!(reconstruct_phi(&events), Err(TraceError::MissingAnchor));
    }

    #[test]
    fn reconstruction_reports_drift() {
        let events = vec![
            Event::EngineInit {
                users: 1,
                tasks: 1,
                phi: 0.0,
                total_profit: 0.0,
            },
            Event::MoveCommitted {
                user: 0,
                from_route: 0,
                to_route: 1,
                phi_delta: 1.0,
                profit_delta: 0.5,
                phi: 1.5, // inconsistent with the delta
                total_profit: 0.0,
            },
        ];
        let rec = reconstruct_phi(&events).unwrap();
        assert!((rec.max_abs_err - 0.5).abs() < 1e-12);
    }
}
