//! Streaming JSONL trace exporter.

use crate::event::Event;
use crate::subscriber::Subscriber;
use crate::trace::event_to_json;
use parking_lot::Mutex;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;

/// Writes every event as one JSON line to a buffered file.
///
/// The writer sits behind a mutex (events from the threaded runtime
/// interleave but never tear) and is flushed on [`flush`](Self::flush) and
/// on drop. The line format is the one [`crate::trace::parse_line`]
/// reads back; `trace_report` consumes these files.
pub struct JsonlSubscriber {
    writer: Mutex<BufWriter<File>>,
}

impl std::fmt::Debug for JsonlSubscriber {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("JsonlSubscriber")
    }
}

impl JsonlSubscriber {
    /// Creates (truncating) the trace file at `path`.
    pub fn create(path: &Path) -> io::Result<Self> {
        let file = File::create(path)?;
        Ok(Self {
            writer: Mutex::new(BufWriter::new(file)),
        })
    }

    /// Opens the trace file at `path` truncated to `keep_bytes` and appends
    /// from there — the resume path of a checkpointed shard worker, which
    /// discards the lines written after its last checkpoint flush and
    /// re-emits them identically on replay (the merged post-mortem stays
    /// seamless: no duplicate or missing per-sender sequence numbers).
    pub fn resume_at(path: &Path, keep_bytes: u64) -> io::Result<Self> {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .truncate(false)
            .write(true)
            .open(path)?;
        file.set_len(keep_bytes)?;
        use std::io::Seek as _;
        let mut file = file;
        file.seek(io::SeekFrom::End(0))?;
        Ok(Self {
            writer: Mutex::new(BufWriter::new(file)),
        })
    }

    /// Flushes and reports the current trace length in bytes — the offset a
    /// checkpoint records for [`resume_at`](Self::resume_at).
    pub fn flushed_len(&self) -> io::Result<u64> {
        let mut writer = self.writer.lock();
        writer.flush()?;
        Ok(writer.get_ref().metadata()?.len())
    }

    /// Flushes buffered lines to disk.
    pub fn flush(&self) -> io::Result<()> {
        self.writer.lock().flush()
    }
}

impl Subscriber for JsonlSubscriber {
    fn event(&self, event: &Event) {
        let line = event_to_json(event);
        let mut writer = self.writer.lock();
        // A full disk mid-trace must not take the run down with it; the
        // trace is diagnostics, the run is the product.
        let _ = writer.write_all(line.as_bytes());
        let _ = writer.write_all(b"\n");
    }
}

impl Drop for JsonlSubscriber {
    fn drop(&mut self) {
        let _ = self.writer.lock().flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::read_trace;

    #[test]
    fn written_trace_reads_back() {
        let path = std::env::temp_dir().join("vcs_obs_jsonl_roundtrip.jsonl");
        let events = [
            Event::EngineInit {
                users: 2,
                tasks: 3,
                phi: 0.75,
                total_profit: 1.5,
            },
            Event::FrameSent {
                bytes: 41,
                seq: 1,
                lamport: 1,
            },
            Event::RunCompleted {
                slots: 4,
                updates: 2,
                converged: true,
                phi: 0.75,
            },
        ];
        {
            let sub = JsonlSubscriber::create(&path).unwrap();
            for event in &events {
                sub.event(event);
            }
            sub.flush().unwrap();
        }
        let read = read_trace(&path).unwrap();
        assert_eq!(read, events);
        let _ = std::fs::remove_file(&path);
    }
}
