//! The [`Subscriber`] sink trait, the [`Obs`] handle instrumented code
//! holds, and the two structural subscribers ([`NoopSubscriber`],
//! [`RingBufferSubscriber`]).

use crate::event::Event;
use parking_lot::Mutex;
use std::fmt;
use std::sync::Arc;

/// A sink for [`Event`]s.
///
/// Implementations must be `Send + Sync`: the threaded runtime emits from
/// one thread per agent plus the platform thread, and the stats subscriber
/// is read while a run is in flight. `event` takes `&self`; interior
/// mutability (atomics, a short critical section) is the implementor's
/// choice.
pub trait Subscriber: Send + Sync {
    /// Delivers one event. Called synchronously on the emitting thread —
    /// keep it cheap; the instrumented hot paths (engine moves, frame
    /// delivery) run it inline.
    fn event(&self, event: &Event);
}

/// The observability handle instrumented code holds.
///
/// Internally an `Option<Arc<dyn Subscriber>>`. The crucial property is the
/// shape of [`Obs::emit`]: it takes a **closure**, so when the handle is
/// [`disabled`](Obs::disabled) the cost is a single `None` branch and the
/// event payload (floats, counters) is never even constructed. This is what
/// keeps the engine's no-op overhead under 2% on the `BENCH_obs.json`
/// benchmark.
///
/// Cloning an enabled handle clones the `Arc` — an engine, a platform and
/// an epoch scheduler can all share one subscriber.
#[derive(Clone, Default)]
pub struct Obs(Option<Arc<dyn Subscriber>>);

impl Obs {
    /// A handle with no subscriber: every [`emit`](Obs::emit) is one branch.
    pub const fn disabled() -> Self {
        Obs(None)
    }

    /// A handle delivering to `subscriber`.
    pub fn new(subscriber: Arc<dyn Subscriber>) -> Self {
        Obs(Some(subscriber))
    }

    /// Whether a subscriber is attached.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Emits the event produced by `make` — iff a subscriber is attached.
    /// The closure is not called otherwise.
    #[inline]
    pub fn emit(&self, make: impl FnOnce() -> Event) {
        if let Some(subscriber) = &self.0 {
            subscriber.event(&make());
        }
    }

    /// Opens a wall-clock profiling span of `kind` (see [`crate::span`]):
    /// the returned timer emits an [`Event::SpanRecorded`] when dropped or
    /// [`finish`](crate::SpanTimer::finish)ed. Disabled, this is a single
    /// branch — the monotonic clock is never read.
    #[inline]
    pub fn span(&self, kind: crate::SpanKind) -> crate::SpanTimer<'_> {
        crate::SpanTimer {
            obs: self,
            kind,
            start: self.0.is_some().then(std::time::Instant::now),
        }
    }

    /// Runs `work`, timing it as a span of `kind` iff a subscriber is
    /// attached. The work itself **always** runs — only the clock reads and
    /// the event are gated behind the enabled branch.
    #[inline]
    pub fn time<R>(&self, kind: crate::SpanKind, work: impl FnOnce() -> R) -> R {
        if self.0.is_some() {
            let start = std::time::Instant::now();
            let out = work();
            let nanos = crate::span::elapsed_nanos(start);
            self.emit(|| Event::SpanRecorded { kind, nanos });
            out
        } else {
            work()
        }
    }
}

impl fmt::Debug for Obs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(if self.0.is_some() {
            "Obs(enabled)"
        } else {
            "Obs(disabled)"
        })
    }
}

/// Discards every event. Exists so the overhead benchmark can price the
/// *enabled* dispatch path (branch + dynamic call + event construction)
/// separately from any real sink.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopSubscriber;

impl Subscriber for NoopSubscriber {
    #[inline]
    fn event(&self, _event: &Event) {}
}

/// A bounded in-memory capture: keeps the most recent `capacity` events
/// behind one short mutexed critical section (push into a pre-grown ring,
/// no allocation after warm-up).
#[derive(Debug)]
pub struct RingBufferSubscriber {
    ring: Mutex<Ring>,
}

#[derive(Debug)]
struct Ring {
    events: Vec<Event>,
    capacity: usize,
    /// Overwrite cursor once `events` is full.
    next: usize,
    /// Total events ever delivered (≥ `events.len()`).
    total: u64,
}

impl RingBufferSubscriber {
    /// A ring keeping the most recent `capacity` events (`capacity ≥ 1`).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            ring: Mutex::new(Ring {
                events: Vec::with_capacity(capacity.min(1 << 16)),
                capacity,
                next: 0,
                total: 0,
            }),
        }
    }

    /// Total events delivered over the subscriber's lifetime (including
    /// ones already overwritten).
    pub fn total(&self) -> u64 {
        self.ring.lock().total
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        let ring = self.ring.lock();
        let mut out = Vec::with_capacity(ring.events.len());
        // `next` is the oldest element once the ring has wrapped.
        out.extend_from_slice(&ring.events[ring.next..]);
        out.extend_from_slice(&ring.events[..ring.next]);
        out
    }

    /// Drops all retained events (the lifetime `total` is kept).
    pub fn clear(&self) {
        let mut ring = self.ring.lock();
        ring.events.clear();
        ring.next = 0;
    }
}

impl Subscriber for RingBufferSubscriber {
    fn event(&self, event: &Event) {
        let mut ring = self.ring.lock();
        ring.total += 1;
        if ring.events.len() < ring.capacity {
            ring.events.push(*event);
        } else {
            let at = ring.next;
            ring.events[at] = *event;
            ring.next = (at + 1) % ring.capacity;
        }
    }
}

/// Delivers every event to several subscribers in order. This is how the
/// always-on [`FlightRecorder`] rides along a [`StatsSubscriber`] or a
/// [`WatchdogSubscriber`] behind one [`Obs`] handle (which carries exactly
/// one sink).
///
/// [`FlightRecorder`]: crate::FlightRecorder
/// [`StatsSubscriber`]: crate::StatsSubscriber
/// [`WatchdogSubscriber`]: crate::WatchdogSubscriber
pub struct FanoutSubscriber {
    sinks: Vec<Arc<dyn Subscriber>>,
}

impl FanoutSubscriber {
    /// A fan-out over `sinks`, delivered in the given order.
    pub fn new(sinks: Vec<Arc<dyn Subscriber>>) -> Self {
        Self { sinks }
    }

    /// An [`Obs`] handle delivering to every sink.
    pub fn obs(sinks: Vec<Arc<dyn Subscriber>>) -> Obs {
        Obs::new(Arc::new(Self::new(sinks)))
    }
}

impl Subscriber for FanoutSubscriber {
    fn event(&self, event: &Event) {
        for sink in &self.sinks {
            sink.event(event);
        }
    }
}

impl fmt::Debug for FanoutSubscriber {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "FanoutSubscriber({} sinks)", self.sinks.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slot(n: u64) -> Event {
        Event::SlotCompleted {
            slot: n,
            updated: 1,
            phi: n as f64,
            total_profit: 0.0,
        }
    }

    #[test]
    fn disabled_obs_never_runs_the_closure() {
        let obs = Obs::disabled();
        let mut ran = false;
        obs.emit(|| {
            ran = true;
            slot(0)
        });
        assert!(!ran);
        assert!(!obs.enabled());
    }

    #[test]
    fn enabled_obs_delivers() {
        let ring = Arc::new(RingBufferSubscriber::new(8));
        let obs = Obs::new(ring.clone());
        assert!(obs.enabled());
        obs.emit(|| slot(1));
        assert_eq!(ring.events(), vec![slot(1)]);
        assert_eq!(ring.total(), 1);
    }

    #[test]
    fn ring_overwrites_oldest_in_order() {
        let ring = RingBufferSubscriber::new(3);
        for n in 0..5 {
            ring.event(&slot(n));
        }
        assert_eq!(ring.events(), vec![slot(2), slot(3), slot(4)]);
        assert_eq!(ring.total(), 5);
        ring.clear();
        assert!(ring.events().is_empty());
        assert_eq!(ring.total(), 5);
        ring.event(&slot(9));
        assert_eq!(ring.events(), vec![slot(9)]);
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let ring = RingBufferSubscriber::new(0);
        ring.event(&slot(0));
        ring.event(&slot(1));
        assert_eq!(ring.events(), vec![slot(1)]);
    }

    #[test]
    fn fanout_delivers_to_every_sink_in_order() {
        let a = Arc::new(RingBufferSubscriber::new(8));
        let b = Arc::new(RingBufferSubscriber::new(8));
        let obs = FanoutSubscriber::obs(vec![a.clone(), b.clone()]);
        obs.emit(|| slot(1));
        obs.emit(|| slot(2));
        assert_eq!(a.events(), vec![slot(1), slot(2)]);
        assert_eq!(b.events(), vec![slot(1), slot(2)]);
    }
}
