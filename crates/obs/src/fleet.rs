//! The coordinator's fleet-level metrics registry: every telemetry frame
//! the workers stream in (plus the coordinator's own self-captures) folds
//! into one [`FleetStats`], served by a single `/metrics` endpoint with
//! `shard="<id>"` labels and fleet-wide rollups.
//!
//! Frames are cumulative snapshots, so folding is idempotent: per
//! `(shard, incarnation)` the registry keeps the highest-`seq` frame and
//! discards stale arrivals (UDP telemetry may be lost, duplicated, or
//! reordered — none of it skews a counter). A shard's totals sum the final
//! snapshot of every incarnation, so the work a crashed worker did before
//! its SIGKILL stays in the fleet counters after the respawn resets the
//! live process's counters to zero.
//!
//! Label scheme (validated by `validate_prometheus_text`, which dedups
//! histogram `le` buckets per family *name*): per-shard series are labeled
//! counters and gauges — one `# TYPE` line per family, one sample per
//! shard — while span latency *histograms* exist only as unlabeled
//! fleet-wide rollups (`vcs_fleet_span_<tag>_seconds`), with per-shard span
//! activity exposed as labeled `_count`/`_seconds` counters instead.

use crate::span::SpanKind;
use crate::stats::render_span_cells;
use crate::telemetry::{NetStats, SpanCells, TelemetryFrame, COORD_SHARD, COUNTER_NAMES};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};

/// Watchdog alert-kind labels, in the frame's `watchdog` column order.
const ALERT_KINDS: [&str; 3] = ["phi_decrease", "slot_budget_overrun", "stale_livelock"];

/// The fleet-level registry: latest telemetry frame per
/// `(shard, incarnation)`, plus ingest accounting.
#[derive(Default)]
pub struct FleetStats {
    /// shard → incarnation → highest-`seq` frame seen.
    frames: Mutex<BTreeMap<u32, BTreeMap<u32, TelemetryFrame>>>,
    /// Frames accepted (newer than what was held).
    accepted: AtomicU64,
    /// Frames discarded as stale (older or equal `seq`).
    stale: AtomicU64,
}

/// One shard's rollup across incarnations: counter columns summed, span
/// cells summed, net counters summed; gauges (ϕ, profit, in-flight, RTT)
/// come from the live (highest) incarnation only.
#[derive(Debug, Clone)]
pub struct ShardTotals {
    /// The shard id ([`COORD_SHARD`] = the coordinator).
    pub shard: u32,
    /// Incarnations that have reported (≥ 1).
    pub incarnations: u64,
    /// Stats counters in [`COUNTER_NAMES`] order, summed.
    pub counters: Vec<u64>,
    /// Response lanes, summed.
    pub lanes: [u64; 4],
    /// Span cells per kind, summed.
    pub spans: Vec<SpanCells>,
    /// Net counters summed; `in_flight`/`srtt_ms` from the live incarnation.
    pub net: NetStats,
    /// Watchdog alert counts, summed.
    pub watchdog: [u64; 3],
    /// Latest ϕ of the live incarnation, if ever set.
    pub phi: Option<f64>,
    /// Latest total profit of the live incarnation, if ever set.
    pub total_profit: Option<f64>,
}

impl ShardTotals {
    /// Total latched watchdog alerts.
    pub fn alerts(&self) -> u64 {
        self.watchdog.iter().sum()
    }
}

/// Renders a shard id as its label value (`"coord"` for the coordinator).
pub fn shard_label(shard: u32) -> String {
    if shard == COORD_SHARD {
        "coord".to_string()
    } else {
        shard.to_string()
    }
}

impl FleetStats {
    /// An empty registry.
    pub fn new() -> Self {
        FleetStats::default()
    }

    /// Folds one frame in. Returns `true` if the frame was accepted —
    /// i.e. it is the first, or strictly newer (`seq`) than the held frame
    /// for its `(shard, incarnation)` slot.
    pub fn ingest(&self, frame: TelemetryFrame) -> bool {
        let mut frames = self.frames.lock();
        let slot = frames
            .entry(frame.shard)
            .or_default()
            .entry(frame.incarnation);
        let accepted = match slot {
            std::collections::btree_map::Entry::Vacant(v) => {
                v.insert(frame);
                true
            }
            std::collections::btree_map::Entry::Occupied(mut o) => {
                if frame.seq > o.get().seq {
                    o.insert(frame);
                    true
                } else {
                    false
                }
            }
        };
        drop(frames);
        if accepted {
            self.accepted.fetch_add(1, Ordering::Relaxed);
        } else {
            self.stale.fetch_add(1, Ordering::Relaxed);
        }
        accepted
    }

    /// Frames accepted so far.
    pub fn frames_ingested(&self) -> u64 {
        self.accepted.load(Ordering::Relaxed)
    }

    /// Frames discarded as stale.
    pub fn frames_stale(&self) -> u64 {
        self.stale.load(Ordering::Relaxed)
    }

    /// Shards that have reported, ascending (the coordinator last).
    pub fn shards(&self) -> Vec<u32> {
        let frames = self.frames.lock();
        let mut ids: Vec<u32> = frames
            .keys()
            .copied()
            .filter(|&s| s != COORD_SHARD)
            .collect();
        if frames.contains_key(&COORD_SHARD) {
            ids.push(COORD_SHARD);
        }
        ids
    }

    /// One shard's cross-incarnation rollup, if it has reported.
    pub fn shard_totals(&self, shard: u32) -> Option<ShardTotals> {
        let frames = self.frames.lock();
        let incs = frames.get(&shard)?;
        let live = incs
            .values()
            .next_back()
            .expect("non-empty incarnation map");
        let mut totals = ShardTotals {
            shard,
            incarnations: incs.len() as u64,
            counters: vec![0; COUNTER_NAMES.len()],
            lanes: [0; 4],
            spans: vec![SpanCells::zero(); SpanKind::ALL.len()],
            net: NetStats {
                in_flight: live.net.in_flight,
                srtt_ms: live.net.srtt_ms,
                ..NetStats::default()
            },
            watchdog: [0; 3],
            phi: live.phi(),
            total_profit: {
                let v = f64::from_bits(live.profit_bits);
                (!v.is_nan()).then_some(v)
            },
        };
        for frame in incs.values() {
            for (total, &v) in totals.counters.iter_mut().zip(&frame.counters) {
                *total += v;
            }
            for (total, &v) in totals.lanes.iter_mut().zip(&frame.lanes) {
                *total += v;
            }
            for (total, row) in totals.spans.iter_mut().zip(&frame.spans) {
                total.sum_nanos += row.sum_nanos;
                for (cell, &v) in total.buckets.iter_mut().zip(&row.buckets) {
                    *cell += v;
                }
            }
            totals.net.retransmissions += frame.net.retransmissions;
            totals.net.drops += frame.net.drops;
            totals.net.naks += frame.net.naks;
            totals.net.dup_drops += frame.net.dup_drops;
            totals.net.rto_fires += frame.net.rto_fires;
            for (total, &v) in totals.watchdog.iter_mut().zip(&frame.watchdog) {
                *total += v;
            }
        }
        Some(totals)
    }

    /// Total latched watchdog alerts across the fleet.
    pub fn total_alerts(&self) -> u64 {
        self.shards()
            .into_iter()
            .filter_map(|s| self.shard_totals(s))
            .map(|t| t.alerts())
            .sum()
    }

    /// Renders the whole fleet as one Prometheus text-exposition document:
    /// per-shard labeled counter/gauge families plus unlabeled fleet-wide
    /// span-latency histograms. Always passes `validate_prometheus_text`.
    pub fn prometheus_text(&self) -> String {
        let totals: Vec<ShardTotals> = self
            .shards()
            .into_iter()
            .filter_map(|s| self.shard_totals(s))
            .collect();
        let mut out = String::new();

        let _ = writeln!(out, "# TYPE vcs_fleet_processes gauge");
        let _ = writeln!(out, "vcs_fleet_processes {}", totals.len());
        let _ = writeln!(out, "# TYPE vcs_fleet_frames_ingested_total counter");
        let _ = writeln!(
            out,
            "vcs_fleet_frames_ingested_total {}",
            self.frames_ingested()
        );
        let _ = writeln!(out, "# TYPE vcs_fleet_frames_stale_total counter");
        let _ = writeln!(out, "vcs_fleet_frames_stale_total {}", self.frames_stale());

        let _ = writeln!(out, "# TYPE vcs_fleet_incarnations gauge");
        for t in &totals {
            let _ = writeln!(
                out,
                "vcs_fleet_incarnations{{shard=\"{}\"}} {}",
                shard_label(t.shard),
                t.incarnations
            );
        }

        // Stats counters, one labeled family per column.
        for (i, name) in COUNTER_NAMES.iter().enumerate() {
            let _ = writeln!(out, "# TYPE vcs_fleet_{name}_total counter");
            for t in &totals {
                let _ = writeln!(
                    out,
                    "vcs_fleet_{name}_total{{shard=\"{}\"}} {}",
                    shard_label(t.shard),
                    t.counters[i]
                );
            }
        }

        // Response lanes: rule × improving.
        let _ = writeln!(out, "# TYPE vcs_fleet_responses_total counter");
        for t in &totals {
            for (lane, &v) in t.lanes.iter().enumerate() {
                let rule = if lane & 0b10 != 0 { "better" } else { "best" };
                let improving = lane & 0b01 != 0;
                let _ = writeln!(
                    out,
                    "vcs_fleet_responses_total{{shard=\"{}\",rule=\"{rule}\",improving=\"{improving}\"}} {v}",
                    shard_label(t.shard)
                );
            }
        }

        // Transport/ARQ health.
        for (name, get) in [
            (
                "retransmissions",
                (|n: &NetStats| n.retransmissions) as fn(&NetStats) -> u64,
            ),
            ("drops", |n| n.drops),
            ("naks", |n| n.naks),
            ("dup_drops", |n| n.dup_drops),
            ("rto_fires", |n| n.rto_fires),
        ] {
            let _ = writeln!(out, "# TYPE vcs_fleet_net_{name}_total counter");
            for t in &totals {
                let _ = writeln!(
                    out,
                    "vcs_fleet_net_{name}_total{{shard=\"{}\"}} {}",
                    shard_label(t.shard),
                    get(&t.net)
                );
            }
        }
        let _ = writeln!(out, "# TYPE vcs_fleet_net_in_flight gauge");
        for t in &totals {
            let _ = writeln!(
                out,
                "vcs_fleet_net_in_flight{{shard=\"{}\"}} {}",
                shard_label(t.shard),
                t.net.in_flight
            );
        }
        let _ = writeln!(out, "# TYPE vcs_fleet_net_srtt_ms gauge");
        for t in &totals {
            let _ = writeln!(
                out,
                "vcs_fleet_net_srtt_ms{{shard=\"{}\"}} {}",
                shard_label(t.shard),
                t.net.srtt_ms
            );
        }

        // Latched watchdog alerts per kind.
        let _ = writeln!(out, "# TYPE vcs_fleet_watchdog_alerts_total counter");
        for t in &totals {
            for (i, kind) in ALERT_KINDS.iter().enumerate() {
                let _ = writeln!(
                    out,
                    "vcs_fleet_watchdog_alerts_total{{shard=\"{}\",kind=\"{kind}\"}} {}",
                    shard_label(t.shard),
                    t.watchdog[i]
                );
            }
        }

        // Live gauges, only where ever set.
        let _ = writeln!(out, "# TYPE vcs_fleet_phi gauge");
        for t in &totals {
            if let Some(phi) = t.phi {
                let _ = writeln!(
                    out,
                    "vcs_fleet_phi{{shard=\"{}\"}} {phi:?}",
                    shard_label(t.shard)
                );
            }
        }
        let _ = writeln!(out, "# TYPE vcs_fleet_total_profit gauge");
        for t in &totals {
            if let Some(profit) = t.total_profit {
                let _ = writeln!(
                    out,
                    "vcs_fleet_total_profit{{shard=\"{}\"}} {profit:?}",
                    shard_label(t.shard)
                );
            }
        }

        // Per-shard span activity as labeled counters (histograms can only
        // roll up fleet-wide: the validator dedups `le` per family name).
        let _ = writeln!(out, "# TYPE vcs_fleet_span_count_total counter");
        for t in &totals {
            for kind in SpanKind::ALL {
                let _ = writeln!(
                    out,
                    "vcs_fleet_span_count_total{{shard=\"{}\",kind=\"{}\"}} {}",
                    shard_label(t.shard),
                    kind.tag(),
                    t.spans[kind.index()].count()
                );
            }
        }
        let _ = writeln!(out, "# TYPE vcs_fleet_span_seconds_total counter");
        for t in &totals {
            for kind in SpanKind::ALL {
                let _ = writeln!(
                    out,
                    "vcs_fleet_span_seconds_total{{shard=\"{}\",kind=\"{}\"}} {:?}",
                    shard_label(t.shard),
                    kind.tag(),
                    t.spans[kind.index()].sum_nanos as f64 * 1e-9
                );
            }
        }

        // Fleet-wide latency rollups: one unlabeled histogram per kind.
        for kind in SpanKind::ALL {
            let mut cells = [0u64; crate::telemetry::SPAN_BUCKETS];
            let mut sum_nanos = 0u64;
            for t in &totals {
                let row = &t.spans[kind.index()];
                sum_nanos += row.sum_nanos;
                for (cell, &v) in cells.iter_mut().zip(&row.buckets) {
                    *cell += v;
                }
            }
            render_span_cells(
                &format!("vcs_fleet_span_{}_seconds", kind.tag()),
                &cells,
                sum_nanos,
                &mut out,
            );
        }

        out
    }

    /// A compact JSON snapshot (the `/snapshot` endpoint of a fleet
    /// exporter): per-shard slots, alerts, incarnations, and net counters.
    pub fn snapshot_json(&self) -> String {
        let mut out = String::from("{\"shards\":[");
        for (i, shard) in self.shards().into_iter().enumerate() {
            let Some(t) = self.shard_totals(shard) else {
                continue;
            };
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"shard\":\"{}\",\"incarnations\":{},\"slots\":{},\"alerts\":{},\
                 \"retransmissions\":{},\"drops\":{},\"naks\":{},\"dup_drops\":{},\
                 \"rto_fires\":{},\"in_flight\":{},\"srtt_ms\":{}}}",
                shard_label(t.shard),
                t.incarnations,
                t.counters.first().copied().unwrap_or(0),
                t.alerts(),
                t.net.retransmissions,
                t.net.drops,
                t.net.naks,
                t.net.dup_drops,
                t.net.rto_fires,
                t.net.in_flight,
                t.net.srtt_ms
            );
        }
        let _ = write!(
            out,
            "],\"frames_ingested\":{},\"frames_stale\":{}}}",
            self.frames_ingested(),
            self.frames_stale()
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::validate_prometheus_text;

    fn frame(shard: u32, incarnation: u32, seq: u64, slots: u64) -> TelemetryFrame {
        let mut f = TelemetryFrame::empty(shard);
        f.incarnation = incarnation;
        f.seq = seq;
        f.counters[0] = slots;
        f.net.retransmissions = seq;
        f.spans[SpanKind::Slot.index()].buckets[3] = slots;
        f.spans[SpanKind::Slot.index()].sum_nanos = slots * 1_000;
        f
    }

    #[test]
    fn stale_frames_lose_newer_frames_win() {
        let fleet = FleetStats::new();
        assert!(fleet.ingest(frame(0, 0, 5, 50)));
        assert!(!fleet.ingest(frame(0, 0, 4, 40)), "stale seq accepted");
        assert!(!fleet.ingest(frame(0, 0, 5, 99)), "equal seq accepted");
        assert!(fleet.ingest(frame(0, 0, 6, 60)));
        let t = fleet.shard_totals(0).expect("shard 0");
        assert_eq!(t.counters[0], 60);
        assert_eq!(fleet.frames_ingested(), 2);
        assert_eq!(fleet.frames_stale(), 2);
    }

    #[test]
    fn incarnations_sum_and_live_gauges_come_from_the_latest() {
        let fleet = FleetStats::new();
        let mut dead = frame(1, 0, 9, 100);
        dead.phi_bits = 7.5f64.to_bits();
        dead.net.in_flight = 4;
        fleet.ingest(dead);
        let mut live = frame(1, 1, 2, 30);
        live.phi_bits = 3.25f64.to_bits();
        live.net.in_flight = 1;
        fleet.ingest(live);
        let t = fleet.shard_totals(1).expect("shard 1");
        assert_eq!(t.incarnations, 2);
        assert_eq!(t.counters[0], 130, "counters sum across incarnations");
        assert_eq!(t.net.retransmissions, 11);
        assert_eq!(t.net.in_flight, 1, "gauge from live incarnation");
        assert_eq!(t.phi, Some(3.25), "gauge from live incarnation");
        assert_eq!(t.spans[SpanKind::Slot.index()].count(), 130);
    }

    #[test]
    fn exposition_passes_the_validator_and_labels_shards() {
        let fleet = FleetStats::new();
        fleet.ingest(frame(0, 0, 1, 10));
        fleet.ingest(frame(2, 1, 3, 20));
        let mut coord = frame(COORD_SHARD, 0, 7, 0);
        coord.phi_bits = 1.5f64.to_bits();
        fleet.ingest(coord);
        let text = fleet.prometheus_text();
        validate_prometheus_text(&text).expect("fleet exposition is valid");
        assert!(text.contains("vcs_fleet_slots_total{shard=\"0\"} 10"));
        assert!(text.contains("vcs_fleet_slots_total{shard=\"2\"} 20"));
        assert!(text.contains("vcs_fleet_incarnations{shard=\"coord\"} 1"));
        assert!(text.contains("vcs_fleet_phi{shard=\"coord\"} 1.5"));
        assert!(text.contains("# TYPE vcs_fleet_span_slot_seconds histogram"));
        assert!(text.contains("vcs_fleet_span_count_total{shard=\"0\",kind=\"slot\"} 10"));
        assert_eq!(fleet.shards(), vec![0, 2, COORD_SHARD]);
    }

    #[test]
    fn empty_registry_renders_a_valid_document() {
        let fleet = FleetStats::new();
        validate_prometheus_text(&fleet.prometheus_text()).expect("empty exposition");
        assert_eq!(fleet.total_alerts(), 0);
        assert_eq!(
            fleet.snapshot_json(),
            "{\"shards\":[],\"frames_ingested\":0,\"frames_stale\":0}"
        );
    }

    #[test]
    fn watchdog_alerts_roll_up() {
        let fleet = FleetStats::new();
        let mut f = frame(0, 0, 1, 1);
        f.watchdog = [2, 0, 1];
        fleet.ingest(f);
        assert_eq!(fleet.total_alerts(), 3);
        let text = fleet.prometheus_text();
        assert!(
            text.contains("vcs_fleet_watchdog_alerts_total{shard=\"0\",kind=\"phi_decrease\"} 2")
        );
    }
}
