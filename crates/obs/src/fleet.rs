//! The coordinator's fleet-level metrics registry: every telemetry frame
//! the workers stream in (plus the coordinator's own self-captures) folds
//! into one [`FleetStats`], served by a single `/metrics` endpoint with
//! `shard="<id>"` labels and fleet-wide rollups.
//!
//! Frames are cumulative snapshots, so folding is idempotent: per shard
//! the registry keeps the highest-`seq` frame of the **live** (highest)
//! incarnation and discards stale arrivals (UDP telemetry may be lost,
//! duplicated, or reordered — none of it skews a counter). When a respawn
//! supersedes an incarnation, the dead incarnation's final frame is folded
//! into a fixed-size retired accumulator and the frame itself is evicted —
//! so a shard that crash-loops holds one frame plus one accumulator, not
//! one frame per incarnation forever. The fold keeps the work a crashed
//! worker did in the fleet counters; the trade-off is that a frame from a
//! superseded incarnation arriving *after* the respawn's first frame (at
//! most one telemetry window of late UDP) is counted stale and dropped.
//!
//! Liveness is tracked per shard: a shard whose last accepted frame is
//! older than the configured staleness horizon is reported in the
//! `vcs_fleet_stale_shards` gauge (its counters stay in the rollup — dead
//! workers' work is still work).
//!
//! Label scheme (validated by `validate_prometheus_text`, which dedups
//! histogram `le` buckets per family *name*): per-shard series are labeled
//! counters and gauges — one `# TYPE` line per family, one sample per
//! shard — while span latency *histograms* exist only as unlabeled
//! fleet-wide rollups (`vcs_fleet_span_<tag>_seconds`), with per-shard span
//! activity exposed as labeled `_count`/`_seconds` counters instead.

use crate::span::SpanKind;
use crate::stats::{render_span_cells, SpanQuantiles};
use crate::telemetry::{NetStats, SpanCells, TelemetryFrame, COORD_SHARD, COUNTER_NAMES};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Watchdog alert-kind labels, in the frame's `watchdog` column order.
const ALERT_KINDS: [&str; 3] = ["phi_decrease", "slot_budget_overrun", "stale_livelock"];

/// A shard with no accepted frame for this long counts as stale (the
/// telemetry cadence is ~4 frames/s, so this is ~20 missed frames).
const DEFAULT_STALE_AFTER: Duration = Duration::from_secs(5);

/// Monotone counter columns of dead incarnations, folded into one
/// fixed-size accumulator so retired frames can be evicted.
#[derive(Debug, Clone, Default)]
struct RetiredTotals {
    counters: Vec<u64>,
    lanes: [u64; 4],
    spans: Vec<SpanCells>,
    net: NetStats,
    watchdog: [u64; 3],
    incarnations: u64,
}

impl RetiredTotals {
    fn fold(&mut self, frame: &TelemetryFrame) {
        if self.counters.is_empty() {
            self.counters = vec![0; COUNTER_NAMES.len()];
            self.spans = vec![SpanCells::zero(); SpanKind::ALL.len()];
        }
        for (total, &v) in self.counters.iter_mut().zip(&frame.counters) {
            *total += v;
        }
        for (total, &v) in self.lanes.iter_mut().zip(&frame.lanes) {
            *total += v;
        }
        for (total, row) in self.spans.iter_mut().zip(&frame.spans) {
            total.sum_nanos += row.sum_nanos;
            for (cell, &v) in total.buckets.iter_mut().zip(&row.buckets) {
                *cell += v;
            }
        }
        self.net.retransmissions += frame.net.retransmissions;
        self.net.drops += frame.net.drops;
        self.net.naks += frame.net.naks;
        self.net.dup_drops += frame.net.dup_drops;
        self.net.rto_fires += frame.net.rto_fires;
        for (total, &v) in self.watchdog.iter_mut().zip(&frame.watchdog) {
            *total += v;
        }
        self.incarnations += 1;
    }
}

/// Per-shard registry slot: the live incarnation's latest frame, the
/// retired accumulator, and the liveness stamp.
struct ShardState {
    live: TelemetryFrame,
    retired: RetiredTotals,
    last_accept: Instant,
}

/// The fleet-level registry: one live telemetry frame plus one retired
/// accumulator per shard, with ingest accounting and staleness tracking.
pub struct FleetStats {
    /// shard → live frame + retired totals.
    shards_map: Mutex<BTreeMap<u32, ShardState>>,
    /// Frames accepted (newer than what was held).
    accepted: AtomicU64,
    /// Frames discarded as stale (older/equal `seq`, or from a superseded
    /// incarnation).
    stale: AtomicU64,
    /// Staleness horizon for [`stale_shards`](Self::stale_shards).
    stale_after: Duration,
}

impl Default for FleetStats {
    fn default() -> Self {
        FleetStats {
            shards_map: Mutex::new(BTreeMap::new()),
            accepted: AtomicU64::new(0),
            stale: AtomicU64::new(0),
            stale_after: DEFAULT_STALE_AFTER,
        }
    }
}

/// One shard's rollup across incarnations: counter columns summed, span
/// cells summed, net counters summed; gauges (ϕ, profit, in-flight, RTT)
/// come from the live (highest) incarnation only.
#[derive(Debug, Clone)]
pub struct ShardTotals {
    /// The shard id ([`COORD_SHARD`] = the coordinator).
    pub shard: u32,
    /// Incarnations that have reported (≥ 1).
    pub incarnations: u64,
    /// Stats counters in [`COUNTER_NAMES`] order, summed.
    pub counters: Vec<u64>,
    /// Response lanes, summed.
    pub lanes: [u64; 4],
    /// Span cells per kind, summed.
    pub spans: Vec<SpanCells>,
    /// Net counters summed; `in_flight`/`srtt_ms` from the live incarnation.
    pub net: NetStats,
    /// Watchdog alert counts, summed.
    pub watchdog: [u64; 3],
    /// Latest ϕ of the live incarnation, if ever set.
    pub phi: Option<f64>,
    /// Latest total profit of the live incarnation, if ever set.
    pub total_profit: Option<f64>,
    /// Whether the shard's last accepted frame is older than the registry's
    /// staleness horizon.
    pub stale: bool,
}

impl ShardTotals {
    /// Total latched watchdog alerts.
    pub fn alerts(&self) -> u64 {
        self.watchdog.iter().sum()
    }
}

/// Renders a shard id as its label value (`"coord"` for the coordinator).
pub fn shard_label(shard: u32) -> String {
    if shard == COORD_SHARD {
        "coord".to_string()
    } else {
        shard.to_string()
    }
}

impl FleetStats {
    /// An empty registry with the default staleness horizon.
    pub fn new() -> Self {
        FleetStats::default()
    }

    /// Sets the staleness horizon: a shard whose last accepted frame is
    /// older than this counts toward [`stale_shards`](Self::stale_shards).
    pub fn with_stale_after(mut self, stale_after: Duration) -> Self {
        self.stale_after = stale_after;
        self
    }

    /// Folds one frame in. Returns `true` if the frame was accepted — it
    /// is the shard's first, from a newer incarnation (the superseded
    /// incarnation's final frame folds into the retired accumulator and is
    /// evicted), or strictly newer (`seq`) within the live incarnation.
    /// Frames from superseded incarnations are counted stale and dropped.
    pub fn ingest(&self, frame: TelemetryFrame) -> bool {
        let now = Instant::now();
        let mut shards = self.shards_map.lock();
        let accepted = match shards.entry(frame.shard) {
            std::collections::btree_map::Entry::Vacant(v) => {
                v.insert(ShardState {
                    live: frame,
                    retired: RetiredTotals::default(),
                    last_accept: now,
                });
                true
            }
            std::collections::btree_map::Entry::Occupied(mut o) => {
                let state = o.get_mut();
                if frame.incarnation > state.live.incarnation {
                    let dead = std::mem::replace(&mut state.live, frame);
                    state.retired.fold(&dead);
                    state.last_accept = now;
                    true
                } else if frame.incarnation == state.live.incarnation && frame.seq > state.live.seq
                {
                    state.live = frame;
                    state.last_accept = now;
                    true
                } else {
                    false
                }
            }
        };
        drop(shards);
        if accepted {
            self.accepted.fetch_add(1, Ordering::Relaxed);
        } else {
            self.stale.fetch_add(1, Ordering::Relaxed);
        }
        accepted
    }

    /// Frames accepted so far.
    pub fn frames_ingested(&self) -> u64 {
        self.accepted.load(Ordering::Relaxed)
    }

    /// Frames discarded as stale.
    pub fn frames_stale(&self) -> u64 {
        self.stale.load(Ordering::Relaxed)
    }

    /// Shards that have reported, ascending (the coordinator last).
    pub fn shards(&self) -> Vec<u32> {
        let shards = self.shards_map.lock();
        let mut ids: Vec<u32> = shards
            .keys()
            .copied()
            .filter(|&s| s != COORD_SHARD)
            .collect();
        if shards.contains_key(&COORD_SHARD) {
            ids.push(COORD_SHARD);
        }
        ids
    }

    /// Shards whose last accepted frame is older than the staleness
    /// horizon — the `vcs_fleet_stale_shards` gauge.
    pub fn stale_shards(&self) -> u64 {
        let shards = self.shards_map.lock();
        shards
            .values()
            .filter(|s| s.last_accept.elapsed() > self.stale_after)
            .count() as u64
    }

    /// One shard's cross-incarnation rollup, if it has reported: live
    /// frame plus the retired accumulator.
    pub fn shard_totals(&self, shard: u32) -> Option<ShardTotals> {
        let shards = self.shards_map.lock();
        let state = shards.get(&shard)?;
        let live = &state.live;
        let retired = &state.retired;
        let mut totals = ShardTotals {
            shard,
            incarnations: retired.incarnations + 1,
            counters: vec![0; COUNTER_NAMES.len()],
            lanes: [0; 4],
            spans: vec![SpanCells::zero(); SpanKind::ALL.len()],
            net: NetStats {
                in_flight: live.net.in_flight,
                srtt_ms: live.net.srtt_ms,
                ..NetStats::default()
            },
            watchdog: [0; 3],
            phi: live.phi(),
            total_profit: {
                let v = f64::from_bits(live.profit_bits);
                (!v.is_nan()).then_some(v)
            },
            stale: state.last_accept.elapsed() > self.stale_after,
        };
        for (total, &v) in totals.counters.iter_mut().zip(&live.counters) {
            *total += v;
        }
        for (total, &v) in totals.lanes.iter_mut().zip(&live.lanes) {
            *total += v;
        }
        for (total, row) in totals.spans.iter_mut().zip(&live.spans) {
            total.sum_nanos += row.sum_nanos;
            for (cell, &v) in total.buckets.iter_mut().zip(&row.buckets) {
                *cell += v;
            }
        }
        totals.net.retransmissions += live.net.retransmissions;
        totals.net.drops += live.net.drops;
        totals.net.naks += live.net.naks;
        totals.net.dup_drops += live.net.dup_drops;
        totals.net.rto_fires += live.net.rto_fires;
        for (total, &v) in totals.watchdog.iter_mut().zip(&live.watchdog) {
            *total += v;
        }
        if retired.incarnations > 0 {
            for (total, &v) in totals.counters.iter_mut().zip(&retired.counters) {
                *total += v;
            }
            for (total, &v) in totals.lanes.iter_mut().zip(&retired.lanes) {
                *total += v;
            }
            for (total, row) in totals.spans.iter_mut().zip(&retired.spans) {
                total.sum_nanos += row.sum_nanos;
                for (cell, &v) in total.buckets.iter_mut().zip(&row.buckets) {
                    *cell += v;
                }
            }
            totals.net.retransmissions += retired.net.retransmissions;
            totals.net.drops += retired.net.drops;
            totals.net.naks += retired.net.naks;
            totals.net.dup_drops += retired.net.dup_drops;
            totals.net.rto_fires += retired.net.rto_fires;
            for (total, &v) in totals.watchdog.iter_mut().zip(&retired.watchdog) {
                *total += v;
            }
        }
        Some(totals)
    }

    /// Fleet-wide span quantile rows (p50/p90/p99/max per kind), summed
    /// over every shard's rollup — the table `fleet_report` prints instead
    /// of raw decade buckets. Kinds with no spans are omitted.
    pub fn span_quantiles(&self) -> Vec<SpanQuantiles> {
        let totals: Vec<ShardTotals> = self
            .shards()
            .into_iter()
            .filter_map(|s| self.shard_totals(s))
            .collect();
        SpanKind::ALL
            .into_iter()
            .filter_map(|kind| {
                let mut cells = [0u64; crate::telemetry::SPAN_BUCKETS];
                for t in &totals {
                    for (cell, &v) in cells.iter_mut().zip(&t.spans[kind.index()].buckets) {
                        *cell += v;
                    }
                }
                SpanQuantiles::from_cells(kind, &cells)
            })
            .collect()
    }

    /// Total latched watchdog alerts across the fleet.
    pub fn total_alerts(&self) -> u64 {
        self.shards()
            .into_iter()
            .filter_map(|s| self.shard_totals(s))
            .map(|t| t.alerts())
            .sum()
    }

    /// Renders the whole fleet as one Prometheus text-exposition document:
    /// per-shard labeled counter/gauge families plus unlabeled fleet-wide
    /// span-latency histograms. Always passes `validate_prometheus_text`.
    pub fn prometheus_text(&self) -> String {
        let totals: Vec<ShardTotals> = self
            .shards()
            .into_iter()
            .filter_map(|s| self.shard_totals(s))
            .collect();
        let mut out = String::new();

        let _ = writeln!(out, "# TYPE vcs_fleet_processes gauge");
        let _ = writeln!(out, "vcs_fleet_processes {}", totals.len());
        let _ = writeln!(out, "# TYPE vcs_fleet_frames_ingested_total counter");
        let _ = writeln!(
            out,
            "vcs_fleet_frames_ingested_total {}",
            self.frames_ingested()
        );
        let _ = writeln!(out, "# TYPE vcs_fleet_frames_stale_total counter");
        let _ = writeln!(out, "vcs_fleet_frames_stale_total {}", self.frames_stale());
        let _ = writeln!(out, "# TYPE vcs_fleet_stale_shards gauge");
        let _ = writeln!(out, "vcs_fleet_stale_shards {}", self.stale_shards());

        let _ = writeln!(out, "# TYPE vcs_fleet_incarnations gauge");
        for t in &totals {
            let _ = writeln!(
                out,
                "vcs_fleet_incarnations{{shard=\"{}\"}} {}",
                shard_label(t.shard),
                t.incarnations
            );
        }

        // Stats counters, one labeled family per column.
        for (i, name) in COUNTER_NAMES.iter().enumerate() {
            let _ = writeln!(out, "# TYPE vcs_fleet_{name}_total counter");
            for t in &totals {
                let _ = writeln!(
                    out,
                    "vcs_fleet_{name}_total{{shard=\"{}\"}} {}",
                    shard_label(t.shard),
                    t.counters[i]
                );
            }
        }

        // Response lanes: rule × improving.
        let _ = writeln!(out, "# TYPE vcs_fleet_responses_total counter");
        for t in &totals {
            for (lane, &v) in t.lanes.iter().enumerate() {
                let rule = if lane & 0b10 != 0 { "better" } else { "best" };
                let improving = lane & 0b01 != 0;
                let _ = writeln!(
                    out,
                    "vcs_fleet_responses_total{{shard=\"{}\",rule=\"{rule}\",improving=\"{improving}\"}} {v}",
                    shard_label(t.shard)
                );
            }
        }

        // Transport/ARQ health.
        for (name, get) in [
            (
                "retransmissions",
                (|n: &NetStats| n.retransmissions) as fn(&NetStats) -> u64,
            ),
            ("drops", |n| n.drops),
            ("naks", |n| n.naks),
            ("dup_drops", |n| n.dup_drops),
            ("rto_fires", |n| n.rto_fires),
        ] {
            let _ = writeln!(out, "# TYPE vcs_fleet_net_{name}_total counter");
            for t in &totals {
                let _ = writeln!(
                    out,
                    "vcs_fleet_net_{name}_total{{shard=\"{}\"}} {}",
                    shard_label(t.shard),
                    get(&t.net)
                );
            }
        }
        let _ = writeln!(out, "# TYPE vcs_fleet_net_in_flight gauge");
        for t in &totals {
            let _ = writeln!(
                out,
                "vcs_fleet_net_in_flight{{shard=\"{}\"}} {}",
                shard_label(t.shard),
                t.net.in_flight
            );
        }
        let _ = writeln!(out, "# TYPE vcs_fleet_net_srtt_ms gauge");
        for t in &totals {
            let _ = writeln!(
                out,
                "vcs_fleet_net_srtt_ms{{shard=\"{}\"}} {}",
                shard_label(t.shard),
                t.net.srtt_ms
            );
        }

        // Latched watchdog alerts per kind.
        let _ = writeln!(out, "# TYPE vcs_fleet_watchdog_alerts_total counter");
        for t in &totals {
            for (i, kind) in ALERT_KINDS.iter().enumerate() {
                let _ = writeln!(
                    out,
                    "vcs_fleet_watchdog_alerts_total{{shard=\"{}\",kind=\"{kind}\"}} {}",
                    shard_label(t.shard),
                    t.watchdog[i]
                );
            }
        }

        // Live gauges, only where ever set.
        let _ = writeln!(out, "# TYPE vcs_fleet_phi gauge");
        for t in &totals {
            if let Some(phi) = t.phi {
                let _ = writeln!(
                    out,
                    "vcs_fleet_phi{{shard=\"{}\"}} {phi:?}",
                    shard_label(t.shard)
                );
            }
        }
        let _ = writeln!(out, "# TYPE vcs_fleet_total_profit gauge");
        for t in &totals {
            if let Some(profit) = t.total_profit {
                let _ = writeln!(
                    out,
                    "vcs_fleet_total_profit{{shard=\"{}\"}} {profit:?}",
                    shard_label(t.shard)
                );
            }
        }

        // Per-shard span activity as labeled counters (histograms can only
        // roll up fleet-wide: the validator dedups `le` per family name).
        let _ = writeln!(out, "# TYPE vcs_fleet_span_count_total counter");
        for t in &totals {
            for kind in SpanKind::ALL {
                let _ = writeln!(
                    out,
                    "vcs_fleet_span_count_total{{shard=\"{}\",kind=\"{}\"}} {}",
                    shard_label(t.shard),
                    kind.tag(),
                    t.spans[kind.index()].count()
                );
            }
        }
        let _ = writeln!(out, "# TYPE vcs_fleet_span_seconds_total counter");
        for t in &totals {
            for kind in SpanKind::ALL {
                let _ = writeln!(
                    out,
                    "vcs_fleet_span_seconds_total{{shard=\"{}\",kind=\"{}\"}} {:?}",
                    shard_label(t.shard),
                    kind.tag(),
                    t.spans[kind.index()].sum_nanos as f64 * 1e-9
                );
            }
        }

        // Fleet-wide latency rollups: one unlabeled histogram per kind.
        for kind in SpanKind::ALL {
            let mut cells = [0u64; crate::telemetry::SPAN_BUCKETS];
            let mut sum_nanos = 0u64;
            for t in &totals {
                let row = &t.spans[kind.index()];
                sum_nanos += row.sum_nanos;
                for (cell, &v) in cells.iter_mut().zip(&row.buckets) {
                    *cell += v;
                }
            }
            render_span_cells(
                &format!("vcs_fleet_span_{}_seconds", kind.tag()),
                &cells,
                sum_nanos,
                &mut out,
            );
        }

        out
    }

    /// A compact JSON snapshot (the `/snapshot` endpoint of a fleet
    /// exporter): per-shard slots, alerts, incarnations, and net counters.
    pub fn snapshot_json(&self) -> String {
        let mut out = String::from("{\"shards\":[");
        for (i, shard) in self.shards().into_iter().enumerate() {
            let Some(t) = self.shard_totals(shard) else {
                continue;
            };
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"shard\":\"{}\",\"stale\":{},\"incarnations\":{},\"slots\":{},\"alerts\":{},\
                 \"retransmissions\":{},\"drops\":{},\"naks\":{},\"dup_drops\":{},\
                 \"rto_fires\":{},\"in_flight\":{},\"srtt_ms\":{}}}",
                shard_label(t.shard),
                t.stale,
                t.incarnations,
                t.counters.first().copied().unwrap_or(0),
                t.alerts(),
                t.net.retransmissions,
                t.net.drops,
                t.net.naks,
                t.net.dup_drops,
                t.net.rto_fires,
                t.net.in_flight,
                t.net.srtt_ms
            );
        }
        let _ = write!(
            out,
            "],\"frames_ingested\":{},\"frames_stale\":{},\"stale_shards\":{}}}",
            self.frames_ingested(),
            self.frames_stale(),
            self.stale_shards()
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::validate_prometheus_text;

    fn frame(shard: u32, incarnation: u32, seq: u64, slots: u64) -> TelemetryFrame {
        let mut f = TelemetryFrame::empty(shard);
        f.incarnation = incarnation;
        f.seq = seq;
        f.counters[0] = slots;
        f.net.retransmissions = seq;
        f.spans[SpanKind::Slot.index()].buckets[3] = slots;
        f.spans[SpanKind::Slot.index()].sum_nanos = slots * 1_000;
        f
    }

    #[test]
    fn stale_frames_lose_newer_frames_win() {
        let fleet = FleetStats::new();
        assert!(fleet.ingest(frame(0, 0, 5, 50)));
        assert!(!fleet.ingest(frame(0, 0, 4, 40)), "stale seq accepted");
        assert!(!fleet.ingest(frame(0, 0, 5, 99)), "equal seq accepted");
        assert!(fleet.ingest(frame(0, 0, 6, 60)));
        let t = fleet.shard_totals(0).expect("shard 0");
        assert_eq!(t.counters[0], 60);
        assert_eq!(fleet.frames_ingested(), 2);
        assert_eq!(fleet.frames_stale(), 2);
    }

    #[test]
    fn incarnations_sum_and_live_gauges_come_from_the_latest() {
        let fleet = FleetStats::new();
        let mut dead = frame(1, 0, 9, 100);
        dead.phi_bits = 7.5f64.to_bits();
        dead.net.in_flight = 4;
        fleet.ingest(dead);
        let mut live = frame(1, 1, 2, 30);
        live.phi_bits = 3.25f64.to_bits();
        live.net.in_flight = 1;
        fleet.ingest(live);
        let t = fleet.shard_totals(1).expect("shard 1");
        assert_eq!(t.incarnations, 2);
        assert_eq!(t.counters[0], 130, "counters sum across incarnations");
        assert_eq!(t.net.retransmissions, 11);
        assert_eq!(t.net.in_flight, 1, "gauge from live incarnation");
        assert_eq!(t.phi, Some(3.25), "gauge from live incarnation");
        assert_eq!(t.spans[SpanKind::Slot.index()].count(), 130);
    }

    #[test]
    fn exposition_passes_the_validator_and_labels_shards() {
        let fleet = FleetStats::new();
        fleet.ingest(frame(0, 0, 1, 10));
        fleet.ingest(frame(2, 1, 3, 20));
        let mut coord = frame(COORD_SHARD, 0, 7, 0);
        coord.phi_bits = 1.5f64.to_bits();
        fleet.ingest(coord);
        let text = fleet.prometheus_text();
        validate_prometheus_text(&text).expect("fleet exposition is valid");
        assert!(text.contains("vcs_fleet_slots_total{shard=\"0\"} 10"));
        assert!(text.contains("vcs_fleet_slots_total{shard=\"2\"} 20"));
        assert!(text.contains("vcs_fleet_incarnations{shard=\"coord\"} 1"));
        assert!(text.contains("vcs_fleet_phi{shard=\"coord\"} 1.5"));
        assert!(text.contains("# TYPE vcs_fleet_span_slot_seconds histogram"));
        assert!(text.contains("vcs_fleet_span_count_total{shard=\"0\",kind=\"slot\"} 10"));
        assert_eq!(fleet.shards(), vec![0, 2, COORD_SHARD]);
    }

    #[test]
    fn empty_registry_renders_a_valid_document() {
        let fleet = FleetStats::new();
        validate_prometheus_text(&fleet.prometheus_text()).expect("empty exposition");
        assert_eq!(fleet.total_alerts(), 0);
        assert_eq!(
            fleet.snapshot_json(),
            "{\"shards\":[],\"frames_ingested\":0,\"frames_stale\":0,\"stale_shards\":0}"
        );
    }

    #[test]
    fn superseded_incarnations_are_evicted_but_their_work_is_kept() {
        let fleet = FleetStats::new();
        fleet.ingest(frame(0, 0, 9, 100));
        fleet.ingest(frame(0, 1, 2, 30));
        // Late UDP from the dead incarnation: dropped as stale, not merged.
        assert!(!fleet.ingest(frame(0, 0, 10, 999)));
        assert_eq!(fleet.frames_stale(), 1);
        let t = fleet.shard_totals(0).expect("shard 0");
        assert_eq!(t.incarnations, 2);
        assert_eq!(t.counters[0], 130, "folded work survives eviction");
        assert_eq!(t.spans[SpanKind::Slot.index()].count(), 130);
        assert_eq!(t.net.retransmissions, 11);
        // A third incarnation folds the second into the accumulator too.
        fleet.ingest(frame(0, 2, 1, 7));
        let t = fleet.shard_totals(0).expect("shard 0");
        assert_eq!(t.incarnations, 3);
        assert_eq!(t.counters[0], 137);
    }

    #[test]
    fn stale_shards_gauge_tracks_the_horizon() {
        let fleet = FleetStats::new().with_stale_after(Duration::from_secs(3600));
        fleet.ingest(frame(0, 0, 1, 1));
        fleet.ingest(frame(1, 0, 1, 1));
        assert_eq!(fleet.stale_shards(), 0);
        assert!(!fleet.shard_totals(0).unwrap().stale);
        let fleet = FleetStats::new().with_stale_after(Duration::ZERO);
        fleet.ingest(frame(0, 0, 1, 1));
        fleet.ingest(frame(1, 0, 1, 1));
        assert_eq!(fleet.stale_shards(), 2);
        assert!(fleet.shard_totals(0).unwrap().stale);
        let text = fleet.prometheus_text();
        assert!(text.contains("vcs_fleet_stale_shards 2"));
        assert!(fleet.snapshot_json().contains("\"stale_shards\":2"));
    }

    #[test]
    fn fleet_span_quantiles_roll_up_across_shards() {
        let fleet = FleetStats::new();
        fleet.ingest(frame(0, 0, 1, 10));
        fleet.ingest(frame(1, 0, 1, 20));
        let rows = fleet.span_quantiles();
        assert_eq!(rows.len(), 1, "only Slot recorded spans");
        assert_eq!(rows[0].kind, SpanKind::Slot);
        assert_eq!(rows[0].count, 30);
        assert!(rows[0].p50_nanos <= rows[0].p99_nanos);
        assert!(rows[0].p99_nanos <= rows[0].max_nanos);
        assert!(FleetStats::new().span_quantiles().is_empty());
    }

    #[test]
    fn watchdog_alerts_roll_up() {
        let fleet = FleetStats::new();
        let mut f = frame(0, 0, 1, 1);
        f.watchdog = [2, 0, 1];
        fleet.ingest(f);
        assert_eq!(fleet.total_alerts(), 3);
        let text = fleet.prometheus_text();
        assert!(
            text.contains("vcs_fleet_watchdog_alerts_total{shard=\"0\",kind=\"phi_decrease\"} 2")
        );
    }
}
