//! Serving-mode metrics and the SLO burn-rate monitor.
//!
//! A long-lived `platform_serve` process is judged the way any always-on
//! service is: sustained throughput and tail latency against a budget, not
//! a one-shot convergence certificate. Two pieces live here:
//!
//! * [`ServeMetrics`] — request/reply counters, the cumulative server-side
//!   request-latency [`LatencyHistogram`], and the per-window **sustained
//!   slots/sec** and **goodput** gauges. The serving loop's ticker calls
//!   [`roll_window`](ServeMetrics::roll_window) once per window with the
//!   engine's cumulative slot count; the gauges always show the last
//!   completed window, so a stalled engine reads 0 rather than a decaying
//!   lifetime average.
//! * [`SloMonitor`] — a windowed latency budget check in the spirit of the
//!   PR-5 watchdogs: each window's request-latency p99 is compared against
//!   a budget, and `burn_windows` **consecutive** breaches latch one
//!   [`Alert`] of kind [`AlertKind::SloBurnRate`] (delivered through the
//!   same [`AlertSink`] fabric as watchdog alerts). A single clean window
//!   resets the streak and re-arms the latch, so a sustained burn alerts
//!   once per episode, not once per window. Empty windows count as clean:
//!   no traffic is no evidence of breach.

use crate::alert_sink::AlertSink;
use crate::latency::LatencyHistogram;
use crate::stats::Gauge;
use crate::watchdog::{Alert, AlertKind};
use parking_lot::Mutex;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The request classes a serving process answers. Mirrors the serve wire
/// protocol (`vcs-runtime`) without depending on it — `vcs-obs` sits below
/// the runtime in the crate graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestKind {
    /// Admit a new synthetic vehicle (churn Join).
    Join,
    /// Retire a vehicle (churn Leave).
    Leave,
    /// One best-response evaluation (and move, if improving) for a vehicle.
    BestRespond,
    /// Read-only stats query (slots, ϕ, population).
    Query,
}

impl RequestKind {
    /// Every kind, in label order.
    pub const ALL: [RequestKind; 4] = [
        RequestKind::Join,
        RequestKind::Leave,
        RequestKind::BestRespond,
        RequestKind::Query,
    ];

    /// Stable snake_case label used in the `vcs_serve_requests_total`
    /// exposition.
    pub fn tag(self) -> &'static str {
        match self {
            RequestKind::Join => "join",
            RequestKind::Leave => "leave",
            RequestKind::BestRespond => "best_respond",
            RequestKind::Query => "query",
        }
    }

    fn index(self) -> usize {
        self as usize
    }
}

#[derive(Debug, Default)]
struct WindowBase {
    slots: u64,
    ok_replies: u64,
}

/// Serving-layer metrics: request/reply counters, cumulative request
/// latency, and last-window throughput gauges. All recording paths are
/// lock-free; only the once-per-window roll takes a mutex.
#[derive(Debug, Default)]
pub struct ServeMetrics {
    requests: [AtomicU64; RequestKind::ALL.len()],
    replies_ok: AtomicU64,
    replies_rejected: AtomicU64,
    latency: LatencyHistogram,
    windows: AtomicU64,
    slots_per_sec: Gauge,
    goodput_rps: Gauge,
    base: Mutex<WindowBase>,
}

impl ServeMetrics {
    /// Fresh all-zero metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Counts one request at ingress.
    pub fn observe_request(&self, kind: RequestKind) {
        self.requests[kind.index()].fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one reply and records its server-side latency (ingress stamp
    /// to reply write), nanoseconds.
    pub fn observe_reply(&self, ok: bool, latency_nanos: u64) {
        if ok {
            self.replies_ok.fetch_add(1, Ordering::Relaxed);
        } else {
            self.replies_rejected.fetch_add(1, Ordering::Relaxed);
        }
        self.latency.record_nanos(latency_nanos);
    }

    /// Closes one observation window: `slots_now` is the engines'
    /// cumulative decision-slot count, `window_secs` the wall-clock width
    /// of the window just ended. Updates the sustained slots/sec and
    /// goodput (ok replies per second) gauges from the deltas.
    pub fn roll_window(&self, slots_now: u64, window_secs: f64) {
        if window_secs <= 0.0 {
            return;
        }
        let ok_now = self.replies_ok.load(Ordering::Relaxed);
        let mut base = self.base.lock();
        let slot_delta = slots_now.saturating_sub(base.slots);
        let ok_delta = ok_now.saturating_sub(base.ok_replies);
        base.slots = slots_now;
        base.ok_replies = ok_now;
        drop(base);
        self.slots_per_sec.set(slot_delta as f64 / window_secs);
        self.goodput_rps.set(ok_delta as f64 / window_secs);
        self.windows.fetch_add(1, Ordering::Relaxed);
    }

    /// Requests observed for `kind`.
    pub fn requests(&self, kind: RequestKind) -> u64 {
        self.requests[kind.index()].load(Ordering::Relaxed)
    }

    /// Total `(ok, rejected)` replies.
    pub fn replies(&self) -> (u64, u64) {
        (
            self.replies_ok.load(Ordering::Relaxed),
            self.replies_rejected.load(Ordering::Relaxed),
        )
    }

    /// Windows rolled so far.
    pub fn windows(&self) -> u64 {
        self.windows.load(Ordering::Relaxed)
    }

    /// Last-window sustained decision slots per second (`None` before the
    /// first roll).
    pub fn slots_per_sec(&self) -> Option<f64> {
        self.slots_per_sec.get()
    }

    /// Last-window ok replies per second (`None` before the first roll).
    pub fn goodput_rps(&self) -> Option<f64> {
        self.goodput_rps.get()
    }

    /// The cumulative server-side request-latency histogram.
    pub fn latency(&self) -> &LatencyHistogram {
        &self.latency
    }

    /// Prometheus v0.0.4 exposition of the `vcs_serve_*` family, appended
    /// to the fleet exposition by the serving exporter.
    pub fn prometheus_text(&self) -> String {
        let mut out = String::with_capacity(1024);
        let _ = writeln!(out, "# TYPE vcs_serve_requests_total counter");
        for kind in RequestKind::ALL {
            let _ = writeln!(
                out,
                "vcs_serve_requests_total{{kind=\"{}\"}} {}",
                kind.tag(),
                self.requests(kind)
            );
        }
        let (ok, rejected) = self.replies();
        let _ = writeln!(out, "# TYPE vcs_serve_replies_total counter");
        let _ = writeln!(out, "vcs_serve_replies_total{{status=\"ok\"}} {ok}");
        let _ = writeln!(
            out,
            "vcs_serve_replies_total{{status=\"rejected\"}} {rejected}"
        );
        let _ = writeln!(out, "# TYPE vcs_serve_windows_total counter");
        let _ = writeln!(out, "vcs_serve_windows_total {}", self.windows());
        let snap = self.latency.snapshot();
        let _ = writeln!(out, "# TYPE vcs_serve_latency_samples_total counter");
        let _ = writeln!(out, "vcs_serve_latency_samples_total {}", snap.count());
        for (name, nanos) in [
            ("vcs_serve_latency_p50_seconds", snap.quantile_nanos(0.50)),
            ("vcs_serve_latency_p90_seconds", snap.quantile_nanos(0.90)),
            ("vcs_serve_latency_p99_seconds", snap.quantile_nanos(0.99)),
            ("vcs_serve_latency_p999_seconds", snap.quantile_nanos(0.999)),
            ("vcs_serve_latency_max_seconds", snap.max_nanos()),
            ("vcs_serve_latency_mean_seconds", snap.mean_nanos()),
        ] {
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {:?}", nanos as f64 * 1e-9);
        }
        for (name, gauge) in [
            ("vcs_serve_slots_per_sec", &self.slots_per_sec),
            ("vcs_serve_goodput_rps", &self.goodput_rps),
        ] {
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {:?}", gauge.get().unwrap_or(0.0));
        }
        out
    }
}

/// The latency budget an SLO window is judged against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SloConfig {
    /// Window p99 budget, nanoseconds.
    pub p99_budget_nanos: u64,
    /// Consecutive breached windows that latch one burn-rate alert.
    pub burn_windows: u32,
}

impl Default for SloConfig {
    fn default() -> Self {
        SloConfig {
            // A generous default: 250 ms p99 over 3 consecutive windows.
            p99_budget_nanos: 250_000_000,
            burn_windows: 3,
        }
    }
}

#[derive(Debug, Default)]
struct SloState {
    streak: u32,
    latched: bool,
    alerts: Vec<Alert>,
}

/// Windowed p99-vs-budget monitor latching [`AlertKind::SloBurnRate`]
/// alerts. See the module docs for the latch/re-arm semantics.
#[derive(Debug)]
pub struct SloMonitor {
    config: SloConfig,
    window: LatencyHistogram,
    windows: AtomicU64,
    breach_windows: AtomicU64,
    alerts_total: AtomicU64,
    last_p99: Gauge,
    state: Mutex<SloState>,
    sink: Option<Arc<dyn AlertSink>>,
}

impl SloMonitor {
    /// A monitor with the given budget, no push sink.
    pub fn new(config: SloConfig) -> Self {
        SloMonitor {
            config,
            window: LatencyHistogram::new(),
            windows: AtomicU64::new(0),
            breach_windows: AtomicU64::new(0),
            alerts_total: AtomicU64::new(0),
            last_p99: Gauge::default(),
            state: Mutex::new(SloState::default()),
            sink: None,
        }
    }

    /// Attaches a push sink; every latched alert is delivered exactly once.
    pub fn with_sink(mut self, sink: Arc<dyn AlertSink>) -> Self {
        self.sink = Some(sink);
        self
    }

    /// The configured budget.
    pub fn config(&self) -> SloConfig {
        self.config
    }

    /// Records one request latency into the current window.
    pub fn observe_nanos(&self, nanos: u64) {
        self.window.record_nanos(nanos);
    }

    /// Closes the current window: extracts its p99, compares against the
    /// budget, advances the breach streak and latches an alert when the
    /// streak reaches `burn_windows`. Returns the alert if one was raised
    /// this window. Called by the serving ticker; not re-entrant with
    /// itself (one ticker thread), concurrent with recorders.
    pub fn roll_window(&self) -> Option<Alert> {
        let snap = self.window.snapshot();
        self.window.reset();
        let window_index = self.windows.fetch_add(1, Ordering::Relaxed);
        if snap.count() == 0 {
            // No traffic: clean window, re-arm.
            let mut state = self.state.lock();
            state.streak = 0;
            state.latched = false;
            return None;
        }
        let p99 = snap.quantile_nanos(0.99);
        self.last_p99.set(p99 as f64 * 1e-9);
        let breached = p99 > self.config.p99_budget_nanos;
        let mut state = self.state.lock();
        if !breached {
            state.streak = 0;
            state.latched = false;
            return None;
        }
        self.breach_windows.fetch_add(1, Ordering::Relaxed);
        state.streak = state.streak.saturating_add(1);
        if state.streak < self.config.burn_windows || state.latched {
            return None;
        }
        state.latched = true;
        self.alerts_total.fetch_add(1, Ordering::Relaxed);
        let alert = Alert {
            kind: AlertKind::SloBurnRate,
            epoch: 0,
            slot: window_index,
            detail: format!(
                "window p99 {p99}ns exceeded budget {}ns for {} consecutive windows",
                self.config.p99_budget_nanos, state.streak
            ),
        };
        if let Some(sink) = &self.sink {
            sink.deliver(&alert);
        }
        state.alerts.push(alert.clone());
        Some(alert)
    }

    /// `(windows, breach_windows, alerts)` counters.
    pub fn counters(&self) -> (u64, u64, u64) {
        (
            self.windows.load(Ordering::Relaxed),
            self.breach_windows.load(Ordering::Relaxed),
            self.alerts_total.load(Ordering::Relaxed),
        )
    }

    /// Whether a burn-rate alert is currently latched.
    pub fn is_burning(&self) -> bool {
        self.state.lock().latched
    }

    /// The alerts as one `{"alerts":[...]}` JSON document (the serving
    /// exporter's `/alerts` body alongside watchdog alerts).
    pub fn alerts_json(&self) -> String {
        let state = self.state.lock();
        let mut out = String::from("{\"alerts\":[");
        for (i, alert) in state.alerts.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}", alert.to_json());
        }
        out.push_str("]}\n");
        out
    }

    /// Prometheus v0.0.4 exposition of the `vcs_slo_*` family.
    pub fn prometheus_text(&self) -> String {
        let (windows, breaches, alerts) = self.counters();
        let mut out = String::with_capacity(512);
        for (name, value) in [
            ("vcs_slo_windows_total", windows),
            ("vcs_slo_breach_windows_total", breaches),
            ("vcs_slo_burn_rate_alerts_total", alerts),
        ] {
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {value}");
        }
        let _ = writeln!(out, "# TYPE vcs_slo_p99_budget_seconds gauge");
        let _ = writeln!(
            out,
            "vcs_slo_p99_budget_seconds {:?}",
            self.config.p99_budget_nanos as f64 * 1e-9
        );
        let _ = writeln!(out, "# TYPE vcs_slo_last_p99_seconds gauge");
        let _ = writeln!(
            out,
            "vcs_slo_last_p99_seconds {:?}",
            self.last_p99.get().unwrap_or(0.0)
        );
        let _ = writeln!(out, "# TYPE vcs_slo_burning gauge");
        let _ = writeln!(out, "vcs_slo_burning {}", u8::from(self.is_burning()));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::validate_prometheus_text;

    #[test]
    fn serve_metrics_windows_report_deltas_not_lifetime_averages() {
        let m = ServeMetrics::new();
        m.observe_request(RequestKind::Join);
        m.observe_reply(true, 1_000_000);
        m.observe_reply(true, 2_000_000);
        m.roll_window(100, 2.0);
        assert_eq!(m.slots_per_sec(), Some(50.0));
        assert_eq!(m.goodput_rps(), Some(1.0));
        // Second window: no new slots or replies → gauges drop to 0.
        m.roll_window(100, 2.0);
        assert_eq!(m.slots_per_sec(), Some(0.0));
        assert_eq!(m.goodput_rps(), Some(0.0));
        assert_eq!(m.windows(), 2);
        assert_eq!(m.requests(RequestKind::Join), 1);
        assert_eq!(m.replies(), (2, 0));
    }

    #[test]
    fn serve_exposition_validates() {
        let m = ServeMetrics::new();
        m.observe_request(RequestKind::BestRespond);
        m.observe_reply(true, 500_000);
        m.observe_reply(false, 100_000);
        m.roll_window(10, 1.0);
        validate_prometheus_text(&m.prometheus_text()).expect("valid exposition");
    }

    #[test]
    fn slo_latches_after_consecutive_breaches_and_rearms() {
        let slo = SloMonitor::new(SloConfig {
            p99_budget_nanos: 1_000,
            burn_windows: 2,
        });
        // Window 1: breach, no alert yet.
        slo.observe_nanos(5_000);
        assert!(slo.roll_window().is_none());
        // Window 2: second consecutive breach → latch.
        slo.observe_nanos(5_000);
        let alert = slo.roll_window().expect("latched");
        assert_eq!(alert.kind, AlertKind::SloBurnRate);
        assert!(slo.is_burning());
        // Window 3: still breaching, already latched → no duplicate.
        slo.observe_nanos(5_000);
        assert!(slo.roll_window().is_none());
        // Window 4: clean → re-arm.
        slo.observe_nanos(10);
        assert!(slo.roll_window().is_none());
        assert!(!slo.is_burning());
        // Windows 5+6: a second episode latches a second alert.
        slo.observe_nanos(5_000);
        assert!(slo.roll_window().is_none());
        slo.observe_nanos(5_000);
        assert!(slo.roll_window().is_some());
        let (windows, breaches, alerts) = slo.counters();
        assert_eq!(windows, 6);
        assert_eq!(breaches, 5);
        assert_eq!(alerts, 2);
        assert!(slo.alerts_json().contains("slo_burn_rate"));
        validate_prometheus_text(&slo.prometheus_text()).expect("valid exposition");
    }

    #[test]
    fn slo_empty_windows_are_clean() {
        let slo = SloMonitor::new(SloConfig {
            p99_budget_nanos: 1,
            burn_windows: 1,
        });
        assert!(slo.roll_window().is_none());
        slo.observe_nanos(1_000);
        assert!(slo.roll_window().is_some());
        // An idle stretch clears the latch.
        assert!(slo.roll_window().is_none());
        assert!(!slo.is_burning());
    }
}
