//! The runtime invariant watchdog: checks the paper's live invariants
//! online, inside the event stream, and surfaces structured alerts.
//!
//! Three invariants are watched:
//!
//! 1. **ϕ monotonicity (Eq. 11 sign)** — every accepted move strictly
//!    improves the potential within its epoch: `MoveCommitted.phi_delta`
//!    must be `> 0` (the mover's profit gain is `α_i·Δϕ`, and the dynamics
//!    only grant strictly improving requests). A non-positive delta means
//!    either a broken response rule or a corrupted engine.
//! 2. **Theorem 4 slot-budget overrun** — an epoch must re-converge within
//!    its configured slot budget. The watchdog cannot derive the bound
//!    itself (it would need the game, and `vcs-obs` sits below `vcs-core`),
//!    so the caller supplies it — `OnlineSim` passes its per-epoch slot cap,
//!    and conformance tests pass `vcs_core::bounds::slot_upper_bound`.
//! 3. **Stale-livelock** — a run making no progress: `N` consecutive
//!    completed slots without a single `MoveCommitted` while improving
//!    responses are pending. Healthy runtimes only complete a slot after a
//!    grant, so any clean run resets the counter every slot.
//!
//! Each violation raises one [`Alert`] (latched per epoch for the slot and
//! livelock checks, so a stuck run alerts once instead of once per slot)
//! and bumps a `vcs_watchdog_*` counter rendered into the `/metrics`
//! exposition; the structured alerts are served by the exporter's
//! `/alerts` endpoint.

use crate::event::Event;
use crate::subscriber::Subscriber;
use parking_lot::Mutex;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};

/// Which invariant an [`Alert`] reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertKind {
    /// A committed move with `phi_delta ≤ 0` (Eq. 11 sign violated).
    PhiDecrease,
    /// An epoch exceeded its configured slot budget (Theorem 4).
    SlotBudgetOverrun,
    /// No move committed across the configured number of completed slots
    /// while improving responses were pending.
    StaleLivelock,
    /// Serving-mode SLO burn: the windowed request-latency p99 exceeded its
    /// budget for the configured number of consecutive windows. Raised by
    /// [`SloMonitor`](crate::SloMonitor), not by the watchdog — it shares
    /// the [`Alert`] shape so push sinks and the `/alerts` endpoint carry
    /// both families.
    SloBurnRate,
}

impl AlertKind {
    /// Stable snake_case tag used in the `/alerts` JSON and the counter
    /// names.
    pub fn tag(self) -> &'static str {
        match self {
            AlertKind::PhiDecrease => "phi_decrease",
            AlertKind::SlotBudgetOverrun => "slot_budget_overrun",
            AlertKind::StaleLivelock => "stale_livelock",
            AlertKind::SloBurnRate => "slo_burn_rate",
        }
    }
}

/// One structured watchdog alert.
#[derive(Debug, Clone, PartialEq)]
pub struct Alert {
    /// The violated invariant.
    pub kind: AlertKind,
    /// Epoch the violation occurred in (0 for non-churn runs).
    pub epoch: u32,
    /// Slots completed in that epoch when the alert fired.
    pub slot: u64,
    /// Human-readable specifics (plain text, no quotes — embedded in the
    /// `/alerts` JSON verbatim).
    pub detail: String,
}

impl Alert {
    /// The alert as one JSON object — the element format of the `/alerts`
    /// endpoint and the line format of every push sink. Details are plain
    /// text by construction, so no escaping is needed.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"kind\":\"{}\",\"epoch\":{},\"slot\":{},\"detail\":\"{}\"}}",
            self.kind.tag(),
            self.epoch,
            self.slot,
            self.detail
        )
    }
}

/// Watchdog thresholds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WatchdogConfig {
    /// Per-epoch slot budget (Theorem 4 bound or an operator cap). `None`
    /// disables the overrun check.
    pub slot_budget: Option<u64>,
    /// Consecutive move-free completed slots (with pending improving
    /// responses) that count as a livelock.
    pub stale_slot_limit: u64,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig {
            slot_budget: None,
            stale_slot_limit: 64,
        }
    }
}

#[derive(Debug, Default)]
struct WatchState {
    epoch: u32,
    slots_in_epoch: u64,
    /// Completed slots since the last committed move.
    slots_since_move: u64,
    /// Whether the most recent response scan found an improving route.
    pending: bool,
    overrun_latched: bool,
    livelock_latched: bool,
    alerts: Vec<Alert>,
}

impl WatchState {
    fn reset_epoch(&mut self, epoch: u32) {
        self.epoch = epoch;
        self.slots_in_epoch = 0;
        self.slots_since_move = 0;
        self.pending = false;
        self.overrun_latched = false;
        self.livelock_latched = false;
    }
}

/// The online invariant checker (see the module docs). Attach it like any
/// subscriber — alone, or fanned out next to a [`StatsSubscriber`] via
/// [`FanoutSubscriber`].
///
/// [`StatsSubscriber`]: crate::StatsSubscriber
/// [`FanoutSubscriber`]: crate::FanoutSubscriber
#[derive(Debug)]
pub struct WatchdogSubscriber {
    config: WatchdogConfig,
    state: Mutex<WatchState>,
    phi_decreases: AtomicU64,
    slot_overruns: AtomicU64,
    stale_livelocks: AtomicU64,
    /// Push destination for alerts, delivered from `raise` — the single
    /// producer of alerts — so each latched alert is pushed exactly once.
    sink: Option<std::sync::Arc<dyn crate::AlertSink>>,
}

impl WatchdogSubscriber {
    /// A watchdog with the given thresholds.
    pub fn new(config: WatchdogConfig) -> Self {
        WatchdogSubscriber {
            config,
            state: Mutex::new(WatchState::default()),
            phi_decreases: AtomicU64::new(0),
            slot_overruns: AtomicU64::new(0),
            stale_livelocks: AtomicU64::new(0),
            sink: None,
        }
    }

    /// Routes every alert this watchdog raises to `sink`, pushed at the
    /// instant it latches (see [`crate::AlertSink`]). Builder-style: call
    /// before wrapping the watchdog in an `Arc`.
    pub fn with_sink(mut self, sink: std::sync::Arc<dyn crate::AlertSink>) -> Self {
        self.sink = Some(sink);
        self
    }

    /// The configured thresholds.
    pub fn config(&self) -> WatchdogConfig {
        self.config
    }

    /// All alerts raised so far, in order.
    pub fn alerts(&self) -> Vec<Alert> {
        self.state.lock().alerts.clone()
    }

    /// Number of alerts raised so far.
    pub fn alert_count(&self) -> usize {
        self.state.lock().alerts.len()
    }

    /// Lifetime counts of (ϕ-decrease, slot-overrun, stale-livelock)
    /// alerts — the `vcs_watchdog_*` counter values.
    pub fn counters(&self) -> (u64, u64, u64) {
        (
            self.phi_decreases.load(Ordering::Relaxed),
            self.slot_overruns.load(Ordering::Relaxed),
            self.stale_livelocks.load(Ordering::Relaxed),
        )
    }

    /// The alerts as one JSON document, `{"alerts":[...]}` — the `/alerts`
    /// endpoint body. Details are plain text by construction, so no JSON
    /// escaping is needed.
    pub fn alerts_json(&self) -> String {
        let state = self.state.lock();
        let mut out = String::from("{\"alerts\":[");
        for (i, alert) in state.alerts.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}", alert.to_json());
        }
        out.push_str("]}\n");
        out
    }

    /// Prometheus v0.0.4 exposition of the `vcs_watchdog_*` counters,
    /// appended to the stats exposition by the `/metrics` endpoint.
    pub fn prometheus_text(&self) -> String {
        let (phi, overrun, livelock) = self.counters();
        let mut out = String::with_capacity(512);
        for (name, value) in [
            ("vcs_watchdog_phi_decrease_total", phi),
            ("vcs_watchdog_slot_budget_overrun_total", overrun),
            ("vcs_watchdog_stale_livelock_total", livelock),
            ("vcs_watchdog_alerts_total", phi + overrun + livelock),
        ] {
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {value}");
        }
        out
    }

    fn raise(&self, state: &mut WatchState, kind: AlertKind, detail: String) {
        match kind {
            AlertKind::PhiDecrease => self.phi_decreases.fetch_add(1, Ordering::Relaxed),
            AlertKind::SlotBudgetOverrun => self.slot_overruns.fetch_add(1, Ordering::Relaxed),
            AlertKind::StaleLivelock => self.stale_livelocks.fetch_add(1, Ordering::Relaxed),
            // The watchdog never raises SLO alerts; SloMonitor owns them.
            AlertKind::SloBurnRate => 0,
        };
        let alert = Alert {
            kind,
            epoch: state.epoch,
            slot: state.slots_in_epoch,
            detail,
        };
        if let Some(sink) = &self.sink {
            sink.deliver(&alert);
        }
        state.alerts.push(alert);
    }
}

impl Subscriber for WatchdogSubscriber {
    fn event(&self, event: &Event) {
        let mut state = self.state.lock();
        match *event {
            Event::EngineInit { .. } => {
                // A fresh run under observation: epoch 0 starts here.
                state.reset_epoch(0);
            }
            Event::EpochStarted { epoch, .. } => {
                state.reset_epoch(epoch);
            }
            Event::MoveCommitted {
                user, phi_delta, ..
            } => {
                state.slots_since_move = 0;
                state.livelock_latched = false;
                if phi_delta <= 0.0 {
                    let detail =
                        format!("user {user} committed a move with phi_delta {phi_delta:e}");
                    self.raise(&mut state, AlertKind::PhiDecrease, detail);
                }
            }
            Event::ResponseEvaluated {
                improving: true, ..
            } => {
                state.pending = true;
            }
            Event::RefreshPass { improving, .. } => {
                state.pending = improving > 0;
            }
            Event::SlotCompleted { updated, .. } => {
                state.slots_in_epoch += 1;
                if updated > 0 {
                    state.slots_since_move = 0;
                    state.livelock_latched = false;
                } else {
                    state.slots_since_move += 1;
                }
                if let Some(budget) = self.config.slot_budget {
                    if state.slots_in_epoch > budget && !state.overrun_latched {
                        state.overrun_latched = true;
                        let (epoch, slots) = (state.epoch, state.slots_in_epoch);
                        let detail = format!(
                            "epoch {epoch} at {slots} slots exceeds its Theorem 4 budget of {budget}"
                        );
                        self.raise(&mut state, AlertKind::SlotBudgetOverrun, detail);
                    }
                }
                if state.pending
                    && state.slots_since_move >= self.config.stale_slot_limit
                    && !state.livelock_latched
                {
                    state.livelock_latched = true;
                    let (stale, limit) = (state.slots_since_move, self.config.stale_slot_limit);
                    let detail = format!(
                        "{stale} move-free slots with pending improving responses (limit {limit})"
                    );
                    self.raise(&mut state, AlertKind::StaleLivelock, detail);
                }
            }
            Event::RunCompleted { .. } | Event::EpochConverged { .. } => {
                state.pending = false;
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::ResponseKind;

    fn init() -> Event {
        Event::EngineInit {
            users: 4,
            tasks: 2,
            phi: 10.0,
            total_profit: 20.0,
        }
    }

    fn good_move(phi_delta: f64) -> Event {
        Event::MoveCommitted {
            user: 1,
            from_route: 0,
            to_route: 1,
            phi_delta,
            profit_delta: phi_delta * 0.5,
            phi: 10.0 + phi_delta,
            total_profit: 20.0,
        }
    }

    fn slot(updated: u32) -> Event {
        Event::SlotCompleted {
            slot: 1,
            updated,
            phi: 10.0,
            total_profit: 20.0,
        }
    }

    fn pending_scan() -> Event {
        Event::ResponseEvaluated {
            user: 2,
            kind: ResponseKind::Best,
            improving: true,
        }
    }

    #[test]
    fn clean_stream_raises_nothing() {
        let dog = WatchdogSubscriber::new(WatchdogConfig {
            slot_budget: Some(100),
            stale_slot_limit: 4,
        });
        dog.event(&init());
        for _ in 0..50 {
            dog.event(&pending_scan());
            dog.event(&good_move(0.25));
            dog.event(&slot(1));
        }
        assert_eq!(dog.alert_count(), 0);
        assert_eq!(dog.counters(), (0, 0, 0));
    }

    #[test]
    fn phi_decreasing_move_raises_exactly_one_alert() {
        let dog = WatchdogSubscriber::new(WatchdogConfig::default());
        dog.event(&init());
        dog.event(&good_move(0.5));
        dog.event(&good_move(-0.125));
        dog.event(&good_move(0.5));
        let alerts = dog.alerts();
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].kind, AlertKind::PhiDecrease);
        assert_eq!(alerts[0].epoch, 0);
        assert_eq!(dog.counters(), (1, 0, 0));
    }

    #[test]
    fn zero_delta_move_violates_strict_improvement() {
        let dog = WatchdogSubscriber::new(WatchdogConfig::default());
        dog.event(&init());
        dog.event(&good_move(0.0));
        assert_eq!(dog.alerts()[0].kind, AlertKind::PhiDecrease);
    }

    #[test]
    fn stale_livelock_latches_to_one_alert() {
        let dog = WatchdogSubscriber::new(WatchdogConfig {
            slot_budget: None,
            stale_slot_limit: 3,
        });
        dog.event(&init());
        dog.event(&pending_scan());
        for _ in 0..10 {
            dog.event(&slot(0)); // move-free slots with a pending request
        }
        let alerts = dog.alerts();
        assert_eq!(alerts.len(), 1, "livelock alert must latch");
        assert_eq!(alerts[0].kind, AlertKind::StaleLivelock);
        assert_eq!(alerts[0].slot, 3);
        // A committed move clears the latch; a second livelock re-alerts.
        dog.event(&good_move(0.5));
        dog.event(&pending_scan());
        for _ in 0..3 {
            dog.event(&slot(0));
        }
        assert_eq!(dog.alert_count(), 2);
        assert_eq!(dog.counters(), (0, 0, 2));
    }

    #[test]
    fn move_free_slots_without_pending_requests_are_fine() {
        let dog = WatchdogSubscriber::new(WatchdogConfig {
            slot_budget: None,
            stale_slot_limit: 2,
        });
        dog.event(&init());
        for _ in 0..10 {
            dog.event(&slot(0)); // nothing pending: quiescence, not livelock
        }
        assert_eq!(dog.alert_count(), 0);
    }

    #[test]
    fn slot_budget_overrun_latches_per_epoch() {
        let dog = WatchdogSubscriber::new(WatchdogConfig {
            slot_budget: Some(2),
            stale_slot_limit: 1000,
        });
        dog.event(&init());
        for _ in 0..5 {
            dog.event(&good_move(0.5));
            dog.event(&slot(1));
        }
        assert_eq!(dog.alert_count(), 1);
        assert_eq!(dog.alerts()[0].kind, AlertKind::SlotBudgetOverrun);
        assert_eq!(dog.alerts()[0].slot, 3);
        // A new epoch resets the budget and the latch.
        dog.event(&Event::EpochStarted {
            epoch: 1,
            joins: 1,
            leaves: 0,
            active: 5,
        });
        for _ in 0..5 {
            dog.event(&good_move(0.5));
            dog.event(&slot(1));
        }
        assert_eq!(dog.alert_count(), 2);
        assert_eq!(dog.alerts()[1].epoch, 1);
        assert_eq!(dog.counters(), (0, 2, 0));
    }

    use crate::alert_sink::AlertSink as _;

    /// Counts deliveries and remembers what was pushed.
    #[derive(Debug, Default)]
    struct ProbeSink {
        seen: parking_lot::Mutex<Vec<Alert>>,
    }

    impl crate::AlertSink for ProbeSink {
        fn deliver(&self, alert: &Alert) {
            self.seen.lock().push(alert.clone());
        }

        fn delivered(&self) -> u64 {
            self.seen.lock().len() as u64
        }
    }

    #[test]
    fn sink_receives_each_latched_alert_exactly_once() {
        let sink = std::sync::Arc::new(ProbeSink::default());
        let dog = WatchdogSubscriber::new(WatchdogConfig {
            slot_budget: Some(3),
            stale_slot_limit: 1000,
        })
        .with_sink(sink.clone());
        dog.event(&init());
        // Run far past the budget: the overrun latches once, so the sink
        // must see exactly one push no matter how many slots follow.
        for _ in 0..25 {
            dog.event(&good_move(0.5));
            dog.event(&slot(1));
        }
        assert_eq!(dog.alert_count(), 1);
        assert_eq!(sink.delivered(), 1, "latched alert pushed exactly once");
        assert_eq!(sink.seen.lock()[0].kind, AlertKind::SlotBudgetOverrun);
        // A second, distinct violation pushes exactly once more.
        dog.event(&good_move(-1.0));
        assert_eq!(sink.delivered(), 2);
        assert_eq!(sink.seen.lock()[1].kind, AlertKind::PhiDecrease);
        // Pushed alerts are exactly the latched alerts, in raise order.
        assert_eq!(*sink.seen.lock(), dog.alerts());
    }

    #[test]
    fn clean_run_pushes_nothing() {
        let sink = std::sync::Arc::new(ProbeSink::default());
        let dog = WatchdogSubscriber::new(WatchdogConfig {
            slot_budget: Some(1000),
            stale_slot_limit: 64,
        })
        .with_sink(sink.clone());
        dog.event(&init());
        for _ in 0..100 {
            dog.event(&pending_scan());
            dog.event(&good_move(0.25));
            dog.event(&slot(1));
        }
        assert_eq!(sink.delivered(), 0);
    }

    #[test]
    fn alert_to_json_renders_the_endpoint_element() {
        let alert = Alert {
            kind: AlertKind::StaleLivelock,
            epoch: 3,
            slot: 42,
            detail: "stuck".into(),
        };
        assert_eq!(
            alert.to_json(),
            "{\"kind\":\"stale_livelock\",\"epoch\":3,\"slot\":42,\"detail\":\"stuck\"}"
        );
    }

    #[test]
    fn alerts_json_and_prometheus_render() {
        let dog = WatchdogSubscriber::new(WatchdogConfig::default());
        assert_eq!(dog.alerts_json(), "{\"alerts\":[]}\n");
        dog.event(&init());
        dog.event(&good_move(-1.0));
        let json = dog.alerts_json();
        assert!(json.starts_with("{\"alerts\":[{\"kind\":\"phi_decrease\""));
        assert!(json.contains("\"epoch\":0"));
        let text = dog.prometheus_text();
        assert!(text.contains("# TYPE vcs_watchdog_phi_decrease_total counter"));
        assert!(text.contains("vcs_watchdog_phi_decrease_total 1"));
        assert!(text.contains("vcs_watchdog_alerts_total 1"));
        crate::validate_prometheus_text(&text).expect("valid exposition");
    }
}
