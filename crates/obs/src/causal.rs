//! Causal stamping of protocol frames: per-sender sequence numbers and
//! Lamport clocks.
//!
//! Every runtime frame event ([`Event::FrameSent`], [`Event::FrameReceived`],
//! [`Event::FrameDropped`], [`Event::Retransmission`]) carries a
//! [`FrameStamp`]. Stamps follow the classic Lamport rules over the star
//! topology of the protocol (platform ↔ each user agent):
//!
//! * **send** — the sender increments its own frame sequence number and
//!   ticks its logical clock; the frame carries `(seq, clock)`;
//! * **receive** — the receiver merges `clock ← max(local, frame) + 1` and
//!   the RX event keeps the sender's `seq` so TX/RX pairs are matchable;
//! * **drop** — the channel annihilates the frame; the drop event inherits
//!   the TX stamp unchanged (nothing at the receiver advanced);
//! * **retransmission** — a local tick at the sender, `seq` unchanged.
//!
//! The resulting partial order is exactly happens-before restricted to the
//! recorded frames: if `a → b` causally then `lamport(a) < lamport(b)`.
//! Sorting a trace's frame events by `(lamport, trace position)` therefore
//! linearizes them consistently with causality, which is what
//! `replay_debug` prints as the *causal neighborhood* of a divergence.
//!
//! All runtimes emit events from the platform/driver thread, so a
//! [`FrameStamper`] is plain mutable state — no atomics — and stamping is
//! deterministic per seed (the threaded runtime emits the same platform-side
//! sequence it would record on the wire).

use crate::event::Event;

/// Sender id used by the platform endpoint. User agents use their own
/// `UserId` index; `u32::MAX` can never collide with a user (the wire
/// protocol caps user ids well below it).
pub const PLATFORM_SENDER: u32 = u32::MAX;

/// A causal stamp carried by one frame event: the per-sender sequence
/// number and a Lamport time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FrameStamp {
    /// Per-sender frame sequence number, 1-based (0 = pre-causal trace).
    pub seq: u64,
    /// Lamport clock value, 1-based (0 = pre-causal trace).
    pub lamport: u64,
}

#[derive(Debug, Clone, Copy, Default)]
struct Endpoint {
    seq: u64,
    clock: u64,
}

/// Issues [`FrameStamp`]s for a run: one logical clock and sequence counter
/// per endpoint (the platform plus each user agent), grown on demand.
#[derive(Debug, Default)]
pub struct FrameStamper {
    platform: Endpoint,
    users: Vec<Endpoint>,
}

impl FrameStamper {
    /// A fresh stamper with all clocks at zero.
    pub fn new() -> Self {
        Self::default()
    }

    fn endpoint(&mut self, sender: u32) -> &mut Endpoint {
        if sender == PLATFORM_SENDER {
            return &mut self.platform;
        }
        let idx = sender as usize;
        if idx >= self.users.len() {
            self.users.resize(idx + 1, Endpoint::default());
        }
        &mut self.users[idx]
    }

    /// Stamps a frame send: bumps the sender's sequence number and ticks
    /// its clock.
    pub fn send(&mut self, sender: u32) -> FrameStamp {
        let ep = self.endpoint(sender);
        ep.seq += 1;
        ep.clock += 1;
        FrameStamp {
            seq: ep.seq,
            lamport: ep.clock,
        }
    }

    /// Stamps a frame receipt: merges the carried clock into the receiver
    /// (`max(local, frame) + 1`) and keeps the sender's sequence number.
    pub fn receive(&mut self, receiver: u32, sent: FrameStamp) -> FrameStamp {
        let ep = self.endpoint(receiver);
        ep.clock = ep.clock.max(sent.lamport) + 1;
        FrameStamp {
            seq: sent.seq,
            lamport: ep.clock,
        }
    }

    /// Stamps a local (non-frame) step at `sender` — used for the ARQ
    /// retransmission decision. The sequence number is the sender's latest
    /// issued one, unchanged.
    pub fn local(&mut self, sender: u32) -> FrameStamp {
        let ep = self.endpoint(sender);
        ep.clock += 1;
        FrameStamp {
            seq: ep.seq,
            lamport: ep.clock,
        }
    }
}

/// The causal stamp of an event, if it is a frame event.
pub fn stamp_of(event: &Event) -> Option<FrameStamp> {
    match *event {
        Event::FrameSent { seq, lamport, .. }
        | Event::FrameReceived { seq, lamport, .. }
        | Event::FrameDropped { seq, lamport, .. }
        | Event::Retransmission { seq, lamport, .. } => Some(FrameStamp { seq, lamport }),
        _ => None,
    }
}

/// Indices of the frame events in `events`, sorted by `(lamport, index)` —
/// a linearization consistent with happens-before. Non-frame events are
/// omitted.
pub fn lamport_order(events: &[Event]) -> Vec<usize> {
    let mut frames: Vec<(u64, usize)> = events
        .iter()
        .enumerate()
        .filter_map(|(i, e)| stamp_of(e).map(|s| (s.lamport, i)))
        .collect();
    frames.sort(); // (lamport, index): stable causal linearization
    frames.into_iter().map(|(_, i)| i).collect()
}

/// The causal neighborhood of `center`: up to `radius` frame events on each
/// side of the frame nearest to `center` in the Lamport linearization
/// (plus that frame itself), returned as trace indices in Lamport order.
///
/// "Nearest" is by trace position: the frame whose index is closest to
/// `center` anchors the window, so callers can pass the index of *any*
/// event (e.g. a divergent `MoveCommitted`) and see the frames that led up
/// to it.
pub fn causal_neighborhood(events: &[Event], center: usize, radius: usize) -> Vec<usize> {
    let order = lamport_order(events);
    if order.is_empty() {
        return Vec::new();
    }
    let anchor = order
        .iter()
        .enumerate()
        .min_by_key(|&(_, &idx)| idx.abs_diff(center))
        .map(|(pos, _)| pos)
        .unwrap_or(0);
    let lo = anchor.saturating_sub(radius);
    let hi = (anchor + radius + 1).min(order.len());
    order[lo..hi].to_vec()
}

/// A violation of the causal-stamp invariants found by
/// [`validate_causal_order`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CausalViolation {
    /// A stamped frame event (`seq > 0`) whose Lamport time is zero.
    MissingLamport {
        /// Index of the offending event in the trace.
        index: usize,
    },
}

/// Checks the intra-trace causal invariants of a *stamped* trace (one where
/// at least one frame carries a non-zero stamp): every stamped frame has a
/// non-zero Lamport time. Pre-causal traces (all stamps zero) validate
/// trivially. Returns all violations, empty = consistent.
///
/// Per-sender seq monotonicity cannot be checked from a trace alone (the
/// trace does not record sender identity), so this validates only what the
/// stamps themselves assert; `replay_debug` relies on the Lamport order for
/// display, not for replay correctness.
pub fn validate_causal_order(events: &[Event]) -> Vec<CausalViolation> {
    let mut violations = Vec::new();
    for (index, event) in events.iter().enumerate() {
        if let Some(stamp) = stamp_of(event) {
            if stamp.seq > 0 && stamp.lamport == 0 {
                violations.push(CausalViolation::MissingLamport { index });
            }
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sent(seq: u64, lamport: u64) -> Event {
        Event::FrameSent {
            bytes: 10,
            seq,
            lamport,
        }
    }

    fn received(seq: u64, lamport: u64) -> Event {
        Event::FrameReceived {
            bytes: 10,
            seq,
            lamport,
        }
    }

    #[test]
    fn send_receive_obeys_lamport_rules() {
        let mut stamper = FrameStamper::new();
        let tx = stamper.send(PLATFORM_SENDER);
        assert_eq!(tx, FrameStamp { seq: 1, lamport: 1 });
        let rx = stamper.receive(3, tx);
        // Receiver clock jumps past the sender's.
        assert_eq!(rx.seq, 1);
        assert!(rx.lamport > tx.lamport);
        // The reply from user 3 ticks past its receive time.
        let reply = stamper.send(3);
        assert_eq!(reply.seq, 1); // first frame *from* user 3
        assert!(reply.lamport > rx.lamport);
        let ack = stamper.receive(PLATFORM_SENDER, reply);
        assert!(ack.lamport > reply.lamport);
    }

    #[test]
    fn drop_inherits_tx_stamp_and_retry_ticks_locally() {
        let mut stamper = FrameStamper::new();
        let tx = stamper.send(PLATFORM_SENDER);
        // Drop: the event reuses the TX stamp verbatim (caller-side rule).
        let retry = stamper.local(PLATFORM_SENDER);
        assert_eq!(retry.seq, tx.seq);
        assert!(retry.lamport > tx.lamport);
        let tx2 = stamper.send(PLATFORM_SENDER);
        assert_eq!(tx2.seq, tx.seq + 1);
        assert!(tx2.lamport > retry.lamport);
    }

    #[test]
    fn lamport_order_linearizes_consistently_with_causality() {
        // Trace order interleaves two causal chains; lamport order must put
        // each chain's TX before its RX.
        let events = vec![
            sent(1, 1),     // platform TX #1
            sent(2, 2),     // platform TX #2
            received(2, 3), // user b RX of #2
            received(1, 2), // user a RX of #1
            Event::SlotCompleted {
                slot: 1,
                updated: 1,
                phi: 0.0,
                total_profit: 0.0,
            },
            sent(1, 3), // user a reply
        ];
        let order = lamport_order(&events);
        // Non-frame events omitted.
        assert_eq!(order.len(), 5);
        let pos = |idx: usize| order.iter().position(|&i| i == idx).unwrap();
        assert!(pos(0) < pos(3), "TX #1 before its RX");
        assert!(pos(1) < pos(2), "TX #2 before its RX");
        assert!(pos(3) < pos(5), "user a's RX before its reply");
    }

    #[test]
    fn neighborhood_is_windowed_around_the_nearest_frame() {
        let mut events = Vec::new();
        for i in 0..20u64 {
            events.push(sent(i + 1, i + 1));
        }
        events.insert(
            10,
            Event::SlotCompleted {
                slot: 1,
                updated: 1,
                phi: 0.0,
                total_profit: 0.0,
            },
        );
        let hood = causal_neighborhood(&events, 10, 2);
        assert_eq!(hood.len(), 5);
        // Window is contiguous in lamport order around trace position 10.
        let lamports: Vec<u64> = hood
            .iter()
            .map(|&i| stamp_of(&events[i]).unwrap().lamport)
            .collect();
        let mut sorted = lamports.clone();
        sorted.sort_unstable();
        assert_eq!(lamports, sorted);
    }

    #[test]
    fn neighborhood_of_frameless_trace_is_empty() {
        let events = vec![Event::SlotCompleted {
            slot: 1,
            updated: 0,
            phi: 0.0,
            total_profit: 0.0,
        }];
        assert!(causal_neighborhood(&events, 0, 4).is_empty());
    }

    #[test]
    fn validate_flags_stamped_frames_without_lamport_time() {
        let clean = vec![sent(1, 1), received(1, 2)];
        assert!(validate_causal_order(&clean).is_empty());
        let precausal = vec![sent(0, 0), received(0, 0)];
        assert!(validate_causal_order(&precausal).is_empty());
        let bad = vec![sent(3, 0)];
        assert_eq!(
            validate_causal_order(&bad),
            vec![CausalViolation::MissingLamport { index: 0 }]
        );
    }
}
