//! Causal stamping of protocol frames: per-sender sequence numbers and
//! Lamport clocks.
//!
//! Every runtime frame event ([`Event::FrameSent`], [`Event::FrameReceived`],
//! [`Event::FrameDropped`], [`Event::Retransmission`]) carries a
//! [`FrameStamp`]. Stamps follow the classic Lamport rules over the star
//! topology of the protocol (platform ↔ each user agent):
//!
//! * **send** — the sender increments its own frame sequence number and
//!   ticks its logical clock; the frame carries `(seq, clock)`;
//! * **receive** — the receiver merges `clock ← max(local, frame) + 1` and
//!   the RX event keeps the sender's `seq` so TX/RX pairs are matchable;
//! * **drop** — the channel annihilates the frame; the drop event inherits
//!   the TX stamp unchanged (nothing at the receiver advanced);
//! * **retransmission** — a local tick at the sender, `seq` unchanged.
//!
//! The resulting partial order is exactly happens-before restricted to the
//! recorded frames: if `a → b` causally then `lamport(a) < lamport(b)`.
//! Sorting a trace's frame events by `(lamport, trace position)` therefore
//! linearizes them consistently with causality, which is what
//! `replay_debug` prints as the *causal neighborhood* of a divergence.
//!
//! All runtimes emit events from the platform/driver thread, so a
//! [`FrameStamper`] is plain mutable state — no atomics — and stamping is
//! deterministic per seed (the threaded runtime emits the same platform-side
//! sequence it would record on the wire).

use crate::event::Event;

/// Sender id used by the platform endpoint. User agents use their own
/// `UserId` index; `u32::MAX` can never collide with a user (the wire
/// protocol caps user ids well below it).
pub const PLATFORM_SENDER: u32 = u32::MAX;

/// A causal stamp carried by one frame event: the per-sender sequence
/// number and a Lamport time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FrameStamp {
    /// Per-sender frame sequence number, 1-based (0 = pre-causal trace).
    pub seq: u64,
    /// Lamport clock value, 1-based (0 = pre-causal trace).
    pub lamport: u64,
}

#[derive(Debug, Clone, Copy, Default)]
struct Endpoint {
    seq: u64,
    clock: u64,
}

/// Issues [`FrameStamp`]s for a run: one logical clock and sequence counter
/// per endpoint (the platform plus each user agent), grown on demand.
///
/// `Clone` snapshots every endpoint's counters, which is what a sharded
/// checkpoint needs: a resumed run re-stamps its remaining frames with the
/// same sequence numbers and Lamport times the uninterrupted run would have
/// issued.
#[derive(Debug, Clone, Default)]
pub struct FrameStamper {
    platform: Endpoint,
    users: Vec<Endpoint>,
}

impl FrameStamper {
    /// A fresh stamper with all clocks at zero.
    pub fn new() -> Self {
        Self::default()
    }

    fn endpoint(&mut self, sender: u32) -> &mut Endpoint {
        if sender == PLATFORM_SENDER {
            return &mut self.platform;
        }
        let idx = sender as usize;
        if idx >= self.users.len() {
            self.users.resize(idx + 1, Endpoint::default());
        }
        &mut self.users[idx]
    }

    /// Stamps a frame send: bumps the sender's sequence number and ticks
    /// its clock.
    pub fn send(&mut self, sender: u32) -> FrameStamp {
        let ep = self.endpoint(sender);
        ep.seq += 1;
        ep.clock += 1;
        FrameStamp {
            seq: ep.seq,
            lamport: ep.clock,
        }
    }

    /// Stamps a frame receipt: merges the carried clock into the receiver
    /// (`max(local, frame) + 1`) and keeps the sender's sequence number.
    pub fn receive(&mut self, receiver: u32, sent: FrameStamp) -> FrameStamp {
        let ep = self.endpoint(receiver);
        ep.clock = ep.clock.max(sent.lamport) + 1;
        FrameStamp {
            seq: sent.seq,
            lamport: ep.clock,
        }
    }

    /// Stamps a local (non-frame) step at `sender` — used for the ARQ
    /// retransmission decision. The sequence number is the sender's latest
    /// issued one, unchanged.
    pub fn local(&mut self, sender: u32) -> FrameStamp {
        let ep = self.endpoint(sender);
        ep.clock += 1;
        FrameStamp {
            seq: ep.seq,
            lamport: ep.clock,
        }
    }

    /// The `(seq, clock)` counters of one endpoint, for checkpoint codecs
    /// that must re-stamp a resumed run's remaining frames exactly as the
    /// uninterrupted run would have.
    pub fn endpoint_state(&mut self, sender: u32) -> (u64, u64) {
        let ep = self.endpoint(sender);
        (ep.seq, ep.clock)
    }

    /// Restores one endpoint's `(seq, clock)` counters captured with
    /// [`endpoint_state`](FrameStamper::endpoint_state).
    pub fn restore_endpoint(&mut self, sender: u32, seq: u64, clock: u64) {
        let ep = self.endpoint(sender);
        ep.seq = seq;
        ep.clock = clock;
    }
}

/// The causal stamp of an event, if it is a frame event.
pub fn stamp_of(event: &Event) -> Option<FrameStamp> {
    match *event {
        Event::FrameSent { seq, lamport, .. }
        | Event::FrameReceived { seq, lamport, .. }
        | Event::FrameDropped { seq, lamport, .. }
        | Event::Retransmission { seq, lamport, .. } => Some(FrameStamp { seq, lamport }),
        _ => None,
    }
}

/// Indices of the frame events in `events`, sorted by `(lamport, index)` —
/// a linearization consistent with happens-before. Non-frame events are
/// omitted.
pub fn lamport_order(events: &[Event]) -> Vec<usize> {
    let mut frames: Vec<(u64, usize)> = events
        .iter()
        .enumerate()
        .filter_map(|(i, e)| stamp_of(e).map(|s| (s.lamport, i)))
        .collect();
    frames.sort(); // (lamport, index): stable causal linearization
    frames.into_iter().map(|(_, i)| i).collect()
}

/// The causal neighborhood of `center`: up to `radius` frame events on each
/// side of the frame nearest to `center` in the Lamport linearization
/// (plus that frame itself), returned as trace indices in Lamport order.
///
/// "Nearest" is by trace position: the frame whose index is closest to
/// `center` anchors the window, so callers can pass the index of *any*
/// event (e.g. a divergent `MoveCommitted`) and see the frames that led up
/// to it.
pub fn causal_neighborhood(events: &[Event], center: usize, radius: usize) -> Vec<usize> {
    let order = lamport_order(events);
    if order.is_empty() {
        return Vec::new();
    }
    let anchor = order
        .iter()
        .enumerate()
        .min_by_key(|&(_, &idx)| idx.abs_diff(center))
        .map(|(pos, _)| pos)
        .unwrap_or(0);
    let lo = anchor.saturating_sub(radius);
    let hi = (anchor + radius + 1).min(order.len());
    order[lo..hi].to_vec()
}

/// A violation of the causal-stamp invariants found by
/// [`validate_causal_order`] or [`validate_causal_order_merged`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CausalViolation {
    /// A stamped frame event (`seq > 0`) whose Lamport time is zero.
    MissingLamport {
        /// Index of the offending event in the trace.
        index: usize,
    },
    /// A `FrameSent` whose sequence number is not exactly one past the
    /// sender's previous send — a gap (lost or truncated recording) or a
    /// regression (reordered recording).
    SeqDiscontinuity {
        /// Sender whose stream carries the discontinuity.
        sender: u32,
        /// Index of the offending event *within that sender's stream*.
        index: usize,
        /// Sequence number expected (previous send + 1).
        expected: u64,
        /// Sequence number found.
        found: u64,
    },
    /// A stamped frame whose Lamport time is below an earlier frame of the
    /// same stream — impossible for a faithful recording (every local step
    /// ticks the sender's clock), so the stream was reordered or spliced.
    LamportRegression {
        /// Sender whose stream regresses.
        sender: u32,
        /// Index of the offending event *within that sender's stream*.
        index: usize,
        /// The stream's running Lamport high-water mark.
        prev: u64,
        /// The (lower) Lamport time found.
        found: u64,
    },
    /// A `FrameReceived` with no matching `FrameSent` in any *other* stream
    /// carrying the same sequence number and a strictly smaller Lamport
    /// time — the receive happens-before its own send, or the send was
    /// never recorded (truncated sender stream).
    UnmatchedReceive {
        /// Receiver whose stream carries the orphan RX.
        sender: u32,
        /// Index of the offending event *within that receiver's stream*.
        index: usize,
        /// The orphaned sequence number.
        seq: u64,
    },
}

/// Checks the intra-trace causal invariants of a *stamped* trace (one where
/// at least one frame carries a non-zero stamp): every stamped frame has a
/// non-zero Lamport time. Pre-causal traces (all stamps zero) validate
/// trivially. Returns all violations, empty = consistent.
///
/// A single interleaved trace mixes frames from many senders (the platform
/// plus every user agent) without recording which, so per-sender sequence
/// monotonicity cannot be checked here; [`validate_causal_order_merged`]
/// checks it on sender-tagged streams, which is what a sharded run records
/// (one dump per shard).
pub fn validate_causal_order(events: &[Event]) -> Vec<CausalViolation> {
    let mut violations = Vec::new();
    for (index, event) in events.iter().enumerate() {
        if let Some(stamp) = stamp_of(event) {
            if stamp.seq > 0 && stamp.lamport == 0 {
                violations.push(CausalViolation::MissingLamport { index });
            }
        }
    }
    violations
}

/// One endpoint's recorded event stream, tagged with the sender id its
/// `FrameSent` stamps belong to — the unit a sharded run dumps (one per
/// shard) and the unit the merge-aware validators consume.
#[derive(Debug, Clone, PartialEq)]
pub struct StampedStream {
    /// The endpoint that recorded `events` (its sends carry its seq space).
    pub sender: u32,
    /// The stream's events in recording order.
    pub events: Vec<Event>,
}

impl StampedStream {
    /// Wraps a recorded stream.
    pub fn new(sender: u32, events: Vec<Event>) -> Self {
        StampedStream { sender, events }
    }
}

/// The merge-aware causal validator for multi-stream recordings: checks, on
/// top of [`validate_causal_order`]'s per-frame stamp sanity, the
/// per-sender invariants a faithful sharded recording must satisfy —
///
/// * **seq continuity** — each stream's `FrameSent` sequence numbers run
///   `1, 2, 3, …` with no gap or regression ([`SeqDiscontinuity`]);
/// * **Lamport monotonicity** — each stream's stamped frames carry
///   non-decreasing Lamport times, every send/receive ticking strictly past
///   the stream's previous frame ([`LamportRegression`]; equal times are
///   tolerated for drop events, which inherit their TX stamp verbatim);
/// * **receive matching** — every stamped `FrameReceived` is matched by a
///   `FrameSent` with the same seq in some *other* stream at a strictly
///   smaller Lamport time ([`UnmatchedReceive`]): a receive cannot precede
///   its send.
///
/// Violation indices are positions **within the offending sender's
/// stream**, so a post-mortem can jump straight into the right shard dump.
///
/// [`SeqDiscontinuity`]: CausalViolation::SeqDiscontinuity
/// [`LamportRegression`]: CausalViolation::LamportRegression
/// [`UnmatchedReceive`]: CausalViolation::UnmatchedReceive
pub fn validate_causal_order_merged(streams: &[StampedStream]) -> Vec<CausalViolation> {
    let mut violations = Vec::new();
    // All sends across all streams: seq -> (sender, lamport) pairs.
    let mut sends: std::collections::HashMap<u64, Vec<(u32, u64)>> =
        std::collections::HashMap::new();
    for stream in streams {
        for event in &stream.events {
            if let Event::FrameSent { seq, lamport, .. } = *event {
                if seq > 0 {
                    sends.entry(seq).or_default().push((stream.sender, lamport));
                }
            }
        }
    }
    for stream in streams {
        let mut prev_seq = 0u64;
        let mut high_water = 0u64;
        for (index, event) in stream.events.iter().enumerate() {
            let Some(stamp) = stamp_of(event) else {
                continue;
            };
            if stamp.seq == 0 && stamp.lamport == 0 {
                continue; // pre-causal frame: nothing to check
            }
            if stamp.lamport == 0 {
                violations.push(CausalViolation::MissingLamport { index });
                continue;
            }
            if stamp.lamport < high_water {
                violations.push(CausalViolation::LamportRegression {
                    sender: stream.sender,
                    index,
                    prev: high_water,
                    found: stamp.lamport,
                });
            }
            high_water = high_water.max(stamp.lamport);
            match *event {
                Event::FrameSent { seq, .. } => {
                    if seq != prev_seq + 1 {
                        violations.push(CausalViolation::SeqDiscontinuity {
                            sender: stream.sender,
                            index,
                            expected: prev_seq + 1,
                            found: seq,
                        });
                    }
                    prev_seq = seq;
                }
                Event::FrameReceived { seq, lamport, .. } => {
                    let matched = sends.get(&seq).is_some_and(|txs| {
                        txs.iter().any(|&(tx_sender, tx_lamport)| {
                            tx_sender != stream.sender && tx_lamport < lamport
                        })
                    });
                    if !matched {
                        violations.push(CausalViolation::UnmatchedReceive {
                            sender: stream.sender,
                            index,
                            seq,
                        });
                    }
                }
                _ => {}
            }
        }
    }
    violations
}

/// Merges per-sender recorder dumps into one happens-before-consistent
/// post-mortem timeline, keyed by `(sender seq, Lamport)` as carried on the
/// stamped frames.
///
/// Each event inherits the Lamport time of the latest frame at-or-before it
/// in its own stream (0 before the first frame), and the merged order is a
/// stable sort by `(inherited Lamport, sender, stream position)`. Within a
/// stream the inherited key is non-decreasing, so **per-stream order is
/// preserved exactly**; across streams, any frame `a` that happens-before a
/// frame `b` satisfies `lamport(a) < lamport(b)` and therefore lands
/// earlier — the merged dump linearizes the shards' recordings consistently
/// with causality. Returns `(sender, event)` pairs so provenance survives
/// the merge.
pub fn merge_stamped_streams(streams: &[StampedStream]) -> Vec<(u32, Event)> {
    let mut keyed: Vec<(u64, u32, usize, &Event)> = Vec::new();
    for stream in streams {
        let mut inherited = 0u64;
        for (pos, event) in stream.events.iter().enumerate() {
            if let Some(stamp) = stamp_of(event) {
                inherited = inherited.max(stamp.lamport);
            }
            keyed.push((inherited, stream.sender, pos, event));
        }
    }
    keyed.sort_by_key(|&(lamport, sender, pos, _)| (lamport, sender, pos));
    keyed
        .into_iter()
        .map(|(_, sender, _, event)| (sender, *event))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sent(seq: u64, lamport: u64) -> Event {
        Event::FrameSent {
            bytes: 10,
            seq,
            lamport,
        }
    }

    fn received(seq: u64, lamport: u64) -> Event {
        Event::FrameReceived {
            bytes: 10,
            seq,
            lamport,
        }
    }

    #[test]
    fn send_receive_obeys_lamport_rules() {
        let mut stamper = FrameStamper::new();
        let tx = stamper.send(PLATFORM_SENDER);
        assert_eq!(tx, FrameStamp { seq: 1, lamport: 1 });
        let rx = stamper.receive(3, tx);
        // Receiver clock jumps past the sender's.
        assert_eq!(rx.seq, 1);
        assert!(rx.lamport > tx.lamport);
        // The reply from user 3 ticks past its receive time.
        let reply = stamper.send(3);
        assert_eq!(reply.seq, 1); // first frame *from* user 3
        assert!(reply.lamport > rx.lamport);
        let ack = stamper.receive(PLATFORM_SENDER, reply);
        assert!(ack.lamport > reply.lamport);
    }

    #[test]
    fn drop_inherits_tx_stamp_and_retry_ticks_locally() {
        let mut stamper = FrameStamper::new();
        let tx = stamper.send(PLATFORM_SENDER);
        // Drop: the event reuses the TX stamp verbatim (caller-side rule).
        let retry = stamper.local(PLATFORM_SENDER);
        assert_eq!(retry.seq, tx.seq);
        assert!(retry.lamport > tx.lamport);
        let tx2 = stamper.send(PLATFORM_SENDER);
        assert_eq!(tx2.seq, tx.seq + 1);
        assert!(tx2.lamport > retry.lamport);
    }

    #[test]
    fn lamport_order_linearizes_consistently_with_causality() {
        // Trace order interleaves two causal chains; lamport order must put
        // each chain's TX before its RX.
        let events = vec![
            sent(1, 1),     // platform TX #1
            sent(2, 2),     // platform TX #2
            received(2, 3), // user b RX of #2
            received(1, 2), // user a RX of #1
            Event::SlotCompleted {
                slot: 1,
                updated: 1,
                phi: 0.0,
                total_profit: 0.0,
            },
            sent(1, 3), // user a reply
        ];
        let order = lamport_order(&events);
        // Non-frame events omitted.
        assert_eq!(order.len(), 5);
        let pos = |idx: usize| order.iter().position(|&i| i == idx).unwrap();
        assert!(pos(0) < pos(3), "TX #1 before its RX");
        assert!(pos(1) < pos(2), "TX #2 before its RX");
        assert!(pos(3) < pos(5), "user a's RX before its reply");
    }

    #[test]
    fn neighborhood_is_windowed_around_the_nearest_frame() {
        let mut events = Vec::new();
        for i in 0..20u64 {
            events.push(sent(i + 1, i + 1));
        }
        events.insert(
            10,
            Event::SlotCompleted {
                slot: 1,
                updated: 1,
                phi: 0.0,
                total_profit: 0.0,
            },
        );
        let hood = causal_neighborhood(&events, 10, 2);
        assert_eq!(hood.len(), 5);
        // Window is contiguous in lamport order around trace position 10.
        let lamports: Vec<u64> = hood
            .iter()
            .map(|&i| stamp_of(&events[i]).unwrap().lamport)
            .collect();
        let mut sorted = lamports.clone();
        sorted.sort_unstable();
        assert_eq!(lamports, sorted);
    }

    #[test]
    fn neighborhood_of_frameless_trace_is_empty() {
        let events = vec![Event::SlotCompleted {
            slot: 1,
            updated: 0,
            phi: 0.0,
            total_profit: 0.0,
        }];
        assert!(causal_neighborhood(&events, 0, 4).is_empty());
    }

    /// Two shard streams produced by one stamper: shard 0 sends two frames,
    /// shard 1 receives both and sends one back, shard 0 receives it.
    fn clean_shard_streams() -> Vec<StampedStream> {
        let mut stamper = FrameStamper::new();
        let tx1 = stamper.send(0);
        let rx1 = stamper.receive(1, tx1);
        let tx2 = stamper.send(0);
        let rx2 = stamper.receive(1, tx2);
        let reply = stamper.send(1);
        let rx3 = stamper.receive(0, reply);
        vec![
            StampedStream::new(
                0,
                vec![
                    sent(tx1.seq, tx1.lamport),
                    sent(tx2.seq, tx2.lamport),
                    received(rx3.seq, rx3.lamport),
                ],
            ),
            StampedStream::new(
                1,
                vec![
                    received(rx1.seq, rx1.lamport),
                    received(rx2.seq, rx2.lamport),
                    sent(reply.seq, reply.lamport),
                ],
            ),
        ]
    }

    #[test]
    fn merged_validation_accepts_a_faithful_multi_stream_recording() {
        assert!(validate_causal_order_merged(&clean_shard_streams()).is_empty());
    }

    #[test]
    fn merged_validation_flags_seq_gap_from_truncation() {
        let mut streams = clean_shard_streams();
        // Drop shard 0's first send: its stream now opens at seq 2 and
        // shard 1's first receive goes unmatched... except seq 1 is also the
        // reply's seq. The gap itself is always flagged.
        streams[0].events.remove(0);
        let violations = validate_causal_order_merged(&streams);
        assert!(
            violations.iter().any(|v| matches!(
                v,
                CausalViolation::SeqDiscontinuity {
                    sender: 0,
                    expected: 1,
                    found: 2,
                    ..
                }
            )),
            "truncating a sender's sends must surface a seq gap: {violations:?}"
        );
    }

    #[test]
    fn merged_validation_flags_reordered_stream() {
        let mut streams = clean_shard_streams();
        streams[0].events.swap(0, 1); // two sends out of order
        let violations = validate_causal_order_merged(&streams);
        assert!(violations
            .iter()
            .any(|v| matches!(v, CausalViolation::LamportRegression { sender: 0, .. })));
        assert!(violations
            .iter()
            .any(|v| matches!(v, CausalViolation::SeqDiscontinuity { sender: 0, .. })));
    }

    #[test]
    fn merged_validation_flags_receive_without_send() {
        let streams = vec![
            StampedStream::new(0, vec![sent(1, 1)]),
            StampedStream::new(1, vec![received(7, 9)]), // nobody sent seq 7
        ];
        assert_eq!(
            validate_causal_order_merged(&streams),
            vec![CausalViolation::UnmatchedReceive {
                sender: 1,
                index: 0,
                seq: 7,
            }]
        );
    }

    #[test]
    fn merged_validation_flags_receive_before_its_send() {
        // Shard 1 "receives" seq 1 at lamport 1, but the only send of seq 1
        // carries lamport 5: the receive precedes its send.
        let streams = vec![
            StampedStream::new(0, vec![sent(1, 5)]),
            StampedStream::new(1, vec![received(1, 1)]),
        ];
        let violations = validate_causal_order_merged(&streams);
        assert!(violations.iter().any(|v| matches!(
            v,
            CausalViolation::UnmatchedReceive {
                sender: 1,
                seq: 1,
                ..
            }
        )));
    }

    #[test]
    fn merged_validation_accepts_precausal_streams() {
        let streams = vec![StampedStream::new(0, vec![sent(0, 0), received(0, 0)])];
        assert!(validate_causal_order_merged(&streams).is_empty());
    }

    #[test]
    fn merge_preserves_stream_order_and_happens_before() {
        let streams = clean_shard_streams();
        let merged = merge_stamped_streams(&streams);
        assert_eq!(merged.len(), 6);
        // Per-stream order preserved.
        for stream in &streams {
            let filtered: Vec<&Event> = merged
                .iter()
                .filter(|(s, _)| *s == stream.sender)
                .map(|(_, e)| e)
                .collect();
            assert_eq!(filtered.len(), stream.events.len());
            for (a, b) in filtered.iter().zip(&stream.events) {
                assert_eq!(stamp_of(a), stamp_of(b));
            }
        }
        // Cross-stream happens-before: each TX precedes its RX.
        let pos_of = |seq: u64, is_rx: bool| {
            merged
                .iter()
                .position(|(_, e)| match *e {
                    Event::FrameSent { seq: s, .. } => !is_rx && s == seq,
                    Event::FrameReceived { seq: s, .. } => is_rx && s == seq,
                    _ => false,
                })
                .unwrap()
        };
        assert!(pos_of(2, false) < pos_of(2, true), "TX #2 before RX #2");
    }

    #[test]
    fn merge_keys_non_frame_events_to_their_preceding_frame() {
        let marker = Event::SlotCompleted {
            slot: 9,
            updated: 1,
            phi: 0.0,
            total_profit: 0.0,
        };
        let streams = vec![
            StampedStream::new(0, vec![sent(1, 1), marker, sent(2, 4)]),
            StampedStream::new(1, vec![received(1, 2), sent(1, 3)]),
        ];
        let merged = merge_stamped_streams(&streams);
        let marker_pos = merged
            .iter()
            .position(|(_, e)| matches!(e, Event::SlotCompleted { .. }))
            .unwrap();
        // The marker rides with its preceding frame (lamport 1): after
        // shard 0's first send, before shard 1's receive of it.
        assert_eq!(marker_pos, 1);
        assert_eq!(merged[marker_pos].0, 0, "provenance survives the merge");
    }

    #[test]
    fn validate_flags_stamped_frames_without_lamport_time() {
        let clean = vec![sent(1, 1), received(1, 2)];
        assert!(validate_causal_order(&clean).is_empty());
        let precausal = vec![sent(0, 0), received(0, 0)];
        assert!(validate_causal_order(&precausal).is_empty());
        let bad = vec![sent(3, 0)];
        assert_eq!(
            validate_causal_order(&bad),
            vec![CausalViolation::MissingLamport { index: 0 }]
        );
    }
}
