//! Wall-clock profiling spans.
//!
//! Theorem 4 bounds convergence in *slots*; the running-time claims of §5
//! — and any production latency budget — are about *wall-clock*. A span is
//! one timed section of the hot path, classified by [`SpanKind`] and
//! recorded as an [`Event::SpanRecorded`] carrying the elapsed monotonic
//! nanoseconds. Spans flow through the same closure-deferred [`Obs`] handle
//! as every other event, so the disabled path stays a single branch: the
//! monotonic clock is **never read** unless a subscriber is attached.
//!
//! Each [`SpanTimer`] is a thread-local recorder in the literal sense: it
//! lives on the recording thread's stack, reads `std::time::Instant` (the
//! OS monotonic clock) on that thread only, and hands the finished duration
//! to the subscriber — the subscriber's aggregation (atomic histograms in
//! [`StatsSubscriber`](crate::StatsSubscriber)) is the only cross-thread
//! point. Timers never allocate.
//!
//! Two recording shapes:
//!
//! * [`Obs::time`] — wrap a closure: `obs.time(SpanKind::FrameEncode, ||
//!   msg.encode())`. The closure always runs; only the timing is gated.
//! * [`Obs::span`] — an RAII guard for sections that do not nest neatly in
//!   a closure (loop bodies with `break`). [`SpanTimer::finish`] emits
//!   early; [`SpanTimer::cancel`] suppresses emission (a loop iteration
//!   that turned out not to be a decision slot).

use crate::event::Event;
use std::time::Instant;

/// What a profiling span measures. Mirrors the wall-clock decomposition of
/// one decision slot across the whole stack: engine (apply, response scan),
/// protocol (frame codec, channel wait), dynamics (slot), and the online
/// scheduler (epoch warm re-convergence).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpanKind {
    /// One full decision slot of a dynamics driver (poll → grant → commit).
    Slot,
    /// One `Engine::apply_move` commit: count updates, ϕ and total-profit
    /// maintenance, dirty-set marking.
    EngineApply,
    /// One best-/better-response refresh pass: every response-rule scan a
    /// driver runs back-to-back before granting (the users invalidated
    /// since the previous pass, or a single scan where drivers evaluate one
    /// user per turn). Batched at pass granularity because an individual
    /// incremental scan is ~100ns — timing each one costs more than the
    /// scan itself and would blow the instrumented-overhead budget.
    BestResponse,
    /// Encoding one protocol message to its wire frame.
    FrameEncode,
    /// Decoding one wire frame back into a protocol message.
    FrameDecode,
    /// Blocking on the channel for the next agent frame (threaded runtime).
    ChannelWait,
    /// One churn epoch's warm re-convergence (apply batch → fixed point).
    EpochReconverge,
    /// One conflict-free PUU batch commit (`Engine::apply_batch`): the
    /// parallel read-only delta phase plus the ordered sequential commit.
    BatchApply,
    /// One shard's interior-convergence phase of a coordinator round: from
    /// the `RunInterior` fan-out to that shard's `InteriorDone`.
    InteriorConverge,
    /// Serializing one boundary commit: encoding the boundary frame and the
    /// control messages that carry it to every replica shard.
    BoundarySerialize,
    /// Blocking on the socket transport for the next control message
    /// (coordinator-side recv wait, the network share of a round).
    NetWait,
    /// Serving mode: time a request spent queued between ingress stamping
    /// and a lane thread dequeuing it (scheduling delay, not work).
    IngressQueue,
    /// Serving mode: the bounded post-churn re-convergence a lane runs
    /// before replying to a Join/Leave (the "converge wait" share of
    /// request latency).
    ConvergeWait,
    /// Serving mode: encoding a reply and writing it back to the client
    /// socket.
    Reply,
}

impl SpanKind {
    /// Every kind, in display order. New kinds append at the end: the
    /// flight-recorder binary codec and per-kind tables index by
    /// [`index`](Self::index), so declaration order is a wire format.
    pub const ALL: [SpanKind; 14] = [
        SpanKind::Slot,
        SpanKind::EngineApply,
        SpanKind::BestResponse,
        SpanKind::FrameEncode,
        SpanKind::FrameDecode,
        SpanKind::ChannelWait,
        SpanKind::EpochReconverge,
        SpanKind::BatchApply,
        SpanKind::InteriorConverge,
        SpanKind::BoundarySerialize,
        SpanKind::NetWait,
        SpanKind::IngressQueue,
        SpanKind::ConvergeWait,
        SpanKind::Reply,
    ];

    /// Stable snake_case tag used by the JSONL codec and the Prometheus
    /// histogram names.
    pub fn tag(self) -> &'static str {
        match self {
            SpanKind::Slot => "slot",
            SpanKind::EngineApply => "engine_apply",
            SpanKind::BestResponse => "best_response",
            SpanKind::FrameEncode => "frame_encode",
            SpanKind::FrameDecode => "frame_decode",
            SpanKind::ChannelWait => "channel_wait",
            SpanKind::EpochReconverge => "epoch_reconverge",
            SpanKind::BatchApply => "batch_apply",
            SpanKind::InteriorConverge => "interior_converge",
            SpanKind::BoundarySerialize => "boundary_serialize",
            SpanKind::NetWait => "net_wait",
            SpanKind::IngressQueue => "ingress_queue",
            SpanKind::ConvergeWait => "converge_wait",
            SpanKind::Reply => "reply",
        }
    }

    /// Parses a [`tag`](Self::tag) back (JSONL codec).
    pub fn from_tag(tag: &str) -> Option<SpanKind> {
        SpanKind::ALL.into_iter().find(|k| k.tag() == tag)
    }

    /// Dense index into per-kind tables (`0..ALL.len()`).
    pub fn index(self) -> usize {
        self as usize
    }
}

/// An in-flight span: started by [`Obs::span`](crate::Obs::span), emitted on
/// drop (or [`finish`](Self::finish)). Holds `None` when the handle was
/// disabled at start — then the drop is a single branch and no clock was
/// ever read.
#[must_use = "a span records nothing until it is dropped or finished"]
#[derive(Debug)]
pub struct SpanTimer<'a> {
    pub(crate) obs: &'a crate::Obs,
    pub(crate) kind: SpanKind,
    pub(crate) start: Option<Instant>,
}

impl SpanTimer<'_> {
    /// Stops the clock and emits the [`Event::SpanRecorded`] now.
    pub fn finish(self) {
        drop(self);
    }

    /// Discards the span without emitting (e.g. a loop pass that found the
    /// dynamics already converged — not a decision slot).
    pub fn cancel(mut self) {
        self.start = None;
    }
}

impl Drop for SpanTimer<'_> {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let nanos = elapsed_nanos(start);
            self.obs.emit(|| Event::SpanRecorded {
                kind: self.kind,
                nanos,
            });
        }
    }
}

/// Elapsed monotonic nanoseconds since `start`, saturating at `u64::MAX`
/// (584 years — unreachable, but the cast must still be total). Public so
/// hot loops that time several spans off one shared clock read (e.g. the
/// dynamics slot loop, where the refresh pass starts the slot) can emit
/// `Event::SpanRecorded` without a [`SpanTimer`] per span.
pub fn elapsed_nanos(start: Instant) -> u64 {
    u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Latency summary of one [`SpanKind`] over a captured event stream —
/// what `trace_report` prints next to its ϕ reconstruction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpanSummary {
    /// The summarized kind.
    pub kind: SpanKind,
    /// Spans recorded.
    pub count: usize,
    /// Median duration, nanoseconds.
    pub p50_nanos: u64,
    /// 90th-percentile duration, nanoseconds (nearest-rank).
    pub p90_nanos: u64,
    /// 99th-percentile duration, nanoseconds (nearest-rank).
    pub p99_nanos: u64,
    /// Largest duration, nanoseconds.
    pub max_nanos: u64,
    /// Sum of all durations, nanoseconds.
    pub total_nanos: u64,
}

/// Aggregates every [`Event::SpanRecorded`] in `events` into one
/// [`SpanSummary`] per kind (kinds with no spans are omitted), in
/// [`SpanKind::ALL`] order. Percentiles are nearest-rank over the exact
/// recorded durations.
pub fn summarize_spans(events: &[Event]) -> Vec<SpanSummary> {
    let mut per_kind: Vec<Vec<u64>> = vec![Vec::new(); SpanKind::ALL.len()];
    for event in events {
        if let Event::SpanRecorded { kind, nanos } = *event {
            per_kind[kind.index()].push(nanos);
        }
    }
    let mut out = Vec::new();
    for kind in SpanKind::ALL {
        let durations = &mut per_kind[kind.index()];
        if durations.is_empty() {
            continue;
        }
        durations.sort_unstable();
        let rank = |q: f64| {
            // Nearest-rank: ceil(q·n) clamped to [1, n], 1-based.
            let n = durations.len();
            let r = (q * n as f64).ceil() as usize;
            durations[r.clamp(1, n) - 1]
        };
        out.push(SpanSummary {
            kind,
            count: durations.len(),
            p50_nanos: rank(0.50),
            p90_nanos: rank(0.90),
            p99_nanos: rank(0.99),
            max_nanos: *durations.last().expect("non-empty"),
            total_nanos: durations.iter().sum(),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Obs, RingBufferSubscriber};
    use std::sync::Arc;

    #[test]
    fn tags_roundtrip_and_index_is_dense() {
        for (i, kind) in SpanKind::ALL.into_iter().enumerate() {
            assert_eq!(kind.index(), i);
            assert_eq!(SpanKind::from_tag(kind.tag()), Some(kind));
        }
        assert_eq!(SpanKind::from_tag("no_such_span"), None);
    }

    #[test]
    fn disabled_span_reads_no_clock_and_emits_nothing() {
        let obs = Obs::disabled();
        let timer = obs.span(SpanKind::Slot);
        assert!(timer.start.is_none());
        timer.finish();
        // time() still runs the work itself.
        let mut ran = false;
        obs.time(SpanKind::FrameEncode, || ran = true);
        assert!(ran);
    }

    #[test]
    fn enabled_span_emits_one_record() {
        let ring = Arc::new(RingBufferSubscriber::new(8));
        let obs = Obs::new(ring.clone());
        obs.span(SpanKind::EngineApply).finish();
        let out = obs.time(SpanKind::FrameDecode, || 7);
        assert_eq!(out, 7);
        let events = ring.events();
        assert_eq!(events.len(), 2);
        assert!(matches!(
            events[0],
            Event::SpanRecorded {
                kind: SpanKind::EngineApply,
                ..
            }
        ));
        assert!(matches!(
            events[1],
            Event::SpanRecorded {
                kind: SpanKind::FrameDecode,
                ..
            }
        ));
    }

    #[test]
    fn cancelled_span_is_silent() {
        let ring = Arc::new(RingBufferSubscriber::new(8));
        let obs = Obs::new(ring.clone());
        obs.span(SpanKind::Slot).cancel();
        assert_eq!(ring.total(), 0);
    }

    #[test]
    fn summary_percentiles_are_nearest_rank() {
        let events: Vec<Event> = (1..=100)
            .map(|n| Event::SpanRecorded {
                kind: SpanKind::Slot,
                nanos: n,
            })
            .chain(std::iter::once(Event::SpanRecorded {
                kind: SpanKind::FrameEncode,
                nanos: 5,
            }))
            .collect();
        let summaries = summarize_spans(&events);
        assert_eq!(summaries.len(), 2);
        let slot = &summaries[0];
        assert_eq!(slot.kind, SpanKind::Slot);
        assert_eq!(slot.count, 100);
        assert_eq!(slot.p50_nanos, 50);
        assert_eq!(slot.p90_nanos, 90);
        assert_eq!(slot.p99_nanos, 99);
        assert_eq!(slot.max_nanos, 100);
        assert_eq!(slot.total_nanos, 5050);
        let enc = &summaries[1];
        assert_eq!(enc.kind, SpanKind::FrameEncode);
        assert_eq!(enc.count, 1);
        assert_eq!(enc.p50_nanos, 5);
        assert_eq!(enc.p99_nanos, 5);
    }

    #[test]
    fn summary_skips_absent_kinds() {
        assert!(summarize_spans(&[]).is_empty());
    }
}
