//! Zero-cost-when-disabled structured observability for the VCS workspace.
//!
//! The distributed dynamics of the paper (Alg. 1/2, PUU) are only
//! trustworthy at production scale if every decision slot is *visible*: who
//! updated, how the potential `ϕ` moved, how many frames and retransmissions
//! the channel cost, how fast each churn epoch re-converged. This crate is
//! the event layer the rest of the workspace instruments itself with:
//!
//! * [`Event`] — the slot-level event taxonomy (engine commits, response
//!   evaluations, slot/epoch boundaries, frame-level TX/RX/ARQ);
//! * [`Subscriber`] — the sink trait; [`NoopSubscriber`] (overhead
//!   measurement), [`RingBufferSubscriber`] (lock-cheap bounded capture),
//!   [`StatsSubscriber`] (atomic counters + log-bucketed histograms with a
//!   Prometheus-style text dump) and [`JsonlSubscriber`] (streaming JSONL
//!   trace file);
//! * [`Obs`] — the handle instrumented code holds. Disabled it is a single
//!   `Option` branch: [`Obs::emit`] takes a *closure* so event construction
//!   is never executed unless a subscriber is attached (measured < 2%
//!   overhead on the engine benchmark, see `BENCH_obs.json`);
//! * [`trace`] helpers — parse a JSONL trace back into events and
//!   reconstruct the ϕ trajectory from per-move deltas
//!   ([`reconstruct_phi`]), cross-checked against the absolute values the
//!   engine recorded (the `trace_report` bin in `vcs-bench` drives this);
//! * [`span`] — monotonic wall-clock profiling spans ([`SpanKind`],
//!   [`Obs::span`], [`Obs::time`]) flowing through the same
//!   closure-deferred handle, so the disabled path stays one branch;
//! * [`MetricsExporter`] / [`LiveMonitor`] — a dependency-free
//!   `TcpListener` HTTP endpoint serving `/metrics` (Prometheus text
//!   exposition), `/healthz`, `/snapshot` and `/alerts` off a live
//!   [`StatsSubscriber`] (plus an optional [`WatchdogSubscriber`]), so a
//!   running simulation can be scraped mid-epoch;
//! * [`causal`] — per-sender sequence numbers and Lamport clocks stamped
//!   onto every frame event by the runtimes ([`FrameStamper`]), giving a
//!   recorded trace a happens-before order ([`lamport_order`],
//!   [`causal_neighborhood`]);
//! * [`FlightRecorder`] — the always-on, lock-free bounded ring of recent
//!   events with a panic hook that dumps a post-mortem JSONL tail when a
//!   runtime thread dies;
//! * [`WatchdogSubscriber`] — online invariant checks (Eq. 11 ϕ
//!   monotonicity, Theorem 4 slot budgets, stale-livelock) raising
//!   structured [`Alert`]s through `/alerts` and `vcs_watchdog_*` counters;
//! * [`telemetry`] / [`FleetStats`] — the cross-process plane: compact
//!   [`TelemetryFrame`] snapshots a multi-process deployment streams from
//!   workers to its coordinator, folded into one fleet registry and served
//!   with `shard="<id>"` labels by
//!   [`MetricsExporter::bind_fleet`];
//! * [`LatencyHistogram`] — HDR-style log-linear request-latency histogram
//!   (wait-free recording, ≤ 3.1% quantile error, exact max) backing the
//!   serving layer's p50/p90/p99/p999 extraction;
//! * [`ServeMetrics`] / [`SloMonitor`] — serving-mode request counters,
//!   per-window sustained slots/sec + goodput gauges, and the windowed
//!   p99-budget burn-rate monitor latching [`AlertKind::SloBurnRate`]
//!   alerts, served together by [`MetricsExporter::bind_serve`].
//!
//! This crate is a dependency *leaf* (only the vendored `parking_lot`), so
//! `vcs-core` itself can depend on it; events therefore carry raw `u32`/
//! `u64` ids rather than `vcs-core` newtypes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod alert_sink;
pub mod causal;
mod event;
mod exporter;
mod fleet;
mod jsonl;
mod latency;
mod recorder;
mod slo;
pub mod span;
mod stats;
mod subscriber;
pub mod telemetry;
pub mod trace;
mod watchdog;

pub use alert_sink::{AlertRoute, AlertSink, FileAlertSink, HttpAlertSink, StderrAlertSink};
pub use causal::{
    causal_neighborhood, lamport_order, merge_stamped_streams, stamp_of, validate_causal_order,
    validate_causal_order_merged, CausalViolation, FrameStamp, FrameStamper, StampedStream,
    PLATFORM_SENDER,
};
pub use event::{Event, ResponseKind};
pub use exporter::{LiveMonitor, MetricsExporter};
pub use fleet::{shard_label, FleetStats, ShardTotals};
pub use jsonl::JsonlSubscriber;
pub use latency::{LatencyHistogram, LatencySnapshot};
pub use recorder::FlightRecorder;
pub use slo::{RequestKind, ServeMetrics, SloConfig, SloMonitor};
pub use span::{elapsed_nanos, summarize_spans, SpanKind, SpanSummary, SpanTimer};
pub use stats::{
    validate_prometheus_text, Histogram, SpanHistogram, SpanQuantiles, StatsSubscriber,
};
pub use subscriber::{FanoutSubscriber, NoopSubscriber, Obs, RingBufferSubscriber, Subscriber};
pub use telemetry::{
    NetStats, SpanCells, TelemetryError, TelemetryFrame, COORD_SHARD, COUNTER_NAMES,
    TELEMETRY_FRAME_LEN, TELEMETRY_MAGIC, TELEMETRY_VERSION,
};
pub use trace::{reconstruct_phi, PhiPoint, PhiReconstruction, TraceError};
pub use watchdog::{Alert, AlertKind, WatchdogConfig, WatchdogSubscriber};
