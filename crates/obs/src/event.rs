//! The slot-level event taxonomy.

use crate::span::SpanKind;

/// Which response rule produced an evaluation (Alg. 1 best response vs the
/// BRUN/BATS better-response rules).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResponseKind {
    /// A full best-response scan (`Δ_i(t)` argmax).
    Best,
    /// A better-response scan (any strictly improving route).
    Better,
}

impl ResponseKind {
    /// Stable lower-case tag used by the JSONL codec.
    pub fn tag(self) -> &'static str {
        match self {
            ResponseKind::Best => "best",
            ResponseKind::Better => "better",
        }
    }
}

/// One structured observability event.
///
/// Every variant carries plain `u32`/`u64`/`f64` payloads (no `vcs-core`
/// newtypes: this crate sits *below* core in the dependency graph). Events
/// are `Copy`, so subscribers can buffer them without allocation.
///
/// The ϕ-carrying variants record the engine's *incrementally maintained*
/// potential and total profit at the instant of emission; `MoveCommitted`
/// additionally records the exact per-move deltas, which is what lets
/// [`crate::reconstruct_phi`] rebuild the full trajectory from a trace and
/// cross-check it against the absolutes within `1e-9`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Event {
    /// An engine was placed under observation (emitted by
    /// `Engine::set_obs`): the anchor point of a ϕ trajectory.
    EngineInit {
        /// Active users on the platform.
        users: u32,
        /// Tasks in the game.
        tasks: u32,
        /// Potential `ϕ(s)` at attach time.
        phi: f64,
        /// Total profit `Σ_i P_i(s)` at attach time.
        total_profit: f64,
    },
    /// A user committed a route switch (`Engine::apply_move` with
    /// `from_route != to_route`).
    MoveCommitted {
        /// The moving user.
        user: u32,
        /// Route before the switch.
        from_route: u32,
        /// Route after the switch.
        to_route: u32,
        /// Exact potential delta of this move.
        phi_delta: f64,
        /// The mover's own profit change `α_i·Δϕ` (Eq. 11).
        profit_delta: f64,
        /// Potential after the move.
        phi: f64,
        /// Total profit after the move.
        total_profit: f64,
    },
    /// A user joined the live platform (`Engine::add_user`).
    UserJoined {
        /// The arriving user's id.
        user: u32,
        /// Potential after the join.
        phi: f64,
        /// Total profit after the join.
        total_profit: f64,
    },
    /// A user left the live platform (`Engine::remove_user`).
    UserLeft {
        /// The departing user's id.
        user: u32,
        /// Potential after the leave.
        phi: f64,
        /// Total profit after the leave.
        total_profit: f64,
    },
    /// A dynamics driver evaluated one user's response rule.
    ResponseEvaluated {
        /// The evaluated user.
        user: u32,
        /// Best- or better-response scan.
        kind: ResponseKind,
        /// Whether a strictly improving route was found.
        improving: bool,
    },
    /// One batched refresh pass of an incremental dynamics driver: every
    /// dirty user re-scanned back-to-back before a grant. The hot in-process
    /// loops emit this *instead of* per-user [`ResponseEvaluated`] events —
    /// an incremental scan is ~100ns and a pass covers dozens of them, so
    /// per-scan events would dominate the instrumented cost (the same
    /// batching as [`SpanKind::BestResponse`]). Runtimes whose scans cross a
    /// channel keep the per-user event.
    ///
    /// [`ResponseEvaluated`]: Event::ResponseEvaluated
    RefreshPass {
        /// Best- or better-response scans.
        kind: ResponseKind,
        /// Users re-evaluated in this pass.
        scans: u32,
        /// How many of them found a strictly improving route.
        improving: u32,
    },
    /// A decision slot finished.
    SlotCompleted {
        /// Slot number (1-based, matching `SlotTrace`).
        slot: u64,
        /// Users that switched route this slot.
        updated: u32,
        /// Potential at end of slot.
        phi: f64,
        /// Total profit at end of slot.
        total_profit: f64,
    },
    /// The platform (or an agent) put a frame on the channel.
    ///
    /// Carries the sender's causal stamp (see [`crate::causal`]): `seq` is
    /// the per-sender frame sequence number, `lamport` the sender's logical
    /// clock at send time. Traces recorded before the causal layer existed
    /// parse with both fields defaulted to `0`.
    FrameSent {
        /// Encoded frame length in bytes.
        bytes: u32,
        /// Per-sender frame sequence number (1-based; 0 = pre-causal trace).
        seq: u64,
        /// Sender's Lamport clock at send time (0 = pre-causal trace).
        lamport: u64,
    },
    /// A frame was received and decoded.
    ///
    /// `seq` is the *sender's* sequence number of the received frame (pairing
    /// RX with its TX), `lamport` the receiver's clock after the merge rule
    /// `max(local, frame) + 1` — so `lamport` here is always strictly greater
    /// than the matching [`FrameSent`] stamp.
    ///
    /// [`FrameSent`]: Event::FrameSent
    FrameReceived {
        /// Encoded frame length in bytes.
        bytes: u32,
        /// Sequence number of the frame as stamped by its sender.
        seq: u64,
        /// Receiver's Lamport clock after receipt (0 = pre-causal trace).
        lamport: u64,
    },
    /// The lossy channel dropped a frame (before any retry). Stamped with
    /// the dropped frame's send stamp: the drop inherits the causal position
    /// of the TX it annihilated.
    FrameDropped {
        /// Encoded frame length in bytes.
        bytes: u32,
        /// Sequence number of the dropped frame as stamped by its sender.
        seq: u64,
        /// Sender's Lamport clock of the dropped frame.
        lamport: u64,
    },
    /// The stop-and-wait ARQ re-sent a frame. A local event at the sender:
    /// `seq` repeats the sender's latest frame sequence number, `lamport`
    /// is a fresh local tick.
    Retransmission {
        /// Retry attempt number (1-based).
        attempt: u32,
        /// The sender's most recent frame sequence number.
        seq: u64,
        /// Sender's Lamport clock at the retry decision.
        lamport: u64,
    },
    /// An online churn epoch began (after its Join/Leave batch applied).
    EpochStarted {
        /// Epoch number (0-based).
        epoch: u32,
        /// Users that joined in this epoch's batch.
        joins: u32,
        /// Users that left in this epoch's batch.
        leaves: u32,
        /// Active users after the batch.
        active: u32,
    },
    /// An online churn epoch re-converged (or hit its slot cap).
    EpochConverged {
        /// Epoch number (0-based).
        epoch: u32,
        /// Slots the warm re-equilibration took.
        slots: u64,
        /// Whether an equilibrium was certified within the cap.
        converged: bool,
        /// Potential at the epoch equilibrium.
        phi: f64,
    },
    /// A wall-clock profiling span closed (see [`crate::span`]): one timed
    /// section of the hot path, on the OS monotonic clock.
    SpanRecorded {
        /// What the span measured.
        kind: SpanKind,
        /// Elapsed monotonic nanoseconds.
        nanos: u64,
    },
    /// A dynamics run finished (terminal event of `run_distributed`).
    RunCompleted {
        /// Total decision slots.
        slots: u64,
        /// Total route switches.
        updates: u64,
        /// Whether the run certified an equilibrium.
        converged: bool,
        /// Terminal potential.
        phi: f64,
    },
}

impl Event {
    /// Stable snake_case tag used by the JSONL codec and the Prometheus
    /// counter names.
    pub fn tag(&self) -> &'static str {
        match self {
            Event::EngineInit { .. } => "engine_init",
            Event::MoveCommitted { .. } => "move_committed",
            Event::UserJoined { .. } => "user_joined",
            Event::UserLeft { .. } => "user_left",
            Event::ResponseEvaluated { .. } => "response_evaluated",
            Event::RefreshPass { .. } => "refresh_pass",
            Event::SlotCompleted { .. } => "slot_completed",
            Event::FrameSent { .. } => "frame_sent",
            Event::FrameReceived { .. } => "frame_received",
            Event::FrameDropped { .. } => "frame_dropped",
            Event::Retransmission { .. } => "retransmission",
            Event::EpochStarted { .. } => "epoch_started",
            Event::EpochConverged { .. } => "epoch_converged",
            Event::SpanRecorded { .. } => "span",
            Event::RunCompleted { .. } => "run_completed",
        }
    }
}
