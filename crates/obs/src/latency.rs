//! HDR-style request-latency histogram with quantile extraction.
//!
//! The serving layer (PR 10) measures per-request end-to-end latency at
//! open-loop load: up to ~100k requests per run, recorded from many
//! threads, queried for tail quantiles (p50/p90/p99/p999) while recording
//! continues. A sorted-vector summary (like [`summarize_spans`]) would
//! need unbounded memory and a stop-the-world sort; the decade-bucket
//! [`SpanHistogram`] is too coarse for tail latency (one bucket per 10×).
//!
//! [`LatencyHistogram`] is the standard log-linear compromise: values are
//! bucketed by (power of two × 32 linear sub-buckets), giving a worst-case
//! relative error of 1/32 ≈ 3.1% across the full `u64` nanosecond range in
//! 1 920 buckets (15 KiB of atomics). Recording is three relaxed atomic
//! adds plus one `fetch_max` — wait-free, no locks, safe from any thread.
//! Quantiles are nearest-rank over a bucket snapshot, reported at the
//! bucket's inclusive upper bound (conservative: never under-reports a
//! tail), and the maximum is tracked exactly.
//!
//! [`summarize_spans`]: crate::summarize_spans
//! [`SpanHistogram`]: crate::stats::SpanHistogram

use std::sync::atomic::{AtomicU64, Ordering};

/// Linear sub-buckets per power of two: 32 → ≤ 3.1% relative error.
const SUB_BITS: u32 = 5;
const SUB_BUCKETS: u64 = 1 << SUB_BITS;
/// Total bucket count: 32 exact unit buckets + 32 per exponent 5..=63.
const BUCKETS: usize = (64 - SUB_BITS as usize + 1) * SUB_BUCKETS as usize;

/// Bucket index for a recorded value. Values below 32 are exact; above,
/// the top 5 bits after the leading bit select a linear sub-bucket.
fn bucket_index(value: u64) -> usize {
    if value < SUB_BUCKETS {
        return value as usize;
    }
    let msb = 63 - value.leading_zeros();
    let shift = msb - SUB_BITS;
    let sub = (value >> shift) & (SUB_BUCKETS - 1);
    ((msb - SUB_BITS + 1) as u64 * SUB_BUCKETS + sub) as usize
}

/// Inclusive upper bound of a bucket — the value quantiles report.
fn bucket_upper(index: usize) -> u64 {
    let index = index as u64;
    if index < SUB_BUCKETS {
        return index;
    }
    let block = index / SUB_BUCKETS;
    let sub = index % SUB_BUCKETS;
    let shift = (block - 1) as u32;
    // u128 intermediate: the top bucket's bound exceeds u64 and saturates.
    let upper = ((u128::from(sub + SUB_BUCKETS + 1)) << shift) - 1;
    u64::try_from(upper).unwrap_or(u64::MAX)
}

/// Concurrent log-linear latency histogram (nanosecond values).
///
/// See the module docs for the encoding. All methods are safe to call
/// concurrently; readers see a point-in-time approximation (bucket loads
/// are relaxed), which is the usual histogram-scrape contract.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum_nanos: AtomicU64,
    max_nanos: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_nanos: AtomicU64::new(0),
            max_nanos: AtomicU64::new(0),
        }
    }

    /// Records one latency sample.
    pub fn record_nanos(&self, nanos: u64) {
        self.buckets[bucket_index(nanos)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_nanos.fetch_add(nanos, Ordering::Relaxed);
        self.max_nanos.fetch_max(nanos, Ordering::Relaxed);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded samples, nanoseconds.
    pub fn sum_nanos(&self) -> u64 {
        self.sum_nanos.load(Ordering::Relaxed)
    }

    /// Largest recorded sample (exact), or 0 when empty.
    pub fn max_nanos(&self) -> u64 {
        self.max_nanos.load(Ordering::Relaxed)
    }

    /// Adds every sample of `other` into `self` (bucket-wise; the exact
    /// max is propagated). Used to merge per-lane or per-connection
    /// histograms into a run-level one.
    pub fn merge_from(&self, other: &LatencyHistogram) {
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            let n = theirs.load(Ordering::Relaxed);
            if n > 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum_nanos
            .fetch_add(other.sum_nanos.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max_nanos
            .fetch_max(other.max_nanos.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Zeroes the histogram. Not atomic with respect to concurrent
    /// recorders — samples landing mid-reset may survive or vanish — so
    /// callers that need windowed readings (the SLO monitor's ticker)
    /// accept a sample of slack at window edges.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum_nanos.store(0, Ordering::Relaxed);
        self.max_nanos.store(0, Ordering::Relaxed);
    }

    /// A coherent point-in-time copy for multi-quantile extraction.
    pub fn snapshot(&self) -> LatencySnapshot {
        LatencySnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            max_nanos: self.max_nanos.load(Ordering::Relaxed),
            sum_nanos: self.sum_nanos.load(Ordering::Relaxed),
        }
    }

    /// Nearest-rank quantile (`0 < q ≤ 1`) in nanoseconds over a fresh
    /// snapshot; 0 when empty. For several quantiles of one instant, take
    /// one [`snapshot`](Self::snapshot) and query it instead.
    pub fn quantile_nanos(&self, q: f64) -> u64 {
        self.snapshot().quantile_nanos(q)
    }
}

/// Immutable bucket snapshot of a [`LatencyHistogram`].
#[derive(Debug, Clone)]
pub struct LatencySnapshot {
    buckets: Vec<u64>,
    max_nanos: u64,
    sum_nanos: u64,
}

impl LatencySnapshot {
    /// Samples in the snapshot (sum over buckets — self-consistent even if
    /// the live counter raced ahead of the bucket loads).
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Sum of all samples at snapshot time, nanoseconds.
    pub fn sum_nanos(&self) -> u64 {
        self.sum_nanos
    }

    /// Largest sample at snapshot time (exact), or 0 when empty.
    pub fn max_nanos(&self) -> u64 {
        self.max_nanos
    }

    /// Mean sample, nanoseconds (0 when empty).
    pub fn mean_nanos(&self) -> u64 {
        self.sum_nanos.checked_div(self.count()).unwrap_or(0)
    }

    /// Nearest-rank quantile (`0 < q ≤ 1`), reported at the containing
    /// bucket's inclusive upper bound and clamped to the exact maximum;
    /// 0 when the snapshot is empty.
    pub fn quantile_nanos(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper(i).min(self.max_nanos);
            }
        }
        self.max_nanos
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn bucket_encoding_is_monotone_and_bounded() {
        // Index is monotone in the value and the upper bound contains it.
        let mut prev = 0usize;
        for v in (0..4096u64).chain([u64::MAX / 3, u64::MAX - 1, u64::MAX]) {
            let i = bucket_index(v);
            assert!(i >= prev, "monotone within the sweep");
            assert!(i < BUCKETS);
            assert!(bucket_upper(i) >= v, "upper bound covers value {v}");
            // Relative error of the upper bound stays within 1/32.
            if v >= SUB_BUCKETS {
                let upper = bucket_upper(i) as f64;
                assert!(upper <= v as f64 * (1.0 + 1.0 / SUB_BUCKETS as f64) + 1.0);
            }
            prev = i;
        }
        // Small values are exact.
        for v in 0..SUB_BUCKETS {
            assert_eq!(bucket_upper(bucket_index(v)), v);
        }
    }

    #[test]
    fn quantiles_track_a_uniform_ramp_within_resolution() {
        let h = LatencyHistogram::new();
        for v in 1..=100_000u64 {
            h.record_nanos(v);
        }
        assert_eq!(h.count(), 100_000);
        assert_eq!(h.max_nanos(), 100_000);
        let snap = h.snapshot();
        for (q, truth) in [(0.50, 50_000.0), (0.90, 90_000.0), (0.99, 99_000.0)] {
            let got = snap.quantile_nanos(q) as f64;
            assert!(
                got >= truth && got <= truth * 1.04,
                "q{q}: got {got}, truth {truth}"
            );
        }
        assert_eq!(snap.quantile_nanos(1.0), 100_000);
    }

    #[test]
    fn empty_and_single_sample_edges() {
        let h = LatencyHistogram::new();
        assert_eq!(h.quantile_nanos(0.99), 0);
        h.record_nanos(7);
        assert_eq!(h.quantile_nanos(0.5), 7);
        assert_eq!(h.quantile_nanos(0.999), 7);
        assert_eq!(h.max_nanos(), 7);
        assert_eq!(h.sum_nanos(), 7);
    }

    #[test]
    fn merge_accumulates_and_reset_zeroes() {
        let a = LatencyHistogram::new();
        let b = LatencyHistogram::new();
        a.record_nanos(10);
        b.record_nanos(1_000_000);
        b.record_nanos(20);
        a.merge_from(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.sum_nanos(), 1_000_030);
        assert_eq!(a.max_nanos(), 1_000_000);
        a.reset();
        assert_eq!(a.count(), 0);
        assert_eq!(a.quantile_nanos(0.5), 0);
        assert_eq!(a.max_nanos(), 0);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = Arc::new(LatencyHistogram::new());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        h.record_nanos(i * 4 + t + 1);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(h.count(), 40_000);
        assert_eq!(h.snapshot().count(), 40_000);
        assert_eq!(h.max_nanos(), 9_999 * 4 + 4);
    }
}
