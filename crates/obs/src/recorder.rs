//! The always-on causal flight recorder: a lock-free bounded ring of the
//! most recent events, with a panic hook that dumps the tail to a
//! post-mortem JSONL file when any runtime thread dies.
//!
//! ## Why not the [`RingBufferSubscriber`]?
//!
//! The mutexed ring is fine for tests, but an *always-on* recorder rides
//! the hot path of every instrumented run and must never introduce a lock
//! that a dying thread could be holding (a panic inside a `Mutex` guard
//! would poison or deadlock the dump). The flight recorder is wait-free
//! for writers: a slot is claimed with one `fetch_add`, the event is
//! serialized into fixed-width atomic words, and a per-slot seqlock
//! version makes torn reads detectable instead of dangerous — all in safe
//! Rust (`vcs-obs` forbids `unsafe`).
//!
//! ## Consistency model
//!
//! Writers never wait. The reader ([`FlightRecorder::tail`]) snapshots
//! every slot whose version is stable across the word reads, so it can
//! miss events being overwritten *during* the snapshot, but never returns
//! a half-written one in the common case. The one documented gap: if two
//! writers lap each other on the same slot mid-write (the ring overflowed
//! by a full capacity between their claims), the later version can mask
//! interleaved words. With the emitting runtimes putting all events on one
//! platform thread and capacities in the tens of thousands this cannot
//! happen in practice; a post-mortem tail is a debugging aid, not a ledger.
//!
//! [`RingBufferSubscriber`]: crate::RingBufferSubscriber

use crate::event::{Event, ResponseKind};
use crate::span::SpanKind;
use crate::subscriber::Subscriber;
use crate::trace::event_to_json;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{fence, AtomicU64, Ordering};
use std::sync::Arc;

/// Fixed width of one serialized event: tag word plus up to seven payload
/// words (`MoveCommitted` is the widest variant: 3×u32 + 4×f64).
const WORDS: usize = 8;

fn tag_code(event: &Event) -> u64 {
    match event {
        Event::EngineInit { .. } => 1,
        Event::MoveCommitted { .. } => 2,
        Event::UserJoined { .. } => 3,
        Event::UserLeft { .. } => 4,
        Event::ResponseEvaluated { .. } => 5,
        Event::RefreshPass { .. } => 6,
        Event::SlotCompleted { .. } => 7,
        Event::FrameSent { .. } => 8,
        Event::FrameReceived { .. } => 9,
        Event::FrameDropped { .. } => 10,
        Event::Retransmission { .. } => 11,
        Event::EpochStarted { .. } => 12,
        Event::EpochConverged { .. } => 13,
        Event::SpanRecorded { .. } => 14,
        Event::RunCompleted { .. } => 15,
    }
}

fn kind_code(kind: ResponseKind) -> u64 {
    match kind {
        ResponseKind::Best => 0,
        ResponseKind::Better => 1,
    }
}

/// Serializes one event into the fixed word layout and returns how many
/// leading words it used. Word 0 is the tag, words 1.. are the variant's
/// fields in declaration order (`u32`s widened, `f64`s as IEEE bits,
/// `bool`s as 0/1). The writer stores only the used prefix — the decoder
/// reads fields per tag, so residue from a slot's previous occupant in the
/// unused suffix is never interpreted.
fn encode_words(event: &Event) -> ([u64; WORDS], usize) {
    let mut w = [0u64; WORDS];
    w[0] = tag_code(event);
    let used = match *event {
        Event::EngineInit {
            users,
            tasks,
            phi,
            total_profit,
        } => {
            w[1] = u64::from(users);
            w[2] = u64::from(tasks);
            w[3] = phi.to_bits();
            w[4] = total_profit.to_bits();
            5
        }
        Event::MoveCommitted {
            user,
            from_route,
            to_route,
            phi_delta,
            profit_delta,
            phi,
            total_profit,
        } => {
            w[1] = u64::from(user);
            w[2] = u64::from(from_route);
            w[3] = u64::from(to_route);
            w[4] = phi_delta.to_bits();
            w[5] = profit_delta.to_bits();
            w[6] = phi.to_bits();
            w[7] = total_profit.to_bits();
            8
        }
        Event::UserJoined {
            user,
            phi,
            total_profit,
        }
        | Event::UserLeft {
            user,
            phi,
            total_profit,
        } => {
            w[1] = u64::from(user);
            w[2] = phi.to_bits();
            w[3] = total_profit.to_bits();
            4
        }
        Event::ResponseEvaluated {
            user,
            kind,
            improving,
        } => {
            w[1] = u64::from(user);
            w[2] = kind_code(kind);
            w[3] = u64::from(improving);
            4
        }
        Event::RefreshPass {
            kind,
            scans,
            improving,
        } => {
            w[1] = kind_code(kind);
            w[2] = u64::from(scans);
            w[3] = u64::from(improving);
            4
        }
        Event::SlotCompleted {
            slot,
            updated,
            phi,
            total_profit,
        } => {
            w[1] = slot;
            w[2] = u64::from(updated);
            w[3] = phi.to_bits();
            w[4] = total_profit.to_bits();
            5
        }
        Event::FrameSent {
            bytes,
            seq,
            lamport,
        }
        | Event::FrameReceived {
            bytes,
            seq,
            lamport,
        }
        | Event::FrameDropped {
            bytes,
            seq,
            lamport,
        } => {
            w[1] = u64::from(bytes);
            w[2] = seq;
            w[3] = lamport;
            4
        }
        Event::Retransmission {
            attempt,
            seq,
            lamport,
        } => {
            w[1] = u64::from(attempt);
            w[2] = seq;
            w[3] = lamport;
            4
        }
        Event::EpochStarted {
            epoch,
            joins,
            leaves,
            active,
        } => {
            w[1] = u64::from(epoch);
            w[2] = u64::from(joins);
            w[3] = u64::from(leaves);
            w[4] = u64::from(active);
            5
        }
        Event::EpochConverged {
            epoch,
            slots,
            converged,
            phi,
        } => {
            w[1] = u64::from(epoch);
            w[2] = slots;
            w[3] = u64::from(converged);
            w[4] = phi.to_bits();
            5
        }
        Event::SpanRecorded { kind, nanos } => {
            w[1] = kind.index() as u64;
            w[2] = nanos;
            3
        }
        Event::RunCompleted {
            slots,
            updates,
            converged,
            phi,
        } => {
            w[1] = slots;
            w[2] = updates;
            w[3] = u64::from(converged);
            w[4] = phi.to_bits();
            5
        }
    };
    (w, used)
}

fn u32_of(word: u64) -> Option<u32> {
    u32::try_from(word).ok()
}

fn bool_of(word: u64) -> Option<bool> {
    match word {
        0 => Some(false),
        1 => Some(true),
        _ => None,
    }
}

fn kind_of(word: u64) -> Option<ResponseKind> {
    match word {
        0 => Some(ResponseKind::Best),
        1 => Some(ResponseKind::Better),
        _ => None,
    }
}

/// Inverse of [`encode_words`]; `None` on any out-of-domain word (only
/// reachable through the documented lapped-writer gap).
fn decode_words(w: &[u64; WORDS]) -> Option<Event> {
    let event = match w[0] {
        1 => Event::EngineInit {
            users: u32_of(w[1])?,
            tasks: u32_of(w[2])?,
            phi: f64::from_bits(w[3]),
            total_profit: f64::from_bits(w[4]),
        },
        2 => Event::MoveCommitted {
            user: u32_of(w[1])?,
            from_route: u32_of(w[2])?,
            to_route: u32_of(w[3])?,
            phi_delta: f64::from_bits(w[4]),
            profit_delta: f64::from_bits(w[5]),
            phi: f64::from_bits(w[6]),
            total_profit: f64::from_bits(w[7]),
        },
        3 => Event::UserJoined {
            user: u32_of(w[1])?,
            phi: f64::from_bits(w[2]),
            total_profit: f64::from_bits(w[3]),
        },
        4 => Event::UserLeft {
            user: u32_of(w[1])?,
            phi: f64::from_bits(w[2]),
            total_profit: f64::from_bits(w[3]),
        },
        5 => Event::ResponseEvaluated {
            user: u32_of(w[1])?,
            kind: kind_of(w[2])?,
            improving: bool_of(w[3])?,
        },
        6 => Event::RefreshPass {
            kind: kind_of(w[1])?,
            scans: u32_of(w[2])?,
            improving: u32_of(w[3])?,
        },
        7 => Event::SlotCompleted {
            slot: w[1],
            updated: u32_of(w[2])?,
            phi: f64::from_bits(w[3]),
            total_profit: f64::from_bits(w[4]),
        },
        8 => Event::FrameSent {
            bytes: u32_of(w[1])?,
            seq: w[2],
            lamport: w[3],
        },
        9 => Event::FrameReceived {
            bytes: u32_of(w[1])?,
            seq: w[2],
            lamport: w[3],
        },
        10 => Event::FrameDropped {
            bytes: u32_of(w[1])?,
            seq: w[2],
            lamport: w[3],
        },
        11 => Event::Retransmission {
            attempt: u32_of(w[1])?,
            seq: w[2],
            lamport: w[3],
        },
        12 => Event::EpochStarted {
            epoch: u32_of(w[1])?,
            joins: u32_of(w[2])?,
            leaves: u32_of(w[3])?,
            active: u32_of(w[4])?,
        },
        13 => Event::EpochConverged {
            epoch: u32_of(w[1])?,
            slots: w[2],
            converged: bool_of(w[3])?,
            phi: f64::from_bits(w[4]),
        },
        14 => Event::SpanRecorded {
            kind: *SpanKind::ALL.get(usize::try_from(w[1]).ok()?)?,
            nanos: w[2],
        },
        15 => Event::RunCompleted {
            slots: w[1],
            updates: w[2],
            converged: bool_of(w[3])?,
            phi: f64::from_bits(w[4]),
        },
        _ => return None,
    };
    Some(event)
}

/// One seqlock-guarded ring slot. `version` is `0` while empty,
/// `2·index + 1` while the claimer of global `index` is writing, and
/// `2·index + 2` once its words are stable.
struct Slot {
    version: AtomicU64,
    words: [AtomicU64; WORDS],
}

impl Slot {
    fn new() -> Self {
        Slot {
            version: AtomicU64::new(0),
            words: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// The lock-free flight recorder: a bounded ring of the most recent
/// events, readable at any moment (typically from a panic hook).
///
/// ```
/// use std::sync::Arc;
/// use vcs_obs::{FlightRecorder, Obs};
/// let recorder = Arc::new(FlightRecorder::new(1 << 12));
/// let obs = Obs::new(recorder.clone());
/// // ... run something observed ...
/// let recent = recorder.tail();
/// assert!(recent.len() <= 1 << 12);
/// ```
pub struct FlightRecorder {
    slots: Box<[Slot]>,
    head: AtomicU64,
}

impl FlightRecorder {
    /// A recorder keeping the most recent `capacity` events, rounded up to
    /// the next power of two (min 1): a power-of-two ring turns the
    /// per-event slot lookup into a bitmask instead of a 64-bit division,
    /// which at millions of events per second is the difference between
    /// the recorder riding the hot path for free and showing up in
    /// `obs_report`.
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1).next_power_of_two();
        FlightRecorder {
            slots: (0..capacity).map(|_| Slot::new()).collect(),
            head: AtomicU64::new(0),
        }
    }

    /// Ring capacity in events.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total events ever recorded (not capped at capacity).
    pub fn total(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Snapshot of the recent tail, oldest first. Slots being overwritten
    /// during the snapshot are skipped, never returned torn.
    pub fn tail(&self) -> Vec<Event> {
        let mut stable: Vec<(u64, Event)> = Vec::with_capacity(self.slots.len());
        for slot in self.slots.iter() {
            let v1 = slot.version.load(Ordering::Acquire);
            if v1 == 0 || v1 % 2 == 1 {
                continue;
            }
            let mut words = [0u64; WORDS];
            for (out, word) in words.iter_mut().zip(slot.words.iter()) {
                *out = word.load(Ordering::Relaxed);
            }
            fence(Ordering::Acquire);
            if slot.version.load(Ordering::Relaxed) != v1 {
                continue; // overwritten mid-read
            }
            if let Some(event) = decode_words(&words) {
                stable.push(((v1 - 2) / 2, event));
            }
        }
        stable.sort_by_key(|&(index, _)| index);
        stable.into_iter().map(|(_, event)| event).collect()
    }

    /// Writes the current tail to `path` as JSONL (the same codec as
    /// [`JsonlSubscriber`], so `trace_report`/`replay_debug` read it
    /// directly). Returns the number of events written.
    ///
    /// [`JsonlSubscriber`]: crate::JsonlSubscriber
    pub fn dump_jsonl(&self, path: &Path) -> std::io::Result<usize> {
        let events = self.tail();
        let mut out = std::io::BufWriter::new(std::fs::File::create(path)?);
        for event in &events {
            out.write_all(event_to_json(event).as_bytes())?;
            out.write_all(b"\n")?;
        }
        out.flush()?;
        Ok(events.len())
    }

    /// Installs a process-wide panic hook that dumps this recorder's tail
    /// to `path` before delegating to the previously installed hook — so a
    /// dying runtime thread leaves a post-mortem trace behind. Repeated
    /// installs chain; each fires on every panic (including ones caught by
    /// `catch_unwind`), overwriting `path` with the freshest tail.
    pub fn install_panic_hook(self: &Arc<Self>, path: impl Into<PathBuf>) {
        let recorder = Arc::clone(self);
        let path = path.into();
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let _ = recorder.dump_jsonl(&path);
            previous(info);
        }));
    }
}

impl Subscriber for FlightRecorder {
    fn event(&self, event: &Event) {
        let index = self.head.fetch_add(1, Ordering::Relaxed);
        // Capacity is a power of two (see `new`), so the mask below both
        // replaces a 64-bit division and lets the bounds check vanish:
        // `x & (len - 1) < len` is provable for any non-empty slice.
        let slot = &self.slots[(index as usize) & (self.slots.len() - 1)];
        slot.version.store(2 * index + 1, Ordering::Release);
        let (words, used) = encode_words(event);
        for (word, &value) in slot.words.iter().zip(words.iter().take(used)) {
            word.store(value, Ordering::Relaxed);
        }
        slot.version.store(2 * index + 2, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<Event> {
        vec![
            Event::EngineInit {
                users: 3,
                tasks: 2,
                phi: 1.5,
                total_profit: 4.25,
            },
            Event::MoveCommitted {
                user: 1,
                from_route: 0,
                to_route: 2,
                phi_delta: 0.1 + 0.2,
                profit_delta: -1.0e-17,
                phi: f64::MIN_POSITIVE,
                total_profit: 1.0e300,
            },
            Event::UserJoined {
                user: 3,
                phi: 2.0,
                total_profit: 5.0,
            },
            Event::UserLeft {
                user: 0,
                phi: 1.0,
                total_profit: 3.0,
            },
            Event::ResponseEvaluated {
                user: 2,
                kind: ResponseKind::Better,
                improving: true,
            },
            Event::RefreshPass {
                kind: ResponseKind::Best,
                scans: 41,
                improving: 9,
            },
            Event::SlotCompleted {
                slot: 7,
                updated: 1,
                phi: 1.0,
                total_profit: 3.0,
            },
            Event::FrameSent {
                bytes: 33,
                seq: 17,
                lamport: 40,
            },
            Event::FrameReceived {
                bytes: 33,
                seq: 17,
                lamport: 41,
            },
            Event::FrameDropped {
                bytes: 12,
                seq: 18,
                lamport: 42,
            },
            Event::Retransmission {
                attempt: 2,
                seq: 18,
                lamport: 43,
            },
            Event::EpochStarted {
                epoch: 1,
                joins: 2,
                leaves: 1,
                active: 10,
            },
            Event::EpochConverged {
                epoch: 1,
                slots: 5,
                converged: true,
                phi: 1.0,
            },
            Event::SpanRecorded {
                kind: SpanKind::EngineApply,
                nanos: 12_345,
            },
            Event::RunCompleted {
                slots: 12,
                updates: 9,
                converged: false,
                phi: 1.0,
            },
        ]
    }

    #[test]
    fn word_codec_roundtrips_every_variant_bit_exactly() {
        for event in sample_events() {
            let (mut words, used) = encode_words(&event);
            // The unused suffix may hold a previous occupant's residue —
            // the decoder must never interpret it.
            for word in &mut words[used..] {
                *word = 0xDEAD_BEEF_DEAD_BEEF;
            }
            let decoded = decode_words(&words).unwrap();
            assert_eq!(decoded, event, "word codec roundtrip of {event:?}");
        }
    }

    #[test]
    fn tail_returns_recent_events_in_order() {
        let recorder = FlightRecorder::new(4);
        for event in sample_events() {
            recorder.event(&event);
        }
        let tail = recorder.tail();
        assert_eq!(recorder.total(), 15);
        assert_eq!(tail.len(), 4);
        // The ring kept the *last* four, oldest first.
        assert_eq!(tail, sample_events()[11..].to_vec());
    }

    #[test]
    fn tail_shorter_than_capacity_returns_everything() {
        let recorder = FlightRecorder::new(64);
        let events = sample_events();
        for event in &events {
            recorder.event(event);
        }
        assert_eq!(recorder.tail(), events);
    }

    #[test]
    fn concurrent_writers_never_produce_torn_events() {
        let recorder = Arc::new(FlightRecorder::new(128));
        let threads: Vec<_> = (0..4u32)
            .map(|t| {
                let recorder = Arc::clone(&recorder);
                std::thread::spawn(move || {
                    for i in 0..5_000u64 {
                        recorder.event(&Event::SlotCompleted {
                            slot: i,
                            updated: t,
                            phi: f64::from(t),
                            total_profit: f64::from(t) * 2.0,
                        });
                    }
                })
            })
            .collect();
        // Read continuously while writers hammer the ring: every decoded
        // event must be internally consistent (phi = updated as f64).
        for _ in 0..200 {
            for event in recorder.tail() {
                match event {
                    Event::SlotCompleted {
                        updated,
                        phi,
                        total_profit,
                        ..
                    } => {
                        assert_eq!(phi, f64::from(updated));
                        assert_eq!(total_profit, phi * 2.0);
                    }
                    other => panic!("foreign event decoded from ring: {other:?}"),
                }
            }
        }
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(recorder.total(), 20_000);
        assert_eq!(recorder.tail().len(), 128);
    }

    #[test]
    fn dump_jsonl_writes_a_parseable_trace() {
        let dir = std::env::temp_dir().join("vcs_recorder_dump_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tail.jsonl");
        let recorder = FlightRecorder::new(32);
        for event in sample_events() {
            recorder.event(&event);
        }
        let written = recorder.dump_jsonl(&path).unwrap();
        assert_eq!(written, 15);
        let read_back = crate::trace::read_trace(&path).unwrap();
        assert_eq!(read_back, sample_events());
        std::fs::remove_file(&path).ok();
    }
}
