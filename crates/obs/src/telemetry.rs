//! The cross-process telemetry frame: a compact binary snapshot of one
//! process's observability state, streamed from shard workers to the
//! coordinator over the same transport that carries boundary frames.
//!
//! Telemetry is strictly **out-of-band** with respect to the deterministic
//! trajectory: frames carry cumulative counter snapshots (not deltas), so a
//! frame lost to transport loss, a duplicate, or a reordering costs nothing
//! but staleness — the fleet registry keeps the highest-`seq` frame per
//! `(shard, incarnation)` and folding is idempotent. Counters reset when a
//! crashed worker respawns; the coordinator stamps each ingested frame with
//! the worker's incarnation number so fleet rollups sum the final snapshot
//! of every dead incarnation plus the live one.
//!
//! The codec follows the workspace's hostile-input discipline (PR 2): a
//! fixed magic so a desynchronized stream fails loudly, explicit shape
//! bytes validated against this build's constants before any allocation,
//! and trailing bytes rejected. A frame is ~1.4 KiB — comfortably inside
//! the UDP transport's 8 KiB datagram payload cap, so telemetry never needs
//! chunking.

use crate::span::SpanKind;
use crate::stats::{StatsSubscriber, SPAN_BUCKETS as STATS_SPAN_BUCKETS};
use crate::watchdog::WatchdogSubscriber;

/// Wire magic of a telemetry frame: "VCST" (VCS Telemetry).
pub const TELEMETRY_MAGIC: [u8; 4] = *b"VCST";

/// Telemetry wire-format version this build speaks.
pub const TELEMETRY_VERSION: u8 = 1;

/// Cells per span row: one per latency bucket bound plus `+Inf`.
pub const SPAN_BUCKETS: usize = STATS_SPAN_BUCKETS;

/// The `shard` id the coordinator uses for its own telemetry frames;
/// rendered as `shard="coord"` by the fleet registry. `u32::MAX` can never
/// collide with a real shard index (the deployment caps shards far below).
pub const COORD_SHARD: u32 = u32::MAX;

/// Stats-counter column order of the telemetry wire format. Must match the
/// declaration order of the `counters!` table in `stats.rs` (a unit test
/// pins the correspondence).
pub const COUNTER_NAMES: [&str; 13] = [
    "slots",
    "moves",
    "joins",
    "leaves",
    "frames_sent",
    "frames_received",
    "frames_dropped",
    "bytes_sent",
    "bytes_received",
    "retransmissions",
    "epochs_started",
    "epochs_converged",
    "runs_completed",
];

/// Named transport/ARQ health counters of one socket endpoint — the typed
/// replacement for the bare `(retransmissions, drops)` tuple the shard
/// transport used to expose. TCP endpoints report all-zero (the kernel owns
/// reliability there); UDP endpoints aggregate their per-peer ARQ state.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Datagrams retransmitted, NAK-driven and RTO-driven combined.
    pub retransmissions: u64,
    /// Datagrams annihilated by the fault injector (simulated loss).
    pub drops: u64,
    /// Retransmissions triggered by an explicit receiver NAK.
    pub naks: u64,
    /// Received datagrams discarded as duplicates (already delivered or
    /// already pending).
    pub dup_drops: u64,
    /// Retransmissions triggered by a retransmission-timeout expiry.
    pub rto_fires: u64,
    /// Sent-but-unacknowledged datagrams at snapshot time (a gauge).
    pub in_flight: u64,
    /// Smoothed round-trip-time estimate in milliseconds (EWMA over
    /// first-attempt acks, Karn's rule); 0 = no sample yet.
    pub srtt_ms: u64,
}

impl NetStats {
    /// Component-wise sum of two snapshots (counters and the in-flight
    /// gauge add; the RTT estimate keeps the larger of the two).
    pub fn merged(&self, other: &NetStats) -> NetStats {
        NetStats {
            retransmissions: self.retransmissions + other.retransmissions,
            drops: self.drops + other.drops,
            naks: self.naks + other.naks,
            dup_drops: self.dup_drops + other.dup_drops,
            rto_fires: self.rto_fires + other.rto_fires,
            in_flight: self.in_flight + other.in_flight,
            srtt_ms: self.srtt_ms.max(other.srtt_ms),
        }
    }
}

/// One span kind's latency cells as carried on the wire: raw
/// (non-cumulative) bucket counts plus the nanosecond sum. The observation
/// count is the cell sum — not transmitted separately, so the histogram can
/// never arrive internally inconsistent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanCells {
    /// Sum of all recorded durations, nanoseconds.
    pub sum_nanos: u64,
    /// One cell per latency bucket (bounds as in `vcs_span_*_seconds`),
    /// last cell = `+Inf`.
    pub buckets: [u64; SPAN_BUCKETS],
}

impl SpanCells {
    /// An all-zero row.
    pub fn zero() -> Self {
        SpanCells {
            sum_nanos: 0,
            buckets: [0; SPAN_BUCKETS],
        }
    }

    /// Observations recorded (the cell sum).
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }
}

/// A decoding failure: the bytes are not a telemetry frame this build can
/// accept. Decoding never panics and never silently accepts damage — every
/// malformed input maps to one of these.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TelemetryError {
    /// Fewer bytes than the fixed layout requires.
    Truncated,
    /// The leading magic is not `VCST`.
    BadMagic([u8; 4]),
    /// A version this build does not speak.
    BadVersion(u8),
    /// A shape byte (counter / span-kind / bucket count) disagrees with
    /// this build's constants.
    BadShape(&'static str),
    /// Bytes left over after the fixed layout was consumed.
    TrailingBytes(usize),
}

impl std::fmt::Display for TelemetryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TelemetryError::Truncated => f.write_str("telemetry frame truncated"),
            TelemetryError::BadMagic(m) => write!(f, "bad telemetry magic {m:02x?}"),
            TelemetryError::BadVersion(v) => write!(f, "unknown telemetry version {v}"),
            TelemetryError::BadShape(what) => write!(f, "telemetry shape mismatch: {what}"),
            TelemetryError::TrailingBytes(n) => write!(f, "{n} trailing bytes after frame"),
        }
    }
}

impl std::error::Error for TelemetryError {}

/// One process's cumulative observability snapshot: stats counters,
/// response lanes, per-kind span-latency buckets, transport/ARQ counters,
/// latched watchdog alert counts, and the latest ϕ / total-profit gauges.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetryFrame {
    /// Reporting shard ([`COORD_SHARD`] = the coordinator itself).
    pub shard: u32,
    /// Process incarnation: 0 for the first spawn, bumped by the
    /// coordinator on every respawn of this shard. Workers send 0; the
    /// coordinator stamps the true value at ingest.
    pub incarnation: u32,
    /// Per-incarnation frame sequence number (stale frames lose to newer
    /// ones in the registry).
    pub seq: u64,
    /// Stats counters in [`COUNTER_NAMES`] order.
    pub counters: Vec<u64>,
    /// The four raw response lanes (`(kind is Better) << 1 | improving`).
    pub lanes: [u64; 4],
    /// One row per [`SpanKind`], in [`SpanKind::ALL`] order.
    pub spans: Vec<SpanCells>,
    /// Transport/ARQ health of this endpoint.
    pub net: NetStats,
    /// Latched watchdog counts: ϕ-decrease, slot-budget-overrun,
    /// stale-livelock.
    pub watchdog: [u64; 3],
    /// Latest ϕ as f64 bits (NaN bits = never set).
    pub phi_bits: u64,
    /// Latest total profit as f64 bits (NaN bits = never set).
    pub profit_bits: u64,
}

/// Exact encoded size of a telemetry frame in this build.
pub const TELEMETRY_FRAME_LEN: usize = 4 // magic
    + 1 // version
    + 4 // shard
    + 4 // incarnation
    + 8 // seq
    + 1 // counter count
    + COUNTER_NAMES.len() * 8
    + 4 * 8 // lanes
    + 1 // span-kind count
    + 1 // bucket count
    + SpanKind::ALL.len() * (1 + SPAN_BUCKETS) * 8
    + 7 * 8 // net
    + 3 * 8 // watchdog
    + 8 // phi bits
    + 8; // profit bits

impl TelemetryFrame {
    /// Snapshots a process's observability state into one frame.
    ///
    /// `seq` is the caller's per-process frame counter; `watchdog` may be
    /// absent (coordinator-side captures have no watchdog of their own).
    pub fn capture(
        shard: u32,
        seq: u64,
        stats: &StatsSubscriber,
        watchdog: Option<&WatchdogSubscriber>,
        net: NetStats,
    ) -> TelemetryFrame {
        let counters: Vec<u64> = stats.counter_pairs().iter().map(|&(_, v)| v).collect();
        debug_assert_eq!(counters.len(), COUNTER_NAMES.len());
        let spans = SpanKind::ALL
            .iter()
            .map(|&kind| {
                let (buckets, sum_nanos) = stats.span_histogram(kind).snapshot_cells();
                SpanCells { sum_nanos, buckets }
            })
            .collect();
        let (phi_decrease, budget_overrun, stale) = watchdog
            .map(WatchdogSubscriber::counters)
            .unwrap_or((0, 0, 0));
        TelemetryFrame {
            shard,
            incarnation: 0,
            seq,
            counters,
            lanes: stats.response_lanes(),
            spans,
            net,
            watchdog: [phi_decrease, budget_overrun, stale],
            phi_bits: stats.latest_phi().unwrap_or(f64::NAN).to_bits(),
            profit_bits: stats.latest_total_profit().unwrap_or(f64::NAN).to_bits(),
        }
    }

    /// An all-zero frame (gauges unset), for registry padding and tests.
    pub fn empty(shard: u32) -> TelemetryFrame {
        TelemetryFrame {
            shard,
            incarnation: 0,
            seq: 0,
            counters: vec![0; COUNTER_NAMES.len()],
            lanes: [0; 4],
            spans: vec![SpanCells::zero(); SpanKind::ALL.len()],
            net: NetStats::default(),
            watchdog: [0; 3],
            phi_bits: f64::NAN.to_bits(),
            profit_bits: f64::NAN.to_bits(),
        }
    }

    /// The latest ϕ carried, if the gauge was ever set.
    pub fn phi(&self) -> Option<f64> {
        let v = f64::from_bits(self.phi_bits);
        (!v.is_nan()).then_some(v)
    }

    /// Decision slots completed (the first counter column).
    pub fn slots(&self) -> u64 {
        self.counters.first().copied().unwrap_or(0)
    }

    /// Total latched watchdog alerts.
    pub fn alerts(&self) -> u64 {
        self.watchdog.iter().sum()
    }

    /// Encodes the frame ([`TELEMETRY_FRAME_LEN`] bytes, all multi-byte
    /// fields big-endian).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(TELEMETRY_FRAME_LEN);
        out.extend_from_slice(&TELEMETRY_MAGIC);
        out.push(TELEMETRY_VERSION);
        out.extend_from_slice(&self.shard.to_be_bytes());
        out.extend_from_slice(&self.incarnation.to_be_bytes());
        out.extend_from_slice(&self.seq.to_be_bytes());
        out.push(COUNTER_NAMES.len() as u8);
        for i in 0..COUNTER_NAMES.len() {
            out.extend_from_slice(&self.counters.get(i).copied().unwrap_or(0).to_be_bytes());
        }
        for lane in self.lanes {
            out.extend_from_slice(&lane.to_be_bytes());
        }
        out.push(SpanKind::ALL.len() as u8);
        out.push(SPAN_BUCKETS as u8);
        for i in 0..SpanKind::ALL.len() {
            let row = self.spans.get(i).copied().unwrap_or_else(SpanCells::zero);
            out.extend_from_slice(&row.sum_nanos.to_be_bytes());
            for cell in row.buckets {
                out.extend_from_slice(&cell.to_be_bytes());
            }
        }
        for v in [
            self.net.retransmissions,
            self.net.drops,
            self.net.naks,
            self.net.dup_drops,
            self.net.rto_fires,
            self.net.in_flight,
            self.net.srtt_ms,
        ] {
            out.extend_from_slice(&v.to_be_bytes());
        }
        for v in self.watchdog {
            out.extend_from_slice(&v.to_be_bytes());
        }
        out.extend_from_slice(&self.phi_bits.to_be_bytes());
        out.extend_from_slice(&self.profit_bits.to_be_bytes());
        debug_assert_eq!(out.len(), TELEMETRY_FRAME_LEN);
        out
    }

    /// Decodes a frame, rejecting every malformed input with a
    /// [`TelemetryError`] — truncation, bad magic, unknown version, shape
    /// bytes that disagree with this build, or trailing bytes.
    pub fn decode(bytes: &[u8]) -> Result<TelemetryFrame, TelemetryError> {
        let mut c = Cur { bytes, at: 0 };
        let magic = c.arr4()?;
        if magic != TELEMETRY_MAGIC {
            return Err(TelemetryError::BadMagic(magic));
        }
        let version = c.u8()?;
        if version != TELEMETRY_VERSION {
            return Err(TelemetryError::BadVersion(version));
        }
        let shard = c.u32()?;
        let incarnation = c.u32()?;
        let seq = c.u64()?;
        if c.u8()? as usize != COUNTER_NAMES.len() {
            return Err(TelemetryError::BadShape("counter count"));
        }
        let counters: Vec<u64> = (0..COUNTER_NAMES.len())
            .map(|_| c.u64())
            .collect::<Result<_, _>>()?;
        let mut lanes = [0u64; 4];
        for lane in &mut lanes {
            *lane = c.u64()?;
        }
        if c.u8()? as usize != SpanKind::ALL.len() {
            return Err(TelemetryError::BadShape("span-kind count"));
        }
        if c.u8()? as usize != SPAN_BUCKETS {
            return Err(TelemetryError::BadShape("bucket count"));
        }
        let mut spans = Vec::with_capacity(SpanKind::ALL.len());
        for _ in 0..SpanKind::ALL.len() {
            let sum_nanos = c.u64()?;
            let mut buckets = [0u64; SPAN_BUCKETS];
            for cell in &mut buckets {
                *cell = c.u64()?;
            }
            spans.push(SpanCells { sum_nanos, buckets });
        }
        let net = NetStats {
            retransmissions: c.u64()?,
            drops: c.u64()?,
            naks: c.u64()?,
            dup_drops: c.u64()?,
            rto_fires: c.u64()?,
            in_flight: c.u64()?,
            srtt_ms: c.u64()?,
        };
        let mut watchdog = [0u64; 3];
        for w in &mut watchdog {
            *w = c.u64()?;
        }
        let phi_bits = c.u64()?;
        let profit_bits = c.u64()?;
        if c.at != bytes.len() {
            return Err(TelemetryError::TrailingBytes(bytes.len() - c.at));
        }
        Ok(TelemetryFrame {
            shard,
            incarnation,
            seq,
            counters,
            lanes,
            spans,
            net,
            watchdog,
            phi_bits,
            profit_bits,
        })
    }
}

/// Bounds-checked big-endian reader over the frame bytes.
struct Cur<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl Cur<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], TelemetryError> {
        let end = self.at.checked_add(n).ok_or(TelemetryError::Truncated)?;
        let slice = self
            .bytes
            .get(self.at..end)
            .ok_or(TelemetryError::Truncated)?;
        self.at = end;
        Ok(slice)
    }

    fn arr4(&mut self) -> Result<[u8; 4], TelemetryError> {
        Ok(self.take(4)?.try_into().expect("4 bytes"))
    }

    fn u8(&mut self) -> Result<u8, TelemetryError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, TelemetryError> {
        Ok(u32::from_be_bytes(self.arr4()?))
    }

    fn u64(&mut self) -> Result<u64, TelemetryError> {
        Ok(u64::from_be_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;
    use crate::subscriber::Subscriber;
    use crate::watchdog::{WatchdogConfig, WatchdogSubscriber};

    fn sample_frame() -> TelemetryFrame {
        let stats = StatsSubscriber::new();
        stats.event(&Event::SlotCompleted {
            slot: 1,
            updated: 2,
            phi: 4.5,
            total_profit: 9.0,
        });
        stats.event(&Event::SpanRecorded {
            kind: SpanKind::InteriorConverge,
            nanos: 250_000,
        });
        stats.event(&Event::FrameSent {
            bytes: 64,
            seq: 1,
            lamport: 1,
        });
        let dog = WatchdogSubscriber::new(WatchdogConfig::default());
        let net = NetStats {
            retransmissions: 7,
            drops: 9,
            naks: 3,
            dup_drops: 2,
            rto_fires: 4,
            in_flight: 1,
            srtt_ms: 12,
        };
        let mut frame = TelemetryFrame::capture(2, 41, &stats, Some(&dog), net);
        frame.incarnation = 1;
        frame
    }

    #[test]
    fn counter_columns_match_the_stats_table() {
        let stats = StatsSubscriber::new();
        let names: Vec<&str> = stats.counter_pairs().iter().map(|&(n, _)| n).collect();
        assert_eq!(names, COUNTER_NAMES);
    }

    #[test]
    fn roundtrip_preserves_every_field() {
        let frame = sample_frame();
        let bytes = frame.encode();
        assert_eq!(bytes.len(), TELEMETRY_FRAME_LEN);
        let back = TelemetryFrame::decode(&bytes).expect("decode");
        assert_eq!(back, frame);
        assert_eq!(back.phi(), Some(4.5));
        assert_eq!(back.slots(), 1);
        assert_eq!(back.alerts(), 0);
        assert_eq!(back.net.srtt_ms, 12);
        assert_eq!(back.spans[SpanKind::InteriorConverge.index()].count(), 1);
    }

    #[test]
    fn frame_fits_one_udp_datagram() {
        // The UDP transport caps datagram payloads at 8 KiB; telemetry must
        // never need chunking. Checked against the *encoded* length so the
        // bound holds for what actually goes on the wire, not just the
        // layout constant.
        let encoded = sample_frame().encode().len();
        assert_eq!(encoded, TELEMETRY_FRAME_LEN);
        assert!(encoded <= 8192, "{encoded}");
    }

    #[test]
    fn damage_is_always_rejected_never_a_panic() {
        let bytes = sample_frame().encode();
        // Truncation at every split point.
        for cut in 0..bytes.len() {
            assert!(
                TelemetryFrame::decode(&bytes[..cut]).is_err(),
                "truncation at {cut} accepted"
            );
        }
        // Trailing garbage.
        let mut longer = bytes.clone();
        longer.push(0);
        assert_eq!(
            TelemetryFrame::decode(&longer),
            Err(TelemetryError::TrailingBytes(1))
        );
        // Magic damage.
        let mut bad = bytes.clone();
        bad[0] ^= 0xFF;
        assert!(matches!(
            TelemetryFrame::decode(&bad),
            Err(TelemetryError::BadMagic(_))
        ));
        // Version bump.
        let mut bad = bytes.clone();
        bad[4] = TELEMETRY_VERSION + 1;
        assert_eq!(
            TelemetryFrame::decode(&bad),
            Err(TelemetryError::BadVersion(TELEMETRY_VERSION + 1))
        );
        // Shape bytes.
        let mut bad = bytes.clone();
        bad[21] = COUNTER_NAMES.len() as u8 + 1; // counter-count byte
        assert!(matches!(
            TelemetryFrame::decode(&bad),
            Err(TelemetryError::BadShape(_))
        ));
        assert!(TelemetryFrame::decode(&[]).is_err());
        assert!(TelemetryFrame::decode(b"VCST").is_err());
    }

    #[test]
    fn unset_gauges_survive_the_roundtrip_as_none() {
        let frame = TelemetryFrame::empty(0);
        let back = TelemetryFrame::decode(&frame.encode()).expect("decode");
        assert_eq!(back.phi(), None);
        assert_eq!(back.slots(), 0);
    }
}
