//! Post-mortem smoke test: a panicking runtime thread must leave a
//! parseable JSONL dump of the flight recorder's tail behind.
//!
//! This lives in its own integration-test binary because
//! [`FlightRecorder::install_panic_hook`] mutates the *process-wide* panic
//! hook; unit tests sharing a harness process would race it.

use std::sync::Arc;
use vcs_obs::{trace, Event, FlightRecorder, Obs, Subscriber};

/// Single test on purpose: the panic hook is process-global state.
#[test]
fn panic_in_a_runtime_thread_dumps_a_parseable_tail() {
    let dir = std::env::temp_dir().join("vcs_recorder_panic_test");
    std::fs::create_dir_all(&dir).expect("create dump dir");
    let dump = dir.join("postmortem.jsonl");
    std::fs::remove_file(&dump).ok();

    // Silence the default "thread panicked" printer first; the recorder's
    // hook chains to it, so the test output stays clean while the dump
    // still fires.
    std::panic::set_hook(Box::new(|_| {}));
    let recorder = Arc::new(FlightRecorder::new(1 << 10));
    recorder.install_panic_hook(&dump);

    // A platform thread records causally stamped traffic, then dies
    // mid-run (the obs handle is how real runtimes hold the recorder).
    let obs = Obs::new(recorder.clone());
    let worker = std::thread::spawn(move || {
        obs.emit(|| Event::EngineInit {
            users: 2,
            tasks: 1,
            phi: 3.0,
            total_profit: 6.0,
        });
        obs.emit(|| Event::FrameSent {
            bytes: 21,
            seq: 1,
            lamport: 1,
        });
        obs.emit(|| Event::FrameReceived {
            bytes: 21,
            seq: 1,
            lamport: 2,
        });
        obs.emit(|| Event::MoveCommitted {
            user: 0,
            from_route: 0,
            to_route: 1,
            phi_delta: 0.5,
            profit_delta: 0.25,
            phi: 3.5,
            total_profit: 6.25,
        });
        panic!("injected runtime fault");
    });
    assert!(worker.join().is_err(), "worker must die on the panic");

    // The dump is the recorder's tail in the standard trace codec:
    // readable by read_trace (hence trace_report / replay_debug), with
    // intact causal stamps.
    let events = trace::read_trace(&dump).expect("post-mortem dump parses");
    assert_eq!(events.len(), 4, "dump carries the full recorded tail");
    assert!(matches!(events[0], Event::EngineInit { .. }));
    assert!(matches!(
        events[3],
        Event::MoveCommitted {
            user: 0,
            to_route: 1,
            ..
        }
    ));
    assert!(vcs_obs::validate_causal_order(&events).is_empty());
    assert_eq!(vcs_obs::stamp_of(&events[2]).unwrap().lamport, 2);

    // A later panic overwrites the dump with the freshest tail — the hook
    // stays armed for the life of the process.
    recorder.event(&Event::RunCompleted {
        slots: 9,
        updates: 4,
        converged: false,
        phi: 3.5,
    });
    let second = std::thread::spawn(|| panic!("second fault"));
    assert!(second.join().is_err());
    let events = trace::read_trace(&dump).expect("refreshed dump parses");
    assert_eq!(events.len(), 5);
    assert!(matches!(events[4], Event::RunCompleted { slots: 9, .. }));

    std::fs::remove_file(&dump).ok();
}
