//! Deterministic trace replay and divergence localization, shared by the
//! `replay_debug` binary and the trace-robustness tests.
//!
//! A recorded trace pins every committed move to its (ϕ, ΣP) trajectory.
//! Re-executing the move sequence on a freshly built [`Engine`] must
//! reproduce that trajectory to [`TOLERANCE`]; when it does not, the first
//! divergent slot is found by binary search over prefix replays — the
//! predicate "replaying `k` moves exposes a mismatch" is monotone in `k`.
//!
//! The rebuild step is a caller-supplied closure, so the same search works
//! for any reconstruction recipe: the threaded runtime's agent-announced
//! profile (`replay_debug`), a sharded deployment's merged initial profile,
//! or a test's hand-built engine.

use vcs_core::ids::{RouteId, UserId};
use vcs_core::Engine;
use vcs_obs::Event;

/// Replayed values must match the recorded trajectory to within this
/// absolute error at every move (in practice the match is bit-exact: the
/// replay engine runs the same compensated accumulators over the same
/// additions).
pub const TOLERANCE: f64 = 1e-9;

/// One recorded `MoveCommitted`, pinned to its position in the trace so a
/// causal dump can anchor on it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecordedMove {
    /// Index of the originating event in the full trace.
    pub event_index: usize,
    /// The mover.
    pub user: UserId,
    /// The route the mover switched to.
    pub to_route: RouteId,
    /// Recorded potential after the move.
    pub phi: f64,
    /// Recorded total profit after the move.
    pub total_profit: f64,
}

/// Pulls the committed-move trajectory out of a recorded event stream.
pub fn extract_moves(events: &[Event]) -> Vec<RecordedMove> {
    events
        .iter()
        .enumerate()
        .filter_map(|(i, e)| match *e {
            Event::MoveCommitted {
                user,
                to_route,
                phi,
                total_profit,
                ..
            } => Some(RecordedMove {
                event_index: i,
                user: UserId::from_index(user as usize),
                to_route: RouteId::from_index(to_route as usize),
                phi,
                total_profit,
            }),
            _ => None,
        })
        .collect()
}

/// Replays the first `k` recorded moves on a freshly rebuilt engine and
/// returns the index of the first move whose replayed (ϕ, ΣP) disagrees
/// with the recording beyond [`TOLERANCE`], if any.
pub fn first_divergence_in_prefix<'g>(
    rebuild: impl Fn() -> Engine<'g>,
    moves: &[RecordedMove],
    k: usize,
) -> Option<usize> {
    let pairs: Vec<(UserId, RouteId)> = moves[..k].iter().map(|m| (m.user, m.to_route)).collect();
    let trajectory = rebuild().replay_moves(&pairs);
    trajectory
        .iter()
        .zip(&moves[..k])
        .position(|(&(phi, profit), m)| {
            (phi - m.phi).abs() > TOLERANCE || (profit - m.total_profit).abs() > TOLERANCE
        })
}

/// Binary-searches the smallest prefix length whose replay diverges, i.e.
/// the first divergent slot. The predicate `diverged(k)` — "replaying `k`
/// moves exposes a mismatch" — is monotone in `k`, so the search replays
/// `O(log n)` prefixes instead of bisecting by hand.
pub fn locate_divergence<'g>(
    rebuild: impl Fn() -> Engine<'g>,
    moves: &[RecordedMove],
) -> Option<usize> {
    first_divergence_in_prefix(&rebuild, moves, moves.len())?;
    let (mut lo, mut hi) = (1usize, moves.len()); // invariant: !diverged(lo-1), diverged(hi)
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if first_divergence_in_prefix(&rebuild, moves, mid).is_some() {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    Some(lo - 1)
}

/// Flips a high mantissa bit of `x` — a single-bit corruption large enough
/// (relative error ~2⁻¹²) to clear [`TOLERANCE`] at any realistic ϕ scale.
pub fn flip_mantissa_bit(x: f64) -> f64 {
    f64::from_bits(x.to_bits() ^ (1u64 << 40))
}
