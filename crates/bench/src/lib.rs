//! # vcs-bench — benchmark support
//!
//! Shared fixtures for the Criterion benches: pre-built substrate pools and
//! representative game instances. The benches live in `benches/`:
//!
//! * `figures` — one bench per paper table/figure, timing the experiment
//!   runner at reduced replication (the *content* regeneration lives in the
//!   `repro` binary; these track the cost of regenerating each artifact);
//! * `substrates` — road-network, trace and scenario substrate performance;
//! * `solvers` — best-response scans, full dynamics, PUU selection, CORN
//!   branch-and-bound and the message-passing runtimes.
//!
//! The [`trend`] module (driven by the `bench_trend` bin) merges the
//! committed `BENCH_*.json` artifacts into one versioned
//! `BENCH_trajectory.json` and gates regenerated numbers against it.

use vcs_algorithms::{run_distributed, DistributedAlgorithm, RunConfig, RunOutcome};
use vcs_core::Game;
use vcs_scenario::{Dataset, ScenarioConfig, ScenarioParams, UserPool};

pub mod replay;
pub mod threads;
pub mod trend;

/// Builds the standard benchmark pool (Shanghai analogue, fixed seed).
pub fn bench_pool() -> UserPool {
    UserPool::build(Dataset::Shanghai, 2024)
}

/// Builds a benchmark game of the given size from a pool.
pub fn bench_game(pool: &UserPool, n_users: usize, n_tasks: usize, seed: u64) -> Game {
    pool.instantiate(&ScenarioConfig {
        n_users,
        n_tasks,
        seed,
        params: ScenarioParams::default(),
    })
}

/// Runs an algorithm to equilibrium (helper shared by several benches).
pub fn equilibrate(game: &Game, algo: DistributedAlgorithm, seed: u64) -> RunOutcome {
    run_distributed(game, algo, &RunConfig::with_seed(seed))
}

/// Synthesizes a game of arbitrary size directly, bypassing the substrate
/// pool (which tops out at a few hundred commuters). Used by the engine
/// benches to reach thousands of users; paper-range parameters throughout
/// (`a_k ∈ [10, 20)`, `μ_k ∈ [0, 1)`, weights in `[0.1, 0.9)`).
pub fn synthetic_game(n_users: usize, n_tasks: usize, seed: u64) -> Game {
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};
    use vcs_core::ids::{RouteId, TaskId, UserId};
    use vcs_core::{PlatformParams, Route, Task, User, UserPrefs};
    let mut rng = StdRng::seed_from_u64(seed);
    let tasks: Vec<Task> = (0..n_tasks)
        .map(|k| {
            Task::new(
                TaskId::from_index(k),
                rng.random_range(10.0..20.0),
                rng.random_range(0.0..1.0),
            )
        })
        .collect();
    let users: Vec<User> = (0..n_users)
        .map(|i| {
            let n_routes = rng.random_range(2..=4usize);
            let routes = (0..n_routes)
                .map(|r| {
                    let mut covered: Vec<TaskId> = (0..rng.random_range(1..5usize))
                        .map(|_| TaskId::from_index(rng.random_range(0..n_tasks)))
                        .collect();
                    covered.sort_unstable();
                    covered.dedup();
                    Route::new(
                        RouteId::from_index(r),
                        covered,
                        rng.random_range(0.0..5.0),
                        rng.random_range(0.0..4.0),
                    )
                })
                .collect();
            User::new(
                UserId::from_index(i),
                UserPrefs::new(
                    rng.random_range(0.1..0.9),
                    rng.random_range(0.1..0.9),
                    rng.random_range(0.1..0.9),
                ),
                routes,
            )
        })
        .collect();
    Game::with_paper_bounds(tasks, users, PlatformParams::new(0.4, 0.4))
        .expect("synthetic parameters are in paper range")
}
