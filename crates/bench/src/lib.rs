//! # vcs-bench — benchmark support
//!
//! Shared fixtures for the Criterion benches: pre-built substrate pools and
//! representative game instances. The benches live in `benches/`:
//!
//! * `figures` — one bench per paper table/figure, timing the experiment
//!   runner at reduced replication (the *content* regeneration lives in the
//!   `repro` binary; these track the cost of regenerating each artifact);
//! * `substrates` — road-network, trace and scenario substrate performance;
//! * `solvers` — best-response scans, full dynamics, PUU selection, CORN
//!   branch-and-bound and the message-passing runtimes.

use vcs_algorithms::{run_distributed, DistributedAlgorithm, RunConfig, RunOutcome};
use vcs_core::Game;
use vcs_scenario::{Dataset, ScenarioConfig, ScenarioParams, UserPool};

/// Builds the standard benchmark pool (Shanghai analogue, fixed seed).
pub fn bench_pool() -> UserPool {
    UserPool::build(Dataset::Shanghai, 2024)
}

/// Builds a benchmark game of the given size from a pool.
pub fn bench_game(pool: &UserPool, n_users: usize, n_tasks: usize, seed: u64) -> Game {
    pool.instantiate(&ScenarioConfig {
        n_users,
        n_tasks,
        seed,
        params: ScenarioParams::default(),
    })
}

/// Runs an algorithm to equilibrium (helper shared by several benches).
pub fn equilibrate(game: &Game, algo: DistributedAlgorithm, seed: u64) -> RunOutcome {
    run_distributed(game, algo, &RunConfig::with_seed(seed))
}
