//! `VCS_THREADS` plumbing: one place where the bench binaries decide how
//! wide the rayon pool runs.
//!
//! Benchmarks gate committed artifacts, so their parallelism must be
//! reproducible: a run on a 128-core box and a 4-core CI runner should be
//! able to pin the same width. Priority order:
//!
//! 1. an explicit `--threads N` CLI flag (passed in by the binary),
//! 2. the `VCS_THREADS` environment variable,
//! 3. the machine default (available parallelism).
//!
//! `N = 1` is the explicit sequential fallback — every engine/driver
//! parallel path checks `rayon::current_num_threads() > 1` and stays on the
//! calling thread. `N = 0` (or unset) keeps the machine default.

/// Resolves and installs the global rayon pool width, returning the
/// effective worker count. `cli` wins over `VCS_THREADS`; `None`/`0` falls
/// back down the chain.
pub fn configure_threads(cli: Option<usize>) -> usize {
    let n = cli
        .filter(|&n| n > 0)
        .or_else(|| threads_from_env().filter(|&n| n > 0))
        .unwrap_or(0);
    rayon::ThreadPoolBuilder::new()
        .num_threads(n)
        .build_global()
        .expect("configuring the global pool width cannot fail");
    rayon::current_num_threads()
}

/// Parses `VCS_THREADS`. Unset, empty, or unparsable → `None` (machine
/// default); a bad value is reported on stderr rather than silently eaten so
/// CI misconfiguration is visible.
pub fn threads_from_env() -> Option<usize> {
    let raw = std::env::var("VCS_THREADS").ok()?;
    if raw.trim().is_empty() {
        return None;
    }
    match raw.trim().parse::<usize>() {
        Ok(n) => Some(n),
        Err(_) => {
            eprintln!("VCS_THREADS={raw:?} is not a thread count; using the machine default");
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cli_override_wins_and_one_is_sequential() {
        let effective = configure_threads(Some(1));
        assert_eq!(effective, 1);
        assert_eq!(rayon::current_num_threads(), 1);
        // Restore the machine default for other tests in this binary.
        let restored = configure_threads(Some(0));
        assert!(restored >= 1);
    }
}
