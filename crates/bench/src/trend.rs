//! The performance-trajectory gate: merge the workspace's benchmark
//! artifacts (`BENCH_engine.json`, `BENCH_online.json`, `BENCH_obs.json`)
//! into one versioned `BENCH_trajectory.json` and compare it against the
//! committed baseline with a noise tolerance.
//!
//! ## What is gated
//!
//! Only **dimensionless** metrics are gated: engine-vs-naive speedups,
//! warm-vs-cold slot speedups, ϕ-agreement epoch counts, and the relative
//! throughput of instrumented runs (instrumented rate / plain rate). Raw
//! rates (slots/sec) depend on the machine running the benchmark and are
//! carried as *informational* values only — committing a baseline from a
//! fast machine must not fail CI on a slow one. Ratios measured within one
//! process largely cancel the machine out.
//!
//! All gated metrics are higher-is-better; a metric **regresses** when
//! `current < baseline · (1 − tolerance)` or when it disappears from the
//! current trajectory. Improvements never fail the gate (the `bench_trend`
//! bin prints them so the baseline can be ratcheted).
//!
//! The workspace has no JSON parser dependency (the vendored `serde` is a
//! derive-only subset and the benchmark artifacts are hand-rendered), so
//! this module carries a minimal recursive-descent parser for the
//! benchmark files' subset of JSON — objects, arrays, strings, f64
//! numbers, booleans, null.

use std::fmt::Write as _;

/// Version stamp of the `BENCH_trajectory.json` schema; bump on layout
/// changes so a stale committed baseline fails loudly instead of silently
/// comparing mismatched keys.
pub const SCHEMA_VERSION: u64 = 1;

/// Default relative noise tolerance of the gate. Benchmark-to-benchmark
/// jitter on the gated ratios sits in the single-digit percents; 15% keeps
/// the gate quiet on noise while still catching the 25% synthetic
/// regression of the CI self-test.
pub const DEFAULT_TOLERANCE: f64 = 0.15;

// ---------------------------------------------------------------------------
// Minimal JSON value + parser
// ---------------------------------------------------------------------------

/// A parsed JSON value (numbers are f64 — the artifacts carry nothing that
/// needs more).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses a complete JSON document.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing input at byte {}", p.pos));
        }
        Ok(value)
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as f64, if a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, found {:?}",
                byte as char,
                self.pos,
                self.peek().map(|b| b as char)
            ))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("malformed literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            )),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.pos,
                        other.map(|b| b as char)
                    ))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, found {:?}",
                        self.pos,
                        other.map(|b| b as char)
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escaped = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match escaped {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                            let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                            self.pos += 4;
                            // Surrogate pairs don't occur in the artifacts;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("unknown escape \\{}", other as char)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the artifacts contain ϕ).
                    let rest =
                        std::str::from_utf8(&self.bytes[self.pos..]).map_err(|e| e.to_string())?;
                    let ch = rest.chars().next().expect("peeked non-empty");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("malformed number {text:?} at byte {start}"))
    }
}

// ---------------------------------------------------------------------------
// Trajectory
// ---------------------------------------------------------------------------

/// One merged benchmark trajectory: named metrics split into the gated
/// (dimensionless, machine-portable) and informational (raw-rate) sets.
#[derive(Debug, Clone, PartialEq)]
pub struct Trajectory {
    /// `metric path → value`, gated by [`compare`]. Paths are
    /// `engine/<algo>/<users>/<metric>`, `online/<users>/<churn>/<metric>`,
    /// `obs/<algo>/<users>/<metric>`, `shard/<users>/<shards>/<metric>`,
    /// `net/<loss>/<rtt_ms>/<metric>`.
    pub gated: Vec<(String, f64)>,
    /// Machine-dependent context values, never gated.
    pub informational: Vec<(String, f64)>,
}

fn field_f64(row: &Json, key: &str) -> Result<f64, String> {
    row.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("row missing numeric field {key:?}"))
}

fn rows<'a>(doc: &'a Json, what: &str) -> Result<&'a [Json], String> {
    doc.get("rows")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("{what}: no \"rows\" array"))
}

/// Formats a churn rate / numeric path segment without trailing zeros
/// (`0.05` → `0.05`, `500` → `500`).
fn seg(value: f64) -> String {
    if value == value.trunc() {
        format!("{}", value as i64)
    } else {
        format!("{value}")
    }
}

/// Merges the benchmark documents into one [`Trajectory`]. `fleet`
/// (`BENCH_fleet.json`, the telemetry-plane overhead matrix) and `load`
/// (`BENCH_load.json`, the sustained open-loop serving matrix) are
/// optional: artifacts predating those planes merge without them, and
/// their `obs_fleet/...` / `load/...` metrics enter the gate once the
/// files exist.
pub fn build_trajectory(
    engine: &Json,
    online: &Json,
    obs: &Json,
    shard: &Json,
    net: &Json,
    fleet: Option<&Json>,
    load: Option<&Json>,
) -> Result<Trajectory, String> {
    let mut gated = Vec::new();
    let mut info = Vec::new();
    for row in rows(engine, "BENCH_engine")? {
        let algo = row
            .get("algorithm")
            .and_then(Json::as_str)
            .ok_or("engine row missing algorithm")?;
        let users = seg(field_f64(row, "users")?);
        let base = format!("engine/{algo}/{users}");
        gated.push((format!("{base}/speedup"), field_f64(row, "speedup")?));
        info.push((
            format!("{base}/engine_slots_per_sec"),
            field_f64(row, "engine_slots_per_sec")?,
        ));
        info.push((
            format!("{base}/naive_slots_per_sec"),
            field_f64(row, "naive_slots_per_sec")?,
        ));
    }
    for row in rows(online, "BENCH_online")? {
        let users = seg(field_f64(row, "users")?);
        let churn = seg(field_f64(row, "churn_rate")?);
        let base = format!("online/{users}/{churn}");
        gated.push((
            format!("{base}/slot_speedup"),
            field_f64(row, "slot_speedup")?,
        ));
        gated.push((
            format!("{base}/phi_agree_epochs"),
            field_f64(row, "phi_agree_epochs")?,
        ));
        // Wall-clock speedup is dimensionless but both numerator and
        // denominator are wall time of *different* code paths — allocator
        // and cache state make it the noisiest ratio we record. Carry it,
        // don't gate it.
        info.push((
            format!("{base}/wall_speedup"),
            field_f64(row, "wall_speedup")?,
        ));
        info.push((format!("{base}/warm_slots"), field_f64(row, "warm_slots")?));
        info.push((format!("{base}/cold_slots"), field_f64(row, "cold_slots")?));
    }
    for row in rows(obs, "BENCH_obs")? {
        let algo = row
            .get("algorithm")
            .and_then(Json::as_str)
            .ok_or("obs row missing algorithm")?;
        let users = seg(field_f64(row, "users")?);
        let base = format!("obs/{algo}/{users}");
        let plain = field_f64(row, "plain_slots_per_sec")?;
        if plain <= 0.0 {
            return Err(format!("{base}: non-positive plain rate {plain}"));
        }
        // Relative throughput under instrumentation: 1.0 = free, lower =
        // overhead. Both rates come from the same process on the same
        // machine, so the ratio is portable where the raw rates are not.
        gated.push((
            format!("{base}/noop_rel"),
            field_f64(row, "noop_slots_per_sec")? / plain,
        ));
        gated.push((
            format!("{base}/stats_rel"),
            field_f64(row, "stats_slots_per_sec")? / plain,
        ));
        // Optional: artifacts predating the flight recorder (PR ≤ 4) carry
        // no recorder rate; the metric enters the gate once present.
        if let Some(recorder) = row.get("recorder_slots_per_sec").and_then(Json::as_f64) {
            gated.push((format!("{base}/recorder_rel"), recorder / plain));
        }
        info.push((format!("{base}/plain_slots_per_sec"), plain));
    }
    for row in rows(shard, "BENCH_shard")? {
        let users = seg(field_f64(row, "users")?);
        let shards = field_f64(row, "shards")?;
        let base = format!("shard/{users}/{}", seg(shards));
        // Aggregate slots/sec of the sharded driver relative to the same
        // tier's single-shard cell — both measured sequentially in the same
        // process, so the ratio isolates the locality-decomposition win.
        // The 1-shard row is the ratio's own denominator (speedup ≡ 1);
        // only the decomposed cells are gated.
        if shards > 1.0 {
            gated.push((
                format!("{base}/agg_speedup"),
                field_f64(row, "speedup_vs_1")?,
            ));
        }
        info.push((
            format!("{base}/agg_slots_per_sec"),
            field_f64(row, "agg_slots_per_sec")?,
        ));
        info.push((
            format!("{base}/boundary_fraction"),
            field_f64(row, "boundary_fraction")?,
        ));
    }
    for row in rows(net, "BENCH_net")? {
        let loss = seg(field_f64(row, "loss")?);
        let rtt = seg(field_f64(row, "rtt_ms")?);
        let base = format!("net/{loss}/{rtt}");
        // 1.0 = the lossy-UDP deployment converged AND its merged profile
        // passed the full-game oracle (exact reconstruction, ϕ to 1e-9,
        // NE certificate). Binary by construction, floored at 1.0: any
        // loss/latency cell losing its certificate fails the gate outright.
        gated.push((format!("{base}/certified"), field_f64(row, "certified")?));
        info.push((format!("{base}/rounds"), field_f64(row, "rounds")?));
        info.push((
            format!("{base}/retransmissions"),
            field_f64(row, "retransmissions")?,
        ));
        info.push((format!("{base}/drops"), field_f64(row, "drops")?));
        info.push((format!("{base}/wall_sec"), field_f64(row, "wall_sec")?));
    }
    if let Some(fleet) = fleet {
        for row in rows(fleet, "BENCH_fleet")? {
            let users = seg(field_f64(row, "users")?);
            let shards = seg(field_f64(row, "shards")?);
            let base = format!("obs_fleet/{users}/{shards}");
            // Relative deployment throughput with the telemetry plane on:
            // telemetry-off wall / telemetry-on wall of the same config in
            // the same process. 1.0 = free, lower = overhead; floored at
            // 0.95 (the < 5% telemetry budget) independent of baseline.
            gated.push((
                format!("{base}/telemetry_rel"),
                field_f64(row, "telemetry_rel")?,
            ));
            info.push((
                format!("{base}/plain_wall_sec"),
                field_f64(row, "plain_wall_sec")?,
            ));
            info.push((
                format!("{base}/telemetry_wall_sec"),
                field_f64(row, "telemetry_wall_sec")?,
            ));
        }
    }
    if let Some(load) = load {
        for row in rows(load, "BENCH_load")? {
            let rate = seg(field_f64(row, "rate")?);
            let shards = seg(field_f64(row, "shards")?);
            let base = format!("load/{rate}/{shards}");
            // Fraction of offered requests the serving process answered
            // with a non-rejected reply during the open-loop run. 1.0 =
            // every request served; floored at 0.90 independent of
            // baseline — a serving mode that drops or rejects more than
            // 10% of offered load is broken, not slow.
            gated.push((
                format!("{base}/served_ratio"),
                field_f64(row, "served_ratio")?,
            ));
            // Latency and throughput ride along informationally: they are
            // machine- and load-dependent, so the trend is advisory.
            info.push((
                format!("{base}/slots_per_sec"),
                field_f64(row, "slots_per_sec")?,
            ));
            info.push((format!("{base}/p50_ms"), field_f64(row, "p50_ms")?));
            info.push((format!("{base}/p99_ms"), field_f64(row, "p99_ms")?));
        }
    }
    if gated.is_empty() {
        return Err("no gated metrics extracted — empty benchmark artifacts?".into());
    }
    Ok(Trajectory {
        gated,
        informational: info,
    })
}

/// Renders a [`Trajectory`] as the versioned `BENCH_trajectory.json`
/// document (deterministic output: metrics in extraction order, values at
/// fixed precision so regenerating from identical artifacts is a no-op
/// diff).
pub fn render_trajectory(trajectory: &Trajectory, tolerance: f64) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"schema_version\": {SCHEMA_VERSION},");
    let _ = writeln!(out, "  \"tolerance\": {tolerance},");
    let section = |out: &mut String, name: &str, metrics: &[(String, f64)], last: bool| {
        let _ = writeln!(out, "  \"{name}\": {{");
        for (i, (key, value)) in metrics.iter().enumerate() {
            let comma = if i + 1 == metrics.len() { "" } else { "," };
            let _ = writeln!(out, "    \"{key}\": {value}{comma}");
        }
        let _ = writeln!(out, "  }}{}", if last { "" } else { "," });
    };
    section(&mut out, "gated", &trajectory.gated, false);
    section(&mut out, "informational", &trajectory.informational, true);
    out.push_str("}\n");
    out
}

/// Parses a `BENCH_trajectory.json` document back into a [`Trajectory`]
/// plus its recorded tolerance. Rejects unknown schema versions.
pub fn parse_trajectory(text: &str) -> Result<(Trajectory, f64), String> {
    let doc = Json::parse(text)?;
    let version = doc
        .get("schema_version")
        .and_then(Json::as_f64)
        .ok_or("trajectory missing schema_version")?;
    if version != SCHEMA_VERSION as f64 {
        return Err(format!(
            "trajectory schema version {version} (this binary speaks {SCHEMA_VERSION})"
        ));
    }
    let tolerance = doc
        .get("tolerance")
        .and_then(Json::as_f64)
        .ok_or("trajectory missing tolerance")?;
    let metrics = |name: &str| -> Result<Vec<(String, f64)>, String> {
        match doc.get(name) {
            Some(Json::Obj(fields)) => fields
                .iter()
                .map(|(k, v)| {
                    v.as_f64()
                        .map(|v| (k.clone(), v))
                        .ok_or_else(|| format!("non-numeric metric {k:?}"))
                })
                .collect(),
            _ => Err(format!("trajectory missing {name:?} object")),
        }
    };
    Ok((
        Trajectory {
            gated: metrics("gated")?,
            informational: metrics("informational")?,
        },
        tolerance,
    ))
}

/// One gated metric that fell below the baseline beyond tolerance (or
/// vanished — `current` is NaN then).
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// The metric path.
    pub metric: String,
    /// Baseline value.
    pub baseline: f64,
    /// Current value (NaN when the metric disappeared).
    pub current: f64,
}

/// Gates `current` against `baseline`: every baseline gated metric must be
/// present and ≥ `baseline · (1 − tolerance)`. Returns the regressions
/// (empty = pass). Metrics new in `current` are not checked — they enter
/// the gate once the baseline is regenerated.
pub fn compare(current: &Trajectory, baseline: &Trajectory, tolerance: f64) -> Vec<Regression> {
    let mut regressions = Vec::new();
    for (metric, base) in &baseline.gated {
        let now = current
            .gated
            .iter()
            .find(|(k, _)| k == metric)
            .map(|&(_, v)| v);
        match now {
            None => regressions.push(Regression {
                metric: metric.clone(),
                baseline: *base,
                current: f64::NAN,
            }),
            Some(now) if now < base * (1.0 - tolerance) => regressions.push(Regression {
                metric: metric.clone(),
                baseline: *base,
                current: now,
            }),
            Some(_) => {}
        }
    }
    regressions
}

/// Absolute speedup floors, enforced on the **current** trajectory
/// independently of any baseline. Two rules:
///
/// * every `engine/MUUN/<users>/speedup` ≥ 1.0 — the engine must never be
///   slower than the naive driver it replaces (MUUN is the only algorithm
///   that has ever dipped below parity, at small user counts where slab
///   construction used to dominate);
/// * `shard/100000/4/agg_speedup` ≥ 1.5 — the locality decomposition must
///   keep paying for its boundary-sync overhead at the deployment tier the
///   sharded driver exists for;
/// * every `net/<loss>/<rtt>/certified` ≥ 1.0 — every cell of the
///   loss×latency matrix (up to 20% loss, 200ms RTT) must converge to a
///   certified full-game Nash equilibrium; the ARQ makes the trajectory
///   fault-independent, so a decertified cell is a protocol bug, not noise;
/// * every `obs_fleet/<users>/<shards>/telemetry_rel` ≥ 0.95 — the fleet
///   telemetry plane (frame capture, encode, control-socket interleaving,
///   registry ingest) must cost a deployment less than 5% of its
///   telemetry-off wall clock;
/// * every `load/<rate>/<shards>/served_ratio` ≥ 0.90 — under sustained
///   open-loop load the serving process must answer at least 90% of
///   offered requests with non-rejected replies; latency may drift with
///   the machine, but dropped or rejected requests are a serving bug.
///
/// Violations reuse [`Regression`] with the floor as the `baseline`.
pub fn floor_violations(current: &Trajectory) -> Vec<Regression> {
    const MUUN_FLOOR: f64 = 1.0;
    const SHARD_FLOOR: f64 = 1.5;
    const NET_FLOOR: f64 = 1.0;
    const FLEET_FLOOR: f64 = 0.95;
    const LOAD_FLOOR: f64 = 0.90;
    const SHARD_METRIC: &str = "shard/100000/4/agg_speedup";
    let floor_of = |metric: &str| -> Option<f64> {
        if metric.starts_with("engine/MUUN/") && metric.ends_with("/speedup") {
            Some(MUUN_FLOOR)
        } else if metric == SHARD_METRIC {
            Some(SHARD_FLOOR)
        } else if metric.starts_with("net/") && metric.ends_with("/certified") {
            Some(NET_FLOOR)
        } else if metric.starts_with("obs_fleet/") && metric.ends_with("/telemetry_rel") {
            Some(FLEET_FLOOR)
        } else if metric.starts_with("load/") && metric.ends_with("/served_ratio") {
            Some(LOAD_FLOOR)
        } else {
            None
        }
    };
    current
        .gated
        .iter()
        .filter_map(|(metric, value)| {
            let floor = floor_of(metric)?;
            (*value < floor).then(|| Regression {
                metric: metric.clone(),
                baseline: floor,
                current: *value,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const ENGINE: &str = r#"{"rows": [
        {"algorithm": "DGRN", "users": 100, "speedup": 4.0,
         "engine_slots_per_sec": 1000.0, "naive_slots_per_sec": 250.0}
    ]}"#;
    const ONLINE: &str = r#"{"rows": [
        {"users": 500, "churn_rate": 0.05, "slot_speedup": 8.0,
         "phi_agree_epochs": 5, "wall_speedup": 3.0,
         "warm_slots": 250, "cold_slots": 2000}
    ]}"#;
    const OBS: &str = r#"{"rows": [
        {"algorithm": "DGRN", "users": 100, "plain_slots_per_sec": 1000.0,
         "noop_slots_per_sec": 990.0, "stats_slots_per_sec": 960.0,
         "recorder_slots_per_sec": 950.0}
    ]}"#;
    const SHARD: &str = r#"{"rows": [
        {"users": 100000, "shards": 1, "agg_slots_per_sec": 200000.0,
         "speedup_vs_1": 1.0, "boundary_fraction": 0.0},
        {"users": 100000, "shards": 4, "agg_slots_per_sec": 340000.0,
         "speedup_vs_1": 1.7, "boundary_fraction": 0.0006}
    ]}"#;
    const NET: &str = r#"{"rows": [
        {"loss": 0, "rtt_ms": 0, "certified": 1.0, "rounds": 3,
         "retransmissions": 0, "drops": 0, "wall_sec": 1.2},
        {"loss": 0.2, "rtt_ms": 200, "certified": 1.0, "rounds": 3,
         "retransmissions": 41, "drops": 55, "wall_sec": 30.5}
    ]}"#;
    const FLEET: &str = r#"{"rows": [
        {"users": 400, "shards": 3, "telemetry_rel": 0.99,
         "plain_wall_sec": 2.0, "telemetry_wall_sec": 2.02}
    ]}"#;
    const LOAD: &str = r#"{"rows": [
        {"rate": 200, "shards": 2, "served_ratio": 1.0,
         "slots_per_sec": 850.0, "p50_ms": 0.4, "p99_ms": 2.1}
    ]}"#;

    fn trajectory() -> Trajectory {
        build_trajectory(
            &Json::parse(ENGINE).unwrap(),
            &Json::parse(ONLINE).unwrap(),
            &Json::parse(OBS).unwrap(),
            &Json::parse(SHARD).unwrap(),
            &Json::parse(NET).unwrap(),
            Some(&Json::parse(FLEET).unwrap()),
            Some(&Json::parse(LOAD).unwrap()),
        )
        .unwrap()
    }

    #[test]
    fn parser_handles_the_artifact_subset() {
        let doc = Json::parse(r#"{"s": "a\"bϕ", "n": -1.5e3, "b": true, "x": null, "a": [1, 2]}"#)
            .unwrap();
        assert_eq!(doc.get("s").and_then(Json::as_str), Some("a\"bϕ"));
        assert_eq!(doc.get("n").and_then(Json::as_f64), Some(-1500.0));
        assert_eq!(doc.get("b"), Some(&Json::Bool(true)));
        assert_eq!(doc.get("x"), Some(&Json::Null));
        assert_eq!(
            doc.get("a").and_then(Json::as_arr).map(<[Json]>::len),
            Some(2)
        );
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{} trailing").is_err());
    }

    #[test]
    fn trajectory_extracts_gated_ratios_and_informational_rates() {
        let t = trajectory();
        let get = |k: &str| {
            t.gated
                .iter()
                .find(|(key, _)| key == k)
                .map(|&(_, v)| v)
                .unwrap_or_else(|| panic!("missing gated metric {k}"))
        };
        assert_eq!(get("engine/DGRN/100/speedup"), 4.0);
        assert_eq!(get("online/500/0.05/slot_speedup"), 8.0);
        assert_eq!(get("online/500/0.05/phi_agree_epochs"), 5.0);
        assert!((get("obs/DGRN/100/stats_rel") - 0.96).abs() < 1e-12);
        assert!((get("obs/DGRN/100/recorder_rel") - 0.95).abs() < 1e-12);
        assert_eq!(get("shard/100000/4/agg_speedup"), 1.7);
        // The 1-shard cell is the denominator, not a gated ratio.
        assert!(!t
            .gated
            .iter()
            .any(|(k, _)| k == "shard/100000/1/agg_speedup"));
        assert!(t
            .informational
            .iter()
            .any(|(k, _)| k == "shard/100000/4/boundary_fraction"));
        assert!(t
            .informational
            .iter()
            .any(|(k, _)| k == "engine/DGRN/100/engine_slots_per_sec"));
        // Raw rates never gate.
        assert!(!t
            .gated
            .iter()
            .any(|(k, _)| k.contains("slots_per_sec") || k.contains("wall_speedup")));
    }

    #[test]
    fn pre_recorder_obs_artifact_still_builds() {
        // PR ≤ 4 BENCH_obs.json rows carry no recorder rate — they must
        // merge cleanly, just without the recorder_rel gate.
        let obs = r#"{"rows": [
            {"algorithm": "DGRN", "users": 100, "plain_slots_per_sec": 1000.0,
             "noop_slots_per_sec": 990.0, "stats_slots_per_sec": 960.0}
        ]}"#;
        let t = build_trajectory(
            &Json::parse(ENGINE).unwrap(),
            &Json::parse(ONLINE).unwrap(),
            &Json::parse(obs).unwrap(),
            &Json::parse(SHARD).unwrap(),
            &Json::parse(NET).unwrap(),
            None,
            None,
        )
        .unwrap();
        assert!(t.gated.iter().any(|(k, _)| k == "obs/DGRN/100/stats_rel"));
        assert!(!t.gated.iter().any(|(k, _)| k.contains("recorder_rel")));
        // No fleet/load artifacts → no obs_fleet or load metrics, and no
        // floors demanded for them.
        assert!(!t.gated.iter().any(|(k, _)| k.starts_with("obs_fleet/")));
        assert!(!t.gated.iter().any(|(k, _)| k.starts_with("load/")));
        assert!(floor_violations(&t).is_empty());
    }

    #[test]
    fn load_served_ratio_floor_catches_dropped_requests() {
        let t = trajectory();
        assert!(t.gated.iter().any(|(k, _)| k == "load/200/2/served_ratio"));
        assert!(t
            .informational
            .iter()
            .any(|(k, _)| k == "load/200/2/slots_per_sec"));
        assert!(t
            .informational
            .iter()
            .any(|(k, _)| k == "load/200/2/p99_ms"));
        assert!(floor_violations(&t).is_empty());
        let mut dropping = t.clone();
        for (k, v) in &mut dropping.gated {
            if k == "load/200/2/served_ratio" {
                *v = 0.85; // 15% of offered load lost or rejected
            }
        }
        let found = floor_violations(&dropping);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].metric, "load/200/2/served_ratio");
        assert_eq!(found[0].baseline, 0.90);
        assert_eq!(found[0].current, 0.85);
    }

    #[test]
    fn fleet_telemetry_floor_catches_overhead_over_budget() {
        let t = trajectory();
        assert!(t
            .gated
            .iter()
            .any(|(k, _)| k == "obs_fleet/400/3/telemetry_rel"));
        assert!(t
            .informational
            .iter()
            .any(|(k, _)| k == "obs_fleet/400/3/plain_wall_sec"));
        assert!(floor_violations(&t).is_empty());
        let mut over_budget = t.clone();
        for (k, v) in &mut over_budget.gated {
            if k == "obs_fleet/400/3/telemetry_rel" {
                *v = 0.91; // 9% overhead: past the 5% telemetry budget
            }
        }
        let found = floor_violations(&over_budget);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].metric, "obs_fleet/400/3/telemetry_rel");
        assert_eq!(found[0].baseline, 0.95);
        assert_eq!(found[0].current, 0.91);
    }

    #[test]
    fn render_parse_roundtrip() {
        let t = trajectory();
        let text = render_trajectory(&t, DEFAULT_TOLERANCE);
        let (parsed, tolerance) = parse_trajectory(&text).unwrap();
        assert_eq!(parsed, t);
        assert_eq!(tolerance, DEFAULT_TOLERANCE);
    }

    #[test]
    fn identical_trajectories_pass() {
        let t = trajectory();
        assert!(compare(&t, &t, DEFAULT_TOLERANCE).is_empty());
    }

    #[test]
    fn small_noise_passes_large_regression_fails() {
        let baseline = trajectory();
        let mut noisy = baseline.clone();
        for (_, v) in &mut noisy.gated {
            *v *= 0.90; // 10% dip: inside the 15% tolerance
        }
        assert!(compare(&noisy, &baseline, DEFAULT_TOLERANCE).is_empty());
        let mut regressed = baseline.clone();
        for (_, v) in &mut regressed.gated {
            *v *= 0.75; // 25% dip: must trip the gate on every metric
        }
        let found = compare(&regressed, &baseline, DEFAULT_TOLERANCE);
        assert_eq!(found.len(), baseline.gated.len());
    }

    #[test]
    fn muun_floor_catches_sub_parity_speedups() {
        let mut t = trajectory();
        // No MUUN metrics yet → no violations.
        assert!(floor_violations(&t).is_empty());
        t.gated.push(("engine/MUUN/100/speedup".into(), 0.92));
        t.gated.push(("engine/MUUN/2000/speedup".into(), 2.2));
        let found = floor_violations(&t);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].metric, "engine/MUUN/100/speedup");
        assert_eq!(found[0].baseline, 1.0);
        assert_eq!(found[0].current, 0.92);
        // DGRN has no floor: a sub-parity DGRN entry adds no violation.
        t.gated.push(("engine/DGRN/100/speedup".into(), 0.5));
        assert_eq!(floor_violations(&t).len(), 1);
    }

    #[test]
    fn shard_floor_guards_the_deployment_tier() {
        let mut t = trajectory();
        // The fixture's 1.7 clears the 1.5 floor.
        assert!(floor_violations(&t).is_empty());
        for (k, v) in &mut t.gated {
            if k == "shard/100000/4/agg_speedup" {
                *v = 1.3;
            }
        }
        let found = floor_violations(&t);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].metric, "shard/100000/4/agg_speedup");
        assert_eq!(found[0].baseline, 1.5);
        assert_eq!(found[0].current, 1.3);
        // Other tiers carry no absolute floor — the relative gate owns them.
        t.gated.push(("shard/10000/4/agg_speedup".into(), 0.9));
        assert_eq!(floor_violations(&t).len(), 1);
    }

    #[test]
    fn net_certification_floor_catches_decertified_cells() {
        let mut t = trajectory();
        // The fixture certifies both cells.
        assert!(t.gated.iter().any(|(k, _)| k == "net/0/0/certified"));
        assert!(t.gated.iter().any(|(k, _)| k == "net/0.2/200/certified"));
        assert!(floor_violations(&t).is_empty());
        for (k, v) in &mut t.gated {
            if k == "net/0.2/200/certified" {
                *v = 0.0;
            }
        }
        let found = floor_violations(&t);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].metric, "net/0.2/200/certified");
        assert_eq!(found[0].baseline, 1.0);
        assert_eq!(found[0].current, 0.0);
        // Transport counters are informational, never gated.
        assert!(t
            .informational
            .iter()
            .any(|(k, _)| k == "net/0.2/200/retransmissions"));
        assert!(!t.gated.iter().any(|(k, _)| k.contains("retransmissions")));
    }

    #[test]
    fn missing_metric_is_a_regression() {
        let baseline = trajectory();
        let mut current = baseline.clone();
        current
            .gated
            .retain(|(k, _)| k != "engine/DGRN/100/speedup");
        let found = compare(&current, &baseline, DEFAULT_TOLERANCE);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].metric, "engine/DGRN/100/speedup");
        assert!(found[0].current.is_nan());
    }

    #[test]
    fn improvements_never_fail() {
        let baseline = trajectory();
        let mut current = baseline.clone();
        for (_, v) in &mut current.gated {
            *v *= 10.0;
        }
        assert!(compare(&current, &baseline, DEFAULT_TOLERANCE).is_empty());
    }

    #[test]
    fn unknown_schema_version_is_rejected() {
        let text = render_trajectory(&trajectory(), 0.15)
            .replace("\"schema_version\": 1", "\"schema_version\": 999");
        assert!(parse_trajectory(&text).is_err());
    }
}
