//! `bench_trend` — the performance-trajectory gate.
//!
//! Merges the repo's benchmark artifacts into one versioned trajectory and
//! compares it against the committed baseline:
//!
//! ```text
//! bench_trend [--dir <repo root>]          # merge BENCH_*.json → BENCH_trajectory.json
//! bench_trend --check [--tolerance <f>]    # gate current artifacts vs committed
//!                                          # trajectory; exit 1 on regression
//! bench_trend --selftest                   # inject a 25% regression, require the
//!                                          # gate to catch it (and pass identity)
//! ```
//!
//! The intended flow: regenerate `BENCH_engine.json` / `BENCH_online.json` /
//! `BENCH_obs.json` / `BENCH_shard.json` / `BENCH_net.json` (and
//! `BENCH_fleet.json` / `BENCH_load.json`, optional — merged when
//! present) on a quiet machine, run `bench_trend --check` to see
//! whether any gated ratio fell beyond tolerance, then run `bench_trend` to
//! ratchet the committed baseline. CI runs `--check` against the committed
//! artifacts (a deterministic consistency gate — the trajectory must match
//! what the artifacts derive to) plus `--selftest`.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use vcs_bench::trend::{
    build_trajectory, compare, floor_violations, parse_trajectory, render_trajectory, Json,
    Regression, Trajectory, DEFAULT_TOLERANCE,
};

const TRAJECTORY_FILE: &str = "BENCH_trajectory.json";

enum Mode {
    Write,
    Check,
    Selftest,
}

fn read_json(path: &Path) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    Json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
}

fn load_current(dir: &Path) -> Result<Trajectory, String> {
    let engine = read_json(&dir.join("BENCH_engine.json"))?;
    let online = read_json(&dir.join("BENCH_online.json"))?;
    let obs = read_json(&dir.join("BENCH_obs.json"))?;
    let shard = read_json(&dir.join("BENCH_shard.json"))?;
    let net = read_json(&dir.join("BENCH_net.json"))?;
    // Optional: the fleet-telemetry overhead matrix and the sustained-load
    // serving matrix postdate the other artifacts; their obs_fleet / load
    // metrics enter the gate once the files exist.
    let fleet_path = dir.join("BENCH_fleet.json");
    let fleet = fleet_path.exists().then(|| read_json(&fleet_path));
    let fleet = fleet.transpose()?;
    let load_path = dir.join("BENCH_load.json");
    let load = load_path.exists().then(|| read_json(&load_path));
    let load = load.transpose()?;
    build_trajectory(
        &engine,
        &online,
        &obs,
        &shard,
        &net,
        fleet.as_ref(),
        load.as_ref(),
    )
}

fn print_regressions(found: &[Regression]) {
    for r in found {
        if r.current.is_nan() {
            eprintln!(
                "REGRESSION {}: baseline {:.4}, metric missing from current artifacts",
                r.metric, r.baseline
            );
        } else {
            eprintln!(
                "REGRESSION {}: baseline {:.4} -> current {:.4} ({:+.1}%)",
                r.metric,
                r.baseline,
                r.current,
                (r.current / r.baseline - 1.0) * 100.0
            );
        }
    }
}

fn run() -> Result<bool, String> {
    let mut dir = PathBuf::from(".");
    let mut tolerance: Option<f64> = None;
    let mut mode = Mode::Write;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => mode = Mode::Check,
            "--selftest" => mode = Mode::Selftest,
            "--dir" => {
                dir = PathBuf::from(args.next().ok_or("--dir needs a path")?);
            }
            "--tolerance" => {
                let raw = args.next().ok_or("--tolerance needs a value")?;
                let t: f64 = raw.parse().map_err(|_| format!("bad tolerance {raw:?}"))?;
                if !(0.0..1.0).contains(&t) {
                    return Err(format!("tolerance {t} outside [0, 1)"));
                }
                tolerance = Some(t);
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }

    let current = load_current(&dir)?;
    match mode {
        Mode::Write => {
            let tol = tolerance.unwrap_or(DEFAULT_TOLERANCE);
            let path = dir.join(TRAJECTORY_FILE);
            std::fs::write(&path, render_trajectory(&current, tol))
                .map_err(|e| format!("{}: {e}", path.display()))?;
            println!(
                "wrote {} ({} gated, {} informational metrics, tolerance {tol})",
                path.display(),
                current.gated.len(),
                current.informational.len()
            );
            Ok(true)
        }
        Mode::Check => {
            let path = dir.join(TRAJECTORY_FILE);
            let text = std::fs::read_to_string(&path)
                .map_err(|e| format!("{}: {e} (run `bench_trend` to create it)", path.display()))?;
            let (baseline, recorded_tol) = parse_trajectory(&text)?;
            let tol = tolerance.unwrap_or(recorded_tol);
            let mut found = compare(&current, &baseline, tol);
            // Absolute floors gate the *current* artifacts regardless of
            // baseline drift: MUUN must never fall below naive parity.
            for floor in floor_violations(&current) {
                eprintln!(
                    "FLOOR {}: {:.4} below the absolute floor {:.2}",
                    floor.metric, floor.current, floor.baseline
                );
                found.push(floor);
            }
            if found.is_empty() {
                // Surface improvements so the baseline can be ratcheted.
                for (metric, base) in &baseline.gated {
                    if let Some(&(_, now)) = current.gated.iter().find(|(k, _)| k == metric) {
                        if now > base * (1.0 + tol) {
                            println!(
                                "improved  {metric}: {base:.4} -> {now:.4} ({:+.1}%)",
                                (now / base - 1.0) * 100.0
                            );
                        }
                    }
                }
                println!(
                    "trend OK: {} gated metrics within {:.0}% of baseline",
                    baseline.gated.len(),
                    tol * 100.0
                );
                Ok(true)
            } else {
                print_regressions(&found);
                eprintln!(
                    "trend FAIL: {}/{} gated metrics regressed beyond {:.0}%",
                    found.len(),
                    baseline.gated.len(),
                    tol * 100.0
                );
                Ok(false)
            }
        }
        Mode::Selftest => {
            let tol = tolerance.unwrap_or(DEFAULT_TOLERANCE);
            if !compare(&current, &current, tol).is_empty() {
                return Err("selftest: identity comparison reported regressions".into());
            }
            let mut injected = current.clone();
            for (_, v) in &mut injected.gated {
                *v *= 0.75;
            }
            let found = compare(&injected, &current, tol);
            if found.len() != current.gated.len() {
                return Err(format!(
                    "selftest: injected 25% regression on {} metrics, gate caught only {}",
                    current.gated.len(),
                    found.len()
                ));
            }
            println!(
                "selftest OK: identity passes, injected 25% regression trips all {} gated metrics",
                current.gated.len()
            );
            Ok(true)
        }
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(msg) => {
            eprintln!("bench_trend: {msg}");
            ExitCode::FAILURE
        }
    }
}
