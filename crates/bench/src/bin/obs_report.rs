//! `obs_report` — measures the cost of the observability layer on the
//! distributed dynamics and writes `BENCH_obs.json` (repo root by default).
//!
//! Four configurations per size, all running the identical trajectory
//! (observation never perturbs the run — test-enforced):
//!
//! * **plain** — `run_distributed`, no observability parameter at all;
//! * **noop**  — `run_distributed_observed` with a disabled [`Obs`]: the
//!   zero-cost path the acceptance criterion bounds at < 2% overhead;
//! * **stats** — a live [`StatsSubscriber`] (atomic counters + histograms),
//!   the realistic always-on production cost;
//! * **recorder** — stats *plus* the lock-free [`FlightRecorder`] fanned
//!   out on the same handle: the full post-mortem configuration, bounded
//!   by the same < 5% budget as stats alone.
//!
//! The gated quantity is a *ratio*, so the report estimates ratios
//! directly with first-order drift cancellation: each repetition walks
//! the ladder plain-noop-plain-stats-plain-recorder-plain, and each
//! instrumented window is compared against the *mean of the two plain
//! windows bracketing it* — any machine-speed ramp that is linear over
//! the bracket (~3 windows) cancels exactly, and the median over
//! repetitions rejects the nonlinear bursts. The published rate for a
//! non-plain config is the median plain rate scaled by its median
//! bracketed ratio, so the JSON stays self-consistent (overhead
//! percentages recompute exactly from the stored rates). Pass
//! `--smoke` for a fast CI variant (smallest size, fewer repetitions);
//! pass a path to override the output file.

use std::sync::Arc;
use std::time::Instant;
use vcs_algorithms::{run_distributed, run_distributed_observed, DistributedAlgorithm, RunConfig};
use vcs_bench::synthetic_game;
use vcs_obs::{FanoutSubscriber, FlightRecorder, Obs, StatsSubscriber, Subscriber};

struct Row {
    algorithm: &'static str,
    users: usize,
    slots: usize,
    plain_slots_per_sec: f64,
    noop_slots_per_sec: f64,
    stats_slots_per_sec: f64,
    recorder_slots_per_sec: f64,
}

impl Row {
    /// No-op handle overhead relative to the plain driver, in percent
    /// (positive = the disabled path is slower).
    fn noop_overhead_pct(&self) -> f64 {
        (self.plain_slots_per_sec / self.noop_slots_per_sec - 1.0) * 100.0
    }

    fn stats_overhead_pct(&self) -> f64 {
        (self.plain_slots_per_sec / self.stats_slots_per_sec - 1.0) * 100.0
    }

    fn recorder_overhead_pct(&self) -> f64 {
        (self.plain_slots_per_sec / self.recorder_slots_per_sec - 1.0) * 100.0
    }
}

/// One timing window: repeats the run until at least [`MIN_WINDOW`] has
/// elapsed and divides the *total* slots by the window. A single DGRN run
/// is only 0.3–3 ms — far too short to time reliably on a shared box when
/// the deltas being resolved are a few percent; on this class of hardware
/// the effective machine speed itself swings tens of percent on a
/// timescale of seconds, so only *bracketed* within-rep ratios are
/// trusted (see the module docs), never absolute rates from different
/// moments.
const MIN_WINDOW: std::time::Duration = std::time::Duration::from_millis(80);

fn window(run: &mut dyn FnMut() -> usize) -> (usize, f64) {
    let start = Instant::now();
    let mut total = 0usize;
    let mut slots;
    loop {
        slots = run();
        total += slots;
        if start.elapsed() >= MIN_WINDOW {
            break;
        }
    }
    (
        slots,
        total as f64 / start.elapsed().as_secs_f64().max(1e-12),
    )
}

/// Median — robust to both slow machine phases and one-off boosted
/// windows, either of which would skew a best-of or mean aggregate.
fn median(rates: &mut [f64]) -> f64 {
    rates.sort_by(f64::total_cmp);
    let n = rates.len();
    if n % 2 == 1 {
        rates[n / 2]
    } else {
        (rates[n / 2 - 1] + rates[n / 2]) / 2.0
    }
}

fn json_escape_free(rows: &[Row], smoke: bool) -> String {
    let mut out = format!(
        "{{\n  \"benchmark\": \"observability overhead on run_distributed slots/sec\",\n  \"seed\": 7,\n  \"smoke\": {smoke},\n  \"rows\": [\n"
    );
    for (i, row) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"algorithm\": \"{}\", \"users\": {}, \"slots\": {}, \"plain_slots_per_sec\": {:.1}, \"noop_slots_per_sec\": {:.1}, \"stats_slots_per_sec\": {:.1}, \"recorder_slots_per_sec\": {:.1}, \"noop_overhead_pct\": {:.3}, \"stats_overhead_pct\": {:.3}, \"recorder_overhead_pct\": {:.3}}}{}\n",
            row.algorithm,
            row.users,
            row.slots,
            row.plain_slots_per_sec,
            row.noop_slots_per_sec,
            row.stats_slots_per_sec,
            row.recorder_slots_per_sec,
            row.noop_overhead_pct(),
            row.stats_overhead_pct(),
            row.recorder_overhead_pct(),
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let mut out_path = "BENCH_obs.json".to_string();
    let mut smoke = false;
    let mut threads_cli: Option<usize> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--smoke" {
            smoke = true;
        } else if arg == "--threads" {
            threads_cli = Some(
                args.next()
                    .expect("--threads needs a count")
                    .parse()
                    .expect("--threads needs an integer"),
            );
        } else {
            out_path = arg;
        }
    }
    // Overhead ratios are timing-sensitive; pin the pool (`--threads` /
    // `VCS_THREADS`) so instrumented and plain windows share one width.
    vcs_bench::threads::configure_threads(threads_cli);
    // 15 bracketed reps in full mode: the median of 15 drift-cancelled
    // ratios settles well inside the few-percent deltas being resolved
    // even when absolute machine speed swings ±30% between phases.
    let (sizes, reps): (&[usize], usize) = if smoke {
        (&[100], 3)
    } else {
        (&[100, 500], 15)
    };
    let mut rows = Vec::new();
    for &users in sizes {
        let game = synthetic_game(users, users.max(60), 11);
        let config = RunConfig::with_seed(7);
        for algo in [DistributedAlgorithm::Dgrn, DistributedAlgorithm::Muun] {
            // Warm up caches/allocator before timing anything.
            let reference = run_distributed(&game, algo, &config);
            let slots = reference.slots;
            let noop = Obs::disabled();
            let stats_obs = Obs::new(Arc::new(StatsSubscriber::new()));
            // The flight-recorder configuration every production run would
            // actually fly with: live stats + the post-mortem ring. The
            // recorder's cost is cache pollution, not its stores — the ring
            // cyclically evicts the engine's working set — so the benched
            // deployment keeps a 1024-event tail (~72 KiB, several hundred
            // slots of history) rather than an unbounded ledger.
            let recorder_obs = FanoutSubscriber::obs(vec![
                Arc::new(StatsSubscriber::new()) as Arc<dyn Subscriber>,
                Arc::new(FlightRecorder::new(1 << 10)) as Arc<dyn Subscriber>,
            ]);
            let (mut plain_rates, mut noop_ratios, mut stats_ratios, mut recorder_ratios) =
                (Vec::new(), Vec::new(), Vec::new(), Vec::new());
            let plain_window = || {
                let (s, r) = window(&mut || run_distributed(&game, algo, &config).slots);
                assert_eq!(s, slots);
                r
            };
            for _ in 0..reps {
                // The bracketing ladder: every instrumented window sits
                // between two plain windows and is scored against their
                // mean, cancelling linear machine-speed drift.
                let p0 = plain_window();
                let (s, noop_r) =
                    window(&mut || run_distributed_observed(&game, algo, &config, &noop).slots);
                assert_eq!(s, slots, "disabled observation perturbed the run");
                let p1 = plain_window();
                let (s, stats_r) = window(&mut || {
                    run_distributed_observed(&game, algo, &config, &stats_obs).slots
                });
                assert_eq!(s, slots, "live observation perturbed the run");
                let p2 = plain_window();
                let (s, recorder_r) = window(&mut || {
                    run_distributed_observed(&game, algo, &config, &recorder_obs).slots
                });
                assert_eq!(s, slots, "flight recorder perturbed the run");
                let p3 = plain_window();
                plain_rates.extend([p0, p1, p2, p3]);
                noop_ratios.push(noop_r / ((p0 + p1) / 2.0));
                stats_ratios.push(stats_r / ((p1 + p2) / 2.0));
                recorder_ratios.push(recorder_r / ((p2 + p3) / 2.0));
            }
            let plain = median(&mut plain_rates);
            let row = Row {
                algorithm: algo.name(),
                users,
                slots,
                plain_slots_per_sec: plain,
                noop_slots_per_sec: plain * median(&mut noop_ratios),
                stats_slots_per_sec: plain * median(&mut stats_ratios),
                recorder_slots_per_sec: plain * median(&mut recorder_ratios),
            };
            eprintln!(
                "{:>4} users {:>4}: {} slots, plain {:>10.1}/s, noop {:>10.1}/s ({:+.2}%), stats {:>10.1}/s ({:+.2}%), recorder {:>10.1}/s ({:+.2}%)",
                row.algorithm,
                row.users,
                row.slots,
                row.plain_slots_per_sec,
                row.noop_slots_per_sec,
                row.noop_overhead_pct(),
                row.stats_slots_per_sec,
                row.stats_overhead_pct(),
                row.recorder_slots_per_sec,
                row.recorder_overhead_pct(),
            );
            rows.push(row);
        }
    }
    std::fs::write(&out_path, json_escape_free(&rows, smoke)).expect("write benchmark report");
    eprintln!("wrote {out_path}");
}
