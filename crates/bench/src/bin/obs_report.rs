//! `obs_report` — measures the cost of the observability layer on the
//! distributed dynamics and writes `BENCH_obs.json` (repo root by default).
//!
//! Three configurations per size, all running the identical trajectory
//! (observation never perturbs the run — test-enforced):
//!
//! * **plain** — `run_distributed`, no observability parameter at all;
//! * **noop**  — `run_distributed_observed` with a disabled [`Obs`]: the
//!   zero-cost path the acceptance criterion bounds at < 2% overhead;
//! * **stats** — a live [`StatsSubscriber`] (atomic counters + histograms),
//!   the realistic always-on production cost.
//!
//! Each rate is the best of several ≥25ms timing windows, with the three
//! configs interleaved so machine-speed drift cannot bias one of them. Pass
//! `--smoke` for a fast CI variant (smallest size, fewer repetitions);
//! pass a path to override the output file.

use std::sync::Arc;
use std::time::Instant;
use vcs_algorithms::{run_distributed, run_distributed_observed, DistributedAlgorithm, RunConfig};
use vcs_bench::synthetic_game;
use vcs_obs::{Obs, StatsSubscriber};

struct Row {
    algorithm: &'static str,
    users: usize,
    slots: usize,
    plain_slots_per_sec: f64,
    noop_slots_per_sec: f64,
    stats_slots_per_sec: f64,
}

impl Row {
    /// No-op handle overhead relative to the plain driver, in percent
    /// (positive = the disabled path is slower).
    fn noop_overhead_pct(&self) -> f64 {
        (self.plain_slots_per_sec / self.noop_slots_per_sec - 1.0) * 100.0
    }

    fn stats_overhead_pct(&self) -> f64 {
        (self.plain_slots_per_sec / self.stats_slots_per_sec - 1.0) * 100.0
    }
}

/// One timing window: repeats the run until at least [`MIN_WINDOW`] has
/// elapsed and divides the *total* slots by the window. A single DGRN run
/// is only 0.3–3 ms — far too short to time reliably on a shared box when
/// the deltas being resolved are a few percent. Callers take the best of
/// several windows with the three configs *interleaved*, so slow machine
/// phases (co-tenant load, frequency drift) hit every config equally
/// instead of biasing whichever was measured during the slow minute.
const MIN_WINDOW: std::time::Duration = std::time::Duration::from_millis(25);

fn window(run: &mut dyn FnMut() -> usize) -> (usize, f64) {
    let start = Instant::now();
    let mut total = 0usize;
    let mut slots;
    loop {
        slots = run();
        total += slots;
        if start.elapsed() >= MIN_WINDOW {
            break;
        }
    }
    (
        slots,
        total as f64 / start.elapsed().as_secs_f64().max(1e-12),
    )
}

fn json_escape_free(rows: &[Row], smoke: bool) -> String {
    let mut out = format!(
        "{{\n  \"benchmark\": \"observability overhead on run_distributed slots/sec\",\n  \"seed\": 7,\n  \"smoke\": {smoke},\n  \"rows\": [\n"
    );
    for (i, row) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"algorithm\": \"{}\", \"users\": {}, \"slots\": {}, \"plain_slots_per_sec\": {:.1}, \"noop_slots_per_sec\": {:.1}, \"stats_slots_per_sec\": {:.1}, \"noop_overhead_pct\": {:.3}, \"stats_overhead_pct\": {:.3}}}{}\n",
            row.algorithm,
            row.users,
            row.slots,
            row.plain_slots_per_sec,
            row.noop_slots_per_sec,
            row.stats_slots_per_sec,
            row.noop_overhead_pct(),
            row.stats_overhead_pct(),
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let mut out_path = "BENCH_obs.json".to_string();
    let mut smoke = false;
    for arg in std::env::args().skip(1) {
        if arg == "--smoke" {
            smoke = true;
        } else {
            out_path = arg;
        }
    }
    let (sizes, reps): (&[usize], usize) = if smoke { (&[100], 3) } else { (&[100, 500], 7) };
    let mut rows = Vec::new();
    for &users in sizes {
        let game = synthetic_game(users, users.max(60), 11);
        let config = RunConfig::with_seed(7);
        for algo in [DistributedAlgorithm::Dgrn, DistributedAlgorithm::Muun] {
            // Warm up caches/allocator before timing anything.
            let reference = run_distributed(&game, algo, &config);
            let slots = reference.slots;
            let noop = Obs::disabled();
            let stats_obs = Obs::new(Arc::new(StatsSubscriber::new()));
            let (mut plain_rate, mut noop_rate, mut stats_rate) = (0.0f64, 0.0f64, 0.0f64);
            for _ in 0..reps {
                let (s, r) = window(&mut || run_distributed(&game, algo, &config).slots);
                assert_eq!(s, slots);
                plain_rate = plain_rate.max(r);
                let (s, r) =
                    window(&mut || run_distributed_observed(&game, algo, &config, &noop).slots);
                assert_eq!(s, slots, "disabled observation perturbed the run");
                noop_rate = noop_rate.max(r);
                let (s, r) = window(&mut || {
                    run_distributed_observed(&game, algo, &config, &stats_obs).slots
                });
                assert_eq!(s, slots, "live observation perturbed the run");
                stats_rate = stats_rate.max(r);
            }
            let row = Row {
                algorithm: algo.name(),
                users,
                slots,
                plain_slots_per_sec: plain_rate,
                noop_slots_per_sec: noop_rate,
                stats_slots_per_sec: stats_rate,
            };
            eprintln!(
                "{:>4} users {:>4}: {} slots, plain {:>10.1}/s, noop {:>10.1}/s ({:+.2}%), stats {:>10.1}/s ({:+.2}%)",
                row.algorithm,
                row.users,
                row.slots,
                row.plain_slots_per_sec,
                row.noop_slots_per_sec,
                row.noop_overhead_pct(),
                row.stats_slots_per_sec,
                row.stats_overhead_pct(),
            );
            rows.push(row);
        }
    }
    std::fs::write(&out_path, json_escape_free(&rows, smoke)).expect("write benchmark report");
    eprintln!("wrote {out_path}");
}
