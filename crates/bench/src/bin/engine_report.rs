//! `engine_report` — measures slots/sec of the distributed dynamics with the
//! incremental engine vs the naive reference driver and writes the table to
//! `BENCH_engine.json` (repo root by default; pass a path to override).
//!
//! Methodology: per (algorithm, size) both drivers run the *identical*
//! trajectory (same seed; equivalence is test-enforced), so slots/sec is a
//! like-for-like measure. The slot budget is capped at the largest size to
//! keep the naive driver's runtime bounded; the speedup is then measured on
//! the shared trajectory prefix. Each measurement takes the best of three
//! runs to damp scheduler noise.
//!
//! `--prometheus <path>` additionally replays every (algorithm, size) cell
//! once under a [`vcs_obs::StatsSubscriber`] and dumps the final Prometheus
//! text exposition (counters + span latency histograms) to `path` — the
//! same bytes a live `/metrics` scrape would return after those runs.
//!
//! `--threads N` (or `VCS_THREADS=N`) pins the rayon pool width so the
//! committed numbers are reproducible across machines; `1` forces the
//! engine's strictly sequential paths.

use std::sync::Arc;
use std::time::Instant;
use vcs_algorithms::{
    run_distributed, run_distributed_naive, run_distributed_observed, DistributedAlgorithm,
    RunConfig,
};
use vcs_bench::synthetic_game;
use vcs_obs::{validate_prometheus_text, Obs, StatsSubscriber};

struct Row {
    algorithm: &'static str,
    users: usize,
    slots: usize,
    engine_slots_per_sec: f64,
    naive_slots_per_sec: f64,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.engine_slots_per_sec / self.naive_slots_per_sec
    }
}

/// Best-of-`reps` slots/sec for one driver.
fn measure(reps: usize, mut run: impl FnMut() -> usize) -> (usize, f64) {
    let mut best = 0.0f64;
    let mut slots = 0;
    for _ in 0..reps {
        let start = Instant::now();
        slots = run();
        let rate = slots as f64 / start.elapsed().as_secs_f64().max(1e-12);
        best = best.max(rate);
    }
    (slots, best)
}

fn json_escape_free(rows: &[Row]) -> String {
    // Hand-formatted JSON: fixed schema, no string content needing escapes.
    let mut out = String::from("{\n  \"benchmark\": \"run_distributed slots/sec, incremental engine vs naive driver\",\n  \"seed\": 7,\n  \"rows\": [\n");
    for (i, row) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"algorithm\": \"{}\", \"users\": {}, \"slots\": {}, \"engine_slots_per_sec\": {:.1}, \"naive_slots_per_sec\": {:.1}, \"speedup\": {:.2}}}{}\n",
            row.algorithm,
            row.users,
            row.slots,
            row.engine_slots_per_sec,
            row.naive_slots_per_sec,
            row.speedup(),
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let mut out_path = "BENCH_engine.json".to_string();
    let mut prometheus_path: Option<String> = None;
    let mut threads_cli: Option<usize> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--prometheus" {
            prometheus_path = Some(args.next().expect("--prometheus needs a path"));
        } else if arg == "--threads" {
            threads_cli = Some(
                args.next()
                    .expect("--threads needs a count")
                    .parse()
                    .expect("--threads needs an integer"),
            );
        } else {
            out_path = arg;
        }
    }
    let workers = vcs_bench::threads::configure_threads(threads_cli);
    eprintln!("rayon pool: {workers} worker(s)");
    let stats = Arc::new(StatsSubscriber::new());
    let stats_obs = Obs::new(stats.clone());
    let mut rows = Vec::new();
    for users in [100usize, 500, 2000, 100_000] {
        // Tasks scale with users (city-scale deployments grow both), keeping
        // per-task contention — and thus dirty-set sizes — representative.
        let game = synthetic_game(users, users.max(60), 11);
        let mut config = RunConfig::with_seed(7);
        // Bound the naive driver's runtime at the larger sizes; both drivers
        // then run the same capped trajectory. At 10⁵ users a naive slot
        // recomputes every response and the full ϕ, so a dozen slots is
        // already tens of seconds of reference work.
        config.max_slots = if users >= 100_000 {
            12
        } else if users >= 2000 {
            60
        } else {
            1_000_000
        };
        for algo in [DistributedAlgorithm::Dgrn, DistributedAlgorithm::Muun] {
            if prometheus_path.is_some() {
                // One instrumented replay per cell, outside the timed reps,
                // so the exposition covers every (algorithm, size) pair.
                run_distributed_observed(&game, algo, &config, &stats_obs);
            }
            let (slots, engine_rate) = measure(3, || run_distributed(&game, algo, &config).slots);
            let (naive_slots, naive_rate) =
                measure(3, || run_distributed_naive(&game, algo, &config).slots);
            assert_eq!(slots, naive_slots, "drivers diverged — equivalence broken");
            let row = Row {
                algorithm: algo.name(),
                users,
                slots,
                engine_slots_per_sec: engine_rate,
                naive_slots_per_sec: naive_rate,
            };
            eprintln!(
                "{:>4} users {:>4}: {} slots, engine {:>10.1}/s, naive {:>10.1}/s, speedup {:.2}x",
                row.algorithm,
                row.users,
                row.slots,
                row.engine_slots_per_sec,
                row.naive_slots_per_sec,
                row.speedup()
            );
            rows.push(row);
        }
    }
    std::fs::write(&out_path, json_escape_free(&rows)).expect("write benchmark report");
    eprintln!("wrote {out_path}");
    if let Some(path) = prometheus_path {
        let text = stats.prometheus_text();
        validate_prometheus_text(&text).expect("exposition is valid");
        if let Some(parent) = std::path::Path::new(&path).parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent).expect("create prometheus output directory");
            }
        }
        std::fs::write(&path, text).expect("write prometheus exposition");
        eprintln!("wrote {path}");
    }
}
