//! `replay_debug` — deterministic trace replay debugger.
//!
//! Loads a recorded runtime trace, rebuilds the exact game and initial
//! profile from the sidecar metadata, re-executes the recorded
//! `MoveCommitted` sequence against a freshly built [`vcs_core::Engine`],
//! and verifies the ϕ / total-profit trajectory bit-for-bit (tolerance
//! `1e-9`). On mismatch it binary-searches the first divergent slot with
//! prefix replays and prints the causal neighborhood around it — the
//! stamped frames ordered by Lamport time — so the divergence can be read
//! in happens-before order, not file order.
//!
//! Usage:
//!
//! * `replay_debug record <trace.jsonl> [users] [seed]` — run the threaded
//!   DGRN runtime on a synthetic game under a [`JsonlSubscriber`] and write
//!   `<trace.jsonl>` plus a `<trace.jsonl>.meta.json` sidecar holding the
//!   reconstruction parameters;
//! * `replay_debug <trace.jsonl>` — replay and verify an existing trace
//!   (the sidecar must sit next to it);
//! * `replay_debug --selftest [dir]` — record a threaded DGRN/500 run,
//!   replay it bit-identically, then inject a single-bit ϕ corruption into
//!   one recorded move and prove the search localizes it to that exact
//!   slot.

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;
use vcs_bench::replay::{extract_moves, flip_mantissa_bit, locate_divergence, TOLERANCE};
use vcs_bench::synthetic_game;
use vcs_core::ids::{RouteId, UserId};
use vcs_core::{Engine, Game, Profile};
use vcs_obs::{causal_neighborhood, stamp_of, trace, Event, JsonlSubscriber, Obs};
use vcs_runtime::sync_runtime::spawn_agents;
use vcs_runtime::{run_threaded_observed, SchedulerKind};

/// Frames shown on each side of the divergent move in the causal dump.
const NEIGHBORHOOD_RADIUS: usize = 6;

// ---------------------------------------------------------------------------
// Sidecar metadata
// ---------------------------------------------------------------------------

/// Everything needed to rebuild the recorded run from scratch: the
/// synthetic-game constructor arguments and the runtime seed (which fixes
/// the agents' initial route announcements).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ReplayMeta {
    users: usize,
    tasks: usize,
    game_seed: u64,
    seed: u64,
    max_slots: usize,
}

fn meta_path(trace: &Path) -> PathBuf {
    let mut name = trace.file_name().unwrap_or_default().to_os_string();
    name.push(".meta.json");
    trace.with_file_name(name)
}

fn write_meta(trace: &Path, meta: &ReplayMeta) -> std::io::Result<()> {
    let line = format!(
        "{{\"users\":{},\"tasks\":{},\"game_seed\":{},\"seed\":{},\"max_slots\":{},\"scheduler\":\"puu\"}}\n",
        meta.users, meta.tasks, meta.game_seed, meta.seed, meta.max_slots
    );
    std::fs::write(meta_path(trace), line)
}

/// Pulls `"key":<integer>` out of the single-line sidecar. The sidecar is
/// written by this binary, so a tiny extractor beats a JSON dependency.
fn meta_field(text: &str, key: &str) -> Result<u64, String> {
    let needle = format!("\"{key}\":");
    let at = text
        .find(&needle)
        .ok_or_else(|| format!("missing field `{key}` in sidecar"))?;
    let rest = &text[at + needle.len()..];
    let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
    digits
        .parse()
        .map_err(|_| format!("field `{key}` is not an integer"))
}

fn read_meta(trace: &Path) -> Result<ReplayMeta, String> {
    let path = meta_path(trace);
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("{}: {e} (record mode writes this sidecar)", path.display()))?;
    Ok(ReplayMeta {
        users: meta_field(&text, "users")? as usize,
        tasks: meta_field(&text, "tasks")? as usize,
        game_seed: meta_field(&text, "game_seed")?,
        seed: meta_field(&text, "seed")?,
        max_slots: meta_field(&text, "max_slots")? as usize,
    })
}

// ---------------------------------------------------------------------------
// Recording
// ---------------------------------------------------------------------------

fn record(trace_path: &Path, users: usize, seed: u64) -> Result<ReplayMeta, String> {
    let meta = ReplayMeta {
        users,
        tasks: users.max(60),
        game_seed: 11,
        seed,
        max_slots: 200_000,
    };
    let game = synthetic_game(meta.users, meta.tasks, meta.game_seed);
    let subscriber =
        Arc::new(JsonlSubscriber::create(trace_path).map_err(|e| format!("create trace: {e}"))?);
    let obs = Obs::new(subscriber.clone());
    let outcome = run_threaded_observed(&game, SchedulerKind::Puu, meta.seed, meta.max_slots, &obs);
    subscriber
        .flush()
        .map_err(|e| format!("flush trace: {e}"))?;
    write_meta(trace_path, &meta).map_err(|e| format!("write sidecar: {e}"))?;
    eprintln!(
        "recorded threaded DGRN/{users}: {} slots, {} updates, converged={} -> {}",
        outcome.slots,
        outcome.updates,
        outcome.converged,
        trace_path.display()
    );
    Ok(meta)
}

// ---------------------------------------------------------------------------
// Replay + divergence search
// ---------------------------------------------------------------------------

/// Rebuilds the platform engine exactly as the recorded run constructed it:
/// same game, same agent-announced initial routes.
fn rebuild_engine<'g>(game: &'g Game, meta: &ReplayMeta) -> Engine<'g> {
    let choices: Vec<RouteId> = spawn_agents(game, meta.seed)
        .iter()
        .map(|a| a.current)
        .collect();
    Engine::new(game, Profile::new(game, choices))
}

fn print_causal_neighborhood(events: &[Event], center: usize) {
    let window = causal_neighborhood(events, center, NEIGHBORHOOD_RADIUS);
    if window.is_empty() {
        println!("  (trace carries no stamped frames — pre-causal recording)");
        return;
    }
    println!("  frames in Lamport order around trace index {center}:");
    for idx in window {
        let stamp = stamp_of(&events[idx]).expect("neighborhood yields frame events");
        println!(
            "    [L={:>6} seq={:>6}] #{idx:<7} {}",
            stamp.lamport,
            stamp.seq,
            trace::event_to_json(&events[idx])
        );
    }
}

fn replay(trace_path: &Path) -> ExitCode {
    let events = match trace::read_trace(trace_path) {
        Ok(events) => events,
        Err(err) => {
            eprintln!("replay_debug: {}: {err}", trace_path.display());
            return ExitCode::FAILURE;
        }
    };
    let meta = match read_meta(trace_path) {
        Ok(meta) => meta,
        Err(err) => {
            eprintln!("replay_debug: {err}");
            return ExitCode::FAILURE;
        }
    };
    let moves = extract_moves(&events);
    let game = synthetic_game(meta.users, meta.tasks, meta.game_seed);
    println!("trace:   {}", trace_path.display());
    println!(
        "events:  {} ({} committed moves)",
        events.len(),
        moves.len()
    );
    println!(
        "rebuild: synthetic_game({}, {}, {}), runtime seed {}",
        meta.users, meta.tasks, meta.game_seed, meta.seed
    );

    let violations = vcs_obs::validate_causal_order(&events);
    if !violations.is_empty() {
        println!(
            "warning: {} causal-stamp violations in trace",
            violations.len()
        );
    }

    let pairs: Vec<(UserId, RouteId)> = moves.iter().map(|m| (m.user, m.to_route)).collect();
    let trajectory = rebuild_engine(&game, &meta).replay_moves(&pairs);
    let max_err = trajectory
        .iter()
        .zip(&moves)
        .map(|(&(phi, profit), m)| (phi - m.phi).abs().max((profit - m.total_profit).abs()))
        .fold(0.0f64, f64::max);
    println!("max |replayed - recorded|: {max_err:.3e}");

    if max_err <= TOLERANCE {
        println!("PASS: replay matches the recorded trajectory within {TOLERANCE:e}");
        return ExitCode::SUCCESS;
    }

    let slot = locate_divergence(|| rebuild_engine(&game, &meta), &moves)
        .expect("full replay diverged, so some prefix must");
    let m = &moves[slot];
    let (replayed_phi, replayed_profit) = trajectory[slot];
    println!(
        "FAIL: trajectory diverges at slot {slot} (move {}/{})",
        slot + 1,
        moves.len()
    );
    println!(
        "  user {:>4} -> route {}: recorded ϕ={:.12} ΣP={:.12}",
        m.user.index(),
        m.to_route.index(),
        m.phi,
        m.total_profit
    );
    println!(
        "  {:>18} replayed ϕ={replayed_phi:.12} ΣP={replayed_profit:.12}",
        ""
    );
    print_causal_neighborhood(&events, m.event_index);
    ExitCode::FAILURE
}

// ---------------------------------------------------------------------------
// Selftest
// ---------------------------------------------------------------------------

fn selftest(dir: &Path) -> ExitCode {
    std::fs::create_dir_all(dir).expect("create trace directory");
    let trace_path = dir.join("replay_dgrn500.jsonl");
    if let Err(err) = record(&trace_path, 500, 7) {
        eprintln!("replay_debug: {err}");
        return ExitCode::FAILURE;
    }

    println!("== phase 1: bit-identical replay ==");
    if replay(&trace_path) != ExitCode::SUCCESS {
        eprintln!("selftest FAIL: clean replay did not match the recording");
        return ExitCode::FAILURE;
    }

    println!("== phase 2: injected single-bit ϕ corruption ==");
    let mut events = trace::read_trace(&trace_path).expect("reread own trace");
    let move_slots: Vec<usize> = events
        .iter()
        .enumerate()
        .filter(|(_, e)| matches!(e, Event::MoveCommitted { .. }))
        .map(|(i, _)| i)
        .collect();
    let target_slot = move_slots.len() / 2;
    let target_index = move_slots[target_slot];
    if let Event::MoveCommitted { phi, .. } = &mut events[target_index] {
        *phi = flip_mantissa_bit(*phi);
    }
    let corrupted_path = dir.join("replay_dgrn500_corrupted.jsonl");
    let body: String = events
        .iter()
        .map(|e| trace::event_to_json(e) + "\n")
        .collect();
    std::fs::write(&corrupted_path, body).expect("write corrupted trace");
    std::fs::copy(meta_path(&trace_path), meta_path(&corrupted_path)).expect("copy sidecar");
    println!("corrupted slot {target_slot} (trace index {target_index}) by one mantissa bit");

    // The corrupted replay must FAIL, and its printed localization must name
    // exactly the corrupted slot — re-derive it here to assert, since the
    // replay path only prints.
    if replay(&corrupted_path) != ExitCode::FAILURE {
        eprintln!("selftest FAIL: corruption went undetected");
        return ExitCode::FAILURE;
    }
    let meta = read_meta(&corrupted_path).expect("sidecar");
    let game = synthetic_game(meta.users, meta.tasks, meta.game_seed);
    let moves = extract_moves(&events);
    match locate_divergence(|| rebuild_engine(&game, &meta), &moves) {
        Some(slot) if slot == target_slot => {
            println!("PASS: divergence localized to slot {slot} (exact)");
            ExitCode::SUCCESS
        }
        Some(slot) => {
            eprintln!("selftest FAIL: localized slot {slot}, corrupted slot {target_slot}");
            ExitCode::FAILURE
        }
        None => {
            eprintln!("selftest FAIL: locate_divergence found nothing");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    // Honor `VCS_THREADS` so recorded traces and their replays run the
    // engine at a reproducible pool width (1 = strictly sequential).
    vcs_bench::threads::configure_threads(None);
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--selftest") => {
            let dir = args
                .get(1)
                .map(PathBuf::from)
                .unwrap_or_else(std::env::temp_dir);
            selftest(&dir)
        }
        Some("record") => {
            let Some(path) = args.get(1) else {
                eprintln!("usage: replay_debug record <trace.jsonl> [users] [seed]");
                return ExitCode::FAILURE;
            };
            let users = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(500);
            let seed = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(7);
            match record(Path::new(path), users, seed) {
                Ok(_) => ExitCode::SUCCESS,
                Err(err) => {
                    eprintln!("replay_debug: {err}");
                    ExitCode::FAILURE
                }
            }
        }
        Some(path) => replay(Path::new(path)),
        None => {
            eprintln!(
                "usage: replay_debug <trace.jsonl> | replay_debug record <trace.jsonl> [users] [seed] | replay_debug --selftest [dir]"
            );
            ExitCode::FAILURE
        }
    }
}
