//! `trace_report` — replays a captured JSONL event trace and reconstructs
//! the ϕ trajectory from the incremental `phi_delta` stream, cross-checking
//! it against the absolute ϕ values the engine recorded at emission time.
//!
//! Usage:
//!
//! * `trace_report <trace.jsonl>` — analyze an existing trace: print the
//!   move/anchor counts, the final reconstructed ϕ, the maximum absolute
//!   reconstruction error, and a per-[`vcs_obs::SpanKind`] wall-clock latency table
//!   (count / p50 / p90 / p99 / max / total) when the trace carries `span`
//!   records; exits nonzero if the error exceeds 1e-9.
//! * `trace_report --selftest [dir]` — capture a fresh trace end-to-end
//!   (observed DGRN and MUUN runs on a synthetic game, written through
//!   [`JsonlSubscriber`]), then reconstruct it and verify the trajectory
//!   matches the engine's values within 1e-9.

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;
use vcs_algorithms::{run_distributed_observed, DistributedAlgorithm, RunConfig};
use vcs_bench::synthetic_game;
use vcs_obs::{reconstruct_phi, summarize_spans, JsonlSubscriber, Obs};

/// Renders nanoseconds human-first (traces span ns..seconds).
fn fmt_nanos(nanos: u64) -> String {
    if nanos >= 1_000_000_000 {
        format!("{:.2}s", nanos as f64 / 1e9)
    } else if nanos >= 1_000_000 {
        format!("{:.2}ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.2}µs", nanos as f64 / 1e3)
    } else {
        format!("{nanos}ns")
    }
}

/// The acceptance tolerance: reconstructed ϕ must match the engine's
/// recorded values to within this absolute error at every event.
const TOLERANCE: f64 = 1e-9;

fn analyze(path: &Path) -> ExitCode {
    let events = match vcs_obs::trace::read_trace(path) {
        Ok(events) => events,
        Err(err) => {
            eprintln!("trace_report: {}: {err}", path.display());
            return ExitCode::FAILURE;
        }
    };
    let recon = match reconstruct_phi(&events) {
        Ok(recon) => recon,
        Err(err) => {
            eprintln!("trace_report: {}: {err}", path.display());
            return ExitCode::FAILURE;
        }
    };
    let last = recon.points.last();
    println!("trace:    {}", path.display());
    println!("events:   {}", events.len());
    println!("moves:    {}", recon.moves);
    println!("anchors:  {}", recon.anchors);
    match last {
        Some(point) => println!(
            "final ϕ:  {:.12} (recorded {:.12})",
            point.reconstructed, point.recorded
        ),
        None => println!("final ϕ:  (no ϕ-bearing events)"),
    }
    println!("max err:  {:.3e}", recon.max_abs_err);
    let spans = summarize_spans(&events);
    if !spans.is_empty() {
        println!("spans:");
        println!(
            "  {:<16} {:>8} {:>10} {:>10} {:>10} {:>10} {:>10}",
            "kind", "count", "p50", "p90", "p99", "max", "total"
        );
        for s in &spans {
            println!(
                "  {:<16} {:>8} {:>10} {:>10} {:>10} {:>10} {:>10}",
                s.kind.tag(),
                s.count,
                fmt_nanos(s.p50_nanos),
                fmt_nanos(s.p90_nanos),
                fmt_nanos(s.p99_nanos),
                fmt_nanos(s.max_nanos),
                fmt_nanos(s.total_nanos)
            );
        }
    }
    if recon.max_abs_err <= TOLERANCE {
        println!("PASS: reconstruction within {TOLERANCE:e}");
        ExitCode::SUCCESS
    } else {
        println!("FAIL: reconstruction error exceeds {TOLERANCE:e}");
        ExitCode::FAILURE
    }
}

fn selftest(dir: &Path) -> ExitCode {
    std::fs::create_dir_all(dir).expect("create trace directory");
    let game = synthetic_game(80, 60, 11);
    let mut failed = false;
    for algo in [DistributedAlgorithm::Dgrn, DistributedAlgorithm::Muun] {
        let path = dir.join(format!("trace_{}.jsonl", algo.name().to_lowercase()));
        let subscriber = Arc::new(JsonlSubscriber::create(&path).expect("create trace file"));
        let obs = Obs::new(subscriber.clone());
        let outcome = run_distributed_observed(&game, algo, &RunConfig::with_seed(7), &obs);
        subscriber.flush().expect("flush trace file");
        eprintln!(
            "{}: {} slots, {} updates, converged={}",
            algo.name(),
            outcome.slots,
            outcome.updates,
            outcome.converged
        );
        if analyze(&path) != ExitCode::SUCCESS {
            failed = true;
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--selftest") => {
            let dir = args
                .get(1)
                .map(PathBuf::from)
                .unwrap_or_else(std::env::temp_dir);
            selftest(&dir)
        }
        Some(path) => analyze(Path::new(path)),
        None => {
            eprintln!("usage: trace_report <trace.jsonl> | trace_report --selftest [dir]");
            ExitCode::FAILURE
        }
    }
}
