//! Adversarial robustness of the telemetry-frame codec: the coordinator
//! decodes these bytes off a socket shared with the lock-step control
//! protocol, so corruption must be *rejected or decoded*, never a panic and
//! never a silent half-read.
//!
//! * bit flips — the layout is fixed-shape, so every flip lands in exactly
//!   one guarded byte (magic / version / shape: always rejected) or one
//!   data field (always decodes, and to a *different* frame);
//! * truncation — any prefix strictly shorter than the fixed layout is
//!   rejected;
//! * garbage — arbitrary byte strings never panic, and anything the decoder
//!   does accept re-encodes byte-identically (the codec is canonical, so a
//!   lucky garbage hit is indistinguishable from a real frame);
//! * roundtrip — every representable frame survives encode → decode intact.

use proptest::prelude::*;
use vcs_obs::span::SpanKind;
use vcs_obs::{
    NetStats, SpanCells, TelemetryError, TelemetryFrame, COUNTER_NAMES, TELEMETRY_FRAME_LEN,
};

/// Byte offsets whose damage the decoder must *reject*: the magic, the
/// version byte, and the three shape bytes. Every other offset is plain
/// field data — a flip there must still decode (to different contents).
fn guarded_offsets() -> Vec<usize> {
    let counter_count = 4 + 1 + 4 + 4 + 8;
    let span_kind_count = counter_count + 1 + COUNTER_NAMES.len() * 8 + 4 * 8;
    let mut guarded: Vec<usize> = (0..4).collect(); // magic
    guarded.push(4); // version
    guarded.push(counter_count);
    guarded.push(span_kind_count);
    guarded.push(span_kind_count + 1); // bucket count
    guarded
}

/// Deterministically fills every field of a frame from a seed — a cheap
/// arbitrary-frame generator that exercises all columns without a strategy
/// per field.
fn arbitrary_frame(seed: u64) -> TelemetryFrame {
    let mut x = seed | 1;
    let mut next = move || {
        // SplitMix64: good-enough dispersion for fuzz inputs.
        x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = x;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    TelemetryFrame {
        shard: next() as u32,
        incarnation: next() as u32,
        seq: next(),
        counters: (0..COUNTER_NAMES.len()).map(|_| next()).collect(),
        lanes: [next(), next(), next(), next()],
        spans: (0..SpanKind::ALL.len())
            .map(|_| SpanCells {
                sum_nanos: next(),
                buckets: std::array::from_fn(|_| next()),
            })
            .collect(),
        net: NetStats {
            retransmissions: next(),
            drops: next(),
            naks: next(),
            dup_drops: next(),
            rto_fires: next(),
            in_flight: next(),
            srtt_ms: next(),
        },
        watchdog: [next(), next(), next()],
        phi_bits: next(),
        profit_bits: next(),
    }
}

proptest! {
    /// Any single-bit flip of an encoded frame either decodes or errors —
    /// never a panic — and the outcome is fully determined by whether the
    /// flip hit a guarded byte (magic/version/shape) or field data.
    #[test]
    fn bit_flips_decode_or_reject(seed in any::<u64>(), flip in 0usize..TELEMETRY_FRAME_LEN * 8) {
        let frame = arbitrary_frame(seed);
        let mut bytes = frame.encode();
        bytes[flip / 8] ^= 1 << (flip % 8);
        let guarded = guarded_offsets();
        match TelemetryFrame::decode(&bytes) {
            Err(_) => prop_assert!(
                guarded.contains(&(flip / 8)),
                "flip at data byte {} was rejected", flip / 8
            ),
            Ok(decoded) => {
                prop_assert!(
                    !guarded.contains(&(flip / 8)),
                    "flip at guarded byte {} was accepted", flip / 8
                );
                // Silent acceptance of damage is as bad as a panic: the
                // flip must be visible in the decoded frame.
                prop_assert_ne!(decoded, frame);
            }
        }
    }

    /// Every strict prefix of a valid frame is rejected as truncated, and
    /// every extension is rejected for its trailing bytes.
    #[test]
    fn wrong_length_is_always_rejected(seed in any::<u64>(), keep in 0usize..TELEMETRY_FRAME_LEN) {
        let bytes = arbitrary_frame(seed).encode();
        prop_assert_eq!(
            TelemetryFrame::decode(&bytes[..keep]),
            Err(TelemetryError::Truncated)
        );
        let mut longer = bytes.clone();
        longer.extend_from_slice(&[0; 3]);
        prop_assert_eq!(
            TelemetryFrame::decode(&longer),
            Err(TelemetryError::TrailingBytes(3))
        );
    }

    /// Arbitrary garbage never panics the decoder, and anything it accepts
    /// re-encodes to exactly the input bytes — the codec is canonical, so
    /// acceptance means the bytes *are* a frame, not that damage slipped by.
    #[test]
    fn garbage_never_panics_and_acceptance_is_canonical(
        bytes in prop::collection::vec(any::<u8>(), 0..TELEMETRY_FRAME_LEN + 64),
    ) {
        if let Ok(frame) = TelemetryFrame::decode(&bytes) {
            prop_assert_eq!(frame.encode(), bytes);
        }
    }

    /// Every representable frame survives the encode → decode roundtrip
    /// bit-for-bit (gauge NaN payloads included: they travel as raw bits).
    #[test]
    fn arbitrary_frames_roundtrip(seed in any::<u64>()) {
        let frame = arbitrary_frame(seed);
        let bytes = frame.encode();
        prop_assert_eq!(bytes.len(), TELEMETRY_FRAME_LEN);
        prop_assert_eq!(TelemetryFrame::decode(&bytes), Ok(frame));
    }
}
