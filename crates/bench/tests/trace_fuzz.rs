//! Adversarial robustness of the recorder/post-mortem pipeline: random
//! corruption of the three wire formats a sharded deployment leaves behind
//! must be *rejected or localized*, never a panic.
//!
//! * [`BoundaryFrame`] bytes — bit flips and truncation against the binary
//!   codec: length or magic damage is always rejected, any other flip
//!   decodes to a frame or a clean error;
//! * JSONL trace lines — byte flips and mid-line truncation against
//!   `parse_line`: every mutation either reparses as a valid event or
//!   errors, and truncation strictly inside a line always errors;
//! * stamped per-shard streams — reordering and head-truncation against
//!   the merge-aware causal validator: both mutation classes are flagged
//!   (seq discontinuity, Lamport regression, or an orphaned receive);
//! * recorded ϕ/ΣP trajectories — a single flipped mantissa bit in one
//!   `MoveCommitted` is localized by `locate_divergence`'s binary search
//!   to exactly the corrupted slot.

use std::sync::{Arc, OnceLock};

use proptest::prelude::*;
use vcs_bench::replay::{
    extract_moves, first_divergence_in_prefix, flip_mantissa_bit, locate_divergence, RecordedMove,
    TOLERANCE,
};
use vcs_bench::synthetic_game;
use vcs_core::ids::RouteId;
use vcs_core::{Engine, Game, Profile};
use vcs_obs::trace::{event_to_json, parse_line};
use vcs_obs::{validate_causal_order_merged, Event, Obs, RingBufferSubscriber, StampedStream};
use vcs_runtime::sync_runtime::spawn_agents;
use vcs_runtime::{run_threaded_observed, SchedulerKind};
use vcs_shard::{localized_game, BoundaryFrame, ShardConfig, ShardedSim, FRAME_LEN};

// ---------------------------------------------------------------------------
// Shared corpora (built once: proptest runs hundreds of cases per property)
// ---------------------------------------------------------------------------

/// Per-shard stamped streams from one converged 3-shard deployment.
fn sharded_streams() -> &'static Vec<StampedStream> {
    static CELL: OnceLock<Vec<StampedStream>> = OnceLock::new();
    CELL.get_or_init(|| {
        let shards = 3;
        let game = localized_game(100, 90, 5, 13);
        let mut sim = ShardedSim::new(game, ShardConfig::new(shards, 13));
        let rings: Vec<Arc<RingBufferSubscriber>> = (0..shards)
            .map(|s| {
                let ring = Arc::new(RingBufferSubscriber::new(1 << 16));
                sim.set_shard_obs(s, Obs::new(ring.clone()));
                ring
            })
            .collect();
        let outcome = sim.run();
        assert!(outcome.converged && outcome.frames_sent > 0);
        let streams: Vec<StampedStream> = rings
            .iter()
            .enumerate()
            .map(|(s, ring)| StampedStream::new(s as u32, ring.events()))
            .collect();
        assert!(validate_causal_order_merged(&streams).is_empty());
        streams
    })
}

/// The corpus of serialized trace lines the JSONL mutations draw from.
fn trace_lines() -> &'static Vec<String> {
    static CELL: OnceLock<Vec<String>> = OnceLock::new();
    CELL.get_or_init(|| {
        let lines: Vec<String> = sharded_streams()
            .iter()
            .flat_map(|s| s.events.iter().map(event_to_json))
            .collect();
        assert!(lines.len() > 100);
        lines
    })
}

/// One threaded-runtime recording plus its reconstruction recipe: the game
/// and the agent seed, which together rebuild the initial profile.
fn recorded_run() -> &'static (Game, Vec<RecordedMove>, u64) {
    static CELL: OnceLock<(Game, Vec<RecordedMove>, u64)> = OnceLock::new();
    CELL.get_or_init(|| {
        let seed = 7u64;
        let game = synthetic_game(120, 120, 11);
        let ring = Arc::new(RingBufferSubscriber::new(1 << 18));
        let obs = Obs::new(ring.clone());
        run_threaded_observed(&game, SchedulerKind::Puu, seed, 200_000, &obs);
        let moves = extract_moves(&ring.events());
        assert!(moves.len() > 20, "corpus run must commit moves");
        (game, moves, seed)
    })
}

/// Rebuilds the recorded run's engine the way `replay_debug` does: same
/// game, same agent-announced initial routes.
fn rebuild<'g>(game: &'g Game, seed: u64) -> Engine<'g> {
    let choices: Vec<RouteId> = spawn_agents(game, seed).iter().map(|a| a.current).collect();
    Engine::new(game, Profile::new(game, choices))
}

fn arbitrary_frame(bits: u64) -> BoundaryFrame {
    BoundaryFrame {
        shard: (bits & 0xFF) as u32,
        user: ((bits >> 8) & 0xFFFF) as u32,
        from_route: ((bits >> 24) & 0xFF) as u32,
        to_route: ((bits >> 32) & 0xFF) as u32,
        seq: (bits >> 40) & 0xFFF,
        lamport: (bits >> 52) & 0xFFF,
    }
}

proptest! {
    // ---------------------------------------------------------------------
    // Binary frame codec
    // ---------------------------------------------------------------------

    /// Any single-bit flip of an encoded frame decodes or errors — never a
    /// panic — and damage to the magic bytes is always rejected.
    #[test]
    fn frame_bit_flips_decode_or_reject(bits in any::<u64>(), flip in 0usize..FRAME_LEN * 8) {
        let frame = arbitrary_frame(bits);
        let mut bytes = frame.encode();
        bytes[flip / 8] ^= 1 << (flip % 8);
        match BoundaryFrame::decode(&bytes) {
            Err(_) => prop_assert!(flip / 8 < 4, "only magic damage is rejectable"),
            Ok(decoded) => {
                prop_assert!(flip / 8 >= 4, "magic damage must be rejected");
                // The flip landed in exactly one field.
                prop_assert_ne!(decoded, frame);
            }
        }
    }

    /// Every truncation of a valid frame is rejected by length, and short
    /// garbage never panics the decoder.
    #[test]
    fn frame_truncation_is_always_rejected(bits in any::<u64>(), keep in 0usize..FRAME_LEN) {
        let bytes = arbitrary_frame(bits).encode();
        prop_assert!(BoundaryFrame::decode(&bytes[..keep]).is_err());
    }

    // ---------------------------------------------------------------------
    // JSONL trace lines
    // ---------------------------------------------------------------------

    /// A random byte flip in a recorded trace line either errors out of
    /// `parse_line` or reparses as a valid event (the flip hit a value, not
    /// the structure) — in no case a panic.
    #[test]
    fn jsonl_byte_flips_reparse_or_reject(pick in any::<u64>(), flip in any::<u64>(), bit in 0u8..8) {
        let lines = trace_lines();
        let line = &lines[(pick % lines.len() as u64) as usize];
        let mut bytes = line.clone().into_bytes();
        let at = (flip % bytes.len() as u64) as usize;
        bytes[at] ^= 1 << bit;
        // Invalid UTF-8 counts as rejection at the string boundary.
        if let Ok(mutated) = String::from_utf8(bytes) {
            if let Ok(event) = parse_line(&mutated) {
                // Survivors must re-serialize cleanly (the parse produced a
                // real event, not a half-read).
                prop_assert!(parse_line(&event_to_json(&event)).is_ok());
            }
        }
    }

    /// Truncating a trace line strictly inside its JSON object is always a
    /// parse error, never a panic.
    #[test]
    fn jsonl_truncation_is_rejected(pick in any::<u64>(), cut in any::<u64>()) {
        let lines = trace_lines();
        let line = &lines[(pick % lines.len() as u64) as usize];
        let mut at = 1 + (cut % (line.len() as u64 - 1)) as usize;
        while !line.is_char_boundary(at) {
            at -= 1;
        }
        if at > 0 {
            prop_assert!(parse_line(&line[..at]).is_err());
        }
    }

    // ---------------------------------------------------------------------
    // ϕ-trajectory corruption → exact localization
    // ---------------------------------------------------------------------

    /// One flipped mantissa bit in one recorded move's ϕ or ΣP is found by
    /// the binary search at exactly the corrupted slot.
    #[test]
    fn single_bit_corruption_is_localized_to_the_exact_slot(
        slot_sel in any::<u64>(),
        corrupt_profit in any::<bool>(),
    ) {
        let (game, moves, seed) = recorded_run();
        let slot = (slot_sel % moves.len() as u64) as usize;
        let mut corrupted = moves.clone();
        if corrupt_profit {
            corrupted[slot].total_profit = flip_mantissa_bit(corrupted[slot].total_profit);
            prop_assume!(
                (corrupted[slot].total_profit - moves[slot].total_profit).abs() > TOLERANCE
            );
        } else {
            corrupted[slot].phi = flip_mantissa_bit(corrupted[slot].phi);
            prop_assume!((corrupted[slot].phi - moves[slot].phi).abs() > TOLERANCE);
        }
        prop_assert_eq!(
            locate_divergence(|| rebuild(game, *seed), &corrupted),
            Some(slot)
        );
    }
}

// ---------------------------------------------------------------------------
// Stamped-stream mutations (deterministic: the corpus is fixed)
// ---------------------------------------------------------------------------

/// Indices of the stamped `FrameSent` events in one stream.
fn send_indices(stream: &StampedStream) -> Vec<usize> {
    stream
        .events
        .iter()
        .enumerate()
        .filter(|(_, e)| matches!(e, Event::FrameSent { seq, .. } if *seq > 0))
        .map(|(i, _)| i)
        .collect()
}

#[test]
fn clean_replay_of_the_recorded_corpus_has_no_divergence() {
    let (game, moves, seed) = recorded_run();
    assert_eq!(
        first_divergence_in_prefix(|| rebuild(game, *seed), moves, moves.len()),
        None,
        "the uncorrupted recording must replay bit-identically"
    );
}

#[test]
fn reordered_sends_within_a_shard_stream_are_flagged() {
    let streams = sharded_streams();
    for (victim, stream) in streams.iter().enumerate() {
        let sends = send_indices(stream);
        if sends.len() < 2 {
            continue;
        }
        let mut mutated = streams.clone();
        mutated[victim]
            .events
            .swap(sends[0], sends[sends.len() - 1]);
        let violations = validate_causal_order_merged(&mutated);
        assert!(
            !violations.is_empty(),
            "swapping sends {} and {} in shard {victim}'s stream must be flagged",
            sends[0],
            sends[sends.len() - 1]
        );
        return;
    }
    panic!("corpus has no stream with two sends to reorder");
}

#[test]
fn head_truncated_shard_stream_is_flagged() {
    let streams = sharded_streams();
    for (victim, stream) in streams.iter().enumerate() {
        let sends = send_indices(stream);
        // Two sends needed: dropping the first leaves a survivor whose
        // per-sender sequence number exposes the gap.
        if sends.len() < 2 {
            continue;
        }
        // Drop the stream's first send: its own seq chain gains a gap, and
        // replicas that recorded the matching receive may be orphaned.
        let mut mutated = streams.clone();
        mutated[victim].events.remove(sends[0]);
        let violations = validate_causal_order_merged(&mutated);
        assert!(
            !violations.is_empty(),
            "dropping shard {victim}'s first send must be flagged"
        );
        return;
    }
    panic!("corpus has no stream with a send to drop");
}
