//! Observability overhead: the distributed dynamics with no observability
//! handle at all vs a disabled [`Obs`] vs live subscribers. The disabled
//! path must be free — `Obs::emit` is one `Option` branch and the event
//! payload is never even constructed — and the `obs_report` binary measures
//! the same comparison numerically into `BENCH_obs.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::sync::Arc;
use vcs_algorithms::{run_distributed, run_distributed_observed, DistributedAlgorithm, RunConfig};
use vcs_bench::synthetic_game;
use vcs_obs::{Obs, RingBufferSubscriber, StatsSubscriber};

fn bench_obs_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_overhead");
    group.sample_size(10);
    for users in [100usize, 500] {
        let game = synthetic_game(users, users.max(60), 11);
        let config = RunConfig::with_seed(7);
        let algo = DistributedAlgorithm::Dgrn;
        group.bench_with_input(BenchmarkId::new("plain", users), &game, |b, game| {
            b.iter(|| black_box(run_distributed(game, algo, &config).slots))
        });
        group.bench_with_input(BenchmarkId::new("noop", users), &game, |b, game| {
            let obs = Obs::disabled();
            b.iter(|| black_box(run_distributed_observed(game, algo, &config, &obs).slots))
        });
        group.bench_with_input(BenchmarkId::new("stats", users), &game, |b, game| {
            let obs = Obs::new(Arc::new(StatsSubscriber::new()));
            b.iter(|| black_box(run_distributed_observed(game, algo, &config, &obs).slots))
        });
        group.bench_with_input(BenchmarkId::new("ring", users), &game, |b, game| {
            let obs = Obs::new(Arc::new(RingBufferSubscriber::new(1 << 16)));
            b.iter(|| black_box(run_distributed_observed(game, algo, &config, &obs).slots))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_obs_overhead);
criterion_main!(benches);
