//! One Criterion bench per paper table/figure: times the experiment runner
//! that regenerates the artifact (at reduced replication — the full 500-rep
//! regeneration is `cargo run --release -p vcs-experiments --bin repro`).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use vcs_experiments::{run_experiment, Ctx, ALL_EXPERIMENTS};

fn bench_figures(c: &mut Criterion) {
    // Two repetitions per point: enough to execute every code path of every
    // experiment while keeping `cargo bench` tractable.
    let ctx = Ctx::new(2, 99, None);
    // Warm the substrate pools once so the benches time the experiments, not
    // the one-off city/trace generation.
    for id in ALL_EXPERIMENTS {
        let _ = run_experiment(&ctx, id);
    }
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);
    for id in ALL_EXPERIMENTS {
        group.bench_function(id, |b| {
            b.iter(|| {
                let report = run_experiment(&ctx, black_box(id)).expect("known id");
                black_box(report.rows.len())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
