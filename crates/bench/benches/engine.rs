//! Incremental engine vs naive driver: wall-clock of the distributed
//! dynamics (DGRN and MUUN) at growing user counts, old (full per-slot
//! rescans) against new (dirty-set best responses + O(1) slot records).
//! The `engine_report` binary runs the same comparison and writes the
//! slots/sec table to `BENCH_engine.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use vcs_algorithms::{run_distributed, run_distributed_naive, DistributedAlgorithm, RunConfig};
use vcs_bench::synthetic_game;

fn bench_engine_vs_naive(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_vs_naive");
    group.sample_size(10);
    for users in [100usize, 500, 2000] {
        // Tasks scale with users (city-scale deployments grow both), keeping
        // per-task contention — and thus dirty-set sizes — representative.
        let game = synthetic_game(users, users.max(60), 11);
        // Cap the slot budget so the naive driver finishes at 2000 users;
        // both drivers run the identical trajectory prefix, so slots/sec
        // stays a fair comparison.
        let mut config = RunConfig::with_seed(7);
        config.max_slots = if users >= 2000 { 60 } else { 1_000_000 };
        for algo in [DistributedAlgorithm::Dgrn, DistributedAlgorithm::Muun] {
            group.bench_with_input(
                BenchmarkId::new(format!("{}_engine", algo.name()), users),
                &game,
                |b, game| b.iter(|| black_box(run_distributed(game, algo, &config).slots)),
            );
            group.bench_with_input(
                BenchmarkId::new(format!("{}_naive", algo.name()), users),
                &game,
                |b, game| b.iter(|| black_box(run_distributed_naive(game, algo, &config).slots)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_engine_vs_naive);
criterion_main!(benches);
