//! Substrate performance: city generation, k-shortest paths, route
//! recommendation, trace synthesis, OD extraction and scenario instantiation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use vcs_bench::{bench_game, bench_pool};
use vcs_roadnet::{
    astar_path, k_shortest_paths, recommend_routes, shortest_path, CityConfig, CityKind,
    CostMetric, NodeId, RecommendConfig,
};
use vcs_scenario::Dataset;
use vcs_traces::{extract_all, generate_traces, TraceGenConfig};

fn bench_city_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("city_generation");
    for dataset in Dataset::ALL {
        group.bench_function(dataset.name(), |b| {
            b.iter(|| black_box(dataset.city_config(7).generate().edge_count()))
        });
    }
    group.finish();
}

fn bench_shortest_paths(c: &mut Criterion) {
    let graph = CityConfig {
        kind: CityKind::Grid {
            nx: 11,
            ny: 11,
            spacing: 1.0,
        },
        seed: 7,
    }
    .generate();
    let src = NodeId(0);
    let dst = NodeId((graph.node_count() - 1) as u32);
    let mut group = c.benchmark_group("k_shortest_paths");
    for k in [1usize, 4, 8, 12] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| black_box(k_shortest_paths(&graph, src, dst, k, CostMetric::Length).len()))
        });
    }
    group.finish();

    c.bench_function("dijkstra_point_to_point", |b| {
        b.iter(|| {
            black_box(
                shortest_path(&graph, src, dst, CostMetric::Length)
                    .unwrap()
                    .length,
            )
        })
    });
    c.bench_function("astar_point_to_point", |b| {
        b.iter(|| {
            black_box(
                astar_path(&graph, src, dst, CostMetric::Length)
                    .unwrap()
                    .length,
            )
        })
    });
    c.bench_function("recommend_routes", |b| {
        b.iter(|| black_box(recommend_routes(&graph, src, dst, &RecommendConfig::default()).len()))
    });
}

fn bench_traces(c: &mut Criterion) {
    let graph = Dataset::Shanghai.city_config(7).generate();
    let cfg = TraceGenConfig {
        n_traces: 50,
        ..Dataset::Shanghai.trace_config(7)
    };
    c.bench_function("generate_traces_50", |b| {
        b.iter(|| black_box(generate_traces(&graph, &cfg).len()))
    });
    let traces = generate_traces(&graph, &cfg);
    c.bench_function("extract_od_50", |b| {
        b.iter(|| black_box(extract_all(&graph, &traces).len()))
    });
}

fn bench_scenario(c: &mut Criterion) {
    let pool = bench_pool();
    let mut group = c.benchmark_group("scenario_instantiate");
    for (users, tasks) in [(20usize, 40usize), (100, 100)] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{users}u_{tasks}t")),
            &(users, tasks),
            |b, &(users, tasks)| {
                b.iter(|| black_box(bench_game(&pool, users, tasks, 5).task_count()))
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_city_generation,
    bench_shortest_paths,
    bench_traces,
    bench_scenario
);
criterion_main!(benches);
