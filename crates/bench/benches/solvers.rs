//! Solver performance: per-move primitives (best response, potential delta),
//! full dynamics per algorithm and size, PUU batch selection, CORN
//! branch-and-bound, and the message-passing runtimes (sync vs threaded) —
//! the ablation benches DESIGN.md calls out (SUU vs PUU wall clock).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use vcs_algorithms::{puu, run_corn, suu, DistributedAlgorithm, UpdateRequest};
use vcs_bench::{bench_game, bench_pool, equilibrate};
use vcs_core::ids::UserId;
use vcs_core::response::best_route_set;
use vcs_core::{potential, Profile};
use vcs_runtime::{run_sync, run_threaded, SchedulerKind};

fn bench_primitives(c: &mut Criterion) {
    let pool = bench_pool();
    let game = bench_game(&pool, 60, 60, 3);
    let profile = Profile::all_first(&game);
    c.bench_function("best_response_scan_60u", |b| {
        b.iter(|| {
            let mut improving = 0usize;
            for i in 0..game.user_count() {
                if best_route_set(&game, &profile, UserId::from_index(i)).can_improve() {
                    improving += 1;
                }
            }
            black_box(improving)
        })
    });
    c.bench_function("potential_full_60u", |b| {
        b.iter(|| black_box(potential(&game, &profile)))
    });
}

fn bench_dynamics(c: &mut Criterion) {
    let pool = bench_pool();
    let mut group = c.benchmark_group("dynamics_to_nash");
    group.sample_size(10);
    for users in [20usize, 60, 100] {
        let game = bench_game(&pool, users, 60, 11);
        for algo in [
            DistributedAlgorithm::Dgrn,
            DistributedAlgorithm::Muun,
            DistributedAlgorithm::Bats,
        ] {
            group.bench_with_input(BenchmarkId::new(algo.name(), users), &game, |b, game| {
                b.iter(|| black_box(equilibrate(game, algo, 7).slots))
            });
        }
    }
    group.finish();
}

fn bench_puu_selection(c: &mut Criterion) {
    // Synthetic request sets of growing size.
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};
    use vcs_core::ids::{RouteId, TaskId};
    let mut rng = StdRng::seed_from_u64(5);
    let make_requests = |n: usize, rng: &mut StdRng| -> Vec<UpdateRequest> {
        (0..n)
            .map(|i| {
                let mut tasks: Vec<TaskId> = (0..rng.random_range(1..6usize))
                    .map(|_| TaskId(rng.random_range(0..80u32)))
                    .collect();
                tasks.sort_unstable();
                tasks.dedup();
                UpdateRequest {
                    user: UserId(i as u32),
                    new_route: RouteId(0),
                    gain: rng.random_range(0.01..5.0),
                    tau: rng.random_range(0.01..10.0),
                    affected_tasks: tasks,
                }
            })
            .collect()
    };
    let mut group = c.benchmark_group("scheduler");
    for n in [10usize, 50, 100] {
        let requests = make_requests(n, &mut rng);
        group.bench_with_input(BenchmarkId::new("puu", n), &requests, |b, reqs| {
            b.iter(|| black_box(puu(reqs).len()))
        });
        group.bench_with_input(BenchmarkId::new("suu", n), &requests, |b, reqs| {
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| black_box(suu(reqs, &mut rng).len()))
        });
    }
    group.finish();
}

fn bench_corn(c: &mut Criterion) {
    let pool = bench_pool();
    let mut group = c.benchmark_group("corn_branch_and_bound");
    group.sample_size(10);
    for users in [10usize, 12, 14] {
        let game = bench_game(&pool, users, 20, 13);
        group.bench_with_input(BenchmarkId::from_parameter(users), &game, |b, game| {
            b.iter(|| black_box(run_corn(game).nodes))
        });
    }
    group.finish();
}

fn bench_runtimes(c: &mut Criterion) {
    let pool = bench_pool();
    let game = bench_game(&pool, 40, 50, 17);
    let mut group = c.benchmark_group("runtime");
    group.sample_size(10);
    for scheduler in [SchedulerKind::Suu, SchedulerKind::Puu] {
        group.bench_function(format!("sync_{scheduler:?}"), |b| {
            b.iter(|| black_box(run_sync(&game, scheduler, 3, 1_000_000).slots))
        });
        group.bench_function(format!("threaded_{scheduler:?}"), |b| {
            b.iter(|| black_box(run_threaded(&game, scheduler, 3, 1_000_000).slots))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_primitives,
    bench_dynamics,
    bench_puu_selection,
    bench_corn,
    bench_runtimes
);
criterion_main!(benches);
