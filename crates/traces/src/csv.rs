//! Minimal CSV trace codec.
//!
//! The CRAWDAD dumps the paper uses are large CSV-ish text files. This module
//! provides a small, dependency-free reader/writer for the normalized format
//!
//! ```text
//! vehicle_id,t_seconds,x_km,y_km
//! 0,0.0,1.25,3.50
//! 0,15.0,1.40,3.52
//! 1,0.0,7.00,2.10
//! ```
//!
//! so that real trace dumps, once projected to the local km frame, can be fed
//! into the same OD-extraction pipeline as the synthetic traces.

use crate::model::{Trace, TracePoint};
use std::fmt;

/// Errors raised while parsing trace CSV.
#[derive(Debug, Clone, PartialEq)]
pub enum CsvError {
    /// A line does not have exactly four comma-separated fields.
    FieldCount {
        /// 1-based line number.
        line: usize,
        /// Number of fields found.
        found: usize,
    },
    /// A numeric field failed to parse.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Field name.
        field: &'static str,
    },
    /// Timestamps of one vehicle are not non-decreasing.
    OutOfOrder {
        /// 1-based line number.
        line: usize,
        /// Vehicle whose trace regressed in time.
        vehicle_id: u32,
    },
}

impl fmt::Display for CsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsvError::FieldCount { line, found } => {
                write!(f, "line {line}: expected 4 fields, found {found}")
            }
            CsvError::Parse { line, field } => write!(f, "line {line}: cannot parse {field}"),
            CsvError::OutOfOrder { line, vehicle_id } => {
                write!(
                    f,
                    "line {line}: vehicle {vehicle_id} timestamps out of order"
                )
            }
        }
    }
}

impl std::error::Error for CsvError {}

/// Parses trace CSV text. A header line starting with `vehicle_id` is
/// skipped; blank lines and `#` comments are ignored. Points of a vehicle
/// must appear grouped and time-ordered (the natural dump order).
pub fn parse_traces(text: &str) -> Result<Vec<Trace>, CsvError> {
    let mut traces: Vec<Trace> = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with("vehicle_id") {
            continue;
        }
        let fields: Vec<&str> = line.split(',').map(str::trim).collect();
        if fields.len() != 4 {
            return Err(CsvError::FieldCount {
                line: line_no,
                found: fields.len(),
            });
        }
        let vehicle_id: u32 = fields[0].parse().map_err(|_| CsvError::Parse {
            line: line_no,
            field: "vehicle_id",
        })?;
        let t: f64 = fields[1].parse().map_err(|_| CsvError::Parse {
            line: line_no,
            field: "t",
        })?;
        let x: f64 = fields[2].parse().map_err(|_| CsvError::Parse {
            line: line_no,
            field: "x",
        })?;
        let y: f64 = fields[3].parse().map_err(|_| CsvError::Parse {
            line: line_no,
            field: "y",
        })?;
        let point = TracePoint { t, pos: (x, y) };
        match traces.last_mut() {
            Some(last) if last.vehicle_id == vehicle_id => {
                if last.points.last().is_some_and(|p| p.t > t) {
                    return Err(CsvError::OutOfOrder {
                        line: line_no,
                        vehicle_id,
                    });
                }
                last.points.push(point);
            }
            _ => traces.push(Trace {
                vehicle_id,
                points: vec![point],
            }),
        }
    }
    Ok(traces)
}

/// Loads a trace CSV file from disk — the entry point of the real-trace
/// load path (file → [`parse_traces`] → OD extraction). Parse errors are
/// surfaced as `InvalidData` io errors carrying the offending line.
pub fn load_traces(path: &std::path::Path) -> std::io::Result<Vec<Trace>> {
    let text = std::fs::read_to_string(path)?;
    parse_traces(&text).map_err(|e| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("{}: {e}", path.display()),
        )
    })
}

/// Serializes traces to the CSV format accepted by [`parse_traces`].
pub fn write_traces(traces: &[Trace]) -> String {
    use std::fmt::Write as _;
    let mut out = String::from("vehicle_id,t_seconds,x_km,y_km\n");
    for trace in traces {
        for p in &trace.points {
            // Infallible: writing to a String cannot fail.
            let _ = writeln!(out, "{},{},{},{}", trace.vehicle_id, p.t, p.pos.0, p.pos.1);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
vehicle_id,t_seconds,x_km,y_km
# a comment
0,0.0,1.0,2.0
0,15.0,1.5,2.5

1,3.0,9.0,9.0
1,18.0,8.0,8.5
";

    #[test]
    fn parse_groups_by_vehicle() {
        let traces = parse_traces(SAMPLE).unwrap();
        assert_eq!(traces.len(), 2);
        assert_eq!(traces[0].vehicle_id, 0);
        assert_eq!(traces[0].points.len(), 2);
        assert_eq!(traces[1].points[1].pos, (8.0, 8.5));
    }

    #[test]
    fn roundtrip() {
        let traces = parse_traces(SAMPLE).unwrap();
        let text = write_traces(&traces);
        let reparsed = parse_traces(&text).unwrap();
        assert_eq!(traces, reparsed);
    }

    #[test]
    fn field_count_error() {
        let err = parse_traces("0,1.0,2.0").unwrap_err();
        assert_eq!(err, CsvError::FieldCount { line: 1, found: 3 });
    }

    #[test]
    fn parse_error_names_field() {
        let err = parse_traces("0,abc,2.0,3.0").unwrap_err();
        assert_eq!(
            err,
            CsvError::Parse {
                line: 1,
                field: "t"
            }
        );
    }

    #[test]
    fn out_of_order_detected() {
        let err = parse_traces("0,10.0,1.0,1.0\n0,5.0,2.0,2.0").unwrap_err();
        assert_eq!(
            err,
            CsvError::OutOfOrder {
                line: 2,
                vehicle_id: 0
            }
        );
    }

    #[test]
    fn same_vehicle_reappearing_starts_new_trace() {
        // Interleaved dumps start a new trace block per appearance group.
        let traces = parse_traces("0,0.0,1.0,1.0\n1,0.0,2.0,2.0\n0,30.0,3.0,3.0").unwrap();
        assert_eq!(traces.len(), 3);
    }
}
