//! Descriptive statistics of a trace dataset.
//!
//! The paper characterizes its datasets by counts and provenance; this module
//! computes the quantities one would report about a (synthetic or real)
//! dataset: trip counts, length/duration distributions and the spatial
//! spread of origins — the numbers that make two datasets comparable.

use crate::model::Trace;
use serde::{Deserialize, Serialize};

/// Five-number-ish summary of a sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Distribution {
    /// Sample size.
    pub n: usize,
    /// Minimum.
    pub min: f64,
    /// Median (lower-median convention for even sizes).
    pub median: f64,
    /// Mean.
    pub mean: f64,
    /// Maximum.
    pub max: f64,
}

impl Distribution {
    /// Summarizes a sample; NaN-free inputs assumed.
    pub fn of(values: &[f64]) -> Self {
        if values.is_empty() {
            return Self {
                n: 0,
                min: f64::NAN,
                median: f64::NAN,
                mean: f64::NAN,
                max: f64::NAN,
            };
        }
        let mut sorted = values.to_vec();
        sorted.sort_by(f64::total_cmp);
        let n = sorted.len();
        Self {
            n,
            min: sorted[0],
            median: sorted[(n - 1) / 2],
            mean: sorted.iter().sum::<f64>() / n as f64,
            max: sorted[n - 1],
        }
    }
}

/// Dataset-level statistics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceStats {
    /// Number of traces.
    pub traces: usize,
    /// Total GPS samples.
    pub points: usize,
    /// Trip polyline length distribution (km).
    pub length_km: Distribution,
    /// Trip duration distribution (seconds).
    pub duration_s: Distribution,
    /// Straight-line origin→destination distance distribution (km).
    pub crow_distance_km: Distribution,
    /// Mean origin position (centroid of trip starts).
    pub origin_centroid: (f64, f64),
    /// RMS spread of origins around their centroid (km) — small for
    /// centre-biased demand (Roma-like), large for uniform demand.
    pub origin_spread_km: f64,
}

/// Computes dataset statistics. Degenerate traces (< 2 points) are included
/// in `traces`/`points` but excluded from the trip distributions.
pub fn trace_stats(traces: &[Trace]) -> TraceStats {
    let mut lengths = Vec::new();
    let mut durations = Vec::new();
    let mut crow = Vec::new();
    let mut origins = Vec::new();
    let mut points = 0usize;
    for trace in traces {
        points += trace.points.len();
        let (Some(first), Some(last)) = (trace.first(), trace.last()) else {
            continue;
        };
        if trace.points.len() < 2 {
            continue;
        }
        origins.push(first.pos);
        lengths.push(trace.length());
        durations.push(trace.duration());
        crow.push(((first.pos.0 - last.pos.0).powi(2) + (first.pos.1 - last.pos.1).powi(2)).sqrt());
    }
    let centroid = if origins.is_empty() {
        (f64::NAN, f64::NAN)
    } else {
        let n = origins.len() as f64;
        (
            origins.iter().map(|p| p.0).sum::<f64>() / n,
            origins.iter().map(|p| p.1).sum::<f64>() / n,
        )
    };
    let spread = if origins.is_empty() {
        f64::NAN
    } else {
        (origins
            .iter()
            .map(|p| (p.0 - centroid.0).powi(2) + (p.1 - centroid.1).powi(2))
            .sum::<f64>()
            / origins.len() as f64)
            .sqrt()
    };
    TraceStats {
        traces: traces.len(),
        points,
        length_km: Distribution::of(&lengths),
        duration_s: Distribution::of(&durations),
        crow_distance_km: Distribution::of(&crow),
        origin_centroid: centroid,
        origin_spread_km: spread,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::TracePoint;
    use crate::synth::{generate_traces, CityProfile, TraceGenConfig};
    use vcs_roadnet::{CityConfig, CityKind};

    #[test]
    fn distribution_of_known_sample() {
        let d = Distribution::of(&[3.0, 1.0, 2.0, 4.0]);
        assert_eq!(d.n, 4);
        assert_eq!(d.min, 1.0);
        assert_eq!(d.median, 2.0);
        assert!((d.mean - 2.5).abs() < 1e-12);
        assert_eq!(d.max, 4.0);
        assert!(Distribution::of(&[]).mean.is_nan());
    }

    #[test]
    fn stats_on_synthetic_dataset() {
        let g = CityConfig {
            kind: CityKind::Grid {
                nx: 8,
                ny: 8,
                spacing: 1.0,
            },
            seed: 4,
        }
        .generate();
        let cfg = TraceGenConfig {
            profile: CityProfile::Shanghai,
            n_traces: 40,
            seed: 2,
            gps_noise: 0.01,
            sample_interval: 20.0,
            min_trip_fraction: 0.3,
        };
        let traces = generate_traces(&g, &cfg);
        let stats = trace_stats(&traces);
        assert_eq!(stats.traces, 40);
        assert_eq!(stats.length_km.n, 40);
        assert!(stats.points > 40 * 2);
        // Trips drive streets, so polyline length ≥ crow distance.
        assert!(stats.length_km.mean >= stats.crow_distance_km.mean - 0.1);
        assert!(stats.duration_s.min > 0.0);
        assert!(stats.origin_spread_km > 0.0);
    }

    #[test]
    fn roma_demand_has_smaller_spread() {
        let g = CityConfig {
            kind: CityKind::Grid {
                nx: 8,
                ny: 8,
                spacing: 1.0,
            },
            seed: 4,
        }
        .generate();
        let make = |profile| {
            let cfg = TraceGenConfig {
                profile,
                n_traces: 80,
                seed: 3,
                gps_noise: 0.01,
                sample_interval: 20.0,
                min_trip_fraction: 0.3,
            };
            trace_stats(&generate_traces(&g, &cfg))
        };
        let roma = make(CityProfile::Roma);
        let shanghai = make(CityProfile::Shanghai);
        assert!(roma.origin_spread_km < shanghai.origin_spread_km);
    }

    #[test]
    fn degenerate_traces_excluded_from_distributions() {
        let traces = vec![
            Trace::new(
                0,
                vec![TracePoint {
                    t: 0.0,
                    pos: (0.0, 0.0),
                }],
            ),
            Trace::new(
                1,
                vec![
                    TracePoint {
                        t: 0.0,
                        pos: (0.0, 0.0),
                    },
                    TracePoint {
                        t: 60.0,
                        pos: (3.0, 4.0),
                    },
                ],
            ),
        ];
        let stats = trace_stats(&traces);
        assert_eq!(stats.traces, 2);
        assert_eq!(stats.points, 3);
        assert_eq!(stats.length_km.n, 1);
        assert!((stats.crow_distance_km.mean - 5.0).abs() < 1e-12);
    }
}
