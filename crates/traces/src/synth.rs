//! Synthetic taxi-mobility generator.
//!
//! Replaces the CRAWDAD GPS datasets (Shanghai / Roma / EPFL) with seeded
//! synthetic traces over a road network. Each trace is a taxi trip: an origin
//! node drawn from a city-profile-specific spatial distribution, a
//! destination at a realistic trip distance, and GPS samples emitted while
//! driving the congested-time shortest path at the edges' effective speeds,
//! with bounded GPS noise.
//!
//! Only the origin–destination pairs feed the game (the paper extracts
//! exactly those from the real traces); the full point sequences exist so the
//! OD-extraction path is exercised end-to-end like it would be on real data.

use crate::model::{Trace, TracePoint};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};
use vcs_roadnet::{astar_path, CostMetric, NodeId, RoadGraph};

/// Spatial character of a city's taxi demand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CityProfile {
    /// Dense, roughly uniform demand over the whole grid (Shanghai-like).
    Shanghai,
    /// Strongly centre-biased demand (Roma-like: trips start near the
    /// historic centre).
    Roma,
    /// Corridor-biased demand along the x-axis (EPFL/SF-peninsula-like).
    Epfl,
}

/// Configuration of the synthetic trace generator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceGenConfig {
    /// Demand profile.
    pub profile: CityProfile,
    /// Number of traces (trips) to generate.
    pub n_traces: usize,
    /// RNG seed.
    pub seed: u64,
    /// GPS noise amplitude in km (uniform box noise per sample).
    pub gps_noise: f64,
    /// Sampling interval in seconds.
    pub sample_interval: f64,
    /// Minimum trip distance as a fraction of the city diameter, in `(0, 1)`.
    pub min_trip_fraction: f64,
}

impl TraceGenConfig {
    /// A profile's defaults mirroring the paper's dataset sizes
    /// (Shanghai 200, Roma 150, EPFL 200 selected traces).
    pub fn paper_defaults(profile: CityProfile, seed: u64) -> Self {
        let n_traces = match profile {
            CityProfile::Shanghai => 200,
            CityProfile::Roma => 150,
            CityProfile::Epfl => 200,
        };
        Self {
            profile,
            n_traces,
            seed,
            gps_noise: 0.02,
            sample_interval: 15.0,
            min_trip_fraction: 0.3,
        }
    }
}

/// Node-sampling weight under a demand profile.
fn origin_weight(profile: CityProfile, pos: (f64, f64), centre: (f64, f64), radius: f64) -> f64 {
    match profile {
        CityProfile::Shanghai => 1.0,
        CityProfile::Roma => {
            let d = ((pos.0 - centre.0).powi(2) + (pos.1 - centre.1).powi(2)).sqrt();
            (-2.5 * d / radius.max(1e-9)).exp()
        }
        CityProfile::Epfl => {
            // Demand concentrated along a horizontal corridor through the
            // centre (the peninsula's main artery).
            let d = (pos.1 - centre.1).abs();
            (-3.0 * d / radius.max(1e-9)).exp()
        }
    }
}

/// Samples an index from non-negative `weights` (cumulative inversion).
fn weighted_index(weights: &[f64], rng: &mut StdRng) -> usize {
    let total: f64 = weights.iter().sum();
    debug_assert!(total > 0.0, "at least one positive weight required");
    let mut u = rng.random_range(0.0..total);
    for (i, &w) in weights.iter().enumerate() {
        if u < w {
            return i;
        }
        u -= w;
    }
    weights.len() - 1
}

/// Generates `config.n_traces` synthetic taxi traces over `graph`.
///
/// Deterministic in `(graph, config)`. Trips whose destination search fails
/// (isolated corner nodes) are retried with fresh draws; the generator
/// panics only if the graph cannot support any trip of the requested length.
pub fn generate_traces(graph: &RoadGraph, config: &TraceGenConfig) -> Vec<Trace> {
    assert!(graph.node_count() >= 2, "need at least two nodes");
    assert!(
        config.min_trip_fraction > 0.0 && config.min_trip_fraction < 1.0,
        "min_trip_fraction must lie in (0, 1)"
    );
    let mut rng = StdRng::seed_from_u64(config.seed);
    let (centre, radius) = city_extent(graph);
    let weights: Vec<f64> = graph
        .nodes()
        .iter()
        .map(|n| origin_weight(config.profile, n.pos, centre, radius))
        .collect();
    let min_dist = 2.0 * radius * config.min_trip_fraction;
    let mut traces = Vec::with_capacity(config.n_traces);
    let mut attempts = 0usize;
    let max_attempts = config.n_traces * 50 + 100;
    while traces.len() < config.n_traces {
        attempts += 1;
        assert!(
            attempts <= max_attempts,
            "graph cannot support trips of the requested minimum length"
        );
        let origin = NodeId::from_index(weighted_index(&weights, &mut rng));
        // Candidate destinations far enough from the origin.
        let candidates: Vec<NodeId> = graph
            .nodes()
            .iter()
            .filter(|n| n.id != origin && graph.distance(origin, n.id) >= min_dist)
            .map(|n| n.id)
            .collect();
        if candidates.is_empty() {
            continue;
        }
        let destination = candidates[rng.random_range(0..candidates.len())];
        // Goal-directed A*: identical cost to Dijkstra (property-tested in
        // vcs-roadnet), visits far fewer nodes per trip query.
        let Some(path) = astar_path(graph, origin, destination, CostMetric::TravelTime) else {
            continue;
        };
        let vehicle_id = u32::try_from(traces.len()).expect("trace count fits u32");
        traces.push(drive_trace(
            graph,
            origin,
            &path.edges,
            vehicle_id,
            config,
            &mut rng,
        ));
    }
    traces
}

/// Centre and characteristic radius (half-diagonal) of the graph's extent.
fn city_extent(graph: &RoadGraph) -> ((f64, f64), f64) {
    let mut min = (f64::INFINITY, f64::INFINITY);
    let mut max = (f64::NEG_INFINITY, f64::NEG_INFINITY);
    for n in graph.nodes() {
        min.0 = min.0.min(n.pos.0);
        min.1 = min.1.min(n.pos.1);
        max.0 = max.0.max(n.pos.0);
        max.1 = max.1.max(n.pos.1);
    }
    let centre = ((min.0 + max.0) / 2.0, (min.1 + max.1) / 2.0);
    let radius = ((max.0 - min.0).hypot(max.1 - min.1) / 2.0).max(1e-9);
    (centre, radius)
}

/// Emits GPS samples while driving `edges` from `origin` at the edges'
/// congested speeds.
fn drive_trace(
    graph: &RoadGraph,
    origin: NodeId,
    edges: &[vcs_roadnet::EdgeId],
    vehicle_id: u32,
    config: &TraceGenConfig,
    rng: &mut StdRng,
) -> Trace {
    let noise = config.gps_noise;
    let mut points = Vec::new();
    let mut t = 0.0;
    let mut emit = |t: f64, pos: (f64, f64), rng: &mut StdRng| {
        let jitter = |v: f64, rng: &mut StdRng| {
            if noise > 0.0 {
                v + rng.random_range(-noise..noise)
            } else {
                v
            }
        };
        points.push(TracePoint {
            t,
            pos: (jitter(pos.0, rng), jitter(pos.1, rng)),
        });
    };
    emit(t, graph.node(origin).pos, rng);
    for &eid in edges {
        let e = graph.edge(eid);
        let seg_hours = e.travel_time();
        let seg_secs = seg_hours * 3600.0;
        let from = graph.node(e.from).pos;
        let to = graph.node(e.to).pos;
        // Interior samples every sample_interval seconds.
        let mut s = config.sample_interval;
        while s < seg_secs {
            let frac = s / seg_secs;
            let pos = (
                from.0 + frac * (to.0 - from.0),
                from.1 + frac * (to.1 - from.1),
            );
            emit(t + s, pos, rng);
            s += config.sample_interval;
        }
        t += seg_secs;
        emit(t, to, rng);
    }
    Trace::new(vehicle_id, points)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcs_roadnet::{CityConfig, CityKind};

    fn city() -> RoadGraph {
        CityConfig {
            kind: CityKind::Grid {
                nx: 8,
                ny: 8,
                spacing: 1.0,
            },
            seed: 1,
        }
        .generate()
    }

    fn config(profile: CityProfile) -> TraceGenConfig {
        TraceGenConfig {
            profile,
            n_traces: 30,
            seed: 9,
            gps_noise: 0.01,
            sample_interval: 20.0,
            min_trip_fraction: 0.3,
        }
    }

    #[test]
    fn generates_requested_count() {
        let g = city();
        let traces = generate_traces(&g, &config(CityProfile::Shanghai));
        assert_eq!(traces.len(), 30);
        for (i, tr) in traces.iter().enumerate() {
            assert_eq!(tr.vehicle_id as usize, i);
            assert!(tr.points.len() >= 2);
            assert!(tr.duration() > 0.0);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let g = city();
        let a = generate_traces(&g, &config(CityProfile::Roma));
        let b = generate_traces(&g, &config(CityProfile::Roma));
        assert_eq!(a, b);
        let mut other = config(CityProfile::Roma);
        other.seed += 1;
        assert_ne!(a, generate_traces(&g, &other));
    }

    #[test]
    fn trips_meet_minimum_length() {
        let g = city();
        let cfg = config(CityProfile::Shanghai);
        let (_, radius) = city_extent(&g);
        let min_dist = 2.0 * radius * cfg.min_trip_fraction;
        for tr in generate_traces(&g, &cfg) {
            let a = tr.first().unwrap().pos;
            let b = tr.last().unwrap().pos;
            let crow = ((a.0 - b.0).powi(2) + (a.1 - b.1).powi(2)).sqrt();
            // Allow for GPS noise at both endpoints.
            assert!(
                crow >= min_dist - 4.0 * cfg.gps_noise,
                "trip too short: {crow}"
            );
        }
    }

    #[test]
    fn roma_origins_cluster_at_centre() {
        let g = city();
        let mut cfg = config(CityProfile::Roma);
        cfg.n_traces = 120;
        let (centre, _) = city_extent(&g);
        let mean_origin_dist = |traces: &[Trace]| {
            traces
                .iter()
                .map(|t| {
                    let p = t.first().unwrap().pos;
                    ((p.0 - centre.0).powi(2) + (p.1 - centre.1).powi(2)).sqrt()
                })
                .sum::<f64>()
                / traces.len() as f64
        };
        let roma = mean_origin_dist(&generate_traces(&g, &cfg));
        cfg.profile = CityProfile::Shanghai;
        let shanghai = mean_origin_dist(&generate_traces(&g, &cfg));
        assert!(
            roma < shanghai,
            "Roma origins ({roma:.2} km) should be more central than Shanghai ({shanghai:.2} km)"
        );
    }

    #[test]
    fn epfl_origins_hug_corridor() {
        let g = city();
        let mut cfg = config(CityProfile::Epfl);
        cfg.n_traces = 120;
        let (centre, _) = city_extent(&g);
        let mean_y_dev = |traces: &[Trace]| {
            traces
                .iter()
                .map(|t| (t.first().unwrap().pos.1 - centre.1).abs())
                .sum::<f64>()
                / traces.len() as f64
        };
        let epfl = mean_y_dev(&generate_traces(&g, &cfg));
        cfg.profile = CityProfile::Shanghai;
        let shanghai = mean_y_dev(&generate_traces(&g, &cfg));
        assert!(epfl < shanghai);
    }

    #[test]
    fn paper_defaults_match_dataset_sizes() {
        assert_eq!(
            TraceGenConfig::paper_defaults(CityProfile::Shanghai, 0).n_traces,
            200
        );
        assert_eq!(
            TraceGenConfig::paper_defaults(CityProfile::Roma, 0).n_traces,
            150
        );
        assert_eq!(
            TraceGenConfig::paper_defaults(CityProfile::Epfl, 0).n_traces,
            200
        );
    }

    #[test]
    fn timestamps_monotone() {
        let g = city();
        for tr in generate_traces(&g, &config(CityProfile::Epfl)) {
            assert!(tr.points.windows(2).all(|w| w[0].t <= w[1].t));
        }
    }
}
