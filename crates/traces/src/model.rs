//! Trace data model: timestamped GPS points grouped per vehicle.

use serde::{Deserialize, Serialize};

/// One GPS sample of a vehicle trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TracePoint {
    /// Timestamp in seconds since the start of the observation window.
    pub t: f64,
    /// Planar position in the city's km coordinate frame.
    pub pos: (f64, f64),
}

/// A vehicle trace: an ordered sequence of GPS samples.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    /// Vehicle identifier within the dataset.
    pub vehicle_id: u32,
    /// Samples ordered by non-decreasing timestamp.
    pub points: Vec<TracePoint>,
}

impl Trace {
    /// Creates a trace, asserting (in debug builds) temporal ordering.
    pub fn new(vehicle_id: u32, points: Vec<TracePoint>) -> Self {
        debug_assert!(
            points.windows(2).all(|w| w[0].t <= w[1].t),
            "trace points must be time-ordered"
        );
        Self { vehicle_id, points }
    }

    /// First sample, or `None` for an empty trace.
    pub fn first(&self) -> Option<&TracePoint> {
        self.points.first()
    }

    /// Last sample, or `None` for an empty trace.
    pub fn last(&self) -> Option<&TracePoint> {
        self.points.last()
    }

    /// Duration covered by the trace in seconds (0 for < 2 points).
    pub fn duration(&self) -> f64 {
        match (self.first(), self.last()) {
            (Some(a), Some(b)) => b.t - a.t,
            _ => 0.0,
        }
    }

    /// Total polyline length of the trace in km.
    pub fn length(&self) -> f64 {
        self.points
            .windows(2)
            .map(|w| {
                let (ax, ay) = w[0].pos;
                let (bx, by) = w[1].pos;
                ((ax - bx).powi(2) + (ay - by).powi(2)).sqrt()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace() -> Trace {
        Trace::new(
            7,
            vec![
                TracePoint {
                    t: 0.0,
                    pos: (0.0, 0.0),
                },
                TracePoint {
                    t: 30.0,
                    pos: (3.0, 4.0),
                },
                TracePoint {
                    t: 60.0,
                    pos: (3.0, 4.0),
                },
            ],
        )
    }

    #[test]
    fn endpoints_and_duration() {
        let tr = trace();
        assert_eq!(tr.first().unwrap().t, 0.0);
        assert_eq!(tr.last().unwrap().t, 60.0);
        assert_eq!(tr.duration(), 60.0);
    }

    #[test]
    fn length_sums_segments() {
        let tr = trace();
        assert!((tr.length() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn empty_trace() {
        let tr = Trace::new(0, vec![]);
        assert!(tr.first().is_none());
        assert_eq!(tr.duration(), 0.0);
        assert_eq!(tr.length(), 0.0);
    }
}
