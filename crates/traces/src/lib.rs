//! # vcs-traces — trace substrate
//!
//! Substitute for the CRAWDAD GPS datasets (Shanghai [32], Roma [1],
//! EPFL [21]) the paper evaluates on. The game only consumes the
//! origin–destination pairs extracted from the traces, so this crate:
//!
//! * generates seeded synthetic taxi trips with per-city spatial character
//!   ([`synth`]: uniform Shanghai-like, centre-biased Roma-like,
//!   corridor-biased EPFL-like demand);
//! * extracts OD pairs by endpoint snapping ([`od`]), exactly the operation
//!   the paper performs on real dumps;
//! * parses/writes a normalized CSV trace format ([`csv`]) so projected real
//!   dumps can be run through the identical pipeline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod csv;
pub mod model;
pub mod od;
pub mod stats;
pub mod synth;

pub use csv::{load_traces, parse_traces, write_traces, CsvError};
pub use model::{Trace, TracePoint};
pub use od::{
    arrival_epochs, extract_all, extract_all_timed, extract_od, extract_od_timed, snap_to_node,
    OdPair, TimedOd,
};
pub use stats::{trace_stats, Distribution, TraceStats};
pub use synth::{generate_traces, CityProfile, TraceGenConfig};
