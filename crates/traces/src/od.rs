//! Origin–destination extraction: the step the paper performs on the real
//! traces ("we extract the origin and the destination from the traces").

use crate::model::Trace;
use serde::{Deserialize, Serialize};
use vcs_roadnet::{NodeId, RoadGraph};

/// An origin–destination pair snapped to road-network nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OdPair {
    /// Origin node.
    pub origin: NodeId,
    /// Destination node.
    pub destination: NodeId,
}

/// Snaps a planar position to the nearest graph node (linear scan; graphs are
/// a few hundred nodes).
pub fn snap_to_node(graph: &RoadGraph, pos: (f64, f64)) -> NodeId {
    graph
        .nodes()
        .iter()
        .min_by(|a, b| {
            let da = (a.pos.0 - pos.0).powi(2) + (a.pos.1 - pos.1).powi(2);
            let db = (b.pos.0 - pos.0).powi(2) + (b.pos.1 - pos.1).powi(2);
            da.total_cmp(&db)
        })
        .expect("graph has nodes")
        .id
}

/// Extracts the OD pair of one trace, or `None` when the trace has fewer than
/// two points or snaps to a single node (a parked vehicle).
pub fn extract_od(graph: &RoadGraph, trace: &Trace) -> Option<OdPair> {
    let first = trace.first()?;
    let last = trace.last()?;
    if trace.points.len() < 2 {
        return None;
    }
    let origin = snap_to_node(graph, first.pos);
    let destination = snap_to_node(graph, last.pos);
    if origin == destination {
        return None;
    }
    Some(OdPair {
        origin,
        destination,
    })
}

/// Extracts OD pairs from a whole dataset, silently dropping degenerate
/// traces (paper: a fixed number of usable traces is *selected*).
pub fn extract_all(graph: &RoadGraph, traces: &[Trace]) -> Vec<OdPair> {
    traces.iter().filter_map(|t| extract_od(graph, t)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::TracePoint;
    use crate::synth::{generate_traces, CityProfile, TraceGenConfig};
    use vcs_roadnet::{CityConfig, CityKind};

    fn city() -> RoadGraph {
        CityConfig {
            kind: CityKind::Grid {
                nx: 6,
                ny: 6,
                spacing: 1.0,
            },
            seed: 2,
        }
        .generate()
    }

    #[test]
    fn snap_picks_nearest() {
        let g = city();
        let n0 = g.nodes()[14];
        let snapped = snap_to_node(&g, (n0.pos.0 + 0.05, n0.pos.1 - 0.05));
        assert_eq!(snapped, n0.id);
    }

    #[test]
    fn extract_od_from_synthetic_traces() {
        let g = city();
        let cfg = TraceGenConfig {
            profile: CityProfile::Shanghai,
            n_traces: 25,
            seed: 4,
            gps_noise: 0.01,
            sample_interval: 20.0,
            min_trip_fraction: 0.3,
        };
        let traces = generate_traces(&g, &cfg);
        let ods = extract_all(&g, &traces);
        assert_eq!(ods.len(), 25, "all synthetic trips are usable");
        for od in &ods {
            assert_ne!(od.origin, od.destination);
        }
    }

    #[test]
    fn degenerate_traces_dropped() {
        let g = city();
        let parked = Trace::new(
            0,
            vec![
                TracePoint {
                    t: 0.0,
                    pos: (0.0, 0.0),
                },
                TracePoint {
                    t: 10.0,
                    pos: (0.01, 0.01),
                },
            ],
        );
        let single = Trace::new(
            1,
            vec![TracePoint {
                t: 0.0,
                pos: (0.0, 0.0),
            }],
        );
        let empty = Trace::new(2, vec![]);
        assert!(extract_od(&g, &parked).is_none());
        assert!(extract_od(&g, &single).is_none());
        assert!(extract_od(&g, &empty).is_none());
        assert!(extract_all(&g, &[parked, single, empty]).is_empty());
    }
}
