//! Origin–destination extraction: the step the paper performs on the real
//! traces ("we extract the origin and the destination from the traces").

use crate::model::Trace;
use serde::{Deserialize, Serialize};
use vcs_roadnet::{NodeId, RoadGraph};

/// An origin–destination pair snapped to road-network nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OdPair {
    /// Origin node.
    pub origin: NodeId,
    /// Destination node.
    pub destination: NodeId,
}

/// Snaps a planar position to the nearest graph node (linear scan; graphs are
/// a few hundred nodes).
pub fn snap_to_node(graph: &RoadGraph, pos: (f64, f64)) -> NodeId {
    graph
        .nodes()
        .iter()
        .min_by(|a, b| {
            let da = (a.pos.0 - pos.0).powi(2) + (a.pos.1 - pos.1).powi(2);
            let db = (b.pos.0 - pos.0).powi(2) + (b.pos.1 - pos.1).powi(2);
            da.total_cmp(&db)
        })
        .expect("graph has nodes")
        .id
}

/// Extracts the OD pair of one trace, or `None` when the trace has fewer than
/// two points or snaps to a single node (a parked vehicle).
pub fn extract_od(graph: &RoadGraph, trace: &Trace) -> Option<OdPair> {
    let first = trace.first()?;
    let last = trace.last()?;
    if trace.points.len() < 2 {
        return None;
    }
    let origin = snap_to_node(graph, first.pos);
    let destination = snap_to_node(graph, last.pos);
    if origin == destination {
        return None;
    }
    Some(OdPair {
        origin,
        destination,
    })
}

/// Extracts OD pairs from a whole dataset, silently dropping degenerate
/// traces (paper: a fixed number of usable traces is *selected*).
pub fn extract_all(graph: &RoadGraph, traces: &[Trace]) -> Vec<OdPair> {
    traces.iter().filter_map(|t| extract_od(graph, t)).collect()
}

/// An OD pair together with the trace's departure timestamp — the raw
/// material for synthesizing *timed* arrival streams (vehicles enter the
/// platform when their trip starts, not all at once).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimedOd {
    /// The origin–destination pair.
    pub od: OdPair,
    /// Departure time of the underlying trace (seconds, trace clock).
    pub depart: f64,
}

/// Extracts the timed OD pair of one trace (see [`extract_od`]).
pub fn extract_od_timed(graph: &RoadGraph, trace: &Trace) -> Option<TimedOd> {
    let depart = trace.first()?.t;
    extract_od(graph, trace).map(|od| TimedOd { od, depart })
}

/// Extracts timed OD pairs from a whole dataset; same selection (and order)
/// as [`extract_all`], with departure timestamps attached.
pub fn extract_all_timed(graph: &RoadGraph, traces: &[Trace]) -> Vec<TimedOd> {
    traces
        .iter()
        .filter_map(|t| extract_od_timed(graph, t))
        .collect()
}

/// Buckets departure times into `n_epochs` equal-width epochs spanning
/// `[min depart, max depart]`, returning how many departures fall in each —
/// the empirical arrival intensity an online simulation uses to decide how
/// many joins each epoch sees. Returns all-zero buckets for an empty input.
pub fn arrival_epochs(departs: &[f64], n_epochs: usize) -> Vec<usize> {
    let mut buckets = vec![0usize; n_epochs];
    if departs.is_empty() || n_epochs == 0 {
        return buckets;
    }
    let min = departs.iter().copied().fold(f64::INFINITY, f64::min);
    let max = departs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = (max - min).max(f64::MIN_POSITIVE);
    for &t in departs {
        let e = (((t - min) / span) * n_epochs as f64) as usize;
        buckets[e.min(n_epochs - 1)] += 1;
    }
    buckets
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::TracePoint;
    use crate::synth::{generate_traces, CityProfile, TraceGenConfig};
    use vcs_roadnet::{CityConfig, CityKind};

    fn city() -> RoadGraph {
        CityConfig {
            kind: CityKind::Grid {
                nx: 6,
                ny: 6,
                spacing: 1.0,
            },
            seed: 2,
        }
        .generate()
    }

    #[test]
    fn snap_picks_nearest() {
        let g = city();
        let n0 = g.nodes()[14];
        let snapped = snap_to_node(&g, (n0.pos.0 + 0.05, n0.pos.1 - 0.05));
        assert_eq!(snapped, n0.id);
    }

    #[test]
    fn extract_od_from_synthetic_traces() {
        let g = city();
        let cfg = TraceGenConfig {
            profile: CityProfile::Shanghai,
            n_traces: 25,
            seed: 4,
            gps_noise: 0.01,
            sample_interval: 20.0,
            min_trip_fraction: 0.3,
        };
        let traces = generate_traces(&g, &cfg);
        let ods = extract_all(&g, &traces);
        assert_eq!(ods.len(), 25, "all synthetic trips are usable");
        for od in &ods {
            assert_ne!(od.origin, od.destination);
        }
    }

    #[test]
    fn degenerate_traces_dropped() {
        let g = city();
        let parked = Trace::new(
            0,
            vec![
                TracePoint {
                    t: 0.0,
                    pos: (0.0, 0.0),
                },
                TracePoint {
                    t: 10.0,
                    pos: (0.01, 0.01),
                },
            ],
        );
        let single = Trace::new(
            1,
            vec![TracePoint {
                t: 0.0,
                pos: (0.0, 0.0),
            }],
        );
        let empty = Trace::new(2, vec![]);
        assert!(extract_od(&g, &parked).is_none());
        assert!(extract_od(&g, &single).is_none());
        assert!(extract_od(&g, &empty).is_none());
        assert!(extract_all(&g, &[parked, single, empty]).is_empty());
    }

    #[test]
    fn timed_extraction_keeps_departures() {
        let g = city();
        let cfg = TraceGenConfig {
            profile: CityProfile::Shanghai,
            n_traces: 10,
            seed: 9,
            gps_noise: 0.01,
            sample_interval: 20.0,
            min_trip_fraction: 0.3,
        };
        let traces = generate_traces(&g, &cfg);
        let timed = extract_all_timed(&g, &traces);
        let plain = extract_all(&g, &traces);
        assert_eq!(timed.len(), plain.len());
        for (t, p) in timed.iter().zip(&plain) {
            assert_eq!(t.od, *p);
            assert!(t.depart.is_finite());
        }
    }

    #[test]
    fn arrival_epochs_bucket_departures() {
        let departs = [0.0, 1.0, 2.0, 3.0, 10.0];
        let buckets = arrival_epochs(&departs, 5);
        assert_eq!(buckets.iter().sum::<usize>(), departs.len());
        assert_eq!(buckets[0], 2); // 0.0 and 1.0 fall in [0, 2)
        assert_eq!(buckets[4], 1); // the max lands in the last bucket
        assert_eq!(arrival_epochs(&[], 3), vec![0, 0, 0]);
        assert!(arrival_epochs(&departs, 0).is_empty());
        // Identical departures all land in bucket 0.
        assert_eq!(arrival_epochs(&[5.0, 5.0], 2), vec![2, 0]);
    }
}
