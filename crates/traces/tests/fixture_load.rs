//! The real-trace load path, end to end on a committed fixture: CSV file on
//! disk → [`vcs_traces::load_traces`] → OD extraction on a road graph →
//! arrival-epoch bucketing. This is the pipeline the paper applies to the
//! CRAWDAD dumps ("we extract the origin and the destination from the
//! traces"), exercised here on a hand-projected sample so the CSV codec is
//! wired into the load path rather than only round-tripping against itself.

use std::path::{Path, PathBuf};
use vcs_roadnet::{CityConfig, CityKind, RoadGraph};
use vcs_traces::{
    arrival_epochs, extract_all, extract_all_timed, generate_traces, load_traces, snap_to_node,
    write_traces, CityProfile, TraceGenConfig,
};

fn fixture() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
        .join("grid_sample.csv")
}

fn city() -> RoadGraph {
    CityConfig {
        kind: CityKind::Grid {
            nx: 6,
            ny: 6,
            spacing: 1.0,
        },
        seed: 2,
    }
    .generate()
}

#[test]
fn fixture_file_flows_through_the_od_pipeline() {
    let graph = city();
    let traces = load_traces(&fixture()).expect("fixture loads");
    assert_eq!(traces.len(), 5, "five vehicles in the dump");

    // OD extraction drops the parked vehicle (2) and the single ping (3).
    let ods = extract_all(&graph, &traces);
    assert_eq!(ods.len(), 3, "three usable trips");

    // The noisy endpoints snap to the intended grid corners.
    let expect = [
        ((0.0, 0.0), (5.0, 5.0)),
        ((5.0, 0.0), (0.0, 4.0)),
        ((1.0, 3.0), (4.0, 1.0)),
    ];
    for (od, (origin, destination)) in ods.iter().zip(expect) {
        assert_eq!(od.origin, snap_to_node(&graph, origin));
        assert_eq!(od.destination, snap_to_node(&graph, destination));
        assert_ne!(od.origin, od.destination);
    }

    // Timed extraction keeps the dump's departure clock; bucketed arrivals
    // account for every usable trip.
    let timed = extract_all_timed(&graph, &traces);
    assert_eq!(timed.len(), ods.len());
    let departs: Vec<f64> = timed.iter().map(|t| t.depart).collect();
    assert_eq!(departs, vec![0.0, 45.0, 200.0]);
    let buckets = arrival_epochs(&departs, 4);
    assert_eq!(buckets.iter().sum::<usize>(), 3);
    assert_eq!(buckets[0], 2, "the two early departures share epoch 0");
    assert_eq!(buckets[3], 1, "the late trip lands in the last epoch");
}

#[test]
fn synthetic_traces_survive_a_disk_round_trip_into_identical_ods() {
    let graph = city();
    let cfg = TraceGenConfig {
        profile: CityProfile::Shanghai,
        n_traces: 30,
        seed: 4,
        gps_noise: 0.01,
        sample_interval: 20.0,
        min_trip_fraction: 0.3,
    };
    let direct = generate_traces(&graph, &cfg);
    let path = std::env::temp_dir().join(format!("fixture_load_{}.csv", std::process::id()));
    std::fs::write(&path, write_traces(&direct)).unwrap();
    let loaded = load_traces(&path).expect("self-written dump loads");
    let _ = std::fs::remove_file(&path);
    // The disk round trip is invisible to the OD pipeline.
    assert_eq!(extract_all(&graph, &loaded), extract_all(&graph, &direct));
}

#[test]
fn load_errors_carry_the_path_and_line() {
    let path = std::env::temp_dir().join(format!("fixture_load_bad_{}.csv", std::process::id()));
    std::fs::write(&path, "0,1.0,2.0\n").unwrap();
    let err = load_traces(&path).expect_err("three fields must not parse");
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    let msg = err.to_string();
    assert!(msg.contains("fixture_load_bad"), "path missing: {msg}");
    assert!(msg.contains("line 1"), "line missing: {msg}");
    let _ = std::fs::remove_file(&path);
    assert!(load_traces(Path::new("/nonexistent/trace.csv")).is_err());
}
