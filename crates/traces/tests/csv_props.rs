//! Property-based tests of the trace CSV codec and the trace model.

use proptest::prelude::*;
use vcs_traces::{parse_traces, write_traces, Trace, TracePoint};

fn arb_trace(vehicle_id: u32) -> impl Strategy<Value = Trace> {
    prop::collection::vec((0.0f64..10_000.0, -50.0f64..50.0, -50.0f64..50.0), 1..20).prop_map(
        move |mut raw| {
            // Sort timestamps so the trace is well-formed.
            raw.sort_by(|a, b| a.0.total_cmp(&b.0));
            Trace::new(
                vehicle_id,
                raw.into_iter()
                    .map(|(t, x, y)| TracePoint { t, pos: (x, y) })
                    .collect(),
            )
        },
    )
}

fn arb_traces() -> impl Strategy<Value = Vec<Trace>> {
    prop::collection::vec(any::<u32>(), 0..6).prop_flat_map(|ids| {
        // Distinct consecutive vehicle ids so parsing groups identically.
        let mut ids = ids;
        ids.dedup();
        ids.into_iter()
            .enumerate()
            .map(|(i, _)| arb_trace(i as u32))
            .collect::<Vec<_>>()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// write → parse is the identity on well-formed trace sets.
    #[test]
    fn csv_roundtrip(traces in arb_traces()) {
        let text = write_traces(&traces);
        let parsed = parse_traces(&text).expect("self-written CSV parses");
        prop_assert_eq!(parsed, traces);
    }

    /// The parser never panics on arbitrary input — it returns an error or a
    /// well-formed trace set (timestamps non-decreasing per trace).
    #[test]
    fn parser_total_on_arbitrary_text(text in "\\PC{0,400}") {
        if let Ok(traces) = parse_traces(&text) {
            for trace in traces {
                prop_assert!(trace.points.windows(2).all(|w| w[0].t <= w[1].t));
            }
        }
    }

    /// Trace length is non-negative and zero only for ≤ 1 distinct points.
    #[test]
    fn trace_length_nonnegative(trace in arb_trace(0)) {
        prop_assert!(trace.length() >= 0.0);
        prop_assert!(trace.duration() >= 0.0);
    }
}
