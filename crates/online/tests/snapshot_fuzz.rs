//! Corruption fuzzing for the [`Snapshot`] byte codec: arbitrary bit flips,
//! truncations, and pure garbage must never panic the decoder and must
//! never be accepted silently — every `Ok` has passed full `Game::new` +
//! `validate_profile` re-validation, so it is restorable by construction.

use bytes::Bytes;
use proptest::prelude::*;
use vcs_core::ids::{RouteId, TaskId, UserId};
use vcs_core::{Engine, Game, PlatformParams, Profile, Route, Task, User, UserPrefs};
use vcs_online::Snapshot;

/// A seeded random engine to snapshot — same family as the core generators.
fn random_engine(seed: u64) -> Engine<'static> {
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let n_tasks = rng.random_range(1..=8usize);
    let n_users = rng.random_range(1..=8usize);
    let tasks: Vec<Task> = (0..n_tasks)
        .map(|k| {
            let id = TaskId::from_index(k);
            let base = rng.random_range(10.0..20.0);
            let mu = rng.random_range(0.0..1.0);
            if rng.random_range(0..2u8) == 0 {
                Task::new(id, base, mu)
            } else {
                Task::at(
                    id,
                    base,
                    mu,
                    (rng.random_range(-1.0..1.0), rng.random_range(-1.0..1.0)),
                )
            }
        })
        .collect();
    let users: Vec<User> = (0..n_users)
        .map(|i| {
            let n_routes = rng.random_range(1..=4usize);
            let routes = (0..n_routes)
                .map(|r| {
                    let mut covered: Vec<TaskId> = (0..rng.random_range(0..5usize))
                        .map(|_| TaskId::from_index(rng.random_range(0..n_tasks)))
                        .collect();
                    covered.sort_unstable();
                    covered.dedup();
                    Route::new(
                        RouteId::from_index(r),
                        covered,
                        rng.random_range(0.0..5.0),
                        rng.random_range(0.0..5.0),
                    )
                })
                .collect();
            User::new(
                UserId::from_index(i),
                UserPrefs::new(
                    rng.random_range(0.1..0.9),
                    rng.random_range(0.1..0.9),
                    rng.random_range(0.1..0.9),
                ),
                routes,
            )
        })
        .collect();
    let choices: Vec<RouteId> = users
        .iter()
        .map(|u| RouteId::from_index(rng.random_range(0..u.routes.len())))
        .collect();
    let game = Game::with_paper_bounds(
        tasks,
        users,
        PlatformParams::new(rng.random_range(0.1..0.8), rng.random_range(0.1..0.8)),
    )
    .expect("generated instance is valid");
    let profile = Profile::new(&game, choices);
    Engine::new_owned(game, profile)
}

/// Decodes a (possibly mangled) frame and checks the codec's contract: no
/// panic ever, and any `Ok` is a fully re-validated, restorable snapshot.
fn assert_no_silent_acceptance(frame: Bytes) -> Result<(), TestCaseError> {
    if let Ok(decoded) = Snapshot::decode(frame) {
        prop_assert!(
            decoded.game.validate_profile(&decoded.choices).is_ok(),
            "decode returned a snapshot whose profile does not re-validate"
        );
        // Restoring must therefore succeed and yield a live engine; the
        // validated parameters guarantee a finite potential.
        let engine = decoded.restore();
        prop_assert!(engine.potential().is_finite());
    }
    Ok(())
}

proptest! {
    /// Random bit flips anywhere in the frame: decode never panics and
    /// never silently accepts an invalid game.
    #[test]
    fn bit_flips_never_panic_or_slip_through(
        seed in any::<u64>(),
        flips in prop::collection::vec((any::<usize>(), 0u8..8), 1..16),
    ) {
        let engine = random_engine(seed);
        let frame = Snapshot::capture(&engine).encode();
        let mut bytes = frame.as_ref().to_vec();
        for (index, bit) in flips {
            let at = index % bytes.len();
            bytes[at] ^= 1 << bit;
        }
        assert_no_silent_acceptance(Bytes::from(bytes))?;
    }

    /// Truncation at an arbitrary cut point: a strict prefix is always
    /// rejected (the decoder needs every byte it reads), and never panics.
    #[test]
    fn truncations_are_always_rejected(
        seed in any::<u64>(),
        cut in any::<usize>(),
    ) {
        let engine = random_engine(seed);
        let frame = Snapshot::capture(&engine).encode();
        let cut = cut % frame.len(); // strict prefix: 0..len-1
        prop_assert!(
            Snapshot::decode(frame.slice(0..cut)).is_err(),
            "a {cut}-byte prefix of a {}-byte frame decoded", frame.len()
        );
    }

    /// Combined mangle: flip bits *and* truncate. Anything can happen to
    /// the verdict, but never a panic and never silent acceptance.
    #[test]
    fn flip_then_truncate_never_panics(
        seed in any::<u64>(),
        flips in prop::collection::vec((any::<usize>(), 0u8..8), 0..8),
        cut in any::<usize>(),
    ) {
        let engine = random_engine(seed);
        let frame = Snapshot::capture(&engine).encode();
        let mut bytes = frame.as_ref().to_vec();
        for (index, bit) in flips {
            let at = index % bytes.len();
            bytes[at] ^= 1 << bit;
        }
        let cut = cut % (bytes.len() + 1); // 0..=len: full frame allowed
        bytes.truncate(cut);
        assert_no_silent_acceptance(Bytes::from(bytes))?;
    }

    /// Pure garbage bytes (with and without a valid-looking header) never
    /// panic the decoder.
    #[test]
    fn garbage_never_panics(
        mut bytes in prop::collection::vec(any::<u8>(), 0..512),
        with_header in any::<bool>(),
    ) {
        if with_header && bytes.len() >= 5 {
            bytes[0..4].copy_from_slice(&0x5643_534Fu32.to_be_bytes());
            bytes[4] = 1;
        }
        assert_no_silent_acceptance(Bytes::from(bytes))?;
    }
}
