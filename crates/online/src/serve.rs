//! The serving-mode request executor: one live game answering an
//! open-ended stream of Join / Leave / BestRespond requests.
//!
//! [`crate::OnlineSim`] runs a *closed* experiment — a pre-synthesized
//! churn stream, a fixed number of epochs, a report at the end. A deployed
//! platform instead holds a long-lived game and answers requests as they
//! arrive, with no known end. [`ServeCore`] is that executor, factored out
//! of the epoch scheduler so the two share the exact same dynamics
//! ([`compute_request`](crate::sim) / [`drive`](crate::sim), i.e. the SUU
//! rule of Alg. 2 priced from the incremental engine's caches):
//!
//! * **Join** — the core synthesizes a paper-range vehicle spec from its
//!   own seeded RNG (the wire request carries only a shard hint, so frames
//!   stay tiny and a run is reproducible from `(seed, request stream)`),
//!   admits it via [`Engine::add_user`], and re-converges.
//! * **Leave** — [`Engine::remove_user`], then re-converge.
//! * **BestRespond** — evaluate the named user's standing request under
//!   the configured [`OnlineAlgorithm`]; apply it if improving, then
//!   re-converge.
//!
//! Every mutating request ends in a bounded re-convergence (the serving
//! layer times it under [`SpanKind::ConvergeWait`]), so between requests
//! the game sits at a Nash equilibrium of its *current* user set — the
//! same per-epoch contract as the scheduler, at per-request granularity.
//! The slots each convergence consumed are the request's cost; the running
//! total backs the `/metrics` sustained-slots-per-second gauge.
//!
//! One `ServeCore` is single-threaded by design: the sharded server gives
//! each shard lane its own core (its own game, RNG and engine) and routes
//! requests by shard id, mirroring the per-shard games of the deployment
//! layer.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};
use vcs_core::ids::{RouteId, TaskId, UserId};
use vcs_core::{Engine, Game, GameError, PlatformParams, Profile, Task, User};
use vcs_obs::{Obs, SpanKind};

use crate::sim::{compute_request, drive, OnlineAlgorithm};
use crate::stream::{synthetic_spec, synthetic_task};

/// Shape of one serving core (one shard lane's game).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServeCoreConfig {
    /// Crowdsensing tasks in this shard's deployment (fixed for the core's
    /// lifetime — requests move vehicles, not tasks).
    pub n_tasks: usize,
    /// Vehicles present before the first request.
    pub initial_users: usize,
    /// Seed for the initial game, every synthesized Join spec and the
    /// scheduler's uniform picks. Two cores with the same seed and request
    /// stream produce identical trajectories.
    pub seed: u64,
    /// Improvement rule granted per decision slot.
    pub algo: OnlineAlgorithm,
    /// Re-convergence slot budget per request. A request that exhausts it
    /// leaves residual improvers for the next request to mop up (reported
    /// via [`ServeCore::converged`]); Theorem 4's bound makes this rare at
    /// sensible budgets.
    pub max_slots_per_request: usize,
}

impl Default for ServeCoreConfig {
    fn default() -> Self {
        ServeCoreConfig {
            n_tasks: 40,
            initial_users: 64,
            seed: 7,
            algo: OnlineAlgorithm::Dgrn,
            max_slots_per_request: 4096,
        }
    }
}

/// A long-lived game plus the standing-request cache, re-equilibrated
/// after every mutating request. See the module docs for the semantics.
#[derive(Debug)]
pub struct ServeCore {
    engine: Engine<'static>,
    requests: Vec<Option<RouteId>>,
    /// Local liveness mirror (the engine tracks this too, but only exposes
    /// an iterator — the mirror gives O(1) validation per request).
    active: Vec<bool>,
    algo: OnlineAlgorithm,
    rng: StdRng,
    n_tasks: usize,
    max_slots_per_request: usize,
    obs: Obs,
    slots_total: u64,
    converged: bool,
}

impl ServeCore {
    /// Builds the core: a seed-deterministic paper-range game of
    /// `initial_users` vehicles over `n_tasks` tasks, converged to its
    /// first equilibrium (that initial convergence is charged to
    /// [`slots_total`](Self::slots_total) like any request).
    pub fn new(config: ServeCoreConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let tasks: Vec<Task> = (0..config.n_tasks)
            .map(|k| synthetic_task(TaskId::from_index(k), &mut rng))
            .collect();
        let users: Vec<User> = (0..config.initial_users)
            .map(|i| {
                let spec = synthetic_spec(config.n_tasks, &mut rng);
                User::new(UserId::from_index(i), spec.prefs, spec.routes)
            })
            .collect();
        let game = Game::with_paper_bounds(tasks, users, PlatformParams::new(0.4, 0.4))
            .expect("synthetic parameters are in paper range");
        let choices: Vec<RouteId> = game
            .users()
            .iter()
            .map(|u| RouteId::from_index(rng.random_range(0..u.routes.len())))
            .collect();
        let profile =
            Profile::try_new(&game, choices).expect("random initial choices index each route set");
        let mut core = ServeCore {
            engine: Engine::new_owned(game, profile),
            requests: vec![None; config.initial_users],
            active: vec![true; config.initial_users],
            algo: config.algo,
            rng,
            n_tasks: config.n_tasks,
            max_slots_per_request: config.max_slots_per_request,
            obs: Obs::disabled(),
            slots_total: 0,
            converged: true,
        };
        core.converge();
        core
    }

    /// Installs an observability handle: the engine's per-commit events,
    /// the scheduler's refresh/slot events, and the `ConvergeWait` span
    /// around each request's re-convergence.
    pub fn set_obs(&mut self, obs: Obs) {
        self.engine.set_obs(obs.clone());
        self.obs = obs;
    }

    /// Drives the engine back to a fixed point (or the per-request
    /// budget), returning the slots consumed.
    fn converge(&mut self) -> u64 {
        let span = self.obs.span(SpanKind::ConvergeWait);
        let (slots, converged) = drive(
            &mut self.engine,
            &mut self.requests,
            self.algo,
            &mut self.rng,
            self.max_slots_per_request,
            &self.obs,
        );
        if slots > 0 {
            span.finish();
        } else {
            span.cancel();
        }
        self.converged = converged;
        self.slots_total += slots as u64;
        slots as u64
    }

    /// Admits one synthesized paper-range vehicle (uniform initial route)
    /// and re-converges. Returns the new local user id and the slots the
    /// request consumed.
    pub fn join(&mut self) -> (UserId, u64) {
        let spec = synthetic_spec(self.n_tasks, &mut self.rng);
        let initial = RouteId::from_index(self.rng.random_range(0..spec.routes.len()));
        let user = self
            .engine
            .add_user(spec.prefs, spec.routes, initial)
            .expect("synthesized specs are paper-range valid");
        debug_assert_eq!(user.index(), self.requests.len());
        self.requests.push(None);
        self.active.push(true);
        let slots = self.converge();
        (user, slots)
    }

    /// Removes `user` and re-converges, returning the slots consumed.
    ///
    /// # Errors
    ///
    /// [`GameError::UnknownUser`] when `user` never joined or already left.
    pub fn leave(&mut self, user: UserId) -> Result<u64, GameError> {
        if !self.is_active(user) {
            return Err(GameError::UnknownUser { user });
        }
        self.engine.remove_user(user)?;
        self.requests[user.index()] = None;
        self.active[user.index()] = false;
        Ok(self.converge())
    }

    /// Evaluates `user`'s standing request under the configured rule,
    /// applies it when improving, and re-converges. Returns `(moved,
    /// slots)`: `moved` is whether the user had an improving route (at an
    /// equilibrium it never does — the value reports the game's state to
    /// the requester, it is not an error).
    ///
    /// # Errors
    ///
    /// [`GameError::UnknownUser`] when `user` never joined or already left.
    pub fn best_respond(&mut self, user: UserId) -> Result<(bool, u64), GameError> {
        if !self.is_active(user) {
            return Err(GameError::UnknownUser { user });
        }
        match compute_request(&self.engine, self.algo, user, &mut self.rng) {
            Some(route) => {
                self.engine.apply_move(user, route);
                self.requests[user.index()] = None;
                Ok((true, self.converge()))
            }
            None => Ok((false, 0)),
        }
    }

    /// Whether `user` is currently on the platform.
    pub fn is_active(&self, user: UserId) -> bool {
        self.active.get(user.index()).copied().unwrap_or(false)
    }

    /// Vehicles currently on the platform.
    pub fn users(&self) -> usize {
        self.engine.active_count()
    }

    /// Decision slots consumed since construction (including the initial
    /// convergence).
    pub fn slots_total(&self) -> u64 {
        self.slots_total
    }

    /// ϕ of the current game (the engine's incrementally maintained sum).
    pub fn phi(&self) -> f64 {
        self.engine.potential()
    }

    /// Whether the last re-convergence reached a fixed point within the
    /// per-request budget.
    pub fn converged(&self) -> bool {
        self.converged
    }

    /// The live engine (read access — e.g. for equilibrium checks).
    pub fn engine(&self) -> &Engine<'static> {
        &self.engine
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcs_core::is_nash;

    fn nash(core: &ServeCore) -> bool {
        is_nash(core.engine().game(), core.engine().profile())
    }

    #[test]
    fn requests_leave_the_game_at_equilibrium() {
        let mut core = ServeCore::new(ServeCoreConfig {
            n_tasks: 12,
            initial_users: 24,
            seed: 11,
            ..ServeCoreConfig::default()
        });
        assert!(core.converged());
        assert!(nash(&core), "initial convergence ends at Nash");
        assert_eq!(core.users(), 24);

        let (user, _) = core.join();
        assert_eq!(user.index(), 24);
        assert!(core.is_active(user));
        assert_eq!(core.users(), 25);
        assert!(nash(&core), "post-join re-convergence ends at Nash");

        let slots = core.leave(UserId::from_index(3)).unwrap();
        assert_eq!(core.users(), 24);
        assert!(nash(&core), "post-leave re-convergence ends at Nash");
        // The departure perturbs only a neighbourhood; the budget is ample.
        assert!(slots as usize <= core.max_slots_per_request);

        // At equilibrium no user can improve.
        let (moved, slots) = core.best_respond(user).unwrap();
        assert!(!moved);
        assert_eq!(slots, 0);
    }

    #[test]
    fn invalid_users_are_rejected_not_panicked() {
        let mut core = ServeCore::new(ServeCoreConfig {
            n_tasks: 8,
            initial_users: 6,
            seed: 3,
            ..ServeCoreConfig::default()
        });
        let ghost = UserId::from_index(999);
        assert!(matches!(
            core.leave(ghost),
            Err(GameError::UnknownUser { .. })
        ));
        assert!(matches!(
            core.best_respond(ghost),
            Err(GameError::UnknownUser { .. })
        ));
        // Double-leave: the second is a reject, not a panic.
        let gone = UserId::from_index(2);
        core.leave(gone).unwrap();
        assert!(matches!(
            core.leave(gone),
            Err(GameError::UnknownUser { .. })
        ));
        assert!(matches!(
            core.best_respond(gone),
            Err(GameError::UnknownUser { .. })
        ));
    }

    #[test]
    fn same_seed_and_stream_reproduce_the_trajectory() {
        let config = ServeCoreConfig {
            n_tasks: 10,
            initial_users: 16,
            seed: 42,
            ..ServeCoreConfig::default()
        };
        let run = |mut core: ServeCore| {
            let mut log = Vec::new();
            for i in 0..8u64 {
                match i % 3 {
                    0 => {
                        let (u, s) = core.join();
                        log.push((u.index() as u64, s));
                    }
                    1 => {
                        let s = core.leave(UserId::from_index((i % 5) as usize)).unwrap();
                        log.push((u64::MAX, s));
                    }
                    _ => {
                        let target = UserId::from_index(core.requests.len() - 1);
                        let (m, s) = core.best_respond(target).unwrap();
                        log.push((u64::from(m), s));
                    }
                }
            }
            (log, core.phi(), core.slots_total())
        };
        let a = run(ServeCore::new(config));
        let b = run(ServeCore::new(config));
        assert_eq!(a.0, b.0);
        assert_eq!(a.1, b.1);
        assert_eq!(a.2, b.2);
        assert!(a.2 > 0, "the run consumed decision slots");
    }

    #[test]
    fn phi_rises_within_each_request_window() {
        // ϕ is redefined by churn, but each re-convergence only applies
        // strictly improving moves: after best_respond reports moved, ϕ
        // exceeds the pre-move value of the *same* game.
        let mut core = ServeCore::new(ServeCoreConfig {
            n_tasks: 10,
            initial_users: 20,
            seed: 5,
            ..ServeCoreConfig::default()
        });
        // Perturb, then find some user with an improving move.
        for _ in 0..4 {
            core.join();
        }
        let before = core.phi();
        let mut moved_any = false;
        for i in 0..core.requests.len() {
            let user = UserId::from_index(i);
            if !core.is_active(user) {
                continue;
            }
            if let Ok((true, _)) = core.best_respond(user) {
                moved_any = true;
                assert!(
                    core.phi() >= before,
                    "ϕ never drops within a fixed user set"
                );
                break;
            }
        }
        // Post-join the game was already re-converged, so finding no
        // improver is the expected outcome; the assertion above only fires
        // when a move existed.
        let _ = moved_any;
    }
}
