//! Churn stream synthesis: timestamped batches of [`ChurnEvent`]s that
//! perturb a live game between re-equilibration epochs.
//!
//! Two generators are provided:
//!
//! * [`synthetic_stream`] — paper-range random games of arbitrary size
//!   (mirrors the `vcs-bench` synthetic generator's parameter ranges), with
//!   a fixed per-epoch churn rate;
//! * [`trace_stream`] — arrivals synthesized from a [`UserPool`]'s
//!   trace-derived commuters: the *timing* of joins follows the empirical
//!   departure-time distribution of the pool (bucketed into epochs via
//!   [`vcs_traces::arrival_epochs`]), and each join's route set comes from
//!   [`UserPool::sample_arrival`], i.e. the same OD → recommended-routes →
//!   coverage pipeline as the static scenarios.
//!
//! Both generators do their own id accounting — joins take engine ids in
//! append-only order, so a generated `Leave { user }` always refers to a
//! user that is active at that point of the stream. This is what lets the
//! same stream drive both the engine-level [`crate::OnlineSim`] and the
//! message-passing runtimes (`vcs_runtime::run_sync_churn` /
//! `run_threaded_churn`) without translation.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};
use vcs_core::ids::{RouteId, TaskId, UserId};
use vcs_core::{ChurnEvent, Game, PlatformParams, Route, Task, User, UserPrefs, UserSpec};
use vcs_scenario::{ScenarioConfig, ScenarioParams, UserPool};
use vcs_traces::arrival_epochs;

/// Shape of a synthesized churn stream.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StreamConfig {
    /// Users present before the first epoch.
    pub initial_users: usize,
    /// Number of crowdsensing tasks (fixed for the whole stream — churn
    /// moves users, not the task deployment).
    pub n_tasks: usize,
    /// Number of churn epochs (batches of events between re-equilibrations).
    pub epochs: usize,
    /// Fraction of the active population replaced per epoch. Each epoch
    /// pairs every arrival with a departure, so the population stays at
    /// `initial_users` throughout.
    pub churn_rate: f64,
    /// Seed for both the initial game and the stream.
    pub seed: u64,
}

/// A batched churn stream: `batches[e]` holds the events arriving between
/// epoch `e`'s re-equilibration and the previous one. Events within a batch
/// are ordered; leaves always name users active at that point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EventStream {
    /// One batch of events per epoch.
    pub batches: Vec<Vec<ChurnEvent>>,
}

impl EventStream {
    /// Number of epochs.
    pub fn epochs(&self) -> usize {
        self.batches.len()
    }

    /// Total number of `Join` events across all epochs.
    pub fn join_count(&self) -> usize {
        self.batches
            .iter()
            .flatten()
            .filter(|e| matches!(e, ChurnEvent::Join { .. }))
            .count()
    }

    /// Total number of `Leave` events across all epochs.
    pub fn leave_count(&self) -> usize {
        self.batches
            .iter()
            .flatten()
            .filter(|e| matches!(e, ChurnEvent::Leave { .. }))
            .count()
    }
}

/// One paper-range task: `a_k ∈ [10, 20)`, `μ_k ∈ [0, 1)`.
pub(crate) fn synthetic_task(id: TaskId, rng: &mut StdRng) -> Task {
    Task::new(id, rng.random_range(10.0..20.0), rng.random_range(0.0..1.0))
}

/// One paper-range user spec: 2–4 routes of 1–4 distinct tasks each, detour
/// in `[0, 5)`, congestion in `[0, 4)`, weights in `[0.1, 0.9)` — the same
/// ranges as the `vcs-bench` synthetic generator, so online instances are
/// statistically comparable to the engine benchmarks.
pub(crate) fn synthetic_spec(n_tasks: usize, rng: &mut StdRng) -> UserSpec {
    let n_routes = rng.random_range(2..=4usize);
    let routes = (0..n_routes)
        .map(|r| {
            let mut covered: Vec<TaskId> = (0..rng.random_range(1..5usize))
                .map(|_| TaskId::from_index(rng.random_range(0..n_tasks)))
                .collect();
            covered.sort_unstable();
            covered.dedup();
            Route::new(
                RouteId::from_index(r),
                covered,
                rng.random_range(0.0..5.0),
                rng.random_range(0.0..4.0),
            )
        })
        .collect();
    let prefs = UserPrefs::new(
        rng.random_range(0.1..0.9),
        rng.random_range(0.1..0.9),
        rng.random_range(0.1..0.9),
    );
    UserSpec::new(prefs, routes)
}

/// Synthesizes an initial game plus a churn stream, entirely from the seed.
///
/// Each epoch replaces `max(1, round(churn_rate · active))` users: events
/// alternate `Leave` (uniform over the tracked active set) and `Join` (fresh
/// paper-range spec, uniform initial route), so a batch exercises mixed
/// orderings rather than all-leaves-then-all-joins.
pub fn synthetic_stream(config: &StreamConfig) -> (Game, EventStream) {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let tasks: Vec<Task> = (0..config.n_tasks)
        .map(|k| synthetic_task(TaskId::from_index(k), &mut rng))
        .collect();
    let users: Vec<User> = (0..config.initial_users)
        .map(|i| {
            let spec = synthetic_spec(config.n_tasks, &mut rng);
            User::new(UserId::from_index(i), spec.prefs, spec.routes)
        })
        .collect();
    let game = Game::with_paper_bounds(tasks, users, PlatformParams::new(0.4, 0.4))
        .expect("synthetic parameters are in paper range");

    // Id accounting mirrors the engine: ids are append-only, never reused.
    let mut active: Vec<UserId> = (0..config.initial_users).map(UserId::from_index).collect();
    let mut next = config.initial_users;
    let mut batches = Vec::with_capacity(config.epochs);
    for _ in 0..config.epochs {
        let n_churn = ((config.churn_rate * active.len() as f64).round() as usize).max(1);
        let mut batch = Vec::with_capacity(2 * n_churn);
        for _ in 0..n_churn {
            if !active.is_empty() {
                let idx = rng.random_range(0..active.len());
                batch.push(ChurnEvent::Leave {
                    user: active.swap_remove(idx),
                });
            }
            let spec = synthetic_spec(config.n_tasks, &mut rng);
            let initial = RouteId::from_index(rng.random_range(0..spec.routes.len()));
            batch.push(ChurnEvent::Join { spec, initial });
            active.push(UserId::from_index(next));
            next += 1;
        }
        batches.push(batch);
    }
    (game, EventStream { batches })
}

/// Builds an initial game from a trace-derived pool plus a churn stream
/// whose arrivals follow the pool's empirical departure times.
///
/// The total arrival count is `round(churn_rate · initial_users · epochs)`
/// (at least one per epoch on average); each arrival's *epoch* comes from
/// bucketing a sampled pool departure time with [`arrival_epochs`], so rush
/// hours in the traces become join-heavy epochs. Every arrival is paired
/// with a departure sampled uniformly from the active set, keeping the
/// population near `initial_users`.
///
/// # Panics
///
/// Panics when the pool is empty or holds fewer commuters than
/// `config.initial_users` (propagated from [`UserPool::instantiate`]).
pub fn trace_stream(
    pool: &UserPool,
    params: &ScenarioParams,
    config: &StreamConfig,
) -> (Game, EventStream) {
    let game = pool.instantiate(&ScenarioConfig {
        n_users: config.initial_users,
        n_tasks: config.n_tasks,
        seed: config.seed,
        params: *params,
    });
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x00C0_FFEE);
    let total = ((config.churn_rate * config.initial_users as f64 * config.epochs as f64).round()
        as usize)
        .max(config.epochs);
    let departs: Vec<f64> = (0..total)
        .map(|_| pool.users[rng.random_range(0..pool.len())].depart)
        .collect();
    let joins_per_epoch = arrival_epochs(&departs, config.epochs);

    let tasks = game.tasks().to_vec();
    let mut active: Vec<UserId> = (0..config.initial_users).map(UserId::from_index).collect();
    let mut next = config.initial_users;
    let mut batches = Vec::with_capacity(config.epochs);
    for &n_joins in &joins_per_epoch {
        let mut batch = Vec::with_capacity(2 * n_joins);
        for _ in 0..n_joins {
            if !active.is_empty() {
                let idx = rng.random_range(0..active.len());
                batch.push(ChurnEvent::Leave {
                    user: active.swap_remove(idx),
                });
            }
            let spec = pool.sample_arrival(&tasks, params, &mut rng);
            let initial = RouteId::from_index(rng.random_range(0..spec.routes.len()));
            batch.push(ChurnEvent::Join { spec, initial });
            active.push(UserId::from_index(next));
            next += 1;
        }
        batches.push(batch);
    }
    (game, EventStream { batches })
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcs_core::{apply_churn, Engine, Profile};

    fn apply_all(game: &Game, stream: &EventStream) {
        let choices = vec![RouteId(0); game.user_count()];
        let profile = Profile::try_new(game, choices).expect("route 0 exists for every user");
        let mut engine = Engine::new(game, profile);
        for event in stream.batches.iter().flatten() {
            apply_churn(&mut engine, event).expect("generated streams are valid");
        }
    }

    #[test]
    fn synthetic_stream_is_valid_and_deterministic() {
        let config = StreamConfig {
            initial_users: 12,
            n_tasks: 8,
            epochs: 4,
            churn_rate: 0.25,
            seed: 9,
        };
        let (game, stream) = synthetic_stream(&config);
        assert_eq!(game.user_count(), 12);
        assert_eq!(stream.epochs(), 4);
        // 25% of 12 → 3 replacements per epoch, population held constant.
        assert_eq!(stream.join_count(), 12);
        assert_eq!(stream.leave_count(), 12);
        apply_all(&game, &stream);

        let (game2, stream2) = synthetic_stream(&config);
        assert_eq!(game, game2);
        assert_eq!(stream, stream2);
    }

    #[test]
    fn synthetic_stream_survives_tiny_population() {
        let config = StreamConfig {
            initial_users: 1,
            n_tasks: 3,
            epochs: 5,
            churn_rate: 1.0,
            seed: 3,
        };
        let (game, stream) = synthetic_stream(&config);
        apply_all(&game, &stream);
        assert_eq!(stream.join_count(), 5);
    }

    #[test]
    fn trace_stream_buckets_arrivals_by_departure() {
        let pool = UserPool::build(vcs_scenario::Dataset::Shanghai, 77);
        let params = ScenarioParams::default();
        let config = StreamConfig {
            initial_users: 10,
            n_tasks: 6,
            epochs: 3,
            churn_rate: 0.3,
            seed: 5,
        };
        let (game, stream) = trace_stream(&pool, &params, &config);
        assert_eq!(game.user_count(), 10);
        assert_eq!(stream.epochs(), 3);
        // round(0.3 · 10 · 3) = 9 arrivals distributed over the epochs.
        assert_eq!(stream.join_count(), 9);
        assert_eq!(stream.leave_count(), 9);
        apply_all(&game, &stream);

        let (_, stream2) = trace_stream(&pool, &params, &config);
        assert_eq!(stream, stream2);
    }
}
