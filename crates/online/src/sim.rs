//! The epoch scheduler: warm-start re-equilibration of a live game under
//! churn, with a cold-restart baseline and a from-scratch equivalence replay
//! per epoch.
//!
//! ## Dynamic-game semantics
//!
//! Each churn batch *redefines* the game — and with it the potential
//! function ϕ, which is a function of the current user set. Within an epoch
//! the dynamics are the paper's: every accepted update strictly increases ϕ
//! (Theorem 2), so each epoch terminates at a Nash equilibrium of the
//! *current* game. Across epochs no such monotonicity exists: a departure
//! removes that user's terms from ϕ and a join adds new ones, so the
//! reported per-epoch ϕ trajectory may rise or fall between epochs. See
//! DESIGN.md §11.
//!
//! ## Warm vs cold
//!
//! The warm path keeps the incremental [`Engine`] alive across batches:
//! churn dirties only the affected users, so re-convergence touches the
//! neighbourhood of the perturbation. The cold baseline rebuilds an engine
//! from the materialized post-churn game with a fresh random profile — what
//! a platform without churn support would do — and pays the full
//! convergence cost again. The *equivalence replay* additionally retraces
//! the warm trajectory on a from-scratch engine (same standing requests,
//! same RNG) and checks the fixed points agree on ϕ within
//! [`PHI_TOLERANCE`], validating the warm engine's incrementally maintained
//! caches across arbitrarily long churn histories.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use vcs_core::ids::{RouteId, UserId};
use vcs_core::{apply_churn, is_nash, Engine, Game, Profile};
use vcs_obs::{
    Event, FanoutSubscriber, LiveMonitor, Obs, ResponseKind, SpanKind, Subscriber, WatchdogConfig,
    WatchdogSubscriber,
};

use crate::stream::EventStream;

/// Absolute tolerance for the warm-vs-replay fixed-point ϕ agreement. The
/// warm value is the engine's compensated running sum maintained across the
/// whole churn history; the replay value is a fresh recomputation.
pub const PHI_TOLERANCE: f64 = 1e-9;

/// Which improvement rule the online scheduler grants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OnlineAlgorithm {
    /// Best-response: each improving user requests a uniformly random member
    /// of its best route set `Δ_i(t)` (DGRN, Alg. 1).
    Dgrn,
    /// Better-response: each improving user requests a uniformly random
    /// strictly improving route (BRUN ablation).
    Brun,
}

impl OnlineAlgorithm {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            OnlineAlgorithm::Dgrn => "DGRN",
            OnlineAlgorithm::Brun => "BRUN",
        }
    }
}

/// Per-epoch measurements of one churn batch and its re-convergence.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpochReport {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Users admitted this epoch.
    pub joins: usize,
    /// Users departed this epoch.
    pub leaves: usize,
    /// Active population after the batch.
    pub active_users: usize,
    /// Decision slots the warm engine needed to re-converge.
    pub warm_slots: usize,
    /// Decision slots the cold restart needed from a random profile.
    pub cold_slots: usize,
    /// Wall time of the warm path (apply events + re-converge), seconds.
    pub warm_secs: f64,
    /// Wall time of the cold path (rebuild engine + converge), seconds.
    pub cold_secs: f64,
    /// ϕ at the warm fixed point (incrementally maintained running sum).
    pub phi_warm: f64,
    /// ϕ recomputed from scratch at the replayed warm fixed point.
    pub phi_replay: f64,
    /// ϕ at the cold restart's fixed point (may differ from `phi_warm`:
    /// distinct Nash equilibria of the same game).
    pub phi_cold: f64,
    /// Whether `|phi_warm − phi_replay| ≤ PHI_TOLERANCE`.
    pub phi_agrees: bool,
    /// Total user profit `Σ_i P_i` at the warm fixed point.
    pub profit: f64,
}

impl EpochReport {
    /// Warm-start advantage in decision slots (`cold / warm`; ∞ when the
    /// warm path needed none).
    pub fn slot_speedup(&self) -> f64 {
        self.cold_slots as f64 / (self.warm_slots as f64).max(1e-12)
    }
}

/// The full outcome of driving one stream through [`OnlineSim::run`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OnlineReport {
    /// Slots of the initial (pre-churn) convergence from the random profile.
    pub initial_slots: usize,
    /// One entry per churn epoch.
    pub epochs: Vec<EpochReport>,
    /// Whether every warm and cold run reached a fixed point within the
    /// slot budget.
    pub converged: bool,
}

impl OnlineReport {
    /// Total warm re-convergence slots across epochs.
    pub fn warm_slots(&self) -> usize {
        self.epochs.iter().map(|e| e.warm_slots).sum()
    }

    /// Total cold restart slots across epochs.
    pub fn cold_slots(&self) -> usize {
        self.epochs.iter().map(|e| e.cold_slots).sum()
    }

    /// Total warm wall time, seconds.
    pub fn warm_secs(&self) -> f64 {
        self.epochs.iter().map(|e| e.warm_secs).sum()
    }

    /// Total cold wall time, seconds.
    pub fn cold_secs(&self) -> f64 {
        self.epochs.iter().map(|e| e.cold_secs).sum()
    }

    /// Aggregate slot speedup `Σ cold / Σ warm`.
    pub fn slot_speedup(&self) -> f64 {
        self.cold_slots() as f64 / (self.warm_slots() as f64).max(1e-12)
    }

    /// Aggregate wall-time speedup.
    pub fn wall_speedup(&self) -> f64 {
        self.cold_secs() / self.warm_secs().max(1e-12)
    }

    /// Whether every epoch's warm/replay fixed points agreed on ϕ.
    pub fn all_phi_agree(&self) -> bool {
        self.epochs.iter().all(|e| e.phi_agrees)
    }
}

/// Computes `user`'s standing request under `algo`: `Some(route)` when the
/// user can strictly improve, `None` when it is satisfied. Draws one RNG
/// pick per improving evaluation (part of the deterministic trajectory).
pub(crate) fn compute_request(
    engine: &Engine<'_>,
    algo: OnlineAlgorithm,
    user: UserId,
    rng: &mut StdRng,
) -> Option<RouteId> {
    match algo {
        OnlineAlgorithm::Dgrn => {
            let best = engine.best_route_set(user);
            if best.best_routes.is_empty() {
                None
            } else {
                Some(best.best_routes[rng.random_range(0..best.best_routes.len())])
            }
        }
        OnlineAlgorithm::Brun => {
            let better = engine.better_routes(user);
            if better.is_empty() {
                None
            } else {
                Some(better[rng.random_range(0..better.len())].0)
            }
        }
    }
}

/// Re-evaluates the standing requests of every user the engine marked dirty
/// (in id order — the order is part of the deterministic trajectory).
pub(crate) fn refresh(
    engine: &mut Engine<'_>,
    requests: &mut [Option<RouteId>],
    algo: OnlineAlgorithm,
    rng: &mut StdRng,
    obs: &Obs,
) {
    // One span and one `RefreshPass` event per pass, not per scan: an
    // incremental scan is ~100ns, below the cost of timing or emitting it.
    let refresh_span = obs.span(SpanKind::BestResponse);
    let mut scans = 0u32;
    let mut improving = 0u32;
    for user in engine.take_dirty() {
        scans += 1;
        let request = compute_request(engine, algo, user, rng);
        improving += u32::from(request.is_some());
        requests[user.index()] = request;
    }
    if scans > 0 {
        refresh_span.finish();
        obs.emit(|| Event::RefreshPass {
            kind: match algo {
                OnlineAlgorithm::Dgrn => ResponseKind::Best,
                OnlineAlgorithm::Brun => ResponseKind::Better,
            },
            scans,
            improving,
        });
    } else {
        refresh_span.cancel();
    }
}

/// Drives the engine to a fixed point (or the slot budget): each slot
/// refreshes dirty requests, then grants one uniformly random standing
/// request — the SUU rule of Alg. 2, priced from the engine's caches.
/// Returns `(slots, converged)`.
pub(crate) fn drive(
    engine: &mut Engine<'_>,
    requests: &mut [Option<RouteId>],
    algo: OnlineAlgorithm,
    rng: &mut StdRng,
    max_slots: usize,
    obs: &Obs,
) -> (usize, bool) {
    let mut slots = 0;
    loop {
        // A pass that finds no improving user (or an exhausted budget) is
        // not a decision slot — the span is cancelled on those paths.
        let slot_span = obs.span(SpanKind::Slot);
        refresh(engine, requests, algo, rng, obs);
        let improving: Vec<UserId> = engine
            .active_users()
            .filter(|u| requests[u.index()].is_some())
            .collect();
        if improving.is_empty() {
            slot_span.cancel();
            return (slots, true);
        }
        if slots >= max_slots {
            slot_span.cancel();
            return (slots, false);
        }
        let user = improving[rng.random_range(0..improving.len())];
        let route = requests[user.index()]
            .take()
            .expect("improving user holds a standing request");
        engine.apply_move(user, route);
        slots += 1;
        slot_span.finish();
        obs.emit(|| Event::SlotCompleted {
            slot: slots as u64,
            updated: 1,
            phi: engine.potential(),
            total_profit: engine.total_profit(),
        });
    }
}

/// The online simulator: a live incremental engine plus the standing-request
/// cache, re-equilibrated after every churn batch.
#[derive(Debug)]
pub struct OnlineSim {
    engine: Engine<'static>,
    requests: Vec<Option<RouteId>>,
    algo: OnlineAlgorithm,
    rng: StdRng,
    seed: u64,
    max_slots_per_epoch: usize,
    /// Observability handle for the **warm** path only; the equivalence
    /// replay and cold-restart baselines stay silent (they are internal
    /// validation machinery, not part of the simulated system).
    obs: Obs,
    /// A live `/metrics` endpoint, when one was attached via
    /// [`attach_monitor`](Self::attach_monitor). Kept on the sim so the
    /// endpoint serves for the sim's whole lifetime.
    monitor: Option<LiveMonitor>,
    /// An invariant watchdog attached via
    /// [`attach_watchdog`](Self::attach_watchdog) (standalone; a monitor
    /// bound with [`attach_watched_monitor`](Self::attach_watched_monitor)
    /// keeps its watchdog on the monitor instead).
    watchdog: Option<Arc<WatchdogSubscriber>>,
}

impl OnlineSim {
    /// Builds the simulator around `game` with a seed-deterministic random
    /// initial profile (Alg. 1 line 4: arbitrary initial decisions).
    pub fn new(game: Game, algo: OnlineAlgorithm, seed: u64, max_slots_per_epoch: usize) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let choices: Vec<RouteId> = game
            .users()
            .iter()
            .map(|u| RouteId::from_index(rng.random_range(0..u.routes.len())))
            .collect();
        let n_users = game.user_count();
        let profile =
            Profile::try_new(&game, choices).expect("random initial choices index each route set");
        Self {
            engine: Engine::new_owned(game, profile),
            requests: vec![None; n_users],
            algo,
            rng,
            seed,
            max_slots_per_epoch,
            obs: Obs::disabled(),
            monitor: None,
            watchdog: None,
        }
    }

    /// The watchdog configuration matched to this sim: the Theorem 4-style
    /// slot budget is the per-epoch cap the scheduler itself enforces, so a
    /// clean run can never trip it.
    fn watchdog_config(&self) -> WatchdogConfig {
        WatchdogConfig {
            slot_budget: Some(self.max_slots_per_epoch as u64),
            ..WatchdogConfig::default()
        }
    }

    /// The live engine (read access — e.g. for snapshotting).
    pub fn engine(&self) -> &Engine<'static> {
        &self.engine
    }

    /// Installs an observability handle on the warm path: the live engine's
    /// per-commit events plus `RefreshPass` / `SlotCompleted` /
    /// `EpochStarted` / `EpochConverged` from the epoch scheduler. The
    /// trajectory is unchanged — observation only watches.
    pub fn set_obs(&mut self, obs: Obs) {
        self.engine.set_obs(obs.clone());
        self.obs = obs;
    }

    /// Binds a live `/metrics` endpoint on `addr` (use `"127.0.0.1:0"` for
    /// an ephemeral port) and installs its stats subscriber as this sim's
    /// observability handle, so a long [`run`](Self::run) can be scraped
    /// mid-epoch. Returns the bound address. The endpoint serves until the
    /// sim is dropped.
    pub fn attach_monitor(
        &mut self,
        addr: impl std::net::ToSocketAddrs,
    ) -> std::io::Result<std::net::SocketAddr> {
        let monitor = LiveMonitor::bind(addr)?;
        self.set_obs(monitor.obs());
        let addr = monitor.addr();
        self.monitor = Some(monitor);
        Ok(addr)
    }

    /// The attached live monitor, when [`attach_monitor`](Self::attach_monitor)
    /// was called.
    pub fn monitor(&self) -> Option<&LiveMonitor> {
        self.monitor.as_ref()
    }

    /// Attaches a [`WatchdogSubscriber`] watching the warm path's live
    /// invariants — per-epoch ϕ monotonicity (Eq. 11), the per-epoch slot
    /// budget and stale-livelock — with the slot budget set to this sim's
    /// `max_slots_per_epoch`. When a monitor is already attached its stats
    /// keep receiving every event through a fan-out. Returns the watchdog
    /// for alert inspection after (or during) [`run`](Self::run).
    pub fn attach_watchdog(&mut self) -> Arc<WatchdogSubscriber> {
        let dog = Arc::new(WatchdogSubscriber::new(self.watchdog_config()));
        let obs = match &self.monitor {
            Some(monitor) => FanoutSubscriber::obs(vec![
                Arc::clone(monitor.stats()) as Arc<dyn Subscriber>,
                Arc::clone(&dog) as Arc<dyn Subscriber>,
            ]),
            None => Obs::new(Arc::clone(&dog) as Arc<dyn Subscriber>),
        };
        self.set_obs(obs);
        self.watchdog = Some(Arc::clone(&dog));
        dog
    }

    /// [`attach_monitor`](Self::attach_monitor) with a watchdog wired into
    /// the endpoint: `/alerts` serves the structured alerts and `/metrics`
    /// includes the `vcs_watchdog_*` counters, with the slot budget set to
    /// this sim's `max_slots_per_epoch`.
    pub fn attach_watched_monitor(
        &mut self,
        addr: impl std::net::ToSocketAddrs,
    ) -> std::io::Result<std::net::SocketAddr> {
        let monitor = LiveMonitor::bind_watched(addr, self.watchdog_config())?;
        self.set_obs(monitor.obs());
        let addr = monitor.addr();
        self.monitor = Some(monitor);
        Ok(addr)
    }

    /// The attached watchdog: the standalone one from
    /// [`attach_watchdog`](Self::attach_watchdog), or the monitor's when
    /// bound via [`attach_watched_monitor`](Self::attach_watched_monitor).
    pub fn watchdog(&self) -> Option<&Arc<WatchdogSubscriber>> {
        self.watchdog
            .as_ref()
            .or_else(|| self.monitor.as_ref().and_then(|m| m.watchdog()))
    }

    /// Drives the stream: initial convergence, then per epoch apply the
    /// batch, warm re-converge, retrace on a from-scratch engine
    /// (equivalence replay), and run the cold-restart baseline.
    ///
    /// # Panics
    ///
    /// Panics when the stream contains an invalid event (unknown leave
    /// target, malformed join) — streams from this crate's generators are
    /// valid by construction.
    pub fn run(&mut self, stream: &EventStream) -> OnlineReport {
        self.obs.emit(|| Event::EpochStarted {
            epoch: 0,
            joins: 0,
            leaves: 0,
            active: self.engine.active_count() as u32,
        });
        let (initial_slots, mut converged) = self.obs.time(SpanKind::EpochReconverge, || {
            drive(
                &mut self.engine,
                &mut self.requests,
                self.algo,
                &mut self.rng,
                self.max_slots_per_epoch,
                &self.obs,
            )
        });
        self.obs.emit(|| Event::EpochConverged {
            epoch: 0,
            slots: initial_slots as u64,
            converged,
            phi: self.engine.potential(),
        });
        let mut epochs = Vec::with_capacity(stream.epochs());
        for (epoch, batch) in stream.batches.iter().enumerate() {
            let warm_start = Instant::now();
            let mut joins = 0;
            let mut leaves = 0;
            for event in batch {
                match apply_churn(&mut self.engine, event).expect("stream events are valid") {
                    Some(_) => {
                        self.requests.push(None);
                        joins += 1;
                    }
                    None => leaves += 1,
                }
            }
            self.obs.emit(|| Event::EpochStarted {
                epoch: (epoch + 1) as u32,
                joins: joins as u32,
                leaves: leaves as u32,
                active: self.engine.active_count() as u32,
            });
            // Make the standing-request cache fully valid again before
            // forking the replay: only churn-dirtied users are re-evaluated.
            refresh(
                &mut self.engine,
                &mut self.requests,
                self.algo,
                &mut self.rng,
                &self.obs,
            );

            // Fork the equivalence replay *before* warm re-convergence: a
            // from-scratch engine on the materialized post-churn game, the
            // same standing requests (renumbered densely via `id_map`) and a
            // clone of the RNG retrace the warm trajectory exactly.
            let (post_game, post_choices, id_map) = self.engine.materialize();
            let mut replay_rng = self.rng.clone();
            let mut replay_requests: Vec<Option<RouteId>> =
                id_map.iter().map(|u| self.requests[u.index()]).collect();

            let (warm_slots, warm_ok) = self.obs.time(SpanKind::EpochReconverge, || {
                drive(
                    &mut self.engine,
                    &mut self.requests,
                    self.algo,
                    &mut self.rng,
                    self.max_slots_per_epoch,
                    &self.obs,
                )
            });
            let warm_secs = warm_start.elapsed().as_secs_f64();
            let phi_warm = self.engine.potential();
            let profit = self.engine.total_profit();
            self.obs.emit(|| Event::EpochConverged {
                epoch: (epoch + 1) as u32,
                slots: warm_slots as u64,
                converged: warm_ok,
                phi: phi_warm,
            });

            let replay_profile = Profile::try_new(&post_game, post_choices)
                .expect("materialized choices form a valid profile");
            let mut replay = Engine::new(&post_game, replay_profile);
            // Fresh engines start all-dirty; the copied standing requests
            // already cover every user, so drain without re-evaluating.
            replay.take_dirty();
            let (replay_slots, _) = drive(
                &mut replay,
                &mut replay_requests,
                self.algo,
                &mut replay_rng,
                self.max_slots_per_epoch,
                &Obs::disabled(),
            );
            debug_assert_eq!(
                replay_slots, warm_slots,
                "replay must retrace the warm trajectory"
            );
            let phi_replay = replay.potential_fresh();
            let phi_agrees = (phi_warm - phi_replay).abs() <= PHI_TOLERANCE;
            if warm_ok {
                debug_assert!(
                    is_nash(&post_game, replay.profile()),
                    "a converged epoch must end in a Nash equilibrium"
                );
            }

            // Cold-restart baseline: rebuild from the post-churn game with a
            // fresh random profile, as a churn-unaware platform would.
            let cold_start = Instant::now();
            let mut cold_rng = StdRng::seed_from_u64(
                self.seed ^ (epoch as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            );
            let cold_choices: Vec<RouteId> = post_game
                .users()
                .iter()
                .map(|u| RouteId::from_index(cold_rng.random_range(0..u.routes.len())))
                .collect();
            let cold_profile = Profile::try_new(&post_game, cold_choices)
                .expect("random choices index each route set");
            let mut cold = Engine::new(&post_game, cold_profile);
            let mut cold_requests: Vec<Option<RouteId>> = vec![None; post_game.user_count()];
            let (cold_slots, cold_ok) = drive(
                &mut cold,
                &mut cold_requests,
                self.algo,
                &mut cold_rng,
                self.max_slots_per_epoch,
                &Obs::disabled(),
            );
            let cold_secs = cold_start.elapsed().as_secs_f64();
            let phi_cold = cold.potential_fresh();

            converged &= warm_ok && cold_ok;
            epochs.push(EpochReport {
                epoch,
                joins,
                leaves,
                active_users: self.engine.active_count(),
                warm_slots,
                cold_slots,
                warm_secs,
                cold_secs,
                phi_warm,
                phi_replay,
                phi_cold,
                phi_agrees,
                profit,
            });
        }
        let report = OnlineReport {
            initial_slots,
            epochs,
            converged,
        };
        self.obs.emit(|| Event::RunCompleted {
            slots: (report.initial_slots + report.warm_slots()) as u64,
            updates: (report.initial_slots + report.warm_slots()) as u64,
            converged: report.converged,
            phi: self.engine.potential(),
        });
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::{synthetic_stream, StreamConfig};

    fn small_config(seed: u64) -> StreamConfig {
        StreamConfig {
            initial_users: 20,
            n_tasks: 10,
            epochs: 4,
            churn_rate: 0.1,
            seed,
        }
    }

    #[test]
    fn warm_reconvergence_agrees_with_replay() {
        for algo in [OnlineAlgorithm::Dgrn, OnlineAlgorithm::Brun] {
            for seed in 0..4 {
                let (game, stream) = synthetic_stream(&small_config(seed));
                let mut sim = OnlineSim::new(game, algo, seed, 100_000);
                let report = sim.run(&stream);
                assert!(report.converged, "{algo:?} seed {seed} did not converge");
                assert_eq!(report.epochs.len(), 4);
                assert!(
                    report.all_phi_agree(),
                    "{algo:?} seed {seed}: warm ϕ diverged from the from-scratch replay"
                );
            }
        }
    }

    #[test]
    fn warm_start_needs_fewer_slots_than_cold_restart() {
        let (game, stream) = synthetic_stream(&StreamConfig {
            initial_users: 60,
            n_tasks: 30,
            epochs: 3,
            churn_rate: 0.05,
            seed: 1,
        });
        let mut sim = OnlineSim::new(game, OnlineAlgorithm::Dgrn, 1, 100_000);
        let report = sim.run(&stream);
        assert!(report.converged);
        assert!(
            report.warm_slots() < report.cold_slots(),
            "warm {} slots vs cold {} slots",
            report.warm_slots(),
            report.cold_slots()
        );
    }

    #[test]
    fn clean_online_run_raises_no_watchdog_alerts() {
        for algo in [OnlineAlgorithm::Dgrn, OnlineAlgorithm::Brun] {
            let (game, stream) = synthetic_stream(&small_config(3));
            let mut sim = OnlineSim::new(game, algo, 3, 100_000);
            let dog = sim.attach_watchdog();
            let report = sim.run(&stream);
            assert!(report.converged);
            assert_eq!(
                dog.alert_count(),
                0,
                "{algo:?}: clean run raised {:?}",
                dog.alerts()
            );
            // Every epoch's events reached the watchdog.
            assert_eq!(dog.counters(), (0, 0, 0));
        }
    }

    #[test]
    fn watched_monitor_serves_alerts_endpoint() {
        use std::io::{Read as _, Write as _};
        let (game, stream) = synthetic_stream(&small_config(5));
        let mut sim = OnlineSim::new(game, OnlineAlgorithm::Dgrn, 5, 100_000);
        let addr = sim
            .attach_watched_monitor("127.0.0.1:0")
            .expect("ephemeral bind");
        sim.run(&stream);
        assert!(sim.watchdog().is_some());
        let mut conn = std::net::TcpStream::connect(addr).expect("connect");
        conn.write_all(b"GET /alerts HTTP/1.0\r\n\r\n").unwrap();
        let mut body = String::new();
        conn.read_to_string(&mut body).unwrap();
        assert!(body.contains("200 OK"), "{body}");
        assert!(body.contains("\"alerts\":[]"), "clean run: {body}");
    }

    #[test]
    fn report_is_deterministic_in_the_seed() {
        let (game, stream) = synthetic_stream(&small_config(7));
        let run = |game: Game| {
            let mut sim = OnlineSim::new(game, OnlineAlgorithm::Dgrn, 7, 100_000);
            let mut report = sim.run(&stream);
            // Wall-clock fields are the only nondeterministic ones.
            for e in &mut report.epochs {
                e.warm_secs = 0.0;
                e.cold_secs = 0.0;
            }
            report
        };
        assert_eq!(run(game.clone()), run(game));
    }
}
