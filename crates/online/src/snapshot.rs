//! Shard checkpoint/resume: a self-contained binary snapshot of a live
//! engine's game and strategy profile.
//!
//! [`Snapshot::capture`] materializes the engine (tombstoned departures are
//! compacted away and user ids renumbered densely — see
//! [`Engine::materialize`]); [`Snapshot::restore`] rebuilds an owned engine
//! from it. The byte codec follows the `vcs-runtime` wire conventions
//! (big-endian fixed-width fields, length prefixes guarded against hostile
//! values) so a shard can be checkpointed to disk or shipped to another
//! process. Route polyline geometry is display-only and is **not** carried
//! in the snapshot; task locations are (they define coverage provenance).
//!
//! Decoding re-validates everything through [`Game::new`] and
//! [`Game::validate_profile`], so a corrupted or adversarial snapshot is
//! rejected with a [`SnapshotError`] instead of producing an inconsistent
//! engine.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use vcs_core::ids::{RouteId, TaskId, UserId};
use vcs_core::{
    Engine, Game, GameError, PlatformParams, Profile, Route, Task, User, UserPrefs, WeightBounds,
};

/// Format magic: `b"VCSO"`.
const MAGIC: u32 = 0x5643_534F;
/// Format version; bump on layout changes.
const VERSION: u8 = 1;

/// Why a snapshot failed to decode.
#[derive(Debug, PartialEq)]
pub enum SnapshotError {
    /// The byte stream is malformed (truncated, bad magic, hostile length).
    Codec(&'static str),
    /// The bytes parsed but describe an invalid game or profile.
    Invalid(GameError),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Codec(msg) => write!(f, "snapshot codec error: {msg}"),
            SnapshotError::Invalid(err) => write!(f, "snapshot describes an invalid game: {err}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

fn get_u8(buf: &mut Bytes) -> Result<u8, SnapshotError> {
    if buf.remaining() < 1 {
        return Err(SnapshotError::Codec("truncated u8"));
    }
    Ok(buf.get_u8())
}

fn get_u32(buf: &mut Bytes) -> Result<u32, SnapshotError> {
    if buf.remaining() < 4 {
        return Err(SnapshotError::Codec("truncated u32"));
    }
    Ok(buf.get_u32())
}

fn get_f64(buf: &mut Bytes) -> Result<f64, SnapshotError> {
    if buf.remaining() < 8 {
        return Err(SnapshotError::Codec("truncated f64"));
    }
    Ok(buf.get_f64())
}

/// Reads a length prefix, rejecting values that cannot fit in the remaining
/// bytes at `entry_size` bytes per entry (hostile-input guard).
fn get_len(buf: &mut Bytes, entry_size: usize) -> Result<usize, SnapshotError> {
    let len = get_u32(buf)? as usize;
    if len.saturating_mul(entry_size) > buf.remaining() {
        return Err(SnapshotError::Codec("length prefix exceeds snapshot size"));
    }
    Ok(len)
}

/// A checkpoint of one shard: the compacted game plus the current profile.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// The materialized game (dense user ids, no tombstones).
    pub game: Game,
    /// The profile at capture time, aligned with `game`'s user ids.
    pub choices: Vec<RouteId>,
}

impl Snapshot {
    /// Captures the engine's current state. Departed users are compacted
    /// away; ids are renumbered densely in ascending order.
    pub fn capture(engine: &Engine<'_>) -> Self {
        let (game, choices, _id_map) = engine.materialize();
        Self { game, choices }
    }

    /// Rebuilds an owned engine from the checkpoint (shard resume).
    pub fn restore(self) -> Engine<'static> {
        let profile = Profile::try_new(&self.game, self.choices)
            .expect("snapshot profile was validated at capture or decode");
        Engine::new_owned(self.game, profile)
    }

    /// Serializes the checkpoint to a byte frame.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::new();
        buf.put_u32(MAGIC);
        buf.put_u8(VERSION);
        let params = self.game.params();
        buf.put_f64(params.phi);
        buf.put_f64(params.theta);
        let bounds = self.game.bounds();
        buf.put_f64(bounds.e_min);
        buf.put_f64(bounds.e_max);
        buf.put_u32(u32::try_from(self.game.task_count()).expect("task count fits u32"));
        for task in self.game.tasks() {
            buf.put_f64(task.base_reward);
            buf.put_f64(task.increment);
            match task.location {
                Some((x, y)) => {
                    buf.put_u8(1);
                    buf.put_f64(x);
                    buf.put_f64(y);
                }
                None => buf.put_u8(0),
            }
        }
        buf.put_u32(u32::try_from(self.game.user_count()).expect("user count fits u32"));
        for (user, &choice) in self.game.users().iter().zip(&self.choices) {
            buf.put_f64(user.prefs.alpha);
            buf.put_f64(user.prefs.beta);
            buf.put_f64(user.prefs.gamma);
            buf.put_u32(choice.0);
            buf.put_u32(u32::try_from(user.routes.len()).expect("route count fits u32"));
            for route in &user.routes {
                buf.put_f64(route.detour);
                buf.put_f64(route.congestion);
                buf.put_u32(u32::try_from(route.tasks.len()).expect("task list fits u32"));
                for task in &route.tasks {
                    buf.put_u32(task.0);
                }
            }
        }
        buf.freeze()
    }

    /// Deserializes and fully re-validates a checkpoint frame.
    pub fn decode(mut frame: Bytes) -> Result<Self, SnapshotError> {
        if get_u32(&mut frame)? != MAGIC {
            return Err(SnapshotError::Codec("bad snapshot magic"));
        }
        if get_u8(&mut frame)? != VERSION {
            return Err(SnapshotError::Codec("unsupported snapshot version"));
        }
        let params = PlatformParams::new(get_f64(&mut frame)?, get_f64(&mut frame)?);
        let bounds = WeightBounds {
            e_min: get_f64(&mut frame)?,
            e_max: get_f64(&mut frame)?,
        };
        // Minimum on-wire sizes guard each length prefix: 17 bytes per task
        // (a + μ + location flag), 36 per user (prefs + choice + route
        // count), 20 per route (costs + task count), 4 per task id.
        let n_tasks = get_len(&mut frame, 17)?;
        let mut tasks = Vec::with_capacity(n_tasks);
        for k in 0..n_tasks {
            let base = get_f64(&mut frame)?;
            let mu = get_f64(&mut frame)?;
            let id = TaskId::from_index(k);
            tasks.push(match get_u8(&mut frame)? {
                0 => Task::new(id, base, mu),
                _ => Task::at(id, base, mu, (get_f64(&mut frame)?, get_f64(&mut frame)?)),
            });
        }
        let n_users = get_len(&mut frame, 36)?;
        let mut users = Vec::with_capacity(n_users);
        let mut choices = Vec::with_capacity(n_users);
        for i in 0..n_users {
            let prefs = UserPrefs::new(
                get_f64(&mut frame)?,
                get_f64(&mut frame)?,
                get_f64(&mut frame)?,
            );
            choices.push(RouteId(get_u32(&mut frame)?));
            let n_routes = get_len(&mut frame, 20)?;
            let mut routes = Vec::with_capacity(n_routes);
            for r in 0..n_routes {
                let detour = get_f64(&mut frame)?;
                let congestion = get_f64(&mut frame)?;
                let n_route_tasks = get_len(&mut frame, 4)?;
                let mut route_tasks = Vec::with_capacity(n_route_tasks);
                for _ in 0..n_route_tasks {
                    route_tasks.push(TaskId(get_u32(&mut frame)?));
                }
                routes.push(Route::new(
                    RouteId::from_index(r),
                    route_tasks,
                    detour,
                    congestion,
                ));
            }
            users.push(User::new(UserId::from_index(i), prefs, routes));
        }
        let game = Game::new(tasks, users, params, bounds).map_err(SnapshotError::Invalid)?;
        game.validate_profile(&choices)
            .map_err(SnapshotError::Invalid)?;
        Ok(Self { game, choices })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcs_core::examples::fig1_instance;
    use vcs_core::{apply_churn, ChurnEvent, UserSpec};

    fn fig1_engine() -> Engine<'static> {
        let game = fig1_instance();
        let choices = vec![RouteId(0); game.user_count()];
        let profile = Profile::try_new(&game, choices).expect("valid");
        Engine::new_owned(game, profile)
    }

    #[test]
    fn snapshot_roundtrips_through_bytes() {
        let engine = fig1_engine();
        let snap = Snapshot::capture(&engine);
        let decoded = Snapshot::decode(snap.encode()).expect("roundtrip decodes");
        assert_eq!(snap, decoded);
        let restored = decoded.restore();
        assert_eq!(restored.potential_fresh(), engine.potential_fresh());
        assert_eq!(restored.profile(), engine.profile());
    }

    #[test]
    fn snapshot_after_churn_compacts_tombstones() {
        let mut engine = fig1_engine();
        let spec = UserSpec::new(
            UserPrefs::neutral(),
            vec![Route::new(RouteId(0), vec![TaskId(0)], 0.2, 0.1)],
        );
        apply_churn(
            &mut engine,
            &ChurnEvent::Join {
                spec,
                initial: RouteId(0),
            },
        )
        .expect("valid join");
        apply_churn(&mut engine, &ChurnEvent::Leave { user: UserId(1) }).expect("valid leave");
        let snap = Snapshot::capture(&engine);
        assert_eq!(snap.game.user_count(), 3, "tombstone compacted away");
        let restored = Snapshot::decode(snap.encode()).expect("decodes").restore();
        let diff = (restored.potential_fresh() - engine.potential_fresh()).abs();
        assert!(
            diff <= 1e-12,
            "ϕ drifted by {diff} across checkpoint/resume"
        );
    }

    #[test]
    fn snapshot_roundtrips_slab_state_after_churn() {
        use vcs_core::ids::TaskId as Tid;
        use vcs_core::response::ProfitView;
        // Drive the live engine through joins, a departure (tombstone +
        // inverted-index staleness) and moves, so every slab has been grown
        // and compacted at least once before the checkpoint.
        let mut engine = fig1_engine();
        let joined = engine
            .add_user(
                UserPrefs::neutral(),
                vec![
                    Route::new(RouteId(0), vec![Tid(0)], 0.2, 0.1),
                    Route::new(RouteId(1), vec![Tid(1)], 0.1, 0.3),
                ],
                RouteId(0),
            )
            .expect("valid join");
        engine.remove_user(UserId(1)).expect("valid leave");
        engine.apply_move(joined, RouteId(1));
        let restored = Snapshot::decode(Snapshot::capture(&engine).encode())
            .expect("decodes")
            .restore();
        // The restored engine rebuilds its slabs from the compacted game;
        // every surviving user's profit must come out bit-identical, and the
        // rebuilt inverted index must cover exactly the live participants.
        let (_, _, id_map) = engine.materialize();
        assert_eq!(id_map.len(), restored.game().user_count());
        for (new_idx, &old) in id_map.iter().enumerate() {
            let new = UserId::from_index(new_idx);
            assert_eq!(
                engine.profit(old).to_bits(),
                restored.profit(new).to_bits(),
                "profit of pre-churn user {old} drifted across checkpoint/resume"
            );
        }
        for task in restored.game().tasks() {
            assert_eq!(
                engine.profile().participants(task.id),
                restored.profile().participants(task.id),
                "participant count of {} drifted",
                task.id
            );
            for &u in restored.users_covering(task.id) {
                assert!(restored.is_active(u));
            }
        }
        assert_eq!(
            restored.potential().to_bits(),
            restored.potential_fresh().to_bits(),
            "restored running ϕ must equal its own fresh recomputation"
        );
    }

    #[test]
    fn truncated_and_corrupt_snapshots_rejected() {
        let snap = Snapshot::capture(&fig1_engine());
        let frame = snap.encode();
        for cut in [0, 3, 4, 5, 20, frame.len() - 1] {
            let err = Snapshot::decode(frame.slice(0..cut)).expect_err("truncation detected");
            assert!(matches!(err, SnapshotError::Codec(_)), "cut {cut}: {err}");
        }
        // Flip the magic.
        let mut bad = frame.as_ref().to_vec();
        bad[0] ^= 0xFF;
        assert_eq!(
            Snapshot::decode(Bytes::from(bad)),
            Err(SnapshotError::Codec("bad snapshot magic"))
        );
        // Hostile task-count prefix.
        let mut hostile = frame.as_ref().to_vec();
        hostile[37..41].copy_from_slice(&u32::MAX.to_be_bytes());
        assert_eq!(
            Snapshot::decode(Bytes::from(hostile)),
            Err(SnapshotError::Codec("length prefix exceeds snapshot size"))
        );
    }

    #[test]
    fn semantically_invalid_snapshot_rejected() {
        let mut snap = Snapshot::capture(&fig1_engine());
        // Point a choice past the user's route set; the bytes stay
        // well-formed but validation must refuse them.
        snap.choices[0] = RouteId(99);
        assert!(matches!(
            Snapshot::decode(snap.encode()),
            Err(SnapshotError::Invalid(GameError::InvalidProfile { .. }))
        ));
    }
}
