//! # vcs-online — dynamic user churn over a live game
//!
//! The paper solves the route-navigation game for a fixed user set `U`; a
//! deployed platform faces continuous traffic where vehicles join and leave
//! mid-game. This crate adds that online dimension on top of the
//! incremental `vcs-core` engine:
//!
//! * [`stream`] — synthesizes timestamped batches of
//!   [`ChurnEvent`](vcs_core::ChurnEvent)s, either fully synthetic
//!   (paper-range parameters) or from `vcs-traces` OD pairs with arrivals
//!   following the empirical departure-time distribution;
//! * [`sim`] — the epoch scheduler: after each batch the platform
//!   re-converges from the *warm* previous equilibrium, and the simulator
//!   also runs a cold-restart baseline plus a from-scratch equivalence
//!   replay of the warm trajectory (fixed-point ϕ agreement within
//!   [`PHI_TOLERANCE`]);
//! * [`snapshot`] — shard checkpoint/resume as a validated binary frame;
//! * [`serve`] — the serving-mode executor: a long-lived game answering an
//!   open-ended Join/Leave/BestRespond request stream, re-converged after
//!   every mutating request (the `platform_serve` bin's per-lane core).
//!
//! **Dynamic-game semantics.** Every churn event redefines the potential ϕ
//! (it is a function of the current user set): ϕ increases monotonically
//! *within* an epoch (Theorem 2) and each epoch ends in a Nash equilibrium
//! of the current game, but the ϕ trajectory *across* epochs is not
//! monotone. See DESIGN.md §11.
//!
//! The same event streams also drive the message-passing runtimes through
//! the `Join`/`Leave` protocol frames (`vcs_runtime::run_sync_churn`,
//! `vcs_runtime::run_threaded_churn`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod serve;
pub mod sim;
pub mod snapshot;
pub mod stream;

pub use serve::{ServeCore, ServeCoreConfig};
pub use sim::{EpochReport, OnlineAlgorithm, OnlineReport, OnlineSim, PHI_TOLERANCE};
pub use snapshot::{Snapshot, SnapshotError};
pub use stream::{synthetic_stream, trace_stream, EventStream, StreamConfig};
