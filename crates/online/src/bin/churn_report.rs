//! `churn_report` — measures warm-start re-equilibration against cold
//! restart under user churn and writes the sweep to `BENCH_online.json`
//! (repo root by default; pass a path to override, or `--smoke` for a tiny
//! print-only scenario used by CI). `--prometheus <path>` additionally runs
//! one instrumented scenario under a [`vcs_obs::StatsSubscriber`] (outside
//! the timed sweep, so measured numbers stay unperturbed) and dumps the
//! final Prometheus text exposition — counters, ϕ/profit gauges and span
//! latency histograms — to `path`.
//!
//! Methodology: per (users, churn rate) a synthetic paper-range game runs
//! `EPOCHS` churn epochs under DGRN. The warm path re-converges the live
//! incremental engine; the cold path rebuilds an engine on the identical
//! post-churn game from a fresh random profile. Slots are the paper's
//! convergence currency (decision slots granted), wall time covers
//! event application + re-convergence (warm) vs engine rebuild +
//! convergence (cold). `phi_agree_epochs` counts epochs where the warm
//! fixed point's incrementally maintained ϕ matches a from-scratch replay
//! within 1e-9 — the cross-churn cache equivalence check. Note that ϕ is
//! redefined by every churn event, so per-epoch ϕ values are not comparable
//! (let alone monotone) across epochs; speedups are aggregated over slots
//! and seconds, which are.

use std::sync::Arc;
use vcs_obs::{validate_prometheus_text, Obs, StatsSubscriber};
use vcs_online::{synthetic_stream, OnlineAlgorithm, OnlineReport, OnlineSim, StreamConfig};

const EPOCHS: usize = 5;
const SEED: u64 = 7;
const MAX_SLOTS: usize = 1_000_000;

struct Row {
    users: usize,
    churn_rate: f64,
    report: OnlineReport,
}

fn run_config(users: usize, churn_rate: f64, obs: Option<Obs>) -> Row {
    let config = StreamConfig {
        initial_users: users,
        n_tasks: users.max(60),
        epochs: EPOCHS,
        churn_rate,
        seed: SEED,
    };
    let (game, stream) = synthetic_stream(&config);
    let mut sim = OnlineSim::new(game, OnlineAlgorithm::Dgrn, SEED, MAX_SLOTS);
    if let Some(obs) = obs {
        sim.set_obs(obs);
    }
    let report = sim.run(&stream);
    Row {
        users,
        churn_rate,
        report,
    }
}

/// Replays one scenario under a [`StatsSubscriber`] and writes the final
/// Prometheus exposition to `path`. Run outside the timed sweep.
fn dump_prometheus(path: &str, users: usize, churn_rate: f64) {
    let stats = Arc::new(StatsSubscriber::new());
    run_config(users, churn_rate, Some(Obs::new(stats.clone())));
    let text = stats.prometheus_text();
    validate_prometheus_text(&text).expect("exposition is valid");
    if let Some(parent) = std::path::Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).expect("create prometheus output directory");
        }
    }
    std::fs::write(path, text).expect("write prometheus exposition");
    eprintln!("wrote {path}");
}

fn print_row(row: &Row) {
    let r = &row.report;
    eprintln!(
        "{:>5} users {:>4.0}% churn: warm {:>6} slots / {:>8.3}s, cold {:>7} slots / {:>8.3}s, speedup {:>6.1}x slots {:>6.1}x wall, ϕ-agree {}/{}",
        row.users,
        row.churn_rate * 100.0,
        r.warm_slots(),
        r.warm_secs(),
        r.cold_slots(),
        r.cold_secs(),
        r.slot_speedup(),
        r.wall_speedup(),
        r.epochs.iter().filter(|e| e.phi_agrees).count(),
        r.epochs.len(),
    );
}

fn json(rows: &[Row]) -> String {
    // Hand-formatted JSON: fixed schema, no string content needing escapes.
    let mut out = String::from(
        "{\n  \"benchmark\": \"online churn: warm-start re-equilibration vs cold restart (DGRN)\",\n",
    );
    out.push_str(&format!(
        "  \"seed\": {SEED},\n  \"epochs_per_config\": {EPOCHS},\n"
    ));
    out.push_str("  \"note\": \"phi is redefined by every churn event; per-epoch phi values are not monotone or comparable across epochs. phi_agree_epochs checks the warm fixed point against a from-scratch replay of the same trajectory (tolerance 1e-9).\",\n");
    out.push_str("  \"rows\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let r = &row.report;
        out.push_str(&format!(
            "    {{\"users\": {}, \"churn_rate\": {}, \"warm_slots\": {}, \"cold_slots\": {}, \"warm_secs\": {:.4}, \"cold_secs\": {:.4}, \"slot_speedup\": {:.2}, \"wall_speedup\": {:.2}, \"phi_agree_epochs\": {}, \"converged\": {}}}{}\n",
            row.users,
            row.churn_rate,
            r.warm_slots(),
            r.cold_slots(),
            r.warm_secs(),
            r.cold_secs(),
            r.slot_speedup(),
            r.wall_speedup(),
            r.epochs.iter().filter(|e| e.phi_agrees).count(),
            r.converged,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn smoke() {
    // Tiny scenario for CI: must finish in seconds and not touch the
    // committed report.
    let row = run_config(40, 0.1, None);
    print_row(&row);
    assert!(row.report.converged, "smoke scenario must converge");
    assert!(
        row.report.all_phi_agree(),
        "smoke scenario: warm ϕ diverged from the from-scratch replay"
    );
    eprintln!("smoke OK");
}

/// Pins the rayon pool so warm/cold timings run at a reproducible width.
/// `--threads N` wins over `VCS_THREADS`; `0`/unset keeps the machine
/// default, `1` forces the engine's strictly sequential paths.
fn configure_threads(cli: Option<usize>) {
    let n = cli
        .filter(|&n| n > 0)
        .or_else(|| {
            std::env::var("VCS_THREADS")
                .ok()
                .and_then(|raw| raw.trim().parse::<usize>().ok())
                .filter(|&n| n > 0)
        })
        .unwrap_or(0);
    rayon::ThreadPoolBuilder::new()
        .num_threads(n)
        .build_global()
        .expect("configuring the global pool width cannot fail");
}

fn main() {
    let mut smoke_mode = false;
    let mut prometheus_path: Option<String> = None;
    let mut out_path = "BENCH_online.json".to_string();
    let mut threads_cli: Option<usize> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke_mode = true,
            "--prometheus" => {
                prometheus_path = Some(args.next().expect("--prometheus needs a path"));
            }
            "--threads" => {
                threads_cli = Some(
                    args.next()
                        .expect("--threads needs a count")
                        .parse()
                        .expect("--threads needs an integer"),
                );
            }
            other => out_path = other.to_string(),
        }
    }
    configure_threads(threads_cli);
    if smoke_mode {
        smoke();
        if let Some(path) = &prometheus_path {
            // Smoke-sized instrumented replay so CI exercises the dump.
            dump_prometheus(path, 40, 0.1);
        }
        return;
    }
    let mut rows = Vec::new();
    for users in [500usize, 2000] {
        for churn_rate in [0.01, 0.05, 0.10, 0.20] {
            let row = run_config(users, churn_rate, None);
            print_row(&row);
            rows.push(row);
        }
    }
    // Acceptance gates: warm-start must beat cold restart ≥3× in slots at
    // the reference configuration, and the equivalence replay must agree on
    // ϕ somewhere in the sweep.
    let reference = rows
        .iter()
        .find(|r| r.users == 500 && (r.churn_rate - 0.05).abs() < 1e-12)
        .expect("reference configuration present");
    assert!(
        reference.report.slot_speedup() >= 3.0,
        "warm-start speedup regressed below 3x at 500 users / 5% churn: {:.2}x",
        reference.report.slot_speedup()
    );
    assert!(
        rows.iter()
            .any(|r| r.report.epochs.iter().any(|e| e.phi_agrees)),
        "no configuration passed the warm-vs-replay phi equivalence check"
    );
    std::fs::write(&out_path, json(&rows)).expect("write benchmark report");
    eprintln!("wrote {out_path}");
    if let Some(path) = &prometheus_path {
        // Instrumented replay at a reduced size, after the timed sweep.
        dump_prometheus(path, 100, 0.1);
    }
}
