//! Property tests pinning the incremental [`Engine`] to the naive reference
//! evaluation: along arbitrary move sequences the O(1) running potential and
//! total profit must track full recomputation within `1e-9`, per-user profits
//! must be bit-identical, and the dirty-set invalidation must be sound — a
//! user the engine left clean would have produced the same response anyway.

use proptest::prelude::*;
use vcs_core::ids::{RouteId, TaskId, UserId};
use vcs_core::response::{best_route_set, better_routes, ProfitView};
use vcs_core::{potential, Engine, Game, PlatformParams, Profile, Route, Task, User, UserPrefs};

/// A generated random game instance plus a valid strategy profile.
#[derive(Debug, Clone)]
struct Instance {
    game: Game,
    choices: Vec<RouteId>,
}

prop_compose! {
    fn arb_instance()(
        n_tasks in 1usize..10,
        n_users in 1usize..8,
        seed in any::<u64>(),
    ) -> Instance {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let tasks: Vec<Task> = (0..n_tasks)
            .map(|k| Task::new(
                TaskId::from_index(k),
                rng.random_range(10.0..20.0),
                rng.random_range(0.0..1.0),
            ))
            .collect();
        let users: Vec<User> = (0..n_users)
            .map(|i| {
                let n_routes = rng.random_range(1..=4usize);
                let routes = (0..n_routes)
                    .map(|r| {
                        let mut covered: Vec<TaskId> = (0..rng.random_range(0..5usize))
                            .map(|_| TaskId::from_index(rng.random_range(0..n_tasks)))
                            .collect();
                        covered.sort_unstable();
                        covered.dedup();
                        Route::new(
                            RouteId::from_index(r),
                            covered,
                            rng.random_range(0.0..5.0),
                            rng.random_range(0.0..5.0),
                        )
                    })
                    .collect();
                User::new(
                    UserId::from_index(i),
                    UserPrefs::new(
                        rng.random_range(0.1..0.9),
                        rng.random_range(0.1..0.9),
                        rng.random_range(0.1..0.9),
                    ),
                    routes,
                )
            })
            .collect();
        let choices = users
            .iter()
            .map(|u| RouteId::from_index(rng.random_range(0..u.routes.len())))
            .collect();
        let game = Game::with_paper_bounds(
            tasks,
            users,
            PlatformParams::new(rng.random_range(0.1..0.8), rng.random_range(0.1..0.8)),
        )
        .expect("generated instance is valid");
        Instance { game, choices }
    }
}

/// Resolves a raw `(user, route)` pair against the instance's dimensions.
fn resolve_move(game: &Game, u_raw: u32, r_raw: u32) -> (UserId, RouteId) {
    let user = UserId::from_index(u_raw as usize % game.user_count());
    let n_routes = game.users()[user.index()].routes.len();
    (user, RouteId::from_index(r_raw as usize % n_routes))
}

proptest! {
    /// The engine's O(1) running `ϕ` and total profit agree with the naive
    /// full recomputation after every move of an arbitrary sequence.
    #[test]
    fn incremental_totals_track_recompute_along_random_walk(
        inst in arb_instance(),
        moves in prop::collection::vec((any::<u32>(), any::<u32>()), 0..40),
    ) {
        let profile = Profile::new(&inst.game, inst.choices.clone());
        let mut engine = Engine::new(&inst.game, profile);
        for (u_raw, r_raw) in moves {
            let (user, route) = resolve_move(&inst.game, u_raw, r_raw);
            engine.apply_move(user, route);
            let phi = potential(&inst.game, engine.profile());
            let total = engine.profile().total_profit(&inst.game);
            prop_assert!(
                (engine.potential() - phi).abs() < 1e-9,
                "ϕ drift: incremental {} vs fresh {phi}",
                engine.potential()
            );
            prop_assert!(
                (engine.total_profit() - total).abs() < 1e-9,
                "total-profit drift: incremental {} vs fresh {total}",
                engine.total_profit()
            );
        }
    }

    /// Per-user profits and hypothetical switched profits seen through the
    /// engine are bit-identical to the naive profile evaluation — the engine
    /// mirrors the reference summation order exactly.
    #[test]
    fn profits_bit_identical_after_moves(
        inst in arb_instance(),
        moves in prop::collection::vec((any::<u32>(), any::<u32>()), 0..20),
    ) {
        let profile = Profile::new(&inst.game, inst.choices.clone());
        let mut engine = Engine::new(&inst.game, profile);
        for (u_raw, r_raw) in moves {
            let (user, route) = resolve_move(&inst.game, u_raw, r_raw);
            engine.apply_move(user, route);
        }
        for user in inst.game.users() {
            prop_assert_eq!(
                engine.profit(user.id),
                engine.profile().profit(&inst.game, user.id)
            );
            for r in 0..user.routes.len() {
                let candidate = RouteId::from_index(r);
                prop_assert_eq!(
                    engine.profit_if_switched(user.id, candidate),
                    engine.profile().profit_if_switched(&inst.game, user.id, candidate)
                );
            }
        }
    }

    /// After an arbitrary move sequence the engine's best/better responses
    /// equal a full naive rescan for every user — same route sets, same gains.
    #[test]
    fn responses_match_full_rescan(
        inst in arb_instance(),
        moves in prop::collection::vec((any::<u32>(), any::<u32>()), 0..20),
    ) {
        let profile = Profile::new(&inst.game, inst.choices.clone());
        let mut engine = Engine::new(&inst.game, profile);
        for (u_raw, r_raw) in moves {
            let (user, route) = resolve_move(&inst.game, u_raw, r_raw);
            engine.apply_move(user, route);
        }
        for user in inst.game.users() {
            let fresh = best_route_set(&inst.game, engine.profile(), user.id);
            let cached = engine.best_route_set(user.id);
            prop_assert_eq!(&cached.best_routes, &fresh.best_routes);
            prop_assert_eq!(cached.gain, fresh.gain);
            prop_assert_eq!(cached.best_profit, fresh.best_profit);
            prop_assert_eq!(
                engine.better_routes(user.id),
                better_routes(&inst.game, engine.profile(), user.id)
            );
        }
    }

    /// Dirty-set soundness: replaying the solver caching pattern — compute
    /// all responses, apply a move, recompute only the users the engine
    /// marked dirty — every cached (clean) response still equals a fresh
    /// full rescan. A user left clean would have answered identically.
    #[test]
    fn clean_cached_responses_equal_full_rescan(
        inst in arb_instance(),
        moves in prop::collection::vec((any::<u32>(), any::<u32>()), 1..20),
    ) {
        let profile = Profile::new(&inst.game, inst.choices.clone());
        let mut engine = Engine::new(&inst.game, profile);
        let m = inst.game.user_count();
        // Initial fill: everyone starts dirty.
        let mut cache: Vec<_> = (0..m)
            .map(|i| engine.best_route_set(UserId::from_index(i)))
            .collect();
        engine.take_dirty();
        for (u_raw, r_raw) in moves {
            let (user, route) = resolve_move(&inst.game, u_raw, r_raw);
            engine.apply_move(user, route);
            for dirtied in engine.take_dirty() {
                cache[dirtied.index()] = engine.best_route_set(dirtied);
            }
            for (i, cached) in cache.iter().enumerate() {
                let fresh = best_route_set(
                    &inst.game, engine.profile(), UserId::from_index(i),
                );
                prop_assert_eq!(&cached.best_routes, &fresh.best_routes);
                prop_assert_eq!(cached.gain, fresh.gain);
            }
        }
    }

    /// The share tables agree with `Task::share` / `Task::potential_term`
    /// bit for bit inside the precomputed range and within `1e-12` beyond.
    #[test]
    fn share_tables_agree_with_task(inst in arb_instance()) {
        let profile = Profile::new(&inst.game, inst.choices.clone());
        let engine = Engine::new(&inst.game, profile);
        let tables = engine.tables();
        for task in inst.game.tasks() {
            let cap = tables.capacity(task.id);
            for n in 0..=(cap + 3) {
                let (s, p) = (tables.share(task.id, n), tables.potential_term(task.id, n));
                if n <= cap {
                    prop_assert_eq!(s, task.share(n));
                } else {
                    prop_assert!((s - task.share(n)).abs() < 1e-12);
                }
                prop_assert!((p - task.potential_term(n)).abs() < 1e-12);
            }
        }
    }
}
