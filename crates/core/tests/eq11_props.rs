//! Property tests for Eq. 11, the weighted-potential identity
//! `P_i(s′) − P_i(s) = α_i · (ϕ(s′) − ϕ(s))` — the paper's central lemma
//! (Theorem 2's engine). Checked two ways on arbitrary generated games:
//!
//! * **naive**: full `Game`/`Profile` recomputation of both sides;
//! * **incremental**: the [`Engine`]'s cached potential and profit deltas
//!   along a random move walk.
//!
//! Both must satisfy the identity within `1e-9` for every user, candidate
//! route, and profile reached.

use proptest::prelude::*;
use vcs_core::ids::{RouteId, TaskId, UserId};
use vcs_core::{
    potential, weighted_potential_defect, Engine, Game, PlatformParams, Profile, ProfitView, Route,
    Task, User, UserPrefs,
};

const TOLERANCE: f64 = 1e-9;

/// A generated random game instance plus a valid strategy profile.
#[derive(Debug, Clone)]
struct Instance {
    game: Game,
    choices: Vec<RouteId>,
}

prop_compose! {
    fn arb_instance()(
        n_tasks in 1usize..10,
        n_users in 1usize..8,
        seed in any::<u64>(),
    ) -> Instance {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let tasks: Vec<Task> = (0..n_tasks)
            .map(|k| Task::new(
                TaskId::from_index(k),
                rng.random_range(10.0..20.0),
                rng.random_range(0.0..1.0),
            ))
            .collect();
        let users: Vec<User> = (0..n_users)
            .map(|i| {
                let n_routes = rng.random_range(1..=4usize);
                let routes = (0..n_routes)
                    .map(|r| {
                        let mut covered: Vec<TaskId> = (0..rng.random_range(0..5usize))
                            .map(|_| TaskId::from_index(rng.random_range(0..n_tasks)))
                            .collect();
                        covered.sort_unstable();
                        covered.dedup();
                        Route::new(
                            RouteId::from_index(r),
                            covered,
                            rng.random_range(0.0..5.0),
                            rng.random_range(0.0..5.0),
                        )
                    })
                    .collect();
                User::new(
                    UserId::from_index(i),
                    UserPrefs::new(
                        rng.random_range(0.1..0.9),
                        rng.random_range(0.1..0.9),
                        rng.random_range(0.1..0.9),
                    ),
                    routes,
                )
            })
            .collect();
        let choices = users
            .iter()
            .map(|u| RouteId::from_index(rng.random_range(0..u.routes.len())))
            .collect();
        let game = Game::with_paper_bounds(
            tasks,
            users,
            PlatformParams::new(rng.random_range(0.1..0.8), rng.random_range(0.1..0.8)),
        )
        .expect("generated instance is valid");
        Instance { game, choices }
    }
}

/// Resolves a raw `(user, route)` pair against the instance's dimensions.
fn resolve_move(game: &Game, u_raw: u32, r_raw: u32) -> (UserId, RouteId) {
    let user = UserId::from_index(u_raw as usize % game.user_count());
    let n_routes = game.users()[user.index()].routes.len();
    (user, RouteId::from_index(r_raw as usize % n_routes))
}

proptest! {
    /// Naive side: for every user and candidate route of an arbitrary
    /// profile, the Eq. 11 defect — computed by full recomputation of both
    /// the profit delta and the potential delta — stays below `1e-9`.
    #[test]
    fn eq11_holds_for_naive_recomputation(inst in arb_instance()) {
        let profile = Profile::new(&inst.game, inst.choices.clone());
        for user in inst.game.users() {
            for r in 0..user.routes.len() {
                let candidate = RouteId::from_index(r);
                let defect =
                    weighted_potential_defect(&inst.game, &profile, user.id, candidate);
                prop_assert!(
                    defect <= TOLERANCE,
                    "user {:?} → {candidate:?}: Eq. 11 defect {defect}",
                    user.id
                );
                // Cross-check against fully-materialized switched profiles:
                // both sides recomputed from scratch, no delta shortcuts.
                let mut switched = inst.choices.clone();
                switched[user.id.index()] = candidate;
                let switched = Profile::new(&inst.game, switched);
                let profit_delta = switched.profit(&inst.game, user.id)
                    - profile.profit(&inst.game, user.id);
                let phi_delta =
                    potential(&inst.game, &switched) - potential(&inst.game, &profile);
                let alpha = user.prefs.alpha;
                prop_assert!(
                    (profit_delta - alpha * phi_delta).abs() <= TOLERANCE,
                    "user {:?} → {candidate:?}: from-scratch defect {}",
                    user.id,
                    (profit_delta - alpha * phi_delta).abs()
                );
            }
        }
    }

    /// Incremental side: along a random move walk, every committed move's
    /// engine-observed profit delta equals `α_i` times the engine-observed
    /// ϕ delta within `1e-9` — the exact quantity the observability layer
    /// stamps on `MoveCommitted` events.
    #[test]
    fn eq11_holds_for_engine_increments(
        inst in arb_instance(),
        moves in prop::collection::vec((any::<u32>(), any::<u32>()), 1..30),
    ) {
        let profile = Profile::new(&inst.game, inst.choices.clone());
        let mut engine = Engine::new(&inst.game, profile);
        for (u_raw, r_raw) in moves {
            let (user, route) = resolve_move(&inst.game, u_raw, r_raw);
            let alpha = inst.game.users()[user.index()].prefs.alpha;
            let profit_before = engine.profit(user);
            let profit_after_hypothetical = engine.profit_if_switched(user, route);
            let phi_before = engine.potential();
            engine.apply_move(user, route);
            let phi_delta = engine.potential() - phi_before;
            let profit_delta = profit_after_hypothetical - profit_before;
            prop_assert!(
                (profit_delta - alpha * phi_delta).abs() <= TOLERANCE,
                "move {:?} → {route:?}: incremental Eq. 11 defect {}",
                user,
                (profit_delta - alpha * phi_delta).abs()
            );
            // The engine's post-move profit agrees with the hypothetical
            // evaluation taken before the move.
            prop_assert!(
                (engine.profit(user) - profit_after_hypothetical).abs() <= TOLERANCE,
                "hypothetical/committed profit mismatch"
            );
        }
    }
}
