//! Property tests for the conflict-free batch commit path: applying a
//! randomized PUU-style batch (pairwise-disjoint affected task sets) through
//! `Engine::apply_batch` must be **bit-identical** to applying the same
//! moves one-by-one via `Engine::apply_move` — running ϕ and total profit to
//! the bit, profiles and dirty sets exactly, and the emitted event stream
//! move for move — on both the sequential and the forced-parallel path.

use proptest::prelude::*;
use std::sync::Arc;
use vcs_core::ids::{RouteId, TaskId, UserId};
use vcs_core::{Engine, Game, PlatformParams, Profile, Route, Task, User, UserPrefs};
use vcs_obs::{Event, Obs, RingBufferSubscriber};

/// A generated game plus a valid starting profile.
#[derive(Debug, Clone)]
struct Instance {
    game: Game,
    choices: Vec<RouteId>,
}

prop_compose! {
    fn arb_instance()(
        n_tasks in 1usize..14,
        n_users in 1usize..24,
        seed in any::<u64>(),
    ) -> Instance {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let tasks: Vec<Task> = (0..n_tasks)
            .map(|k| Task::new(
                TaskId::from_index(k),
                rng.random_range(10.0..20.0),
                rng.random_range(0.0..1.0),
            ))
            .collect();
        let users: Vec<User> = (0..n_users)
            .map(|i| {
                let n_routes = rng.random_range(1..=4usize);
                let routes = (0..n_routes)
                    .map(|r| {
                        let mut covered: Vec<TaskId> = (0..rng.random_range(0..4usize))
                            .map(|_| TaskId::from_index(rng.random_range(0..n_tasks)))
                            .collect();
                        covered.sort_unstable();
                        covered.dedup();
                        Route::new(
                            RouteId::from_index(r),
                            covered,
                            rng.random_range(0.0..5.0),
                            rng.random_range(0.0..5.0),
                        )
                    })
                    .collect();
                User::new(
                    UserId::from_index(i),
                    UserPrefs::new(
                        rng.random_range(0.1..0.9),
                        rng.random_range(0.1..0.9),
                        rng.random_range(0.1..0.9),
                    ),
                    routes,
                )
            })
            .collect();
        let choices = users
            .iter()
            .map(|u| RouteId::from_index(rng.random_range(0..u.routes.len())))
            .collect();
        let game = Game::with_paper_bounds(
            tasks,
            users,
            PlatformParams::new(rng.random_range(0.1..0.8), rng.random_range(0.1..0.8)),
        )
        .expect("generated game is valid");
        Instance { game, choices }
    }
}

/// Greedily assembles a conflict-free batch exactly the way PUU grants one:
/// walk the users in id order, propose a random non-current route, and admit
/// the move only if its affected set `B_i = L_{s_i} ∪ L_{s_i'}` is disjoint
/// from every already-admitted move's.
fn greedy_conflict_free_batch(game: &Game, profile: &Profile, seed: u64) -> Vec<(UserId, RouteId)> {
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let mut taken: Vec<TaskId> = Vec::new();
    let mut batch = Vec::new();
    for user in game.users() {
        if user.routes.len() < 2 {
            continue;
        }
        let current = profile.choice(user.id);
        let mut candidate = RouteId::from_index(rng.random_range(0..user.routes.len()));
        if candidate == current {
            candidate = RouteId::from_index((candidate.index() + 1) % user.routes.len());
        }
        let mut affected: Vec<TaskId> = user.routes[current.index()]
            .tasks
            .iter()
            .chain(user.routes[candidate.index()].tasks.iter())
            .copied()
            .collect();
        affected.sort_unstable();
        affected.dedup();
        if affected.iter().any(|t| taken.contains(t)) {
            continue;
        }
        taken.extend(affected);
        batch.push((user.id, candidate));
    }
    batch
}

fn observed_engine(
    game: &Game,
    choices: &[RouteId],
) -> (Engine<'static>, Arc<RingBufferSubscriber>) {
    let profile = Profile::new(game, choices.to_vec());
    let mut engine = Engine::new_owned(game.clone(), profile);
    let ring = Arc::new(RingBufferSubscriber::new(1 << 16));
    engine.set_obs(Obs::new(ring.clone()));
    (engine, ring)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn parallel_batch_commit_is_bit_identical_to_sequential(
        instance in arb_instance(),
        batch_seed in any::<u64>(),
    ) {
        let Instance { game, choices } = instance;
        let profile = Profile::new(&game, choices.clone());
        let batch = greedy_conflict_free_batch(&game, &profile, batch_seed);

        // Reference: one apply_move per granted move, in grant order.
        let (mut seq, seq_ring) = observed_engine(&game, &choices);
        let mut applied_ref = 0usize;
        for &(user, route) in &batch {
            if seq.profile().choice(user) != route {
                applied_ref += 1;
            }
            seq.apply_move(user, route);
        }

        // Threshold usize::MAX: the batch API's sequential path.
        // Threshold 0: the parallel delta phase whenever >1 worker exists.
        for threshold in [usize::MAX, 0] {
            let (mut batched, ring) = observed_engine(&game, &choices);
            let applied = batched.apply_batch_with_threshold(&batch, threshold);
            prop_assert_eq!(applied, applied_ref);
            prop_assert_eq!(batched.potential().to_bits(), seq.potential().to_bits());
            prop_assert_eq!(batched.total_profit().to_bits(), seq.total_profit().to_bits());
            prop_assert_eq!(batched.profile(), seq.profile());
            prop_assert_eq!(batched.take_dirty(), seq.clone().take_dirty());
            // The event stream — including per-move ϕ/total snapshots taken
            // mid-batch — must match move for move.
            let expected: Vec<Event> = seq_ring.events();
            let got: Vec<Event> = ring.events();
            prop_assert_eq!(got, expected);
        }
    }

    #[test]
    fn batch_of_noops_applies_nothing(instance in arb_instance()) {
        let Instance { game, choices } = instance;
        let profile = Profile::new(&game, choices.clone());
        let noops: Vec<(UserId, RouteId)> = game
            .users()
            .iter()
            .map(|u| (u.id, profile.choice(u.id)))
            .collect();
        let mut engine = Engine::new(&game, profile);
        engine.take_dirty();
        let phi = engine.potential();
        prop_assert_eq!(engine.apply_batch_with_threshold(&noops, usize::MAX), 0);
        prop_assert_eq!(engine.potential().to_bits(), phi.to_bits());
        prop_assert!(engine.take_dirty().is_empty());
    }
}
