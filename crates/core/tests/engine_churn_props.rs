//! Property tests for dynamic arrivals/departures: after an arbitrary
//! interleaving of `add_user` / `remove_user` / `apply_move` events, the live
//! engine must agree with a fresh [`Engine::new`] built on the materialized
//! post-churn game — running ϕ and total profit within the 1e-9 slot-trace
//! tolerance, per-task counts exactly, per-user profits bit-identically — and
//! the dirty-set invalidation must stay sound across churn.

use proptest::prelude::*;
use vcs_core::ids::{RouteId, TaskId, UserId};
use vcs_core::response::{best_route_set, ProfitView};
use vcs_core::{Engine, Game, PlatformParams, Profile, Route, Task, User, UserPrefs};

/// A generated game plus a valid profile, as in `engine_equivalence.rs` but
/// with the raw RNG seed kept so churn events can draw fresh users.
#[derive(Debug, Clone)]
struct Instance {
    game: Game,
    choices: Vec<RouteId>,
}

fn random_routes(rng: &mut rand::rngs::StdRng, n_tasks: usize) -> Vec<Route> {
    use rand::RngExt;
    let n_routes = rng.random_range(1..=4usize);
    (0..n_routes)
        .map(|r| {
            let mut covered: Vec<TaskId> = (0..rng.random_range(0..5usize))
                .map(|_| TaskId::from_index(rng.random_range(0..n_tasks)))
                .collect();
            covered.sort_unstable();
            covered.dedup();
            Route::new(
                RouteId::from_index(r),
                covered,
                rng.random_range(0.0..5.0),
                rng.random_range(0.0..5.0),
            )
        })
        .collect()
}

fn random_prefs(rng: &mut rand::rngs::StdRng) -> UserPrefs {
    use rand::RngExt;
    UserPrefs::new(
        rng.random_range(0.1..0.9),
        rng.random_range(0.1..0.9),
        rng.random_range(0.1..0.9),
    )
}

prop_compose! {
    fn arb_instance()(
        n_tasks in 1usize..8,
        n_users in 1usize..6,
        seed in any::<u64>(),
    ) -> Instance {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let tasks: Vec<Task> = (0..n_tasks)
            .map(|k| Task::new(
                TaskId::from_index(k),
                rng.random_range(10.0..20.0),
                rng.random_range(0.0..1.0),
            ))
            .collect();
        let users: Vec<User> = (0..n_users)
            .map(|i| User::new(
                UserId::from_index(i),
                random_prefs(&mut rng),
                random_routes(&mut rng, n_tasks),
            ))
            .collect();
        let choices = users
            .iter()
            .map(|u| RouteId::from_index(rng.random_range(0..u.routes.len())))
            .collect();
        let game = Game::with_paper_bounds(
            tasks,
            users,
            PlatformParams::new(rng.random_range(0.1..0.8), rng.random_range(0.1..0.8)),
        )
        .expect("generated instance is valid");
        Instance { game, choices }
    }
}

/// One raw event: interpreted against the live engine state (join / leave /
/// move), so sequences stay valid no matter how churn reshapes the user set.
type RawEvent = (u8, u32, u32, u64);

/// Applies a raw event; `kind % 4`: 0 = join, 1 = leave, 2–3 = move (moves
/// twice as likely, matching re-equilibration between churn events).
fn apply_raw(engine: &mut Engine<'_>, n_tasks: usize, event: RawEvent) {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let (kind, a, b, seed) = event;
    let active: Vec<UserId> = engine.active_users().collect();
    match kind % 4 {
        0 => {
            let mut rng = StdRng::seed_from_u64(seed);
            let routes = random_routes(&mut rng, n_tasks);
            let initial = RouteId::from_index(a as usize % routes.len());
            engine
                .add_user(random_prefs(&mut rng), routes, initial)
                .expect("generated join is valid");
        }
        1 if active.len() > 1 => {
            let user = active[a as usize % active.len()];
            engine.remove_user(user).expect("active user leaves");
        }
        _ if !active.is_empty() => {
            let user = active[a as usize % active.len()];
            let n_routes = engine.game().users()[user.index()].routes.len();
            engine.apply_move(user, RouteId::from_index(b as usize % n_routes));
        }
        _ => {}
    }
}

proptest! {
    /// After any event sequence the live engine matches a fresh engine on
    /// the materialized game: ϕ/total within 1e-9, counts exact, profits
    /// bit-identical through the id map.
    #[test]
    fn churned_engine_matches_fresh_on_materialized_game(
        inst in arb_instance(),
        events in prop::collection::vec(
            (any::<u8>(), any::<u32>(), any::<u32>(), any::<u64>()), 0..30),
    ) {
        let profile = Profile::new(&inst.game, inst.choices.clone());
        let mut engine = Engine::new(&inst.game, profile);
        let n_tasks = inst.game.task_count();
        for event in events {
            apply_raw(&mut engine, n_tasks, event);
            let (game, choices, id_map) = engine.materialize();
            let fresh = Engine::new(&game, Profile::new(&game, choices));
            prop_assert!(
                (engine.potential() - fresh.potential()).abs() < 1e-9,
                "ϕ drift: live {} vs fresh {}",
                engine.potential(),
                fresh.potential()
            );
            prop_assert!(
                (engine.total_profit() - fresh.total_profit()).abs() < 1e-9,
                "total drift: live {} vs fresh {}",
                engine.total_profit(),
                fresh.total_profit()
            );
            prop_assert_eq!(
                engine.profile().participant_counts(),
                fresh.profile().participant_counts()
            );
            prop_assert_eq!(engine.active_count(), game.user_count());
            for (new_idx, &old) in id_map.iter().enumerate() {
                let new = UserId::from_index(new_idx);
                prop_assert_eq!(engine.profit(old), fresh.profit(new));
                prop_assert_eq!(
                    engine.profile().choice(old),
                    fresh.profile().choice(new)
                );
            }
        }
    }

    /// Dirty-set soundness across churn: recomputing only the drained dirty
    /// users keeps every surviving cached best response equal to a fresh
    /// rescan on the materialized game.
    #[test]
    fn dirty_sets_stay_sound_across_churn(
        inst in arb_instance(),
        events in prop::collection::vec(
            (any::<u8>(), any::<u32>(), any::<u32>(), any::<u64>()), 1..25),
    ) {
        let profile = Profile::new(&inst.game, inst.choices.clone());
        let mut engine = Engine::new(&inst.game, profile);
        let n_tasks = inst.game.task_count();
        let mut cache: Vec<Option<vcs_core::BestResponse>> = Vec::new();
        for event in events {
            apply_raw(&mut engine, n_tasks, event);
            cache.resize(engine.game().user_count(), None);
            for dirtied in engine.take_dirty() {
                cache[dirtied.index()] = Some(engine.best_route_set(dirtied));
            }
            let (game, _, id_map) = engine.materialize();
            for (new_idx, &old) in id_map.iter().enumerate() {
                if let Some(cached) = &cache[old.index()] {
                    let fresh_profile = Profile::new(
                        &game,
                        id_map.iter().map(|&o| engine.profile().choice(o)).collect(),
                    );
                    let fresh = best_route_set(
                        &game, &fresh_profile, UserId::from_index(new_idx),
                    );
                    prop_assert_eq!(&cached.best_routes, &fresh.best_routes);
                    prop_assert_eq!(cached.gain, fresh.gain);
                }
            }
        }
    }

    /// Join-then-immediate-leave of the same user is observationally neutral:
    /// ϕ, total profit and counts return to their pre-join values.
    #[test]
    fn join_leave_round_trip_is_neutral(
        inst in arb_instance(),
        seed in any::<u64>(),
        initial_raw in any::<u32>(),
    ) {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let profile = Profile::new(&inst.game, inst.choices.clone());
        let mut engine = Engine::new(&inst.game, profile);
        let phi_before = engine.potential();
        let total_before = engine.total_profit();
        let counts_before = engine.profile().participant_counts().to_vec();
        let mut rng = StdRng::seed_from_u64(seed);
        let routes = random_routes(&mut rng, inst.game.task_count());
        let initial = RouteId::from_index(initial_raw as usize % routes.len());
        let joined = engine
            .add_user(random_prefs(&mut rng), routes, initial)
            .unwrap();
        engine.remove_user(joined).unwrap();
        prop_assert!((engine.potential() - phi_before).abs() < 1e-9);
        prop_assert!((engine.total_profit() - total_before).abs() < 1e-9);
        prop_assert_eq!(engine.profile().participant_counts(), &counts_before[..]);
    }
}
