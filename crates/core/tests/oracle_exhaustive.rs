//! Exhaustive small-game oracle: brute-force the **entire** strategy space
//! of games with ≤ 6 users × ≤ 3 routes and check the theory against it.
//!
//! * Theorem 1/2 conformance: the set of Nash equilibria equals the set of
//!   profiles with no single-move ϕ improvement (weighted potential game),
//!   and the global ϕ-argmax is a Nash equilibrium.
//! * Every distributed dynamics (DGRN, MUUN, BRUN, BUAU, BATS) terminates
//!   at a member of the brute-forced equilibrium set, from every seed.
//! * Theorem 5: on the structured special case the measured price of
//!   anarchy (worst-NE total profit / optimum) respects the closed-form
//!   lower bound.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use vcs_algorithms::{run_distributed, DistributedAlgorithm, RunConfig};
use vcs_core::ids::{RouteId, TaskId, UserId};
use vcs_core::poa::{poa_lower_bound, special_case_optimal, SpecialCaseGame, SpecialCaseSpec};
use vcs_core::response::EPSILON;
use vcs_core::{potential, Game, PlatformParams, Profile, Route, Task, User, UserPrefs};

const ALGORITHMS: [DistributedAlgorithm; 5] = [
    DistributedAlgorithm::Dgrn,
    DistributedAlgorithm::Muun,
    DistributedAlgorithm::Brun,
    DistributedAlgorithm::Buau,
    DistributedAlgorithm::Bats,
];

/// Generates one seeded random game with at most `max_users` users and at
/// most 3 routes per user — small enough to enumerate exhaustively.
fn small_game(seed: u64, max_users: usize) -> Game {
    let mut rng = StdRng::seed_from_u64(seed);
    let n_tasks = rng.random_range(2..=6usize);
    let n_users = rng.random_range(2..=max_users);
    let tasks: Vec<Task> = (0..n_tasks)
        .map(|k| {
            Task::new(
                TaskId::from_index(k),
                rng.random_range(10.0..20.0),
                rng.random_range(0.0..1.0),
            )
        })
        .collect();
    let users: Vec<User> = (0..n_users)
        .map(|i| {
            let n_routes = rng.random_range(2..=3usize);
            let routes = (0..n_routes)
                .map(|r| {
                    let mut covered: Vec<TaskId> = (0..rng.random_range(1..4usize))
                        .map(|_| TaskId::from_index(rng.random_range(0..n_tasks)))
                        .collect();
                    covered.sort_unstable();
                    covered.dedup();
                    Route::new(
                        RouteId::from_index(r),
                        covered,
                        rng.random_range(0.0..3.0),
                        rng.random_range(0.0..3.0),
                    )
                })
                .collect();
            User::new(
                UserId::from_index(i),
                UserPrefs::new(
                    rng.random_range(0.1..0.9),
                    rng.random_range(0.1..0.9),
                    rng.random_range(0.1..0.9),
                ),
                routes,
            )
        })
        .collect();
    Game::with_paper_bounds(
        tasks,
        users,
        PlatformParams::new(rng.random_range(0.1..0.8), rng.random_range(0.1..0.8)),
    )
    .expect("generated instance is valid")
}

/// Every strategy profile of the game, odometer order.
fn all_profiles(game: &Game) -> Vec<Vec<RouteId>> {
    let dims: Vec<usize> = game.users().iter().map(|u| u.routes.len()).collect();
    let total: usize = dims.iter().product();
    assert!(total <= 729, "oracle game too large to enumerate");
    let mut out = Vec::with_capacity(total);
    let mut idx = vec![0usize; dims.len()];
    loop {
        out.push(idx.iter().map(|&r| RouteId::from_index(r)).collect());
        let mut pos = 0;
        loop {
            if pos == dims.len() {
                return out;
            }
            idx[pos] += 1;
            if idx[pos] < dims[pos] {
                break;
            }
            idx[pos] = 0;
            pos += 1;
        }
    }
}

/// Independent Nash check: no user can raise its own profit by more than
/// [`EPSILON`] with a unilateral route switch (the dynamics' stopping rule).
fn oracle_is_nash(game: &Game, profile: &Profile) -> bool {
    game.users().iter().all(|user| {
        let current = profile.profit(game, user.id);
        (0..user.routes.len()).all(|r| {
            profile.profit_if_switched(game, user.id, RouteId::from_index(r)) <= current + EPSILON
        })
    })
}

/// No unilateral move raises ϕ by more than a weighted epsilon — the
/// potential-side fixed-point condition of Theorem 2.
fn oracle_is_phi_local_max(game: &Game, profile: &Profile) -> bool {
    let phi = potential(game, profile);
    game.users().iter().enumerate().all(|(i, user)| {
        // P_i(s') − P_i(s) = α_i (ϕ(s') − ϕ(s)): an EPSILON profit gain
        // corresponds to an EPSILON/α_i potential gain.
        let alpha = user.prefs.alpha;
        (0..user.routes.len()).all(|r| {
            let mut choices = profile.choices().to_vec();
            choices[i] = RouteId::from_index(r);
            let switched = Profile::new(game, choices);
            potential(game, &switched) <= phi + EPSILON / alpha
        })
    })
}

/// The brute-forced ground truth for one game.
struct Oracle {
    equilibria: Vec<Vec<RouteId>>,
    phi_argmax: Vec<RouteId>,
    best_total: f64,
    worst_ne_total: f64,
}

fn brute_force(game: &Game) -> Oracle {
    let mut equilibria = Vec::new();
    let mut phi_argmax = None;
    let mut best_phi = f64::NEG_INFINITY;
    let mut best_total = f64::NEG_INFINITY;
    let mut worst_ne_total = f64::INFINITY;
    for choices in all_profiles(game) {
        let profile = Profile::new(game, choices.clone());
        let phi = potential(game, &profile);
        let total = profile.total_profit(game);
        best_total = best_total.max(total);
        if phi > best_phi {
            best_phi = phi;
            phi_argmax = Some(choices.clone());
        }
        if oracle_is_nash(game, &profile) {
            worst_ne_total = worst_ne_total.min(total);
            equilibria.push(choices);
        }
    }
    Oracle {
        equilibria,
        phi_argmax: phi_argmax.expect("non-empty strategy space"),
        best_total,
        worst_ne_total,
    }
}

fn oracle_games() -> Vec<Game> {
    (0..8u64).map(|seed| small_game(seed, 6)).collect()
}

#[test]
fn equilibria_exist_and_phi_argmax_is_one() {
    for (g, game) in oracle_games().iter().enumerate() {
        let oracle = brute_force(game);
        // Theorem 1/2: a potential game always has a pure NE, and the
        // global ϕ maximizer is one of them.
        assert!(!oracle.equilibria.is_empty(), "game {g}: no equilibrium");
        let argmax = Profile::new(game, oracle.phi_argmax.clone());
        assert!(
            oracle_is_nash(game, &argmax),
            "game {g}: ϕ-argmax is not a Nash equilibrium"
        );
        assert!(
            oracle.equilibria.contains(&oracle.phi_argmax),
            "game {g}: ϕ-argmax missing from the equilibrium set"
        );
    }
}

#[test]
fn nash_set_equals_phi_local_maxima() {
    // The weighted-potential identity makes the two fixed-point notions
    // coincide profile-by-profile — checked over the full strategy space.
    for (g, game) in oracle_games().iter().enumerate() {
        for choices in all_profiles(game) {
            let profile = Profile::new(game, choices);
            assert_eq!(
                oracle_is_nash(game, &profile),
                oracle_is_phi_local_max(game, &profile),
                "game {g}: NE and ϕ-local-max disagree on {:?}",
                profile.choices()
            );
        }
    }
}

#[test]
fn every_dynamics_terminates_in_the_oracle_equilibrium_set() {
    for (g, game) in oracle_games().iter().enumerate() {
        let oracle = brute_force(game);
        for algo in ALGORITHMS {
            for seed in 0..5u64 {
                let out = run_distributed(game, algo, &RunConfig::with_seed(seed));
                assert!(
                    out.converged,
                    "game {g} {algo:?} seed {seed}: no fixed point"
                );
                assert!(
                    oracle.equilibria.contains(&out.profile.choices().to_vec()),
                    "game {g} {algo:?} seed {seed}: terminal profile {:?} is not \
                     in the brute-forced equilibrium set",
                    out.profile.choices()
                );
            }
        }
    }
}

#[test]
fn theorem5_poa_bound_holds_on_the_special_case() {
    // ≤ 3 routes per user ⇒ at most 2 shared tasks; ≤ 6 users keeps the
    // full space ≤ 3^6 profiles.
    let specs = [
        SpecialCaseSpec {
            shared_base_reward: 11.0,
            private_rewards: vec![3.0, 9.0],
            shared_tasks: 2,
        },
        SpecialCaseSpec {
            shared_base_reward: 12.0,
            private_rewards: vec![2.0, 4.0, 6.0, 8.0],
            shared_tasks: 2,
        },
        SpecialCaseSpec {
            shared_base_reward: 10.0,
            private_rewards: vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0],
            shared_tasks: 1,
        },
        SpecialCaseSpec {
            shared_base_reward: 14.0,
            private_rewards: vec![5.0, 5.0, 5.0, 5.0, 5.0],
            shared_tasks: 2,
        },
    ];
    for spec in specs {
        let sc = SpecialCaseGame::build(spec.clone());
        let oracle = brute_force(&sc.game);
        assert!(!oracle.equilibria.is_empty(), "{spec:?}: no equilibrium");
        // The closed-form optimum matches the brute-forced one.
        let closed = special_case_optimal(&sc);
        assert!(
            (closed - oracle.best_total).abs() < 1e-9,
            "{spec:?}: closed-form optimum {closed} vs brute force {}",
            oracle.best_total
        );
        // Theorem 5 sandwich on the *measured* price of anarchy.
        let measured_poa = oracle.worst_ne_total / oracle.best_total;
        let bound = poa_lower_bound(&sc);
        assert!(
            measured_poa >= bound - 1e-9,
            "{spec:?}: measured PoA {measured_poa} violates bound {bound}"
        );
        assert!(measured_poa <= 1.0 + 1e-9, "{spec:?}: PoA above 1");
        // And the dynamics land inside the equilibrium set here too.
        for seed in 0..3u64 {
            let out = run_distributed(
                &sc.game,
                DistributedAlgorithm::Dgrn,
                &RunConfig::with_seed(seed),
            );
            assert!(out.converged);
            assert!(oracle.equilibria.contains(&out.profile.choices().to_vec()));
        }
    }
}
