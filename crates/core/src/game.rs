//! The multi-user route-navigation game instance (§3.1).
//!
//! A [`Game`] bundles the task set `L`, the user set `U` (each with its
//! recommended route set `R_i` and preference weights) and the platform
//! weights `(φ, θ)`. Construction validates every cross-reference and every
//! parameter range once, so the simulation loops can index unchecked.

use crate::error::GameError;
use crate::ids::{RouteId, TaskId, UserId};
use crate::route::Route;
use crate::task::Task;
use crate::user::{User, WeightBounds};
use serde::{Deserialize, Serialize};

/// Platform-controlled weight parameters (§3.1).
///
/// * `phi` (`φ`) scales the detour cost `d(s_i) = φ·h(s_i)` (Eq. 3);
/// * `theta` (`θ`) scales the congestion cost `b(s_i) = θ·c(s_i)` (Eq. 4).
///
/// Both lie strictly inside `(0, 1)`. Lowering both steers users towards task
/// coverage; raising `phi` favors short detours, raising `theta` favors
/// uncongested routes (Fig. 2).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlatformParams {
    /// Detour weight `φ ∈ (0, 1)`.
    pub phi: f64,
    /// Congestion weight `θ ∈ (0, 1)`.
    pub theta: f64,
}

impl PlatformParams {
    /// Creates platform parameters.
    pub fn new(phi: f64, theta: f64) -> Self {
        Self { phi, theta }
    }

    /// Midpoint of the Table 2 range (`φ = θ = 0.45`).
    pub fn table2_midpoint() -> Self {
        Self::new(0.45, 0.45)
    }
}

/// A fully validated instance of the multi-user route-navigation game.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Game {
    tasks: Vec<Task>,
    users: Vec<User>,
    params: PlatformParams,
    bounds: WeightBounds,
}

impl Game {
    /// Builds and validates a game instance.
    ///
    /// Validation enforces (per [`GameError`]): task ids are dense indices,
    /// every route references existing tasks without duplicates, every user
    /// has ≥ 1 route, user weights lie in `bounds`, platform weights in
    /// `(0, 1)`, rewards satisfy `a_k > 0 ∧ μ_k ∈ [0, 1]`, and route costs
    /// are finite and non-negative.
    pub fn new(
        tasks: Vec<Task>,
        users: Vec<User>,
        params: PlatformParams,
        bounds: WeightBounds,
    ) -> Result<Self, GameError> {
        for name_value in [("phi", params.phi), ("theta", params.theta)] {
            let (name, value) = name_value;
            if !(value.is_finite() && value > 0.0 && value < 1.0) {
                return Err(GameError::PlatformWeightOutOfRange { name, value });
            }
        }
        for (idx, task) in tasks.iter().enumerate() {
            debug_assert_eq!(task.id.index(), idx, "task ids must be dense indices");
            if !(task.base_reward.is_finite() && task.base_reward > 0.0) {
                return Err(GameError::RewardOutOfRange {
                    task: task.id,
                    name: "a",
                    value: task.base_reward,
                });
            }
            if !(task.increment.is_finite() && (0.0..=1.0).contains(&task.increment)) {
                return Err(GameError::RewardOutOfRange {
                    task: task.id,
                    name: "mu",
                    value: task.increment,
                });
            }
        }
        let n_tasks = tasks.len();
        let mut seen = vec![false; n_tasks];
        for user in &users {
            validate_user(n_tasks, bounds, user, &mut seen)?;
        }
        Ok(Self {
            tasks,
            users,
            params,
            bounds,
        })
    }

    /// Builds a game with the Table 2 weight bounds.
    pub fn with_paper_bounds(
        tasks: Vec<Task>,
        users: Vec<User>,
        params: PlatformParams,
    ) -> Result<Self, GameError> {
        Self::new(tasks, users, params, WeightBounds::PAPER)
    }

    /// The task set `L`.
    #[inline]
    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }

    /// The user set `U`.
    #[inline]
    pub fn users(&self) -> &[User] {
        &self.users
    }

    /// Platform weights `(φ, θ)`.
    #[inline]
    pub fn params(&self) -> PlatformParams {
        self.params
    }

    /// The weight bounds the instance was validated against.
    #[inline]
    pub fn bounds(&self) -> WeightBounds {
        self.bounds
    }

    /// Number of users `|U|`.
    #[inline]
    pub fn user_count(&self) -> usize {
        self.users.len()
    }

    /// Number of tasks `|L|`.
    #[inline]
    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }

    /// The task with identifier `id`.
    #[inline]
    pub fn task(&self, id: TaskId) -> &Task {
        &self.tasks[id.index()]
    }

    /// The user with identifier `id`.
    #[inline]
    pub fn user(&self, id: UserId) -> &User {
        &self.users[id.index()]
    }

    /// The route `route` of user `user`.
    #[inline]
    pub fn route(&self, user: UserId, route: RouteId) -> &Route {
        &self.users[user.index()].routes[route.index()]
    }

    /// Detour cost `d(r) = φ · h(r)` of a route (Eq. 3). Platform-scaled but
    /// user-independent.
    #[inline]
    pub fn detour_cost(&self, route: &Route) -> f64 {
        self.params.phi * route.detour
    }

    /// Congestion cost `b(r) = θ · c(r)` of a route (Eq. 4).
    #[inline]
    pub fn congestion_cost(&self, route: &Route) -> f64 {
        self.params.theta * route.congestion
    }

    /// The combined route cost term of Eq. 2 for user `user` travelling
    /// `route`: `β_i·d(r) + γ_i·b(r)`.
    #[inline]
    pub fn user_route_cost(&self, user: UserId, route: &Route) -> f64 {
        let prefs = self.users[user.index()].prefs;
        prefs.beta * self.detour_cost(route) + prefs.gamma * self.congestion_cost(route)
    }

    /// Validates that `choices[i]` is a legal route index for every user.
    pub fn validate_profile(&self, choices: &[RouteId]) -> Result<(), GameError> {
        if choices.len() != self.users.len() {
            return Err(GameError::InvalidProfile {
                detail: format!("length {}, expected {}", choices.len(), self.users.len()),
            });
        }
        for (user, &route) in self.users.iter().zip(choices) {
            if route.index() >= user.routes.len() {
                return Err(GameError::InvalidProfile {
                    detail: format!(
                        "user {} selects route {} but has only {} routes",
                        user.id,
                        route,
                        user.routes.len()
                    ),
                });
            }
        }
        Ok(())
    }

    /// Returns a copy of the game with user `user`'s preference weights
    /// replaced (Table 5 varies one user's `α_i`/`β_i`/`γ_i` while everyone
    /// else keeps theirs).
    ///
    /// # Errors
    ///
    /// Fails with [`GameError::UserWeightOutOfRange`] when the new weights
    /// violate the instance's bounds.
    pub fn with_user_prefs(
        &self,
        user: UserId,
        prefs: crate::user::UserPrefs,
    ) -> Result<Self, GameError> {
        let mut users = self.users.clone();
        users[user.index()].prefs = prefs;
        Self::new(self.tasks.clone(), users, self.params, self.bounds)
    }

    /// Returns a copy of the game with different platform weights `(φ, θ)`
    /// (Fig. 12 sweeps them on a fixed scenario).
    pub fn with_platform_params(&self, params: PlatformParams) -> Result<Self, GameError> {
        Self::new(self.tasks.clone(), self.users.clone(), params, self.bounds)
    }

    /// Appends a user to the game, assigning the next dense [`UserId`] and
    /// renumbering the supplied routes to dense [`RouteId`]s.
    ///
    /// This is the mutation primitive behind [`crate::Engine::add_user`]
    /// (dynamic arrivals): the new user is validated against the existing
    /// task set and weight bounds exactly as [`Game::new`] would, and the
    /// game is left untouched on error.
    pub fn push_user(
        &mut self,
        prefs: crate::user::UserPrefs,
        mut routes: Vec<Route>,
    ) -> Result<UserId, GameError> {
        let id = UserId::from_index(self.users.len());
        for (idx, route) in routes.iter_mut().enumerate() {
            route.id = RouteId::from_index(idx);
        }
        let user = User::new(id, prefs, routes);
        let mut seen = vec![false; self.tasks.len()];
        validate_user(self.tasks.len(), self.bounds, &user, &mut seen)?;
        self.users.push(user);
        Ok(id)
    }

    /// Extracts the sub-game induced by `members`: the selected users,
    /// renumbered to dense [`UserId`]s in the order given, over the **full
    /// task list** (task ids stay global, so per-task state — participant
    /// counts, share tables, coverage rows — is directly comparable across
    /// sub-games cut from the same parent).
    ///
    /// This is the construction primitive of a sharded deployment: each
    /// shard's engine runs on `subgame(interior ∪ boundary-replicas)`, and
    /// keeping task ids global is what lets a boundary move committed in one
    /// shard be applied verbatim to every replica. Tasks no member covers
    /// cost one prefix-table entry each and are otherwise inert.
    ///
    /// # Panics
    ///
    /// Panics if `members` contains an out-of-range or duplicate user id
    /// (the caller owns the partition and a bad cut is a logic error, not a
    /// recoverable input).
    pub fn subgame(&self, members: &[UserId]) -> Game {
        let mut seen = vec![false; self.users.len()];
        let users: Vec<User> = members
            .iter()
            .enumerate()
            .map(|(local, &global)| {
                assert!(
                    !std::mem::replace(&mut seen[global.index()], true),
                    "duplicate member {global}"
                );
                let source = &self.users[global.index()];
                User::new(
                    UserId::from_index(local),
                    source.prefs,
                    source.routes.clone(),
                )
            })
            .collect();
        Self::new(self.tasks.clone(), users, self.params, self.bounds)
            .expect("members of a valid game form a valid sub-game")
    }

    /// Maximum detour distance `d_max = max_i max_{r ∈ R_i} h(r)` over all
    /// recommended routes (used by Theorem 4).
    pub fn max_detour(&self) -> f64 {
        self.users
            .iter()
            .flat_map(|u| u.routes.iter())
            .map(|r| r.detour)
            .fold(0.0, f64::max)
    }

    /// Maximum congestion level `b_max` analogue of [`Game::max_detour`].
    pub fn max_congestion(&self) -> f64 {
        self.users
            .iter()
            .flat_map(|u| u.routes.iter())
            .map(|r| r.congestion)
            .fold(0.0, f64::max)
    }
}

/// Per-user validation shared by [`Game::new`] and [`Game::push_user`]:
/// non-empty route set, weights in `bounds`, finite non-negative costs, and
/// every route referencing existing tasks without duplicates. `seen` is a
/// caller-provided scratch buffer of length `n_tasks` (contents ignored).
fn validate_user(
    n_tasks: usize,
    bounds: WeightBounds,
    user: &User,
    seen: &mut [bool],
) -> Result<(), GameError> {
    if user.routes.is_empty() {
        return Err(GameError::EmptyRouteSet { user: user.id });
    }
    for triple in [
        ("alpha", user.prefs.alpha),
        ("beta", user.prefs.beta),
        ("gamma", user.prefs.gamma),
    ] {
        let (name, value) = triple;
        if !bounds.contains(value) {
            return Err(GameError::UserWeightOutOfRange {
                user: user.id,
                name,
                value,
            });
        }
    }
    for route in &user.routes {
        if !(route.detour.is_finite() && route.detour >= 0.0) {
            return Err(GameError::RouteCostOutOfRange {
                user: user.id,
                route: route.id,
                name: "detour",
                value: route.detour,
            });
        }
        if !(route.congestion.is_finite() && route.congestion >= 0.0) {
            return Err(GameError::RouteCostOutOfRange {
                user: user.id,
                route: route.id,
                name: "congestion",
                value: route.congestion,
            });
        }
        for mark in seen.iter_mut() {
            *mark = false;
        }
        for &task in &route.tasks {
            if task.index() >= n_tasks {
                return Err(GameError::UnknownTask {
                    user: user.id,
                    route: route.id,
                    task,
                });
            }
            if seen[task.index()] {
                return Err(GameError::DuplicateTaskOnRoute {
                    user: user.id,
                    route: route.id,
                    task,
                });
            }
            seen[task.index()] = true;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::RouteId;
    use crate::user::UserPrefs;

    fn simple_tasks(n: u32) -> Vec<Task> {
        (0..n)
            .map(|k| Task::new(TaskId(k), 10.0 + f64::from(k), 0.5))
            .collect()
    }

    fn user(id: u32, routes: Vec<Route>) -> User {
        User::new(UserId(id), UserPrefs::neutral(), routes)
    }

    fn params() -> PlatformParams {
        PlatformParams::new(0.4, 0.4)
    }

    #[test]
    fn valid_game_constructs() {
        let g = Game::with_paper_bounds(
            simple_tasks(3),
            vec![user(
                0,
                vec![
                    Route::new(RouteId(0), vec![TaskId(0), TaskId(2)], 0.0, 1.0),
                    Route::new(RouteId(1), vec![TaskId(1)], 2.0, 0.5),
                ],
            )],
            params(),
        )
        .unwrap();
        assert_eq!(g.user_count(), 1);
        assert_eq!(g.task_count(), 3);
        assert_eq!(g.route(UserId(0), RouteId(1)).detour, 2.0);
    }

    #[test]
    fn unknown_task_rejected() {
        let err = Game::with_paper_bounds(
            simple_tasks(1),
            vec![user(
                0,
                vec![Route::new(RouteId(0), vec![TaskId(5)], 0.0, 0.0)],
            )],
            params(),
        )
        .unwrap_err();
        assert!(matches!(
            err,
            GameError::UnknownTask {
                task: TaskId(5),
                ..
            }
        ));
    }

    #[test]
    fn duplicate_task_rejected() {
        let err = Game::with_paper_bounds(
            simple_tasks(2),
            vec![user(
                0,
                vec![Route::new(RouteId(0), vec![TaskId(1), TaskId(1)], 0.0, 0.0)],
            )],
            params(),
        )
        .unwrap_err();
        assert!(matches!(
            err,
            GameError::DuplicateTaskOnRoute {
                task: TaskId(1),
                ..
            }
        ));
    }

    #[test]
    fn empty_route_set_rejected() {
        let err =
            Game::with_paper_bounds(simple_tasks(1), vec![user(3, vec![])], params()).unwrap_err();
        assert!(matches!(err, GameError::EmptyRouteSet { user: UserId(3) }));
    }

    #[test]
    fn platform_weights_validated() {
        let err = Game::with_paper_bounds(
            simple_tasks(1),
            vec![user(0, vec![Route::new(RouteId(0), vec![], 0.0, 0.0)])],
            PlatformParams::new(0.0, 0.4),
        )
        .unwrap_err();
        assert!(matches!(
            err,
            GameError::PlatformWeightOutOfRange { name: "phi", .. }
        ));
    }

    #[test]
    fn user_weights_validated() {
        let mut u = user(0, vec![Route::new(RouteId(0), vec![], 0.0, 0.0)]);
        u.prefs.alpha = 1.5;
        let err = Game::with_paper_bounds(simple_tasks(1), vec![u], params()).unwrap_err();
        assert!(matches!(
            err,
            GameError::UserWeightOutOfRange { name: "alpha", .. }
        ));
    }

    #[test]
    fn negative_detour_rejected() {
        let err = Game::with_paper_bounds(
            simple_tasks(1),
            vec![user(0, vec![Route::new(RouteId(0), vec![], -1.0, 0.0)])],
            params(),
        )
        .unwrap_err();
        assert!(matches!(
            err,
            GameError::RouteCostOutOfRange { name: "detour", .. }
        ));
    }

    #[test]
    fn reward_parameters_validated() {
        let mut tasks = simple_tasks(1);
        tasks[0].increment = 1.5;
        let err = Game::with_paper_bounds(
            tasks,
            vec![user(0, vec![Route::new(RouteId(0), vec![], 0.0, 0.0)])],
            params(),
        )
        .unwrap_err();
        assert!(matches!(
            err,
            GameError::RewardOutOfRange { name: "mu", .. }
        ));
    }

    #[test]
    fn profile_validation() {
        let g = Game::with_paper_bounds(
            simple_tasks(1),
            vec![
                user(0, vec![Route::new(RouteId(0), vec![], 0.0, 0.0)]),
                user(
                    1,
                    vec![
                        Route::new(RouteId(0), vec![], 0.0, 0.0),
                        Route::new(RouteId(1), vec![TaskId(0)], 1.0, 0.0),
                    ],
                ),
            ],
            params(),
        )
        .unwrap();
        assert!(g.validate_profile(&[RouteId(0), RouteId(1)]).is_ok());
        assert!(g.validate_profile(&[RouteId(0)]).is_err());
        assert!(g.validate_profile(&[RouteId(1), RouteId(0)]).is_err());
    }

    #[test]
    fn max_costs_scan_all_routes() {
        let g = Game::with_paper_bounds(
            simple_tasks(1),
            vec![
                user(0, vec![Route::new(RouteId(0), vec![], 3.0, 0.2)]),
                user(1, vec![Route::new(RouteId(0), vec![], 1.0, 7.5)]),
            ],
            params(),
        )
        .unwrap();
        assert_eq!(g.max_detour(), 3.0);
        assert_eq!(g.max_congestion(), 7.5);
    }

    #[test]
    fn with_user_prefs_replaces_one_user() {
        let g = Game::with_paper_bounds(
            simple_tasks(1),
            vec![
                user(0, vec![Route::new(RouteId(0), vec![], 0.0, 0.0)]),
                user(1, vec![Route::new(RouteId(0), vec![], 0.0, 0.0)]),
            ],
            params(),
        )
        .unwrap();
        let g2 = g
            .with_user_prefs(UserId(1), UserPrefs::new(0.2, 0.8, 0.3))
            .unwrap();
        assert_eq!(g2.user(UserId(1)).prefs.alpha, 0.2);
        assert_eq!(g2.user(UserId(0)).prefs, g.user(UserId(0)).prefs);
        assert!(g
            .with_user_prefs(UserId(0), UserPrefs::new(5.0, 0.5, 0.5))
            .is_err());
    }

    #[test]
    fn with_platform_params_revalidates() {
        let g = Game::with_paper_bounds(
            simple_tasks(1),
            vec![user(0, vec![Route::new(RouteId(0), vec![], 0.0, 0.0)])],
            params(),
        )
        .unwrap();
        let g2 = g
            .with_platform_params(PlatformParams::new(0.7, 0.2))
            .unwrap();
        assert_eq!(g2.params().phi, 0.7);
        assert!(g
            .with_platform_params(PlatformParams::new(0.0, 0.2))
            .is_err());
    }

    #[test]
    fn push_user_renumbers_and_validates() {
        let mut g = Game::with_paper_bounds(
            simple_tasks(2),
            vec![user(0, vec![Route::new(RouteId(0), vec![], 0.0, 0.0)])],
            params(),
        )
        .unwrap();
        let id = g
            .push_user(
                UserPrefs::neutral(),
                vec![
                    Route::new(RouteId(7), vec![TaskId(1)], 1.0, 0.5),
                    Route::new(RouteId(9), vec![], 0.0, 0.0),
                ],
            )
            .unwrap();
        assert_eq!(id, UserId(1));
        assert_eq!(g.user_count(), 2);
        // Route ids are renumbered densely regardless of the caller's ids.
        assert_eq!(g.user(id).routes[0].id, RouteId(0));
        assert_eq!(g.user(id).routes[1].id, RouteId(1));
        // Invalid users leave the game untouched.
        let err = g
            .push_user(
                UserPrefs::neutral(),
                vec![Route::new(RouteId(0), vec![TaskId(9)], 0.0, 0.0)],
            )
            .unwrap_err();
        assert!(matches!(
            err,
            GameError::UnknownTask {
                task: TaskId(9),
                ..
            }
        ));
        assert_eq!(g.user_count(), 2);
        assert!(g.push_user(UserPrefs::neutral(), vec![]).is_err());
    }

    #[test]
    fn subgame_renumbers_users_and_keeps_global_tasks() {
        let g = Game::with_paper_bounds(
            simple_tasks(4),
            vec![
                user(0, vec![Route::new(RouteId(0), vec![TaskId(0)], 0.1, 0.1)]),
                user(1, vec![Route::new(RouteId(0), vec![TaskId(3)], 0.2, 0.2)]),
                user(2, vec![Route::new(RouteId(0), vec![TaskId(1)], 0.3, 0.3)]),
            ],
            params(),
        )
        .unwrap();
        let sub = g.subgame(&[UserId(2), UserId(0)]);
        assert_eq!(sub.user_count(), 2);
        assert_eq!(sub.task_count(), 4, "task ids stay global");
        // Local id 0 is global user 2: same routes over the same task ids.
        assert_eq!(sub.user(UserId(0)).routes[0].tasks, vec![TaskId(1)]);
        assert_eq!(sub.user(UserId(1)).routes[0].tasks, vec![TaskId(0)]);
        assert_eq!(sub.user(UserId(0)).id, UserId(0), "dense renumbering");
    }

    #[test]
    #[should_panic(expected = "duplicate member")]
    fn subgame_rejects_duplicate_members() {
        let g = Game::with_paper_bounds(
            simple_tasks(1),
            vec![user(
                0,
                vec![Route::new(RouteId(0), vec![TaskId(0)], 0.0, 0.0)],
            )],
            params(),
        )
        .unwrap();
        let _ = g.subgame(&[UserId(0), UserId(0)]);
    }

    #[test]
    fn user_route_cost_combines_weights() {
        let g = Game::with_paper_bounds(
            simple_tasks(1),
            vec![user(0, vec![Route::new(RouteId(0), vec![], 2.0, 4.0)])],
            PlatformParams::new(0.5, 0.25),
        )
        .unwrap();
        let r = g.route(UserId(0), RouteId(0)).clone();
        // β=0.5 · (φ=0.5 · h=2.0) + γ=0.5 · (θ=0.25 · c=4.0) = 0.5 + 0.5
        assert!((g.user_route_cost(UserId(0), &r) - 1.0).abs() < 1e-12);
    }
}
