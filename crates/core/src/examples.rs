//! The paper's hard-coded illustrative instances (Fig. 1 and Fig. 2).
//!
//! These tiny games are used by the `repro fig1` / `repro fig2` experiment
//! runners, by the quickstart example and by tests: they pin down the exact
//! numbers of the paper's motivating discussion (total profit 6 vs 11 vs 12
//! for Fig. 1).

use crate::game::{Game, PlatformParams};
use crate::ids::{RouteId, TaskId, UserId};
use crate::route::Route;
use crate::task::Task;
use crate::user::{User, UserPrefs, WeightBounds};

/// Uniform `α` used by both illustrative instances; rewards in the paper's
/// figure are quoted unscaled, so figure-level profits are profit `/ α`.
pub const FIG_ALPHA: f64 = 0.5;

/// Builds the Fig. 1 instance.
///
/// Three tasks (`$5`, `$6`, `$1`, all `μ = 0`), five routes and three users:
///
/// * `u1 ∈ {r1, r2}` where `r1` covers the `$5` task and `r2` the `$6` task;
/// * `u2 ∈ {r3}` where `r3` covers the `$6` task;
/// * `u3 ∈ {r4, r5}` where `r4` covers the `$6` task and `r5` the `$1` task.
///
/// All detours/congestions are zero, so profits are pure (scaled) reward
/// shares. The three solutions discussed in the figure:
///
/// * *Maximum reward*: everyone picks the `$6` task → total `6`;
/// * *Distributed equilibrium*: `u1:r1, u2:r3, u3:r4` → total `11`, Nash;
/// * *Centralized optimal*: `u1:r1, u2:r3, u3:r5` → total `12`, **not** Nash
///   (`u3` would deviate to `r4` for `3 > 1`).
pub fn fig1_instance() -> Game {
    let tasks = vec![
        Task::new(TaskId(0), 5.0, 0.0),
        Task::new(TaskId(1), 6.0, 0.0),
        Task::new(TaskId(2), 1.0, 0.0),
    ];
    let prefs = UserPrefs::new(FIG_ALPHA, FIG_ALPHA, FIG_ALPHA);
    let users = vec![
        // u1: r1 = {$5 task}, r2 = {$6 task}
        User::new(
            UserId(0),
            prefs,
            vec![
                Route::new(RouteId(0), vec![TaskId(0)], 0.0, 0.0),
                Route::new(RouteId(1), vec![TaskId(1)], 0.0, 0.0),
            ],
        ),
        // u2: r3 = {$6 task}
        User::new(
            UserId(1),
            prefs,
            vec![Route::new(RouteId(0), vec![TaskId(1)], 0.0, 0.0)],
        ),
        // u3: r4 = {$6 task}, r5 = {$1 task}
        User::new(
            UserId(2),
            prefs,
            vec![
                Route::new(RouteId(0), vec![TaskId(1)], 0.0, 0.0),
                Route::new(RouteId(1), vec![TaskId(2)], 0.0, 0.0),
            ],
        ),
    ];
    Game::new(
        tasks,
        users,
        PlatformParams::new(0.5, 0.5),
        WeightBounds::PAPER,
    )
    .expect("Fig. 1 instance is valid")
}

/// The three named profiles of Fig. 1, as route choices `(u1, u2, u3)`.
pub mod fig1_profiles {
    use crate::ids::RouteId;

    /// "Maximum profit" (greedy reward chasing): `u1:r2, u2:r3, u3:r4`.
    pub const MAXIMUM_REWARD: [RouteId; 3] = [RouteId(1), RouteId(0), RouteId(0)];
    /// "Distributed equilibrium": `u1:r1, u2:r3, u3:r4`.
    pub const DISTRIBUTED_EQUILIBRIUM: [RouteId; 3] = [RouteId(0), RouteId(0), RouteId(0)];
    /// "Centralized optimal": `u1:r1, u2:r3, u3:r5`.
    pub const CENTRALIZED_OPTIMAL: [RouteId; 3] = [RouteId(0), RouteId(0), RouteId(1)];
}

/// Builds the Fig. 2 instance for given platform weights `(φ, θ)`.
///
/// Two users at the same origin, two routes each:
///
/// * `r1`: detour `h = 0`, congestion `c = 3`, covers task 0;
/// * `r2`: detour `h = 2`, congestion `c = 1`, covers task 1.
///
/// Both tasks pay `w = 3` (`μ = 0`). The equilibrium reached by best-response
/// dynamics illustrates the platform knobs: with small `φ, θ` the users split
/// across both routes (maximizing task coverage); with large `φ` both take
/// the zero-detour `r1`; with large `θ` both take the low-congestion `r2`.
pub fn fig2_instance(phi: f64, theta: f64) -> Game {
    let tasks = vec![
        Task::new(TaskId(0), 3.0, 0.0),
        Task::new(TaskId(1), 3.0, 0.0),
    ];
    let prefs = UserPrefs::new(FIG_ALPHA, FIG_ALPHA, FIG_ALPHA);
    let routes = || {
        vec![
            Route::new(RouteId(0), vec![TaskId(0)], 0.0, 3.0),
            Route::new(RouteId(1), vec![TaskId(1)], 2.0, 1.0),
        ]
    };
    let users = vec![
        User::new(UserId(0), prefs, routes()),
        User::new(UserId(1), prefs, routes()),
    ];
    // Fig. 2 uses (φ, θ) up to 1; widen the user bounds so the uniform α stays
    // valid while φ, θ stay within their own (0, 1) constraint.
    Game::new(
        tasks,
        users,
        PlatformParams::new(phi, theta),
        WeightBounds::PAPER,
    )
    .expect("Fig. 2 instance is valid")
}

/// The Fig. 2 parameter rows: `(φ, θ)` pairs the figure tabulates. The
/// figure's `φ = 1` case is represented by the largest admissible value.
pub const FIG2_ROWS: [(f64, f64); 3] = [(0.1, 0.1), (0.99, 0.1), (0.1, 0.99)];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::Profile;
    use crate::response::{best_route_set, is_nash};

    #[test]
    fn fig1_totals_match_paper() {
        let g = fig1_instance();
        let unscale = 1.0 / FIG_ALPHA;
        let total =
            |choices: &[RouteId; 3]| Profile::new(&g, choices.to_vec()).total_profit(&g) * unscale;
        assert!((total(&fig1_profiles::MAXIMUM_REWARD) - 6.0).abs() < 1e-9);
        assert!((total(&fig1_profiles::DISTRIBUTED_EQUILIBRIUM) - 11.0).abs() < 1e-9);
        assert!((total(&fig1_profiles::CENTRALIZED_OPTIMAL) - 12.0).abs() < 1e-9);
    }

    #[test]
    fn fig1_equilibrium_classification_matches_paper() {
        let g = fig1_instance();
        let nash = |choices: &[RouteId; 3]| is_nash(&g, &Profile::new(&g, choices.to_vec()));
        assert!(!nash(&fig1_profiles::MAXIMUM_REWARD));
        assert!(nash(&fig1_profiles::DISTRIBUTED_EQUILIBRIUM));
        assert!(!nash(&fig1_profiles::CENTRALIZED_OPTIMAL));
    }

    #[test]
    fn fig1_u3_deviates_from_centralized_optimal() {
        let g = fig1_instance();
        let p = Profile::new(&g, fig1_profiles::CENTRALIZED_OPTIMAL.to_vec());
        let br = best_route_set(&g, &p, UserId(2));
        assert_eq!(br.best_routes, vec![RouteId(0)]); // u3 switches to r4
                                                      // Gains (6/2 − 1)·α = 2·0.5 = 1.
        assert!((br.gain - 1.0).abs() < 1e-9);
    }

    /// Drives best-response dynamics to equilibrium from a fixed start and
    /// checks the Fig. 2 outcome for each parameter row.
    fn fig2_equilibrium(phi: f64, theta: f64) -> Vec<RouteId> {
        let g = fig2_instance(phi, theta);
        let mut p = Profile::all_first(&g);
        for _ in 0..50 {
            let mut moved = false;
            for i in 0..2u32 {
                let br = best_route_set(&g, &p, UserId(i));
                if let Some(r) = br.first() {
                    p.apply_move(&g, UserId(i), r);
                    moved = true;
                }
            }
            if !moved {
                break;
            }
        }
        assert!(is_nash(&g, &p));
        p.choices().to_vec()
    }

    #[test]
    fn fig2_small_weights_split_users() {
        let eq = fig2_equilibrium(0.1, 0.1);
        // One user per route: maximizes task coverage.
        assert_ne!(eq[0], eq[1]);
    }

    #[test]
    fn fig2_large_phi_gathers_on_zero_detour_route() {
        let eq = fig2_equilibrium(0.99, 0.1);
        assert_eq!(eq, vec![RouteId(0), RouteId(0)]);
    }

    #[test]
    fn fig2_large_theta_gathers_on_low_congestion_route() {
        let eq = fig2_equilibrium(0.1, 0.99);
        assert_eq!(eq, vec![RouteId(1), RouteId(1)]);
    }
}
