//! Error types for game construction and validation.

use crate::ids::{RouteId, TaskId, UserId};
use std::fmt;

/// Errors raised while constructing or validating a [`crate::Game`].
///
/// The game model validates its inputs eagerly so that the hot simulation loop
/// can index without checks: every route must reference existing tasks, every
/// user must have at least one recommended route, and every weight parameter
/// must lie in the range the paper prescribes (Table 2 / §3.1).
#[derive(Debug, Clone, PartialEq)]
pub enum GameError {
    /// A route references a task id that is not part of the game's task set.
    UnknownTask {
        /// The offending user.
        user: UserId,
        /// The route within that user's recommended set.
        route: RouteId,
        /// The task id that does not exist.
        task: TaskId,
    },
    /// A user has an empty recommended route set; the paper guarantees each
    /// user receives at least one route (the shortest route itself).
    EmptyRouteSet {
        /// The user with no routes.
        user: UserId,
    },
    /// A route lists the same task twice.
    DuplicateTaskOnRoute {
        /// The offending user.
        user: UserId,
        /// The route within that user's recommended set.
        route: RouteId,
        /// The duplicated task.
        task: TaskId,
    },
    /// A user weight parameter (`α_i`, `β_i`, `γ_i`) is outside
    /// `(e_min, e_max)` with `e_min > 0` (§3.1).
    UserWeightOutOfRange {
        /// The offending user.
        user: UserId,
        /// Name of the parameter (`"alpha"`, `"beta"` or `"gamma"`).
        name: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// A platform weight parameter (`φ` or `θ`) is outside `(0, 1)` (§3.1).
    PlatformWeightOutOfRange {
        /// Name of the parameter (`"phi"` or `"theta"`).
        name: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// A task reward parameter is invalid: `a_k` must be positive and finite,
    /// `μ_k` must lie in `[0, 1]` (Eq. 1).
    RewardOutOfRange {
        /// The offending task.
        task: TaskId,
        /// Name of the parameter (`"a"` or `"mu"`).
        name: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// A route cost (`h` or `c`) is negative or non-finite.
    RouteCostOutOfRange {
        /// The offending user.
        user: UserId,
        /// The route within that user's recommended set.
        route: RouteId,
        /// Name of the cost (`"detour"` or `"congestion"`).
        name: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// A strategy profile has the wrong number of entries or selects a route
    /// index outside a user's recommended set.
    InvalidProfile {
        /// Human-readable description of the violation.
        detail: String,
    },
    /// An operation addressed a user that does not exist or has already left
    /// the platform (dynamic arrival/departure, see [`crate::Engine`]).
    UnknownUser {
        /// The unresolvable user id.
        user: UserId,
    },
}

impl fmt::Display for GameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GameError::UnknownTask { user, route, task } => {
                write!(f, "route {route} of user {user} covers unknown task {task}")
            }
            GameError::EmptyRouteSet { user } => {
                write!(f, "user {user} has an empty recommended route set")
            }
            GameError::DuplicateTaskOnRoute { user, route, task } => {
                write!(f, "route {route} of user {user} lists task {task} twice")
            }
            GameError::UserWeightOutOfRange { user, name, value } => write!(
                f,
                "user {user} weight {name}={value} outside the open interval (e_min, e_max)"
            ),
            GameError::PlatformWeightOutOfRange { name, value } => {
                write!(
                    f,
                    "platform weight {name}={value} outside the open interval (0, 1)"
                )
            }
            GameError::RewardOutOfRange { task, name, value } => {
                write!(f, "task {task} reward parameter {name}={value} is invalid")
            }
            GameError::RouteCostOutOfRange {
                user,
                route,
                name,
                value,
            } => {
                write!(
                    f,
                    "route {route} of user {user} has invalid {name} cost {value}"
                )
            }
            GameError::InvalidProfile { detail } => write!(f, "invalid strategy profile: {detail}"),
            GameError::UnknownUser { user } => {
                write!(f, "user {user} does not exist or has left the platform")
            }
        }
    }
}

impl std::error::Error for GameError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_entities() {
        let err = GameError::UnknownTask {
            user: UserId(2),
            route: RouteId(1),
            task: TaskId(9),
        };
        let msg = err.to_string();
        assert!(msg.contains("u2"), "{msg}");
        assert!(msg.contains("r1"), "{msg}");
        assert!(msg.contains("t9"), "{msg}");
    }

    #[test]
    fn error_trait_object_compatible() {
        let err: Box<dyn std::error::Error> =
            Box::new(GameError::EmptyRouteSet { user: UserId(0) });
        assert!(err.to_string().contains("empty recommended route set"));
    }

    #[test]
    fn invalid_profile_carries_detail() {
        let err = GameError::InvalidProfile {
            detail: "length 3, expected 4".into(),
        };
        assert!(err.to_string().contains("length 3, expected 4"));
    }
}
