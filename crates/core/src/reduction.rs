//! Theorem 1: the maximum-set-cover reduction showing NP-hardness of the
//! centralized profit-maximization problem.
//!
//! Given a set-cover instance (universe `E`, a collection of subsets, a pick
//! budget `h`), the reduction builds a game with `h` users sharing the same
//! recommended route set (one route per subset), all tasks paying a fixed
//! reward `a` (`μ_k = 0`), zero costs and `α_i` uniform. In that game the
//! total profit of a profile is exactly `a ×` (number of covered tasks), so
//! maximizing total profit solves maximum set cover.
//!
//! This module is a *constructive artifact* of the proof: it exists so that
//! the correspondence can be exercised by tests, not as a practical solver.

use crate::game::{Game, PlatformParams};
use crate::ids::{RouteId, TaskId, UserId};
use crate::profile::Profile;
use crate::route::Route;
use crate::task::Task;
use crate::user::{User, UserPrefs, WeightBounds};

/// A maximum set cover instance: choose `picks` subsets maximizing the number
/// of covered elements of the universe `0..universe`.
#[derive(Debug, Clone, PartialEq)]
pub struct SetCoverInstance {
    /// Size of the universe `|E|`; elements are `0..universe`.
    pub universe: usize,
    /// The collection of subsets, each listing element indices.
    pub subsets: Vec<Vec<usize>>,
    /// Number of subsets to select (`h`).
    pub picks: usize,
}

/// The uniform task reward used by the reduction; any positive value works.
pub const REDUCTION_REWARD: f64 = 10.0;
/// The uniform `α` used by the reduction. (The paper sets `α_i = 1`; any
/// value inside the weight bounds yields the same argmax.)
pub const REDUCTION_ALPHA: f64 = 0.5;

/// Builds the Theorem 1 game from a set-cover instance.
///
/// # Panics
///
/// Panics if the instance has no subsets, zero picks, or a subset referencing
/// an element outside the universe.
pub fn set_cover_to_game(instance: &SetCoverInstance) -> Game {
    assert!(!instance.subsets.is_empty(), "need at least one subset");
    assert!(instance.picks > 0, "need at least one pick");
    let tasks: Vec<Task> = (0..instance.universe)
        .map(|e| Task::new(TaskId::from_index(e), REDUCTION_REWARD, 0.0))
        .collect();
    let routes: Vec<Route> = instance
        .subsets
        .iter()
        .enumerate()
        .map(|(j, subset)| {
            let tasks = subset
                .iter()
                .map(|&e| {
                    assert!(e < instance.universe, "subset element out of universe");
                    TaskId::from_index(e)
                })
                .collect();
            Route::new(RouteId::from_index(j), tasks, 0.0, 0.0)
        })
        .collect();
    let prefs = UserPrefs::new(REDUCTION_ALPHA, REDUCTION_ALPHA, REDUCTION_ALPHA);
    let users = (0..instance.picks)
        .map(|i| User::new(UserId::from_index(i), prefs, routes.clone()))
        .collect();
    Game::new(
        tasks,
        users,
        PlatformParams::new(0.5, 0.5),
        WeightBounds::PAPER,
    )
    .expect("reduction always builds a valid game")
}

/// Number of covered elements of the set-cover instance corresponding to a
/// game profile (i.e. distinct tasks covered by the selected routes).
pub fn covered_elements(_game: &Game, profile: &Profile) -> usize {
    profile.covered_tasks()
}

/// The exact correspondence of the proof: total profit equals
/// `α · a · covered`, so this converts a profile's total profit into the
/// set-cover objective it certifies.
pub fn profit_to_cover_count(total_profit: f64) -> f64 {
    total_profit / (REDUCTION_ALPHA * REDUCTION_REWARD)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn instance() -> SetCoverInstance {
        SetCoverInstance {
            universe: 6,
            subsets: vec![vec![0, 1, 2], vec![2, 3], vec![3, 4, 5], vec![0, 5]],
            picks: 2,
        }
    }

    #[test]
    fn reduction_shapes() {
        let inst = instance();
        let g = set_cover_to_game(&inst);
        assert_eq!(g.user_count(), 2);
        assert_eq!(g.task_count(), 6);
        // All users share the same route set.
        assert_eq!(g.users()[0].routes, g.users()[1].routes);
    }

    #[test]
    fn total_profit_counts_covered_elements() {
        let inst = instance();
        let g = set_cover_to_game(&inst);
        // Pick subsets 0 and 2: covers {0,1,2} ∪ {3,4,5} = all 6 elements.
        let p = Profile::new(&g, vec![RouteId(0), RouteId(2)]);
        assert_eq!(covered_elements(&g, &p), 6);
        let total = p.total_profit(&g);
        assert!((profit_to_cover_count(total) - 6.0).abs() < 1e-9);
        // Overlapping picks cover fewer elements and earn less profit:
        // subsets 0 and 1 cover {0,1,2,3} = 4.
        let q = Profile::new(&g, vec![RouteId(0), RouteId(1)]);
        assert_eq!(covered_elements(&g, &q), 4);
        assert!((profit_to_cover_count(q.total_profit(&g)) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn brute_force_optima_coincide() {
        let inst = instance();
        let g = set_cover_to_game(&inst);
        // Brute force the game side.
        let mut best_profit = f64::NEG_INFINITY;
        let mut best_cover_from_game = 0;
        for c0 in 0..4u32 {
            for c1 in 0..4u32 {
                let p = Profile::new(&g, vec![RouteId(c0), RouteId(c1)]);
                let total = p.total_profit(&g);
                if total > best_profit {
                    best_profit = total;
                    best_cover_from_game = covered_elements(&g, &p);
                }
            }
        }
        // Brute force the set-cover side.
        let mut best_cover = 0;
        for a in 0..4 {
            for b in 0..4 {
                let mut covered = vec![false; inst.universe];
                for &e in inst.subsets[a].iter().chain(&inst.subsets[b]) {
                    covered[e] = true;
                }
                best_cover = best_cover.max(covered.iter().filter(|&&c| c).count());
            }
        }
        assert_eq!(best_cover_from_game, best_cover);
        assert!((profit_to_cover_count(best_profit) - best_cover as f64).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "subset element out of universe")]
    fn invalid_subset_rejected() {
        let inst = SetCoverInstance {
            universe: 2,
            subsets: vec![vec![5]],
            picks: 1,
        };
        let _ = set_cover_to_game(&inst);
    }
}
