//! Recommended routes: the actions of the route-navigation game.
//!
//! A route belongs to exactly one user's recommended set `R_i`. For the game
//! it is fully described by (a) the set of tasks it covers, (b) its detour
//! distance `h(r)` relative to the user's shortest route, and (c) its
//! congestion level `c(r)`. The optional geometry is provenance from the
//! road-network substrate used only for rendering (Fig. 13).

use crate::ids::{RouteId, TaskId};
use serde::{Deserialize, Serialize};

/// One recommended route of a user.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Route {
    /// Identifier within the owning user's recommended set.
    pub id: RouteId,
    /// Tasks covered by this route (`L_r`), without duplicates.
    pub tasks: Vec<TaskId>,
    /// Detour distance `h(r)`: extra distance versus the user's shortest
    /// origin–destination route. Non-negative; `0` for the shortest route.
    pub detour: f64,
    /// Congestion level `c(r)` of the route. Non-negative. The paper assumes
    /// it is independent of other users' decisions (§3.1).
    pub congestion: f64,
    /// Optional polyline geometry `(x, y)` for rendering; ignored by the game.
    pub geometry: Option<Vec<(f64, f64)>>,
}

impl Route {
    /// Creates a route from its game-relevant data.
    pub fn new(id: RouteId, tasks: Vec<TaskId>, detour: f64, congestion: f64) -> Self {
        Self {
            id,
            tasks,
            detour,
            congestion,
            geometry: None,
        }
    }

    /// Attaches polyline geometry (builder style).
    #[must_use]
    pub fn with_geometry(mut self, geometry: Vec<(f64, f64)>) -> Self {
        self.geometry = Some(geometry);
        self
    }

    /// Whether the route covers task `task`.
    #[inline]
    pub fn covers(&self, task: TaskId) -> bool {
        self.tasks.contains(&task)
    }

    /// Number of tasks covered.
    #[inline]
    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_checks_membership() {
        let r = Route::new(RouteId(0), vec![TaskId(1), TaskId(4)], 2.0, 0.5);
        assert!(r.covers(TaskId(1)));
        assert!(r.covers(TaskId(4)));
        assert!(!r.covers(TaskId(2)));
        assert_eq!(r.task_count(), 2);
    }

    #[test]
    fn empty_route_is_valid_action() {
        // A route that covers no tasks is still a legal action (the user just
        // drives through); the paper's shortest route often covers nothing.
        let r = Route::new(RouteId(1), vec![], 0.0, 1.0);
        assert_eq!(r.task_count(), 0);
        assert!(!r.covers(TaskId(0)));
    }

    #[test]
    fn geometry_builder_attaches_polyline() {
        let r =
            Route::new(RouteId(0), vec![], 0.0, 0.0).with_geometry(vec![(0.0, 0.0), (1.0, 1.0)]);
        assert_eq!(r.geometry.as_ref().map(Vec::len), Some(2));
    }
}
