//! Users (vehicle drivers) and their preference weights.

use crate::ids::UserId;
use crate::route::Route;
use serde::{Deserialize, Serialize};

/// Bounds `(e_min, e_max)` for the user weight parameters `α_i, β_i, γ_i`
/// (§3.1: `e_min < α_i, β_i, γ_i < e_max` with `e_min > 0`).
///
/// The defaults reproduce Table 2: weights drawn from `[0.1, 0.9]`, so the
/// open validation interval is `(0.1 − ε, 0.9 + ε)`. Theorem 4's slot bound
/// uses the same `e_min`/`e_max`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WeightBounds {
    /// Strict lower bound `e_min > 0`.
    pub e_min: f64,
    /// Strict upper bound `e_max`.
    pub e_max: f64,
}

impl WeightBounds {
    /// Table 2 bounds: user weights in `[0.1, 0.9]`.
    pub const PAPER: WeightBounds = WeightBounds {
        e_min: 0.1 - 1e-9,
        e_max: 0.9 + 1e-9,
    };

    /// Whether `value` lies strictly inside `(e_min, e_max)`.
    #[inline]
    pub fn contains(&self, value: f64) -> bool {
        value.is_finite() && value > self.e_min && value < self.e_max
    }
}

impl Default for WeightBounds {
    fn default() -> Self {
        Self::PAPER
    }
}

/// Individual preference weights of a user (Eq. 2).
///
/// * `alpha` (`α_i`) scales the task-reward term — raise it to chase rewards;
/// * `beta` (`β_i`) scales the detour cost — raise it to stay near the
///   shortest route;
/// * `gamma` (`γ_i`) scales the congestion cost — raise it to avoid congested
///   routes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UserPrefs {
    /// Reward weight `α_i`.
    pub alpha: f64,
    /// Detour-cost weight `β_i`.
    pub beta: f64,
    /// Congestion-cost weight `γ_i`.
    pub gamma: f64,
}

impl UserPrefs {
    /// Creates a preference triple.
    pub fn new(alpha: f64, beta: f64, gamma: f64) -> Self {
        Self { alpha, beta, gamma }
    }

    /// Neutral preferences (`α = β = γ = 0.5`), the midpoint of Table 2.
    pub fn neutral() -> Self {
        Self::new(0.5, 0.5, 0.5)
    }
}

/// A mobile user: preference weights plus the recommended route set `R_i`
/// received from the platform.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct User {
    /// Identifier; equals the user's index in [`crate::Game::users`].
    pub id: UserId,
    /// The user's preference weights `(α_i, β_i, γ_i)`.
    pub prefs: UserPrefs,
    /// Recommended route set `R_i` (1–5 routes under Table 2).
    pub routes: Vec<Route>,
}

impl User {
    /// Creates a user.
    pub fn new(id: UserId, prefs: UserPrefs, routes: Vec<Route>) -> Self {
        Self { id, prefs, routes }
    }

    /// Number of recommended routes `|R_i|`.
    #[inline]
    pub fn route_count(&self) -> usize {
        self.routes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::RouteId;

    #[test]
    fn paper_bounds_accept_table2_range() {
        let b = WeightBounds::PAPER;
        assert!(b.contains(0.1));
        assert!(b.contains(0.5));
        assert!(b.contains(0.9));
        assert!(!b.contains(0.0));
        assert!(!b.contains(1.0));
        assert!(!b.contains(f64::NAN));
        assert!(!b.contains(f64::INFINITY));
    }

    #[test]
    fn neutral_prefs_are_midpoint() {
        let p = UserPrefs::neutral();
        assert_eq!((p.alpha, p.beta, p.gamma), (0.5, 0.5, 0.5));
    }

    #[test]
    fn user_route_count() {
        let u = User::new(
            UserId(0),
            UserPrefs::neutral(),
            vec![
                Route::new(RouteId(0), vec![], 0.0, 0.0),
                Route::new(RouteId(1), vec![], 1.0, 0.2),
            ],
        );
        assert_eq!(u.route_count(), 2);
    }

    #[test]
    fn default_bounds_are_paper_bounds() {
        assert_eq!(WeightBounds::default(), WeightBounds::PAPER);
    }
}
