//! Contiguous segmented storage: the struct-of-arrays backbone of the
//! incremental engine.
//!
//! The engine's hot per-entity tables — per-task share/prefix tables, the
//! task→users inverted index, per-(user, route) cost rows and flattened
//! route task lists — are all "a dense id space of rows, each row a short
//! slice". Storing them as `Vec<Vec<T>>` (the pre-slab layout) costs one
//! heap allocation and one pointer chase per row; at 10⁵ users that is
//! hundreds of thousands of allocations at construction and cache-hostile
//! scatter at query time.
//!
//! [`SegmentedSlab`] keeps every row in **one** contiguous backing vector,
//! with a per-row `(offset, len, capacity)` segment table. Lookups are one
//! segment read plus an indexed slice into the shared backing store — CSR
//! (compressed sparse row) layout, extended with per-row slack so rows can
//! grow:
//!
//! * rows created by [`push_row`](SegmentedSlab::push_row) are exact-sized
//!   (classic CSR; appending a *new* row never moves existing data);
//! * [`push_to_row`](SegmentedSlab::push_to_row) grows an existing row in
//!   amortized O(1): a full row is relocated to the end of the backing store
//!   with doubled capacity, leaving a dead hole behind (the churn path —
//!   `Engine::add_user` growing a task's share table or inverted-index row).
//!   Holes are bounded by the doubling schedule and are dropped whenever the
//!   engine is rebuilt from a materialized game.
//!
//! Row contents are `Copy` — every engine table stores plain ids or `f64`s —
//! which keeps relocation a `memcpy` and the whole module free of drop
//! bookkeeping.

/// One row's view into the shared backing store.
#[derive(Debug, Clone, Copy)]
struct Segment {
    off: usize,
    len: usize,
    cap: usize,
}

/// A growable CSR-style slab: dense row ids, contiguous backing storage.
#[derive(Debug, Clone, Default)]
pub struct SegmentedSlab<T: Copy> {
    data: Vec<T>,
    segs: Vec<Segment>,
}

impl<T: Copy> SegmentedSlab<T> {
    /// An empty slab with no rows.
    pub fn new() -> Self {
        Self {
            data: Vec::new(),
            segs: Vec::new(),
        }
    }

    /// An empty slab pre-sized for `rows` rows totalling `items` elements
    /// (exact sizing at engine construction avoids every reallocation).
    pub fn with_capacity(rows: usize, items: usize) -> Self {
        Self {
            data: Vec::with_capacity(items),
            segs: Vec::with_capacity(rows),
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.segs.len()
    }

    /// Length of row `row`.
    #[inline]
    pub fn row_len(&self, row: usize) -> usize {
        self.segs[row].len
    }

    /// The elements of row `row`, contiguous.
    #[inline]
    pub fn row(&self, row: usize) -> &[T] {
        let seg = self.segs[row];
        &self.data[seg.off..seg.off + seg.len]
    }

    /// Mutable view of row `row`.
    #[inline]
    pub fn row_mut(&mut self, row: usize) -> &mut [T] {
        let seg = self.segs[row];
        &mut self.data[seg.off..seg.off + seg.len]
    }

    /// Builds a slab from pre-filled backing storage partitioned into
    /// consecutive rows of the given lengths (classic CSR construction: the
    /// caller counts row sizes, computes offsets, fills one flat vector).
    /// Every row is exact-sized; `data.len()` must equal the length sum.
    pub fn from_filled(data: Vec<T>, row_lens: &[usize]) -> Self {
        let mut segs = Vec::with_capacity(row_lens.len());
        let mut off = 0;
        for &len in row_lens {
            segs.push(Segment { off, len, cap: len });
            off += len;
        }
        assert_eq!(
            off,
            data.len(),
            "row lengths must partition the backing store"
        );
        Self { data, segs }
    }

    /// Appends a new exact-sized row holding `items`, returning its row id.
    /// Existing rows never move.
    pub fn push_row(&mut self, items: &[T]) -> usize {
        let off = self.data.len();
        self.data.extend_from_slice(items);
        self.segs.push(Segment {
            off,
            len: items.len(),
            cap: items.len(),
        });
        self.segs.len() - 1
    }

    /// Appends a new empty row, returning its row id.
    pub fn push_empty_row(&mut self) -> usize {
        self.push_row(&[])
    }

    /// Appends `value` to row `row`, relocating the row to the end of the
    /// backing store with doubled capacity when full (amortized O(1); the
    /// abandoned space becomes a hole until the slab is rebuilt).
    pub fn push_to_row(&mut self, row: usize, value: T) {
        let seg = self.segs[row];
        if seg.len == seg.cap {
            let new_cap = (seg.cap * 2).max(4);
            let new_off = self.data.len();
            self.data.reserve(new_cap);
            // Relocate: copy the live elements, then pad to capacity with
            // the new value (slot len..cap are dead until used).
            for i in 0..seg.len {
                let v = self.data[seg.off + i];
                self.data.push(v);
            }
            self.data.push(value);
            // Reserve the remaining capacity physically so later pushes to
            // *other* rows do not interleave into this row's slack.
            for _ in seg.len + 1..new_cap {
                self.data.push(value);
            }
            self.segs[row] = Segment {
                off: new_off,
                len: seg.len + 1,
                cap: new_cap,
            };
        } else {
            self.data[seg.off + seg.len] = value;
            self.segs[row].len += 1;
        }
    }

    /// Total live elements across all rows (excludes holes and slack).
    pub fn live_len(&self) -> usize {
        self.segs.iter().map(|s| s.len).sum()
    }

    /// Size of the backing store including holes and slack — the slab's
    /// fragmentation diagnostic (`backing_len − live_len` bytes are dead).
    pub fn backing_len(&self) -> usize {
        self.data.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_rows_are_contiguous_and_stable() {
        let mut slab = SegmentedSlab::with_capacity(3, 6);
        assert_eq!(slab.push_row(&[1, 2, 3]), 0);
        assert_eq!(slab.push_row(&[]), 1);
        assert_eq!(slab.push_row(&[4, 5, 6]), 2);
        assert_eq!(slab.rows(), 3);
        assert_eq!(slab.row(0), &[1, 2, 3]);
        assert_eq!(slab.row(1), &[] as &[i32]);
        assert_eq!(slab.row(2), &[4, 5, 6]);
        assert_eq!(slab.live_len(), 6);
        assert_eq!(slab.backing_len(), 6);
    }

    #[test]
    fn growing_a_row_relocates_without_disturbing_others() {
        let mut slab = SegmentedSlab::new();
        slab.push_row(&[10, 20]);
        slab.push_row(&[30]);
        // Row 0 is full (cap == len == 2): growth relocates it.
        slab.push_to_row(0, 40);
        assert_eq!(slab.row(0), &[10, 20, 40]);
        assert_eq!(slab.row(1), &[30]);
        // Subsequent growth fills the doubled slack in place.
        slab.push_to_row(0, 50);
        assert_eq!(slab.row(0), &[10, 20, 40, 50]);
        // Growing row 1 must not interleave into row 0's storage.
        slab.push_to_row(1, 60);
        slab.push_to_row(1, 70);
        assert_eq!(slab.row(0), &[10, 20, 40, 50]);
        assert_eq!(slab.row(1), &[30, 60, 70]);
        assert_eq!(slab.live_len(), 7);
        assert!(slab.backing_len() >= slab.live_len(), "holes never shrink");
    }

    #[test]
    fn empty_row_growth_from_zero_capacity() {
        let mut slab = SegmentedSlab::new();
        let r = slab.push_empty_row();
        for v in 0..100 {
            slab.push_to_row(r, v);
        }
        let expected: Vec<i32> = (0..100).collect();
        assert_eq!(slab.row(r), expected.as_slice());
    }

    #[test]
    fn row_mut_writes_through() {
        let mut slab = SegmentedSlab::new();
        slab.push_row(&[1.0f64, 2.0]);
        slab.row_mut(0)[1] = 9.5;
        assert_eq!(slab.row(0), &[1.0, 9.5]);
    }
}
