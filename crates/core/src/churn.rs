//! Churn events: the shared vocabulary for dynamic user arrivals and
//! departures.
//!
//! The paper solves the game for a fixed user set `U`; a production platform
//! faces continuous traffic where vehicles enter and leave mid-game. This
//! module defines the substrate-agnostic event types consumed both by the
//! online simulator (`vcs-online`) and the distributed runtime's `Join` /
//! `Leave` protocol frames (`vcs-runtime`), plus the engine-level applier.
//!
//! Semantics (see DESIGN.md §11): a [`ChurnEvent::Join`] admits a new user
//! with a fully specified recommended route set and an initial route choice
//! (picked by the arriving vehicle, like the random initial decision of
//! Alg. 1 line 4); a [`ChurnEvent::Leave`] retires an existing user. Both map
//! onto [`Engine::add_user`] / [`Engine::remove_user`], which update every
//! cache incrementally — the potential ϕ is *redefined* by each event (it is
//! a function of the current user set), so ϕ is monotone only between events,
//! not across them.

use crate::engine::Engine;
use crate::error::GameError;
use crate::ids::{RouteId, UserId};
use crate::route::Route;
use crate::user::UserPrefs;
use serde::{Deserialize, Serialize};

/// Everything the platform needs to admit a user: preference weights and the
/// recommended route set (route ids are renumbered densely on admission).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UserSpec {
    /// Preference weights `(α_i, β_i, γ_i)`.
    pub prefs: UserPrefs,
    /// Recommended route set `R_i` (non-empty for a valid join).
    pub routes: Vec<Route>,
}

impl UserSpec {
    /// Bundles weights and routes into a spec.
    pub fn new(prefs: UserPrefs, routes: Vec<Route>) -> Self {
        Self { prefs, routes }
    }
}

/// One timestamped churn event of an online stream (timestamps live in the
/// stream container, not here — events are ordered by position).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ChurnEvent {
    /// A vehicle enters the platform with `spec` and starts on route
    /// `initial` of its recommended set.
    Join {
        /// The arriving user's weights and routes.
        spec: UserSpec,
        /// Index into `spec.routes` of the initial choice.
        initial: RouteId,
    },
    /// The vehicle with id `user` leaves the platform.
    Leave {
        /// The departing user (must be active).
        user: UserId,
    },
}

/// Applies one churn event to a live engine. Returns the id assigned to a
/// joining user, `None` for a leave.
///
/// # Errors
///
/// Propagates [`Engine::add_user`] validation errors (malicious or malformed
/// joins) and [`GameError::UnknownUser`] for leaves of unknown/departed users.
/// The engine is untouched on error.
pub fn apply_churn(
    engine: &mut Engine<'_>,
    event: &ChurnEvent,
) -> Result<Option<UserId>, GameError> {
    match event {
        ChurnEvent::Join { spec, initial } => engine
            .add_user(spec.prefs, spec.routes.clone(), *initial)
            .map(Some),
        ChurnEvent::Leave { user } => engine.remove_user(*user).map(|_| None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples::fig1_instance;
    use crate::ids::TaskId;
    use crate::profile::Profile;

    #[test]
    fn join_then_leave_round_trips() {
        let game = fig1_instance();
        let mut engine = Engine::new(&game, Profile::all_first(&game));
        let before = engine.potential();
        let spec = UserSpec::new(
            UserPrefs::new(0.5, 0.5, 0.5),
            vec![Route::new(RouteId(0), vec![TaskId(0)], 1.0, 1.0)],
        );
        let joined = apply_churn(
            &mut engine,
            &ChurnEvent::Join {
                spec,
                initial: RouteId(0),
            },
        )
        .unwrap()
        .expect("join returns the new id");
        assert!(engine.is_active(joined));
        apply_churn(&mut engine, &ChurnEvent::Leave { user: joined }).unwrap();
        assert!(!engine.is_active(joined));
        // Back to the original user set: ϕ returns to its pre-join value.
        assert!((engine.potential() - before).abs() < 1e-9);
        // Leaving twice is an error.
        assert!(matches!(
            apply_churn(&mut engine, &ChurnEvent::Leave { user: joined }),
            Err(GameError::UnknownUser { .. })
        ));
    }
}
