//! Per-user profit decomposition: the three terms of Eq. 2 separated.
//!
//! Useful for diagnostics, the Table 5 style analyses and user-facing
//! explanations ("you earned 12.3 in rewards, paid 1.1 in detour and 0.7 in
//! congestion").

use crate::engine::Engine;
use crate::game::Game;
use crate::ids::UserId;
use crate::profile::Profile;
use serde::{Deserialize, Serialize};

/// The components of one user's profit under a strategy profile.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProfitBreakdown {
    /// Raw reward sum `Σ_{k ∈ L_{s_i}} w_k(n_k)/n_k` (before the `α_i`
    /// weight).
    pub raw_reward: f64,
    /// The weighted reward term `α_i · raw_reward`.
    pub reward_term: f64,
    /// The weighted detour cost `β_i · φ · h(s_i)`.
    pub detour_cost: f64,
    /// The weighted congestion cost `γ_i · θ · c(s_i)`.
    pub congestion_cost: f64,
    /// Number of tasks the user performs.
    pub tasks_performed: usize,
}

impl ProfitBreakdown {
    /// The profit `P_i(s)` reassembled from the components.
    pub fn profit(&self) -> f64 {
        self.reward_term - self.detour_cost - self.congestion_cost
    }
}

/// Decomposes user `user`'s profit under `profile`.
pub fn profit_breakdown(game: &Game, profile: &Profile, user: UserId) -> ProfitBreakdown {
    let u = &game.users()[user.index()];
    let route = &u.routes[profile.choice(user).index()];
    let raw_reward: f64 = route
        .tasks
        .iter()
        .map(|&t| game.task(t).share(profile.participants(t)))
        .sum();
    ProfitBreakdown {
        raw_reward,
        reward_term: u.prefs.alpha * raw_reward,
        detour_cost: u.prefs.beta * game.detour_cost(route),
        congestion_cost: u.prefs.gamma * game.congestion_cost(route),
        tasks_performed: route.task_count(),
    }
}

/// Decomposes every user's profit (indexed by user).
pub fn all_breakdowns(game: &Game, profile: &Profile) -> Vec<ProfitBreakdown> {
    (0..game.user_count())
        .map(|i| profit_breakdown(game, profile, UserId::from_index(i)))
        .collect()
}

/// Decomposes `user`'s profit from a live [`Engine`], pricing the reward term
/// through the precomputed share tables and the flattened route-task slab
/// instead of walking the `Game` object graph. Component values are
/// bit-identical to [`profit_breakdown`] on the engine's game and profile
/// (the tables store exact `Task::share` outputs).
pub fn profit_breakdown_engine(engine: &Engine<'_>, user: UserId) -> ProfitBreakdown {
    let game = engine.game();
    let profile = engine.profile();
    let u = &game.users()[user.index()];
    let choice = profile.choice(user);
    let tasks = engine.route_task_list(user, choice);
    let raw_reward: f64 = tasks
        .iter()
        .map(|&t| engine.tables().share(t, profile.participants(t)))
        .sum();
    let route = &u.routes[choice.index()];
    ProfitBreakdown {
        raw_reward,
        reward_term: u.prefs.alpha * raw_reward,
        detour_cost: u.prefs.beta * game.detour_cost(route),
        congestion_cost: u.prefs.gamma * game.congestion_cost(route),
        tasks_performed: tasks.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::game::PlatformParams;
    use crate::ids::{RouteId, TaskId};
    use crate::route::Route;
    use crate::task::Task;
    use crate::user::{User, UserPrefs};

    fn game() -> Game {
        let tasks = vec![
            Task::new(TaskId(0), 12.0, 0.0),
            Task::new(TaskId(1), 18.0, 0.5),
        ];
        let users = vec![
            User::new(
                UserId(0),
                UserPrefs::new(0.4, 0.6, 0.2),
                vec![Route::new(RouteId(0), vec![TaskId(0), TaskId(1)], 2.0, 3.0)],
            ),
            User::new(
                UserId(1),
                UserPrefs::new(0.8, 0.1, 0.9),
                vec![Route::new(RouteId(0), vec![TaskId(0)], 0.0, 1.0)],
            ),
        ];
        Game::with_paper_bounds(tasks, users, PlatformParams::new(0.5, 0.25)).unwrap()
    }

    #[test]
    fn breakdown_reassembles_profit() {
        let g = game();
        let p = Profile::all_first(&g);
        for i in 0..2u32 {
            let user = UserId(i);
            let b = profit_breakdown(&g, &p, user);
            assert!(
                (b.profit() - p.profit(&g, user)).abs() < 1e-12,
                "user {i}: breakdown {} vs profit {}",
                b.profit(),
                p.profit(&g, user)
            );
        }
    }

    #[test]
    fn components_match_hand_computation() {
        let g = game();
        let p = Profile::all_first(&g);
        let b = profit_breakdown(&g, &p, UserId(0));
        // Task 0 shared (12/2 = 6), task 1 solo (18).
        assert!((b.raw_reward - 24.0).abs() < 1e-12);
        assert!((b.reward_term - 0.4 * 24.0).abs() < 1e-12);
        // β·φ·h = 0.6·0.5·2, γ·θ·c = 0.2·0.25·3.
        assert!((b.detour_cost - 0.6).abs() < 1e-12);
        assert!((b.congestion_cost - 0.15).abs() < 1e-12);
        assert_eq!(b.tasks_performed, 2);
    }

    #[test]
    fn engine_breakdown_bit_identical_to_naive() {
        let g = game();
        let p = Profile::all_first(&g);
        let engine = Engine::new(&g, p.clone());
        for i in 0..2u32 {
            let user = UserId(i);
            let naive = profit_breakdown(&g, &p, user);
            let fast = profit_breakdown_engine(&engine, user);
            assert_eq!(naive, fast, "user {i}: slab-priced breakdown diverged");
            assert_eq!(fast.profit().to_bits(), naive.profit().to_bits());
        }
    }

    #[test]
    fn all_breakdowns_cover_all_users() {
        let g = game();
        let p = Profile::all_first(&g);
        let all = all_breakdowns(&g, &p);
        assert_eq!(all.len(), 2);
        let total: f64 = all.iter().map(ProfitBreakdown::profit).sum();
        assert!((total - p.total_profit(&g)).abs() < 1e-12);
    }
}
