//! The incremental game engine: cached share tables, per-route cost caches,
//! a task→users inverted index and O(Δ)-per-move maintenance of the
//! potential `ϕ(s)` and the total profit `Σ_i P_i(s)`.
//!
//! The naive solver loop re-derives everything from the game definition each
//! slot: `Task::potential_term` walks an `O(n_k)` loop of `ln` calls per
//! task, `Profile::total_profit` re-prices every user, and every user's best
//! response is re-scanned even when nothing it can see has changed. At
//! `M = 2000` users that makes a single decision slot `O(M·(R·T̄ + M·T̄))`.
//!
//! [`Engine`] removes all of that re-derivation:
//!
//! * [`ShareTables`] precomputes each task's per-participant share
//!   `w_k(q)/q` and the potential prefix sums `Σ_{q≤x} w_k(q)/q` up to the
//!   task's maximum possible participant count, turning both
//!   [`Task::share`](crate::Task::share) and
//!   [`Task::potential_term`](crate::Task::potential_term) into O(1) lookups
//!   (bit-identical: the tables are built by the same ascending summation);
//! * per-`(user, route)` costs `β_i·d(r) + γ_i·b(r)` and the potential's
//!   ratio-weighted costs `(β_i/α_i)·d(r) + (γ_i/α_i)·b(r)` are computed
//!   once at construction;
//! * a task→users inverted index lets [`Engine::apply_move`] mark exactly
//!   the users whose cached best responses a move invalidates (the *dirty
//!   set*), which the solver drains via [`Engine::take_dirty`];
//! * `ϕ(s)` and `Σ_i P_i(s)` are maintained incrementally in
//!   `O(|L_old| + |L_new|)` per move with Neumaier-compensated accumulation,
//!   so recording a [`SlotTrace`](crate) entry costs O(1) instead of a full
//!   recomputation.
//!
//! ## Memory layout
//!
//! All hot state lives in struct-of-arrays slabs keyed by the dense id
//! spaces of [`crate::ids`] (see [`SegmentedSlab`]):
//!
//! * `route_cost` / `phi_route_cost` — one `f64` row per user, indexed by
//!   route;
//! * `route_tasks` — every route's task list flattened into one slab, rows
//!   addressed by the flat route index `route_base[user] + route`;
//! * `task_users` — the task→users inverted index in CSR form, rows sorted
//!   by user id (ids are append-only, so churn appends keep rows sorted);
//! * [`ShareTables`] — per-task share and prefix rows in two slabs sharing
//!   identical geometry;
//! * `alpha` — the per-user profit weight, so pricing never chases into
//!   `Game::users`.
//!
//! A best-response scan therefore touches four contiguous arrays (segment
//! table → route tasks → participant counts/share rows → cost row) instead
//! of pointer-hopping `Vec<User> → Vec<Route> → Vec<TaskId>`.
//!
//! Correctness invariants (enforced by the property tests in
//! `tests/engine_equivalence.rs`, `tests/batch_props.rs` and the
//! cross-implementation trajectory tests in `vcs-algorithms`):
//!
//! 1. [`Engine::profit`] and [`Engine::profit_if_switched`] are
//!    **bit-identical** to [`Profile::profit`]/[`Profile::profit_if_switched`]
//!    — same share values (table entries are `Task::share` outputs), same
//!    cached cost values, same summation order.
//! 2. [`Engine::potential`] and [`Engine::total_profit`] track the freshly
//!    recomputed values within `1e-9` along arbitrary move sequences.
//! 3. A user absent from every dirty set since its last evaluation has an
//!    unchanged best response: its profits depend only on its own choice and
//!    the counts of tasks covered by *some* route of its recommended set,
//!    and the inverted index covers exactly those tasks.
//! 4. [`Engine::apply_batch`] over a conflict-free batch (pairwise-disjoint
//!    affected task sets, the Theorem 3 / PUU guarantee) is bit-identical to
//!    applying the moves sequentially via [`Engine::apply_move`] — including
//!    the compensated-sum addition order and the emitted event stream.

use crate::error::GameError;
use crate::game::Game;
use crate::ids::{RouteId, TaskId, UserId};
use crate::profile::Profile;
use crate::response::{better_routes_in, BestResponse, ProfitView, EPSILON};
use crate::route::Route;
use crate::slab::SegmentedSlab;
use crate::user::UserPrefs;
use rayon::prelude::*;
use std::borrow::Cow;
use vcs_obs::{Event, Obs};

/// Below this batch size [`Engine::apply_batch`] stays sequential: the
/// per-move delta computation is a few hundred nanoseconds, so spawning
/// worker threads only pays off for large conflict-free batches.
const PAR_BATCH_MIN: usize = 256;

/// Per-task share and potential prefix tables.
///
/// `share(k, q) = w_k(q)/q` and `prefix(k, x) = Σ_{q=1}^{x} w_k(q)/q` for
/// `q` up to the number of users that can possibly perform `k` (the users
/// with at least one recommended route covering it). Entries are produced by
/// the same expressions as [`crate::Task::share`] /
/// [`crate::Task::potential_term`], so lookups are bit-identical to the
/// naive evaluation. Both tables are stored as [`SegmentedSlab`] rows (one
/// row per task) over contiguous backing vectors.
#[derive(Debug, Clone)]
pub struct ShareTables {
    /// Row `k` holds `share[k][q]`, `q ∈ 0..=cap_k`; `share[k][0] = 0`.
    share: SegmentedSlab<f64>,
    /// Row `k` holds `prefix[k][x] = Σ_{q≤x} share[k][q]`, summed ascending.
    prefix: SegmentedSlab<f64>,
    /// `(a_k, μ_k)` fallback parameters for counts beyond the table (cannot
    /// happen for legal profiles; kept total for robustness).
    params: Vec<(f64, f64)>,
}

impl ShareTables {
    /// Builds the tables for `game`, sizing each task's row by how many
    /// users can possibly cover it.
    pub fn new(game: &Game) -> Self {
        Self::with_coverage(game, &coverage_capacity(game))
    }

    /// Builds the tables from a precomputed coverage vector (one pass of
    /// [`coverage_capacity`], shared with the engine's CSR construction).
    pub(crate) fn with_coverage(game: &Game, cap: &[u32]) -> Self {
        // ln(q) does not depend on the task, so one table of max_k cap_k
        // logarithms replaces the Σ_k cap_k `ln` calls a per-task
        // `Task::share` loop would make — the dominant construction cost at
        // scale. The entries below re-run the exact `Task::share` expression
        // (`(a_k + μ_k·ln q) / q`, same operation order) on the memoized
        // value, so the tables stay bit-identical to direct evaluation.
        let max_cap = cap.iter().copied().max().unwrap_or(0);
        let mut ln_q: Vec<f64> = Vec::with_capacity(max_cap as usize + 1);
        ln_q.push(0.0); // q = 0 never evaluates a logarithm
        for q in 1..=max_cap {
            ln_q.push(f64::from(q).ln());
        }
        let total: usize = cap.iter().map(|&c| c as usize + 1).sum();
        let mut share_data: Vec<f64> = Vec::with_capacity(total);
        let mut prefix_data: Vec<f64> = Vec::with_capacity(total);
        let mut row_lens: Vec<usize> = Vec::with_capacity(game.task_count());
        let mut params = Vec::with_capacity(game.task_count());
        for task in game.tasks() {
            let n = cap[task.id.index()] as usize;
            row_lens.push(n + 1);
            let mut acc = 0.0;
            share_data.push(0.0);
            prefix_data.push(0.0);
            for q in 1..=n as u32 {
                let sq = (task.base_reward + task.increment * ln_q[q as usize]) / f64::from(q);
                acc += sq;
                share_data.push(sq);
                prefix_data.push(acc);
            }
            params.push((task.base_reward, task.increment));
        }
        Self {
            share: SegmentedSlab::from_filled(share_data, &row_lens),
            prefix: SegmentedSlab::from_filled(prefix_data, &row_lens),
            params,
        }
    }

    /// Grows `task`'s row by one participant slot (a newly arrived user can
    /// now cover it). The new prefix entry continues the same ascending
    /// summation as construction, so the extended table is bit-identical to
    /// one built for the larger capacity from scratch.
    pub(crate) fn extend_for(&mut self, task: &crate::task::Task) {
        let k = task.id.index();
        let q = self.share.row_len(k) as u32;
        let sq = task.share(q);
        let prev = *self.prefix.row(k).last().expect("tables hold q = 0");
        self.share.push_to_row(k, sq);
        self.prefix.push_to_row(k, prev + sq);
    }

    /// `w_k(n)/n`, O(1). Falls back to direct evaluation beyond the table.
    #[inline]
    pub fn share(&self, task: TaskId, n: u32) -> f64 {
        match self.share.row(task.index()).get(n as usize) {
            Some(&s) => s,
            None => self.share_cold(task, n),
        }
    }

    #[cold]
    fn share_cold(&self, task: TaskId, n: u32) -> f64 {
        // Mirrors Task::share exactly (n > 0 here: 0 is always in the table).
        let (a, mu) = self.params[task.index()];
        (a + mu * f64::from(n).ln()) / f64::from(n)
    }

    /// `Σ_{q=1}^{n} w_k(q)/q`, O(1). Bit-identical to
    /// [`crate::Task::potential_term`] within the table range.
    #[inline]
    pub fn potential_term(&self, task: TaskId, n: u32) -> f64 {
        match self.prefix.row(task.index()).get(n as usize) {
            Some(&p) => p,
            None => self.potential_term_cold(task, n),
        }
    }

    #[cold]
    fn potential_term_cold(&self, task: TaskId, n: u32) -> f64 {
        let table = self.prefix.row(task.index());
        let mut acc = table[table.len() - 1];
        for q in table.len() as u32..=n {
            acc += self.share_cold(task, q);
        }
        acc
    }

    /// Largest tabulated participant count of `task`.
    pub fn capacity(&self, task: TaskId) -> u32 {
        (self.share.row_len(task.index()) - 1) as u32
    }
}

/// How many users have at least one recommended route covering each task —
/// the row capacity of both [`ShareTables`] and the inverted index.
fn coverage_capacity(game: &Game) -> Vec<u32> {
    let mut cap = vec![0u32; game.task_count()];
    let mut seen: Vec<TaskId> = Vec::new();
    for user in game.users() {
        seen.clear();
        seen.extend(user.routes.iter().flat_map(|r| r.tasks.iter().copied()));
        seen.sort_unstable();
        seen.dedup();
        for &task in &seen {
            cap[task.index()] += 1;
        }
    }
    cap
}

/// Neumaier-compensated running sum: accumulates per-move deltas with a
/// correction term so thousands of increments stay within `1e-9` of a fresh
/// recomputation.
#[derive(Debug, Clone, Copy, Default)]
struct CompensatedSum {
    sum: f64,
    compensation: f64,
}

impl CompensatedSum {
    fn new(value: f64) -> Self {
        Self {
            sum: value,
            compensation: 0.0,
        }
    }

    #[inline]
    fn add(&mut self, x: f64) {
        let t = self.sum + x;
        self.compensation += if self.sum.abs() >= x.abs() {
            (self.sum - t) + x
        } else {
            (x - t) + self.sum
        };
        self.sum = t;
    }

    #[inline]
    fn value(&self) -> f64 {
        self.sum + self.compensation
    }
}

/// Incremental solver state for one game: profile, cached prices, inverted
/// index, running potential/total-profit and the dirty set — all hot tables
/// in contiguous struct-of-arrays slabs (see the module docs).
///
/// Construction is `O(Σ_k cap_k + Σ_i R_i)`; [`apply_move`](Self::apply_move)
/// is `O(|L_old| + |L_new|)` plus the size of the dirty set it marks;
/// [`potential`](Self::potential) and [`total_profit`](Self::total_profit)
/// are O(1).
///
/// # Dynamic arrivals and departures
///
/// [`add_user`](Self::add_user) and [`remove_user`](Self::remove_user) grow
/// and shrink the *live* user set in `O(|L_{s_i}| + R_i + |dirtied|)` without
/// rebuilding any cache. Ids are append-only: a departed user's id is never
/// reused, its slot becomes an inactive tombstone (skipped by
/// [`take_dirty`](Self::take_dirty), [`active_users`](Self::active_users) and
/// the fresh ϕ/total recomputations), so per-user caches stay index-stable.
/// Slab rows that outgrow their capacity (a task's share table or inverted
/// index absorbing arrivals) relocate within their slab, leaving holes that
/// are compacted away whenever a fresh engine is built from
/// [`materialize`](Self::materialize). The first mutation on a borrowed
/// engine clones the game once (copy-on-write); [`Engine::new_owned`] starts
/// owned and never clones.
#[derive(Debug, Clone)]
pub struct Engine<'g> {
    game: Cow<'g, Game>,
    tables: ShareTables,
    /// Row per user: `β_i·d(r) + γ_i·b(r)` per route (the Eq. 2 cost term).
    route_cost: SegmentedSlab<f64>,
    /// Row per user: `(β_i/α_i)·d(r) + (γ_i/α_i)·b(r)` per route (the Eq. 8
    /// cost term).
    phi_route_cost: SegmentedSlab<f64>,
    /// Row per flat route index (`route_base[user] + route`): the route's
    /// task list, flattened out of the `Game` object graph.
    route_tasks: SegmentedSlab<TaskId>,
    /// `route_base[i]` — flat route index of user `i`'s route 0;
    /// `route_base[user_count]` is the total-route sentinel.
    route_base: Vec<u32>,
    /// Per-user profit weight `α_i`.
    alpha: Vec<f64>,
    /// CSR inverted index: row per task, the users with at least one
    /// recommended route covering it, sorted by id. Departed users are *not*
    /// removed (the active mask filters them).
    task_users: SegmentedSlab<UserId>,
    profile: Profile,
    /// `Σ α_i` over the current participants of each task.
    alpha_sum: Vec<f64>,
    phi: CompensatedSum,
    total: CompensatedSum,
    dirty_flag: Vec<bool>,
    dirty: Vec<UserId>,
    /// `active[i]` — user `i` is on the platform (not a departed tombstone).
    active: Vec<bool>,
    n_active: usize,
    /// Observability handle; disabled by default ([`Engine::set_obs`]).
    /// Disabled, every emission is a single `None` branch — the event
    /// payloads are built inside closures that never run.
    obs: Obs,
}

impl<'g> Engine<'g> {
    /// Builds the engine around `profile`. Every user starts dirty.
    pub fn new(game: &'g Game, profile: Profile) -> Self {
        Self::build(Cow::Borrowed(game), profile)
    }

    fn build(game: Cow<'g, Game>, profile: Profile) -> Self {
        let n_users = game.user_count();
        let n_tasks = game.task_count();
        let total_routes: usize = game.users().iter().map(|u| u.routes.len()).sum();
        let total_route_tasks: usize = game
            .users()
            .iter()
            .flat_map(|u| &u.routes)
            .map(|r| r.tasks.len())
            .sum();
        let mut cost_data: Vec<f64> = Vec::with_capacity(total_routes);
        let mut phi_cost_data: Vec<f64> = Vec::with_capacity(total_routes);
        let mut cost_lens: Vec<usize> = Vec::with_capacity(n_users);
        let mut route_tasks_data: Vec<TaskId> = Vec::with_capacity(total_route_tasks);
        let mut route_tasks_lens: Vec<usize> = Vec::with_capacity(total_routes);
        let mut route_base = Vec::with_capacity(n_users + 1);
        let mut alpha = Vec::with_capacity(n_users);
        let mut alpha_sum = vec![0.0; n_tasks];
        // One coverage pass serves three consumers: the per-task capacities
        // (ShareTables + CSR row lengths), and the flattened per-user
        // covered-task lists the CSR fill walks. Dedup runs off a per-task
        // epoch stamp (stamp[t] == user marker ⇔ already counted for this
        // user) — no per-user sort; list order within a user is free, and
        // the CSR rows still come out sorted because users are visited in
        // ascending id order.
        let mut coverage = vec![0u32; n_tasks];
        let mut stamp = vec![u32::MAX; n_tasks];
        let mut user_cover: Vec<TaskId> = Vec::with_capacity(total_route_tasks);
        let mut user_cover_off: Vec<usize> = Vec::with_capacity(n_users + 1);
        user_cover_off.push(0);
        route_base.push(0u32);
        for (mark, user) in game.users().iter().enumerate() {
            let ratio_beta = user.prefs.beta / user.prefs.alpha;
            let ratio_gamma = user.prefs.gamma / user.prefs.alpha;
            let chosen = profile.choice(user.id).index();
            for (r, route) in user.routes.iter().enumerate() {
                cost_data.push(game.user_route_cost(user.id, route));
                phi_cost_data.push(
                    ratio_beta * game.detour_cost(route)
                        + ratio_gamma * game.congestion_cost(route),
                );
                route_tasks_data.extend_from_slice(&route.tasks);
                route_tasks_lens.push(route.tasks.len());
                for &task in &route.tasks {
                    if stamp[task.index()] != mark as u32 {
                        stamp[task.index()] = mark as u32;
                        coverage[task.index()] += 1;
                        user_cover.push(task);
                    }
                    if r == chosen {
                        alpha_sum[task.index()] += user.prefs.alpha;
                    }
                }
            }
            user_cover_off.push(user_cover.len());
            cost_lens.push(user.routes.len());
            route_base.push(*route_base.last().expect("seeded") + user.routes.len() as u32);
            alpha.push(user.prefs.alpha);
        }
        let route_cost = SegmentedSlab::from_filled(cost_data, &cost_lens);
        let phi_route_cost = SegmentedSlab::from_filled(phi_cost_data, &cost_lens);
        let route_tasks = SegmentedSlab::from_filled(route_tasks_data, &route_tasks_lens);
        let tables = ShareTables::with_coverage(&game, &coverage);
        // CSR inverted index: offsets from the coverage counts, fill with a
        // per-row cursor. Users are visited in ascending id order, so each
        // row comes out sorted.
        let total_coverage: usize = coverage.iter().map(|&c| c as usize).sum();
        let mut index_data = vec![UserId(0); total_coverage];
        let mut cursor: Vec<usize> = Vec::with_capacity(n_tasks);
        let mut off = 0usize;
        for &c in &coverage {
            cursor.push(off);
            off += c as usize;
        }
        for (i, window) in user_cover_off.windows(2).enumerate() {
            for &task in &user_cover[window[0]..window[1]] {
                index_data[cursor[task.index()]] = UserId::from_index(i);
                cursor[task.index()] += 1;
            }
        }
        let row_lens: Vec<usize> = coverage.iter().map(|&c| c as usize).collect();
        let task_users = SegmentedSlab::from_filled(index_data, &row_lens);
        let mut engine = Self {
            game,
            tables,
            route_cost,
            phi_route_cost,
            route_tasks,
            route_base,
            alpha,
            task_users,
            profile,
            alpha_sum,
            phi: CompensatedSum::default(),
            total: CompensatedSum::default(),
            dirty_flag: vec![true; n_users],
            dirty: (0..n_users).map(UserId::from_index).collect(),
            active: vec![true; n_users],
            n_active: n_users,
            obs: Obs::disabled(),
        };
        engine.phi = CompensatedSum::new(engine.potential_fresh());
        engine.total = CompensatedSum::new(engine.total_profit_fresh());
        engine
    }

    /// Builds an engine that **owns** its game — the natural form for a live
    /// platform whose user set churns (no copy-on-write clone on the first
    /// [`add_user`](Self::add_user)).
    pub fn new_owned(game: Game, profile: Profile) -> Engine<'static> {
        Engine::build(Cow::Owned(game), profile)
    }

    /// Attaches an observability handle and emits the
    /// [`Event::EngineInit`] anchor (current ϕ / total profit), from which
    /// `vcs_obs::reconstruct_phi` replays the trajectory of the
    /// per-commit events. Pass [`Obs::disabled`] to detach.
    pub fn set_obs(&mut self, obs: Obs) {
        self.obs = obs;
        self.obs.emit(|| Event::EngineInit {
            users: self.n_active as u32,
            tasks: self.game.task_count() as u32,
            phi: self.phi.value(),
            total_profit: self.total.value(),
        });
    }

    /// The attached observability handle (disabled unless
    /// [`set_obs`](Self::set_obs) was called).
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// The game this engine prices (including departed tombstone users; see
    /// [`Engine::active_users`]).
    pub fn game(&self) -> &Game {
        &self.game
    }

    /// The current strategy profile.
    pub fn profile(&self) -> &Profile {
        &self.profile
    }

    /// Consumes the engine, returning the final profile.
    pub fn into_profile(self) -> Profile {
        self.profile
    }

    /// The precomputed share tables.
    pub fn tables(&self) -> &ShareTables {
        &self.tables
    }

    /// The cached profit weight `α_i` of `user` (slab-resident; identical
    /// bits to `game.users()[i].prefs.alpha`).
    #[inline]
    pub fn alpha_of(&self, user: UserId) -> f64 {
        self.alpha[user.index()]
    }

    /// The task list of `user`'s route `route`, read from the flattened
    /// route-task slab.
    #[inline]
    pub fn route_task_list(&self, user: UserId, route: RouteId) -> &[TaskId] {
        self.route_tasks
            .row(self.route_base[user.index()] as usize + route.index())
    }

    /// The incrementally maintained potential `ϕ(s)`, O(1).
    pub fn potential(&self) -> f64 {
        self.phi.value()
    }

    /// The incrementally maintained total profit `Σ_i P_i(s)`, O(1).
    pub fn total_profit(&self) -> f64 {
        self.total.value()
    }

    /// Recomputes `ϕ(s)` from the tables over the active users
    /// (construction / diagnostics).
    pub fn potential_fresh(&self) -> f64 {
        let mut phi = 0.0;
        for task in self.game.tasks() {
            phi += self
                .tables
                .potential_term(task.id, self.profile.participants(task.id));
        }
        for i in 0..self.game.user_count() {
            if self.active[i] {
                let user = UserId::from_index(i);
                phi -= self.phi_route_cost.row(i)[self.profile.choice(user).index()];
            }
        }
        phi
    }

    /// Recomputes `Σ_i P_i(s)` from the tables over the active users
    /// (construction / diagnostics).
    pub fn total_profit_fresh(&self) -> f64 {
        (0..self.game.user_count())
            .filter(|&i| self.active[i])
            .map(|i| self.profit(UserId::from_index(i)))
            .sum()
    }

    /// Users whose routes cover `task` (the CSR inverted index), sorted by
    /// id.
    pub fn users_covering(&self, task: TaskId) -> &[UserId] {
        self.task_users.row(task.index())
    }

    /// Whether `user`'s cached best response may be stale.
    pub fn is_dirty(&self, user: UserId) -> bool {
        self.dirty_flag[user.index()]
    }

    /// Drains the dirty set, returning the **active** users (sorted by id)
    /// whose best responses must be re-evaluated since the last drain.
    /// Departed users are dropped silently.
    pub fn take_dirty(&mut self) -> Vec<UserId> {
        let mut drained = Vec::new();
        self.take_dirty_into(&mut drained);
        drained
    }

    /// [`take_dirty`](Self::take_dirty) writing into `out`: the buffers are
    /// swapped, so a caller draining once per slot recycles both allocations
    /// instead of re-growing a fresh `Vec` from empty every slot.
    pub fn take_dirty_into(&mut self, out: &mut Vec<UserId>) {
        out.clear();
        std::mem::swap(&mut self.dirty, out);
        for &user in out.iter() {
            self.dirty_flag[user.index()] = false;
        }
        out.retain(|&user| self.active[user.index()]);
        out.sort_unstable();
    }

    /// Switches `user` to `new_route`: updates counts, `α`-sums, `ϕ`, total
    /// profit and the dirty set in `O(|L_old| + |L_new| + |dirtied|)`.
    /// Returns the previous route. Switching to the current route is a no-op.
    pub fn apply_move(&mut self, user: UserId, new_route: RouteId) -> RouteId {
        self.apply_move_impl(user, new_route, true)
    }

    /// Applies a move that was *decided elsewhere* — by another engine
    /// holding a replica of `user` in a sharded deployment. Bookkeeping is
    /// identical to [`apply_move`](Self::apply_move) (counts, `α`-sums,
    /// running `ϕ`/total, dirty marking of every user covering an affected
    /// task), but **no `MoveCommitted` event is emitted**: the move was
    /// committed and recorded at its home engine, and this engine's ϕ-delta
    /// for it is only meaningful for the tasks this engine can see. The
    /// sharded runtime records the replication as a stamped `FrameReceived`
    /// instead, keeping watchdogs and post-mortem traces attached to a
    /// replica free of double-counted or locally-skewed move telemetry.
    pub fn apply_remote_move(&mut self, user: UserId, new_route: RouteId) -> RouteId {
        self.apply_move_impl(user, new_route, false)
    }

    fn apply_move_impl(&mut self, user: UserId, new_route: RouteId, emit: bool) -> RouteId {
        let old_route = self.profile.choice(user);
        if old_route == new_route {
            return old_route;
        }
        let Self {
            tables,
            route_cost,
            phi_route_cost,
            route_tasks,
            route_base,
            alpha: alpha_cache,
            task_users,
            profile,
            alpha_sum,
            phi,
            total,
            dirty_flag,
            dirty,
            active,
            obs,
            ..
        } = self;
        debug_assert!(active[user.index()], "moving a departed user");
        let i = user.index();
        let alpha = alpha_cache[i];
        let base = route_base[i] as usize;
        let route_tasks = &*route_tasks;
        let task_users = &*task_users;
        let old = route_tasks.row(base + old_route.index());
        let new = route_tasks.row(base + new_route.index());
        let mut phi_delta = 0.0;
        let mut profit_delta = 0.0;
        // Tasks the user leaves: counts drop n → n−1 (n ≥ 1: the user is a
        // current participant).
        for &task in old {
            if !new.contains(&task) {
                let k = task.index();
                let n = profile.participants(task);
                let a_sum = alpha_sum[k];
                phi_delta -= tables.share(task, n);
                profit_delta +=
                    tables.share(task, n - 1) * (a_sum - alpha) - tables.share(task, n) * a_sum;
                alpha_sum[k] = a_sum - alpha;
                for &other in task_users.row(k) {
                    mark(dirty_flag, dirty, other);
                }
            }
        }
        // Tasks the user joins: counts rise n → n+1.
        for &task in new {
            if !old.contains(&task) {
                let k = task.index();
                let n = profile.participants(task);
                let a_sum = alpha_sum[k];
                phi_delta += tables.share(task, n + 1);
                profit_delta +=
                    tables.share(task, n + 1) * (a_sum + alpha) - tables.share(task, n) * a_sum;
                alpha_sum[k] = a_sum + alpha;
                for &other in task_users.row(k) {
                    mark(dirty_flag, dirty, other);
                }
            }
        }
        phi_delta -=
            phi_route_cost.row(i)[new_route.index()] - phi_route_cost.row(i)[old_route.index()];
        profit_delta -= route_cost.row(i)[new_route.index()] - route_cost.row(i)[old_route.index()];
        phi.add(phi_delta);
        total.add(profit_delta);
        profile.apply_move_tasks(user, new_route, old, new);
        mark(dirty_flag, dirty, user);
        if !emit {
            return old_route;
        }
        obs.emit(|| Event::MoveCommitted {
            user: user.index() as u32,
            from_route: old_route.index() as u32,
            to_route: new_route.index() as u32,
            phi_delta,
            // The mover's own gain: exactly `α_i·Δϕ` by Eq. 11.
            profit_delta: alpha * phi_delta,
            phi: phi.value(),
            total_profit: total.value(),
        });
        old_route
    }

    /// Computes the `(ϕ, total profit)` deltas of switching `user` to
    /// `new_route` **without mutating anything** — the read-only phase of
    /// [`apply_batch`](Self::apply_batch). `None` for a no-op move.
    ///
    /// For a conflict-free batch the counts and `α`-sums this reads are
    /// untouched by the batch's other moves, so the result is bit-identical
    /// to what a sequential [`apply_move`](Self::apply_move) would compute
    /// at its turn.
    fn move_delta(&self, user: UserId, new_route: RouteId) -> Option<(RouteId, f64, f64)> {
        let old_route = self.profile.choice(user);
        if old_route == new_route {
            return None;
        }
        let i = user.index();
        let alpha = self.alpha[i];
        let base = self.route_base[i] as usize;
        let old = self.route_tasks.row(base + old_route.index());
        let new = self.route_tasks.row(base + new_route.index());
        let mut phi_delta = 0.0;
        let mut profit_delta = 0.0;
        for &task in old {
            if !new.contains(&task) {
                let n = self.profile.participants(task);
                let a_sum = self.alpha_sum[task.index()];
                phi_delta -= self.tables.share(task, n);
                profit_delta += self.tables.share(task, n - 1) * (a_sum - alpha)
                    - self.tables.share(task, n) * a_sum;
            }
        }
        for &task in new {
            if !old.contains(&task) {
                let n = self.profile.participants(task);
                let a_sum = self.alpha_sum[task.index()];
                profit_delta += self.tables.share(task, n + 1) * (a_sum + alpha)
                    - self.tables.share(task, n) * a_sum;
                phi_delta += self.tables.share(task, n + 1);
            }
        }
        phi_delta -= self.phi_route_cost.row(i)[new_route.index()]
            - self.phi_route_cost.row(i)[old_route.index()];
        profit_delta -=
            self.route_cost.row(i)[new_route.index()] - self.route_cost.row(i)[old_route.index()];
        Some((old_route, phi_delta, profit_delta))
    }

    /// Commits one precomputed move: count/`α`-sum bookkeeping, compensated
    /// accumulation, dirty marking and the `MoveCommitted` event — the
    /// ordered write phase of [`apply_batch`](Self::apply_batch).
    fn commit_precomputed(
        &mut self,
        user: UserId,
        new_route: RouteId,
        old_route: RouteId,
        phi_delta: f64,
        profit_delta: f64,
    ) {
        let Self {
            route_tasks,
            route_base,
            alpha: alpha_cache,
            task_users,
            profile,
            alpha_sum,
            phi,
            total,
            dirty_flag,
            dirty,
            active,
            obs,
            ..
        } = self;
        debug_assert!(active[user.index()], "moving a departed user");
        let i = user.index();
        let alpha = alpha_cache[i];
        let base = route_base[i] as usize;
        let route_tasks = &*route_tasks;
        let task_users = &*task_users;
        let old = route_tasks.row(base + old_route.index());
        let new = route_tasks.row(base + new_route.index());
        for &task in old {
            if !new.contains(&task) {
                let k = task.index();
                alpha_sum[k] -= alpha;
                for &other in task_users.row(k) {
                    mark(dirty_flag, dirty, other);
                }
            }
        }
        for &task in new {
            if !old.contains(&task) {
                let k = task.index();
                alpha_sum[k] += alpha;
                for &other in task_users.row(k) {
                    mark(dirty_flag, dirty, other);
                }
            }
        }
        phi.add(phi_delta);
        total.add(profit_delta);
        profile.apply_move_tasks(user, new_route, old, new);
        mark(dirty_flag, dirty, user);
        obs.emit(|| Event::MoveCommitted {
            user: user.index() as u32,
            from_route: old_route.index() as u32,
            to_route: new_route.index() as u32,
            phi_delta,
            profit_delta: alpha * phi_delta,
            phi: phi.value(),
            total_profit: total.value(),
        });
    }

    /// Applies a **conflict-free** batch of moves (pairwise-disjoint affected
    /// task sets `B_i = L_{s_i} ∪ L_{s_i'}` — exactly what the PUU scheduler
    /// of Alg. 3 / Theorem 3 grants), returning the number of effective
    /// (non-no-op) moves.
    ///
    /// For large batches the per-move `(Δϕ, Δtotal)` deltas are computed in
    /// parallel with rayon — legal because disjointness makes every delta
    /// independent of the batch's other moves — and then committed
    /// sequentially in batch order, so the compensated-sum additions, dirty
    /// bookkeeping and emitted events are **bit-identical** to a sequential
    /// [`apply_move`](Self::apply_move) loop. Small batches (or a pool pinned
    /// to one thread) take the sequential path directly.
    pub fn apply_batch(&mut self, moves: &[(UserId, RouteId)]) -> usize {
        self.apply_batch_with_threshold(moves, PAR_BATCH_MIN)
    }

    /// [`apply_batch`](Self::apply_batch) with an explicit parallelism
    /// threshold (exposed for the determinism property tests and benchmarks;
    /// `usize::MAX` forces sequential, `0` forces the parallel path whenever
    /// more than one worker thread is available).
    pub fn apply_batch_with_threshold(
        &mut self,
        moves: &[(UserId, RouteId)],
        par_min: usize,
    ) -> usize {
        debug_assert!(
            batch_conflict_free(self, moves),
            "apply_batch requires pairwise-disjoint affected task sets"
        );
        if moves.len() < par_min.max(2) || rayon::current_num_threads() <= 1 {
            let mut applied = 0;
            for &(user, route) in moves {
                if self.profile.choice(user) != route {
                    applied += 1;
                }
                self.apply_move(user, route);
            }
            return applied;
        }
        let deltas: Vec<Option<(RouteId, f64, f64)>> = {
            let this: &Self = self;
            (0..moves.len())
                .into_par_iter()
                .map(|i| this.move_delta(moves[i].0, moves[i].1))
                .collect()
        };
        let mut applied = 0;
        for (i, delta) in deltas.into_iter().enumerate() {
            let Some((old_route, phi_delta, profit_delta)) = delta else {
                continue;
            };
            let (user, new_route) = moves[i];
            self.commit_precomputed(user, new_route, old_route, phi_delta, profit_delta);
            applied += 1;
        }
        applied
    }

    /// Whether `user` is currently on the platform (exists and has not left).
    #[inline]
    pub fn is_active(&self, user: UserId) -> bool {
        self.active.get(user.index()).copied().unwrap_or(false)
    }

    /// Number of users currently on the platform.
    #[inline]
    pub fn active_count(&self) -> usize {
        self.n_active
    }

    /// The active users in id order.
    pub fn active_users(&self) -> impl Iterator<Item = UserId> + '_ {
        self.active
            .iter()
            .enumerate()
            .filter(|&(_, &a)| a)
            .map(|(i, _)| UserId::from_index(i))
    }

    /// Admits a new user onto the live platform with `initial` as its first
    /// route choice (Join event).
    ///
    /// Validates the user against the game's task set and weight bounds (see
    /// [`Game::push_user`]), then extends every slab incrementally: share
    /// tables and inverted-index rows grow one slot per distinct covered
    /// task (relocating within their slab when full), the per-user cost and
    /// route-task slabs gain exact-sized rows, and ϕ/total-profit absorb the
    /// activation delta — `O(R_i·T̄ + |dirtied|)` amortized, no rebuild. The
    /// new user and everyone sharing a task with its initial route are
    /// marked dirty.
    ///
    /// Ids are append-only; on a borrowed engine the first call clones the
    /// game (copy-on-write).
    pub fn add_user(
        &mut self,
        prefs: UserPrefs,
        routes: Vec<Route>,
        initial: RouteId,
    ) -> Result<UserId, GameError> {
        // Validate the initial choice *before* mutating the game.
        let next = UserId::from_index(self.game.user_count());
        if routes.is_empty() {
            return Err(GameError::EmptyRouteSet { user: next });
        }
        if initial.index() >= routes.len() {
            return Err(GameError::InvalidProfile {
                detail: format!(
                    "joining user {next} selects route {initial} but has only {} routes",
                    routes.len()
                ),
            });
        }
        let user = self.game.to_mut().push_user(prefs, routes)?;
        debug_assert_eq!(user, next);
        let Self {
            game,
            tables,
            route_cost,
            phi_route_cost,
            route_tasks,
            route_base,
            alpha: alpha_cache,
            task_users,
            profile,
            alpha_sum,
            phi,
            total,
            dirty_flag,
            dirty,
            active,
            n_active,
            obs,
        } = self;
        let game: &Game = game;
        let u = &game.users()[user.index()];
        // Per-route cost caches (same expressions as construction).
        let ratio_beta = u.prefs.beta / u.prefs.alpha;
        let ratio_gamma = u.prefs.gamma / u.prefs.alpha;
        let mut costs = Vec::with_capacity(u.routes.len());
        let mut phi_costs = Vec::with_capacity(u.routes.len());
        for route in &u.routes {
            costs.push(game.user_route_cost(user, route));
            phi_costs.push(
                ratio_beta * game.detour_cost(route) + ratio_gamma * game.congestion_cost(route),
            );
            route_tasks.push_row(&route.tasks);
        }
        route_cost.push_row(&costs);
        phi_route_cost.push_row(&phi_costs);
        let base = *route_base.last().expect("seeded at construction");
        route_base.push(base + u.routes.len() as u32);
        alpha_cache.push(u.prefs.alpha);
        // Share-table capacity and inverted index: one slot per distinct
        // covered task; pushing the max id keeps each CSR row sorted.
        let mut covered: Vec<TaskId> = u
            .routes
            .iter()
            .flat_map(|r| r.tasks.iter().copied())
            .collect();
        covered.sort_unstable();
        covered.dedup();
        for &task in &covered {
            tables.extend_for(&game.tasks()[task.index()]);
            task_users.push_to_row(task.index(), user);
        }
        profile.push_choice(initial);
        dirty_flag.push(false);
        active.push(true);
        *n_active += 1;
        // Activation: the user joins every task of its initial route
        // (counts n → n+1), mirroring the join half of `apply_move`.
        let alpha = u.prefs.alpha;
        let route_tasks = &*route_tasks;
        let task_users = &*task_users;
        let route_row = route_tasks.row(base as usize + initial.index());
        let mut phi_delta = 0.0;
        let mut profit_delta = 0.0;
        for &task in route_row {
            let k = task.index();
            let n = profile.participants(task);
            let a_sum = alpha_sum[k];
            phi_delta += tables.share(task, n + 1);
            profit_delta +=
                tables.share(task, n + 1) * (a_sum + alpha) - tables.share(task, n) * a_sum;
            alpha_sum[k] = a_sum + alpha;
            for &other in task_users.row(k) {
                mark(dirty_flag, dirty, other);
            }
        }
        phi_delta -= phi_route_cost.row(user.index())[initial.index()];
        profit_delta -= route_cost.row(user.index())[initial.index()];
        phi.add(phi_delta);
        total.add(profit_delta);
        profile.add_route_counts(route_row);
        mark(dirty_flag, dirty, user);
        obs.emit(|| Event::UserJoined {
            user: user.index() as u32,
            phi: phi.value(),
            total_profit: total.value(),
        });
        Ok(user)
    }

    /// Removes `user` from the live platform (Leave event), returning the
    /// route it was on.
    ///
    /// The user's participation is unwound from counts, `α`-sums, ϕ and total
    /// profit (the leave half of [`apply_move`](Self::apply_move)), everyone
    /// sharing a task with its final route is marked dirty, and the slot
    /// becomes an inactive tombstone — `O(|L_{s_i}| + |dirtied|)`, no cache
    /// shrinking, ids of the remaining users unchanged.
    ///
    /// # Errors
    ///
    /// [`GameError::UnknownUser`] if `user` does not exist or already left.
    pub fn remove_user(&mut self, user: UserId) -> Result<RouteId, GameError> {
        if user.index() >= self.game.user_count() || !self.active[user.index()] {
            return Err(GameError::UnknownUser { user });
        }
        let Self {
            tables,
            route_cost,
            phi_route_cost,
            route_tasks,
            route_base,
            alpha: alpha_cache,
            task_users,
            profile,
            alpha_sum,
            phi,
            total,
            dirty_flag,
            dirty,
            active,
            n_active,
            obs,
            ..
        } = self;
        let i = user.index();
        let alpha = alpha_cache[i];
        let choice = profile.choice(user);
        let route_tasks = &*route_tasks;
        let task_users = &*task_users;
        let route_row = route_tasks.row(route_base[i] as usize + choice.index());
        let mut phi_delta = 0.0;
        let mut profit_delta = 0.0;
        for &task in route_row {
            let k = task.index();
            let n = profile.participants(task);
            let a_sum = alpha_sum[k];
            phi_delta -= tables.share(task, n);
            profit_delta +=
                tables.share(task, n - 1) * (a_sum - alpha) - tables.share(task, n) * a_sum;
            alpha_sum[k] = a_sum - alpha;
            for &other in task_users.row(k) {
                mark(dirty_flag, dirty, other);
            }
        }
        phi_delta += phi_route_cost.row(i)[choice.index()];
        profit_delta += route_cost.row(i)[choice.index()];
        phi.add(phi_delta);
        total.add(profit_delta);
        profile.remove_route_counts(route_row);
        active[i] = false;
        *n_active -= 1;
        obs.emit(|| Event::UserLeft {
            user: user.index() as u32,
            phi: phi.value(),
            total_profit: total.value(),
        });
        Ok(choice)
    }

    /// Densifies the live state into a standalone `(game, choices, id_map)`
    /// triple: tombstones dropped, the remaining users renumbered to dense
    /// ids in id order, `id_map[new] = old`. The returned choices form a
    /// valid profile of the returned game — this is what a cold restart
    /// (`Engine::new` from scratch) would solve, and what the churn property
    /// tests compare against. Rebuilding an engine from the result also
    /// compacts every slab hole left behind by churn growth.
    pub fn materialize(&self) -> (Game, Vec<RouteId>, Vec<UserId>) {
        let mut users = Vec::with_capacity(self.n_active);
        let mut choices = Vec::with_capacity(self.n_active);
        let mut id_map = Vec::with_capacity(self.n_active);
        for u in self.game.users() {
            if !self.active[u.id.index()] {
                continue;
            }
            let mut cloned = u.clone();
            cloned.id = UserId::from_index(users.len());
            id_map.push(u.id);
            choices.push(self.profile.choice(u.id));
            users.push(cloned);
        }
        let game = Game::new(
            self.game.tasks().to_vec(),
            users,
            self.game.params(),
            self.game.bounds(),
        )
        .expect("materialized game re-validates: every user was validated on entry");
        (game, choices, id_map)
    }

    /// Re-executes a recorded move sequence (e.g. the `MoveCommitted` events
    /// of a trace) against this engine, returning the `(ϕ, total profit)`
    /// trajectory *after* each move.
    ///
    /// Because [`apply_move`](Self::apply_move) is deterministic and the
    /// compensated accumulators replay the exact same additions, an engine
    /// built from the same game and initial profile reproduces the recorded
    /// trajectory bit-for-bit — this is the substrate of the `replay_debug`
    /// divergence search in `vcs-bench`.
    pub fn replay_moves(&mut self, moves: &[(UserId, RouteId)]) -> Vec<(f64, f64)> {
        moves
            .iter()
            .map(|&(user, route)| {
                self.apply_move(user, route);
                (self.potential(), self.total_profit())
            })
            .collect()
    }

    /// Best route set `Δ_i(t)` of `user`, priced from the cached tables.
    /// Identical semantics (and bit-identical results) to
    /// [`crate::response::best_route_set`].
    ///
    /// This is the hot-path specialization of the generic scan: the current
    /// route's task row, the cost row and the participant-count slice are
    /// hoisted out of the per-candidate loop (the [`ProfitView`] methods
    /// re-derive them per call), while the arithmetic — per-task share
    /// summation order, `α_i·reward − cost` — and the EPSILON tie rules are
    /// replicated exactly, so results match [`best_route_set_in`] bit for
    /// bit (test-enforced).
    pub fn best_route_set(&self, user: UserId) -> BestResponse {
        let mut out = BestResponse {
            best_routes: Vec::new(),
            gain: 0.0,
            best_profit: 0.0,
        };
        self.best_route_set_into(user, &mut out);
        out
    }

    /// [`best_route_set`](Self::best_route_set) writing into `out`, reusing
    /// its `best_routes` allocation — the form the dynamics' per-slot dirty
    /// refresh uses so a response cache entry is overwritten without a heap
    /// round-trip.
    pub fn best_route_set_into(&self, user: UserId, out: &mut BestResponse) {
        let i = user.index();
        let base = self.route_base[i] as usize;
        let n_routes = (self.route_base[i + 1] - self.route_base[i]) as usize;
        let choice = self.profile.choice(user).index();
        let costs = self.route_cost.row(i);
        let counts = self.profile.participant_counts();
        let alpha = self.alpha[i];
        let cur_row = self.route_tasks.row(base + choice);
        let mut reward = 0.0;
        for &task in cur_row {
            reward += self.tables.share(task, counts[task.index()]);
        }
        let current_profit = alpha * reward - costs[choice];
        let mut stack_buf = [0.0f64; 16];
        let mut heap_buf: Vec<f64>;
        let profits: &mut [f64] = if n_routes <= 16 {
            &mut stack_buf[..n_routes]
        } else {
            heap_buf = vec![0.0; n_routes];
            &mut heap_buf
        };
        let mut best_profit = f64::NEG_INFINITY;
        for (r, slot) in profits.iter_mut().enumerate() {
            let p = if r == choice {
                current_profit
            } else {
                let cand = self.route_tasks.row(base + r);
                let mut reward = 0.0;
                for &task in cand {
                    let n = counts[task.index()];
                    let n_after = if cur_row.contains(&task) { n } else { n + 1 };
                    reward += self.tables.share(task, n_after);
                }
                alpha * reward - costs[r]
            };
            *slot = p;
            if p > best_profit {
                best_profit = p;
            }
        }
        out.best_routes.clear();
        if best_profit <= current_profit + EPSILON {
            out.gain = 0.0;
            out.best_profit = current_profit;
            return;
        }
        out.best_routes.extend(
            profits
                .iter()
                .enumerate()
                .filter(|&(_, &p)| p >= best_profit - EPSILON)
                .map(|(r, _)| RouteId::from_index(r)),
        );
        out.gain = best_profit - current_profit;
        out.best_profit = best_profit;
    }

    /// Strictly improving routes of `user` with their gains; the cached-table
    /// counterpart of [`crate::response::better_routes`].
    pub fn better_routes(&self, user: UserId) -> Vec<(RouteId, f64)> {
        better_routes_in(self, user)
    }
}

/// Debug-build check that a batch's affected task sets are pairwise disjoint
/// and no user appears twice (the [`Engine::apply_batch`] contract). No-op
/// moves (user already on the route) read and write nothing, so they are
/// exempt from the disjointness requirement.
fn batch_conflict_free(engine: &Engine<'_>, moves: &[(UserId, RouteId)]) -> bool {
    let mut seen_tasks: Vec<TaskId> = Vec::new();
    let mut seen_users: Vec<UserId> = Vec::new();
    for &(user, route) in moves {
        if seen_users.contains(&user) {
            return false;
        }
        seen_users.push(user);
        let current = engine.profile.choice(user);
        if current == route {
            continue;
        }
        let base = engine.route_base[user.index()] as usize;
        for row in [current.index(), route.index()] {
            for &task in engine.route_tasks.row(base + row) {
                if seen_tasks.contains(&task) {
                    return false;
                }
            }
        }
        let mut mine: Vec<TaskId> = engine.route_tasks.row(base + current.index()).to_vec();
        mine.extend_from_slice(engine.route_tasks.row(base + route.index()));
        mine.sort_unstable();
        mine.dedup();
        seen_tasks.extend(mine);
    }
    true
}

/// Marks `user` dirty. Free function over the split-off dirty fields so the
/// mutating methods can hold simultaneous borrows of the other engine parts.
#[inline]
fn mark(dirty_flag: &mut [bool], dirty: &mut Vec<UserId>, user: UserId) {
    if !dirty_flag[user.index()] {
        dirty_flag[user.index()] = true;
        dirty.push(user);
    }
}

/// Prices routes exactly like [`Profile::profit`] /
/// [`Profile::profit_if_switched`], with shares and costs read from the
/// slabs: same values, same summation order, bit-identical results.
impl ProfitView for Engine<'_> {
    fn route_count(&self, user: UserId) -> usize {
        let i = user.index();
        (self.route_base[i + 1] - self.route_base[i]) as usize
    }

    fn choice(&self, user: UserId) -> RouteId {
        self.profile.choice(user)
    }

    fn profit(&self, user: UserId) -> f64 {
        let i = user.index();
        let choice = self.profile.choice(user);
        let row = self
            .route_tasks
            .row(self.route_base[i] as usize + choice.index());
        let mut reward = 0.0;
        for &task in row {
            reward += self.tables.share(task, self.profile.participants(task));
        }
        self.alpha[i] * reward - self.route_cost.row(i)[choice.index()]
    }

    fn profit_if_switched(&self, user: UserId, candidate: RouteId) -> f64 {
        let i = user.index();
        let base = self.route_base[i] as usize;
        let current = self
            .route_tasks
            .row(base + self.profile.choice(user).index());
        let cand = self.route_tasks.row(base + candidate.index());
        let mut reward = 0.0;
        for &task in cand {
            let n = self.profile.participants(task);
            let n_after = if current.contains(&task) { n } else { n + 1 };
            reward += self.tables.share(task, n_after);
        }
        self.alpha[i] * reward - self.route_cost.row(i)[candidate.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::game::PlatformParams;
    use crate::potential::potential;
    use crate::response::{best_route_set, better_routes};
    use crate::route::Route;
    use crate::task::Task;
    use crate::user::{User, UserPrefs};

    /// Three users over three tasks with overlapping coverage.
    fn game() -> Game {
        let tasks = vec![
            Task::new(TaskId(0), 11.0, 0.3),
            Task::new(TaskId(1), 15.0, 0.9),
            Task::new(TaskId(2), 18.0, 0.0),
        ];
        let users = vec![
            User::new(
                UserId(0),
                UserPrefs::new(0.4, 0.6, 0.2),
                vec![
                    Route::new(RouteId(0), vec![TaskId(0), TaskId(1)], 0.0, 2.0),
                    Route::new(RouteId(1), vec![TaskId(2)], 4.0, 0.5),
                ],
            ),
            User::new(
                UserId(1),
                UserPrefs::new(0.7, 0.3, 0.5),
                vec![
                    Route::new(RouteId(0), vec![TaskId(1), TaskId(2)], 1.0, 1.0),
                    Route::new(RouteId(1), vec![TaskId(0)], 0.0, 3.0),
                ],
            ),
            User::new(
                UserId(2),
                UserPrefs::new(0.2, 0.8, 0.8),
                vec![
                    Route::new(RouteId(0), vec![TaskId(1)], 2.0, 0.0),
                    Route::new(RouteId(1), vec![], 0.0, 0.0),
                ],
            ),
        ];
        Game::with_paper_bounds(tasks, users, PlatformParams::new(0.3, 0.6)).unwrap()
    }

    #[test]
    fn share_tables_match_task_methods() {
        let g = game();
        let tables = ShareTables::new(&g);
        for task in g.tasks() {
            let cap = tables.capacity(task.id);
            for n in 0..=cap + 3 {
                assert_eq!(
                    tables.share(task.id, n),
                    task.share(n),
                    "share({}, {n})",
                    task.id
                );
                assert!(
                    (tables.potential_term(task.id, n) - task.potential_term(n)).abs() < 1e-12,
                    "potential_term({}, {n})",
                    task.id
                );
            }
            // Within the table range the prefix is bit-identical.
            for n in 0..=cap {
                assert_eq!(tables.potential_term(task.id, n), task.potential_term(n));
            }
        }
    }

    #[test]
    fn engine_profits_bit_identical_to_profile() {
        let g = game();
        let profile = Profile::all_first(&g);
        let engine = Engine::new(&g, profile.clone());
        for i in 0..g.user_count() {
            let user = UserId::from_index(i);
            assert_eq!(engine.profit(user), profile.profit(&g, user));
            for r in 0..g.users()[i].routes.len() {
                let route = RouteId::from_index(r);
                assert_eq!(
                    engine.profit_if_switched(user, route),
                    profile.profit_if_switched(&g, user, route)
                );
            }
            assert_eq!(
                engine.best_route_set(user),
                best_route_set(&g, &profile, user)
            );
            assert_eq!(
                engine.better_routes(user),
                better_routes(&g, &profile, user)
            );
        }
    }

    #[test]
    fn apply_remote_move_matches_apply_move_silently() {
        use crate::ids::UserId;
        use vcs_obs::{Obs, RingBufferSubscriber};
        let g = game();
        let mut local = Engine::new(&g, Profile::all_first(&g));
        let mut replica = Engine::new(&g, Profile::all_first(&g));
        let ring = std::sync::Arc::new(RingBufferSubscriber::new(64));
        replica.set_obs(Obs::new(ring.clone()));
        // Same mechanical state transition on both engines...
        assert_eq!(
            local.apply_move(UserId(1), RouteId(1)),
            replica.apply_remote_move(UserId(1), RouteId(1))
        );
        assert_eq!(local.potential(), replica.potential(), "bit-identical ϕ");
        assert_eq!(local.total_profit(), replica.total_profit());
        assert_eq!(local.take_dirty(), replica.take_dirty(), "same dirtying");
        assert_eq!(
            local.profile().choices(),
            replica.profile().choices(),
            "same profile"
        );
        // ...but the replica emitted no MoveCommitted for it.
        assert!(
            ring.events()
                .iter()
                .all(|e| !matches!(e, Event::MoveCommitted { .. })),
            "remote application must not re-record the move"
        );
        // No-op remote moves are no-ops.
        let before = replica.potential();
        replica.apply_remote_move(UserId(1), RouteId(1));
        assert_eq!(replica.potential(), before);
    }

    #[test]
    fn slab_views_mirror_the_game_object_graph() {
        let g = game();
        let engine = Engine::new(&g, Profile::all_first(&g));
        for user in g.users() {
            assert_eq!(engine.alpha_of(user.id), user.prefs.alpha);
            assert_eq!(engine.route_count(user.id), user.routes.len());
            for route in &user.routes {
                assert_eq!(
                    engine.route_task_list(user.id, route.id),
                    route.tasks.as_slice()
                );
            }
        }
    }

    #[test]
    fn incremental_potential_tracks_full_recompute() {
        let g = game();
        let mut engine = Engine::new(&g, Profile::all_first(&g));
        let moves = [(0u32, 1u32), (1, 1), (2, 1), (0, 0), (1, 0), (2, 0), (0, 1)];
        for (u, r) in moves {
            engine.apply_move(UserId(u), RouteId(r));
            let fresh = potential(&g, engine.profile());
            assert!(
                (engine.potential() - fresh).abs() < 1e-9,
                "phi drifted: {} vs {fresh}",
                engine.potential()
            );
            let fresh_total = engine.profile().total_profit(&g);
            assert!(
                (engine.total_profit() - fresh_total).abs() < 1e-9,
                "total drifted: {} vs {fresh_total}",
                engine.total_profit()
            );
        }
    }

    #[test]
    fn dirty_set_covers_affected_users() {
        let g = game();
        let mut engine = Engine::new(&g, Profile::all_first(&g));
        // Initial drain: everyone.
        let initial = engine.take_dirty();
        assert_eq!(initial.len(), g.user_count());
        assert!(engine.take_dirty().is_empty());
        // User 2 leaves task 1 (covered by routes of users 0, 1, 2).
        engine.apply_move(UserId(2), RouteId(1));
        let dirty = engine.take_dirty();
        assert_eq!(dirty, vec![UserId(0), UserId(1), UserId(2)]);
        // No-op move dirties nothing.
        engine.apply_move(UserId(2), RouteId(1));
        assert!(engine.take_dirty().is_empty());
    }

    #[test]
    fn clean_users_keep_their_best_response() {
        // A game where user 1's tasks are disjoint from user 0's.
        let tasks = vec![
            Task::new(TaskId(0), 10.0, 0.0),
            Task::new(TaskId(1), 12.0, 0.0),
        ];
        let users = vec![
            User::new(
                UserId(0),
                UserPrefs::new(0.5, 0.5, 0.5),
                vec![
                    Route::new(RouteId(0), vec![TaskId(0)], 0.0, 0.0),
                    Route::new(RouteId(1), vec![], 1.0, 1.0),
                ],
            ),
            User::new(
                UserId(1),
                UserPrefs::new(0.5, 0.5, 0.5),
                vec![
                    Route::new(RouteId(0), vec![TaskId(1)], 0.0, 0.0),
                    Route::new(RouteId(1), vec![], 1.0, 1.0),
                ],
            ),
        ];
        let g = Game::with_paper_bounds(tasks, users, PlatformParams::new(0.5, 0.5)).unwrap();
        let mut engine = Engine::new(&g, Profile::all_first(&g));
        engine.take_dirty();
        let before = engine.best_route_set(UserId(1));
        engine.apply_move(UserId(0), RouteId(1));
        // User 1 covers neither of user 0's tasks: stays clean.
        assert_eq!(engine.take_dirty(), vec![UserId(0)]);
        assert_eq!(engine.best_route_set(UserId(1)), before);
    }

    #[test]
    fn inverted_index_sorted_per_task() {
        let g = game();
        let engine = Engine::new(&g, Profile::all_first(&g));
        // Task 1 is on routes of all three users; task 2 on users 0 and 1.
        assert_eq!(
            engine.users_covering(TaskId(1)),
            &[UserId(0), UserId(1), UserId(2)]
        );
        assert_eq!(engine.users_covering(TaskId(2)), &[UserId(0), UserId(1)]);
    }

    #[test]
    fn batch_apply_matches_sequential_moves_bitwise() {
        // Users 0 and 2 have disjoint affected sets once user 0 sits on
        // route 1 ({2}) and user 2 on route 1 ({}): batch = user 0 back to
        // {0,1}... that overlaps user 2's route 0 ({1}). Build a bespoke
        // game with clean separation instead.
        let tasks = vec![
            Task::new(TaskId(0), 10.0, 0.2),
            Task::new(TaskId(1), 12.0, 0.0),
            Task::new(TaskId(2), 14.0, 0.5),
            Task::new(TaskId(3), 16.0, 0.1),
        ];
        let users = vec![
            User::new(
                UserId(0),
                UserPrefs::new(0.5, 0.4, 0.3),
                vec![
                    Route::new(RouteId(0), vec![TaskId(0)], 0.0, 1.0),
                    Route::new(RouteId(1), vec![TaskId(1)], 1.0, 0.0),
                ],
            ),
            User::new(
                UserId(1),
                UserPrefs::new(0.6, 0.2, 0.7),
                vec![
                    Route::new(RouteId(0), vec![TaskId(2)], 0.5, 0.5),
                    Route::new(RouteId(1), vec![TaskId(3)], 0.0, 2.0),
                ],
            ),
        ];
        let g = Game::with_paper_bounds(tasks, users, PlatformParams::new(0.4, 0.4)).unwrap();
        let batch = [(UserId(0), RouteId(1)), (UserId(1), RouteId(1))];
        let mut sequential = Engine::new(&g, Profile::all_first(&g));
        for &(u, r) in &batch {
            sequential.apply_move(u, r);
        }
        for force_parallel in [false, true] {
            let mut batched = Engine::new(&g, Profile::all_first(&g));
            let threshold = if force_parallel { 0 } else { usize::MAX };
            assert_eq!(batched.apply_batch_with_threshold(&batch, threshold), 2);
            assert_eq!(
                batched.potential().to_bits(),
                sequential.potential().to_bits(),
                "ϕ diverged (parallel={force_parallel})"
            );
            assert_eq!(
                batched.total_profit().to_bits(),
                sequential.total_profit().to_bits(),
                "total diverged (parallel={force_parallel})"
            );
            assert_eq!(batched.profile(), sequential.profile());
            assert_eq!(batched.take_dirty(), sequential.clone().take_dirty());
        }
    }

    #[test]
    fn batch_apply_skips_noop_moves() {
        let g = game();
        let mut engine = Engine::new(&g, Profile::all_first(&g));
        let before_phi = engine.potential();
        assert_eq!(engine.apply_batch(&[(UserId(2), RouteId(0))]), 0);
        assert_eq!(engine.potential(), before_phi);
    }

    /// Checks the live engine against a fresh engine on its materialized
    /// game: ϕ/total within 1e-9, counts exact, per-user profits identical.
    fn assert_matches_materialized(engine: &Engine<'_>) {
        let (game, choices, id_map) = engine.materialize();
        let fresh = Engine::new(&game, Profile::new(&game, choices));
        assert!(
            (engine.potential() - fresh.potential_fresh()).abs() < 1e-9,
            "phi {} vs fresh {}",
            engine.potential(),
            fresh.potential_fresh()
        );
        assert!(
            (engine.total_profit() - fresh.total_profit_fresh()).abs() < 1e-9,
            "total {} vs fresh {}",
            engine.total_profit(),
            fresh.total_profit_fresh()
        );
        for (new_idx, &old) in id_map.iter().enumerate() {
            let new = UserId::from_index(new_idx);
            assert_eq!(engine.profit(old), fresh.profit(new), "profit of {old}");
        }
        for task in game.tasks() {
            assert_eq!(
                engine.profile().participants(task.id),
                fresh.profile().participants(task.id),
                "count of {}",
                task.id
            );
        }
    }

    #[test]
    fn add_user_matches_fresh_engine() {
        let g = game();
        let mut engine = Engine::new(&g, Profile::all_first(&g));
        let joined = engine
            .add_user(
                UserPrefs::new(0.6, 0.4, 0.3),
                vec![
                    Route::new(RouteId(0), vec![TaskId(0), TaskId(2)], 0.5, 1.0),
                    Route::new(RouteId(1), vec![TaskId(1)], 2.0, 0.0),
                ],
                RouteId(0),
            )
            .unwrap();
        assert_eq!(joined, UserId(3));
        assert_eq!(engine.active_count(), 4);
        assert!(engine.is_active(joined));
        // The inverted index gained the user on its covered tasks, sorted.
        assert!(engine.users_covering(TaskId(0)).contains(&joined));
        assert_matches_materialized(&engine);
        // The join dirtied the arriving user and the task-0/2 sharers.
        let dirty = engine.take_dirty();
        assert!(dirty.contains(&joined));
        assert!(dirty.contains(&UserId(0)));
    }

    #[test]
    fn remove_user_matches_fresh_engine() {
        let g = game();
        let mut engine = Engine::new(&g, Profile::all_first(&g));
        engine.take_dirty();
        let choice = engine.remove_user(UserId(1)).unwrap();
        assert_eq!(choice, RouteId(0));
        assert_eq!(engine.active_count(), 2);
        assert!(!engine.is_active(UserId(1)));
        assert_eq!(
            engine.active_users().collect::<Vec<_>>(),
            vec![UserId(0), UserId(2)]
        );
        assert_matches_materialized(&engine);
        // Users sharing tasks 1/2 with the departed user's route are dirty;
        // the departed user itself is filtered out of the drain.
        let dirty = engine.take_dirty();
        assert_eq!(dirty, vec![UserId(0), UserId(2)]);
        assert!(matches!(
            engine.remove_user(UserId(1)),
            Err(GameError::UnknownUser { user: UserId(1) })
        ));
        assert!(engine.remove_user(UserId(9)).is_err());
    }

    #[test]
    fn churn_then_moves_stay_consistent() {
        let g = game();
        let mut engine = Engine::new(&g, Profile::all_first(&g));
        engine.remove_user(UserId(0)).unwrap();
        let joined = engine
            .add_user(
                UserPrefs::new(0.3, 0.7, 0.6),
                vec![
                    Route::new(RouteId(0), vec![TaskId(1)], 0.0, 0.0),
                    Route::new(RouteId(1), vec![TaskId(0), TaskId(2)], 1.0, 2.0),
                ],
                RouteId(1),
            )
            .unwrap();
        engine.apply_move(joined, RouteId(0));
        engine.apply_move(UserId(2), RouteId(1));
        assert_matches_materialized(&engine);
        assert!(
            (engine.potential() - engine.potential_fresh()).abs() < 1e-9,
            "running phi drifted"
        );
        assert!((engine.total_profit() - engine.total_profit_fresh()).abs() < 1e-9);
    }

    #[test]
    fn add_user_rejects_bad_input_without_mutating() {
        let g = game();
        let mut engine = Engine::new(&g, Profile::all_first(&g));
        let snapshot_phi = engine.potential();
        // Initial route out of range.
        assert!(matches!(
            engine.add_user(
                UserPrefs::neutral(),
                vec![Route::new(RouteId(0), vec![], 0.0, 0.0)],
                RouteId(3),
            ),
            Err(GameError::InvalidProfile { .. })
        ));
        // Empty route set.
        assert!(matches!(
            engine.add_user(UserPrefs::neutral(), vec![], RouteId(0)),
            Err(GameError::EmptyRouteSet { .. })
        ));
        // Unknown task.
        assert!(matches!(
            engine.add_user(
                UserPrefs::neutral(),
                vec![Route::new(RouteId(0), vec![TaskId(7)], 0.0, 0.0)],
                RouteId(0),
            ),
            Err(GameError::UnknownTask { .. })
        ));
        assert_eq!(engine.active_count(), 3);
        assert_eq!(engine.game().user_count(), 3);
        assert_eq!(engine.potential(), snapshot_phi);
    }

    #[test]
    fn replay_reproduces_trajectory_bit_for_bit() {
        let g = game();
        let moves = [(0u32, 1u32), (1, 1), (2, 1), (0, 0), (1, 0), (2, 0), (0, 1)];
        // Record by stepping one engine move-by-move...
        let mut live = Engine::new(&g, Profile::all_first(&g));
        let recorded: Vec<(f64, f64)> = moves
            .iter()
            .map(|&(u, r)| {
                live.apply_move(UserId(u), RouteId(r));
                (live.potential(), live.total_profit())
            })
            .collect();
        // ...then replay the same sequence against a fresh engine.
        let mut fresh = Engine::new(&g, Profile::all_first(&g));
        let pairs: Vec<(UserId, RouteId)> = moves
            .iter()
            .map(|&(u, r)| (UserId(u), RouteId(r)))
            .collect();
        let replayed = fresh.replay_moves(&pairs);
        assert_eq!(recorded, replayed, "replay must be bit-identical");
    }

    #[test]
    fn new_owned_engine_is_static() {
        let engine: Engine<'static> = Engine::new_owned(game(), Profile::all_first(&game()));
        assert_eq!(engine.active_count(), 3);
        assert!((engine.potential() - engine.potential_fresh()).abs() < 1e-12);
    }
}
