//! Better/best response updates (Definition 1) and Nash-equilibrium checks
//! (Definition 2).
//!
//! The distributed algorithm's per-user step is: compute the *best route set*
//! `Δ_i(t)` — the routes that maximize user `i`'s profit given everyone
//! else's current choice *and* strictly improve on the current profit
//! (Alg. 1, line 10). [`best_route_set`] implements exactly that;
//! [`better_routes`] lists all strictly improving routes for better-response
//! dynamics (BRUN); [`is_nash`] checks Definition 2 up to a tolerance.

use crate::game::Game;
use crate::ids::{RouteId, UserId};
use crate::profile::Profile;

/// Numerical tolerance for "strict improvement". Profit deltas below this are
/// treated as ties so that floating-point noise cannot produce infinite
/// update cycles. The potential function increases by at least
/// `EPSILON / e_max` per accepted update, preserving the finite-improvement
/// property.
pub const EPSILON: f64 = 1e-9;

/// Result of scanning a user's recommended set for a best response.
#[derive(Debug, Clone, PartialEq)]
pub struct BestResponse {
    /// The best route set `Δ_i(t)`: all routes attaining the maximum profit,
    /// **empty when the current route is already (tied-for) optimal**.
    pub best_routes: Vec<RouteId>,
    /// Profit gain `P_i(s_i', s_-i) − P_i(s)` of the best routes (0 if none).
    pub gain: f64,
    /// The maximum achievable profit for the user under `s_-i`.
    pub best_profit: f64,
}

impl BestResponse {
    /// Whether the user can strictly improve (`Δ_i(t) ≠ ∅`).
    #[inline]
    pub fn can_improve(&self) -> bool {
        !self.best_routes.is_empty()
    }

    /// The canonical representative of `Δ_i(t)`: the lowest-index best route.
    /// `None` when no improvement exists.
    #[inline]
    pub fn first(&self) -> Option<RouteId> {
        self.best_routes.first().copied()
    }
}

/// A view of per-user route profits under some joint strategy state.
///
/// Both the plain `(Game, Profile)` pair and the incremental
/// [`Engine`](crate::engine::Engine) price routes; the best/better-response
/// scans below are generic over this trait so that both paths share one
/// implementation of the [`EPSILON`] tie-breaking rules and stay
/// bit-identical by construction.
pub trait ProfitView {
    /// Number of recommended routes of `user`.
    fn route_count(&self, user: UserId) -> usize;
    /// The route `user` currently travels.
    fn choice(&self, user: UserId) -> RouteId;
    /// Profit `P_i(s)` of `user` under the current joint strategy.
    fn profit(&self, user: UserId) -> f64;
    /// Profit of `user` if it unilaterally switched to `candidate`.
    fn profit_if_switched(&self, user: UserId, candidate: RouteId) -> f64;
}

/// The naive profit view: prices every route directly from the game
/// definition and the profile's participant counts.
impl ProfitView for (&Game, &Profile) {
    fn route_count(&self, user: UserId) -> usize {
        self.0.users()[user.index()].routes.len()
    }

    fn choice(&self, user: UserId) -> RouteId {
        self.1.choice(user)
    }

    fn profit(&self, user: UserId) -> f64 {
        self.1.profit(self.0, user)
    }

    fn profit_if_switched(&self, user: UserId, candidate: RouteId) -> f64 {
        self.1.profit_if_switched(self.0, user, candidate)
    }
}

/// Computes the best route set `Δ_i(t)` of `user` (Alg. 1, line 10).
///
/// Scans every recommended route, evaluating the unilateral-deviation profit
/// via [`Profile::profit_if_switched`]. Routes within [`EPSILON`] of the
/// maximum are all reported (ties), but only if the maximum strictly exceeds
/// the current profit by more than [`EPSILON`].
pub fn best_route_set(game: &Game, profile: &Profile, user: UserId) -> BestResponse {
    best_route_set_in(&(game, profile), user)
}

/// Recommended sets are small (the paper's scenarios top out at a handful
/// of candidate routes); scans buffer per-route profits on the stack up to
/// this size so the common no-improvement case performs no allocation.
const STACK_ROUTES: usize = 16;

/// [`best_route_set`] generic over any [`ProfitView`].
pub fn best_route_set_in<V: ProfitView>(view: &V, user: UserId) -> BestResponse {
    let current_profit = view.profit(user);
    let n_routes = view.route_count(user);
    let mut stack_buf = [0.0f64; STACK_ROUTES];
    let mut heap_buf: Vec<f64>;
    let profits: &mut [f64] = if n_routes <= STACK_ROUTES {
        &mut stack_buf[..n_routes]
    } else {
        heap_buf = vec![0.0; n_routes];
        &mut heap_buf
    };
    let mut best_profit = f64::NEG_INFINITY;
    for (r, slot) in profits.iter_mut().enumerate() {
        let candidate = RouteId::from_index(r);
        let p = if candidate == view.choice(user) {
            current_profit
        } else {
            view.profit_if_switched(user, candidate)
        };
        *slot = p;
        if p > best_profit {
            best_profit = p;
        }
    }
    if best_profit <= current_profit + EPSILON {
        return BestResponse {
            best_routes: Vec::new(),
            gain: 0.0,
            best_profit: current_profit,
        };
    }
    let best_routes = profits
        .iter()
        .enumerate()
        .filter(|&(_, &p)| p >= best_profit - EPSILON)
        .map(|(r, _)| RouteId::from_index(r))
        .collect();
    BestResponse {
        best_routes,
        gain: best_profit - current_profit,
        best_profit,
    }
}

/// Lists every strictly improving route of `user` together with its profit
/// gain (better-response candidates, Definition 1).
pub fn better_routes(game: &Game, profile: &Profile, user: UserId) -> Vec<(RouteId, f64)> {
    better_routes_in(&(game, profile), user)
}

/// [`better_routes`] generic over any [`ProfitView`].
pub fn better_routes_in<V: ProfitView>(view: &V, user: UserId) -> Vec<(RouteId, f64)> {
    let current_profit = view.profit(user);
    let current = view.choice(user);
    let n_routes = view.route_count(user);
    let mut out = Vec::new();
    for r in 0..n_routes {
        let candidate = RouteId::from_index(r);
        if candidate == current {
            continue;
        }
        let p = view.profit_if_switched(user, candidate);
        if p > current_profit + EPSILON {
            out.push((candidate, p - current_profit));
        }
    }
    out
}

/// Whether `profile` is a Nash equilibrium of `game` (Definition 2): no user
/// can improve its profit by more than [`EPSILON`] with a unilateral switch.
pub fn is_nash(game: &Game, profile: &Profile) -> bool {
    (0..game.user_count())
        .all(|i| !best_route_set(game, profile, UserId::from_index(i)).can_improve())
}

/// The largest unilateral improvement available to any user; `0.0` at a Nash
/// equilibrium. Useful as a convergence diagnostic.
pub fn max_unilateral_gain(game: &Game, profile: &Profile) -> f64 {
    (0..game.user_count())
        .map(|i| best_route_set(game, profile, UserId::from_index(i)).gain)
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::game::PlatformParams;
    use crate::ids::TaskId;
    use crate::route::Route;
    use crate::task::Task;
    use crate::user::{User, UserPrefs};

    /// One user with three routes of cleanly ordered profit.
    fn solo_game() -> Game {
        let tasks = vec![
            Task::new(TaskId(0), 10.0, 0.0),
            Task::new(TaskId(1), 20.0, 0.0),
            Task::new(TaskId(2), 20.0, 0.0),
        ];
        let users = vec![User::new(
            UserId(0),
            UserPrefs::new(0.5, 0.5, 0.5),
            vec![
                Route::new(RouteId(0), vec![TaskId(0)], 0.0, 0.0),
                Route::new(RouteId(1), vec![TaskId(1)], 0.0, 0.0),
                Route::new(RouteId(2), vec![TaskId(2)], 0.0, 0.0),
            ],
        )];
        Game::with_paper_bounds(tasks, users, PlatformParams::new(0.5, 0.5)).unwrap()
    }

    #[test]
    fn best_route_set_reports_all_ties() {
        let g = solo_game();
        let p = Profile::all_first(&g);
        let br = best_route_set(&g, &p, UserId(0));
        assert!(br.can_improve());
        assert_eq!(br.best_routes, vec![RouteId(1), RouteId(2)]);
        assert!((br.gain - 5.0).abs() < 1e-12); // 0.5·20 − 0.5·10
        assert_eq!(br.first(), Some(RouteId(1)));
    }

    #[test]
    fn no_improvement_when_on_best_route() {
        let g = solo_game();
        let p = Profile::new(&g, vec![RouteId(1)]);
        let br = best_route_set(&g, &p, UserId(0));
        assert!(!br.can_improve());
        assert_eq!(br.gain, 0.0);
        assert!(is_nash(&g, &p));
    }

    #[test]
    fn better_routes_lists_all_improvements() {
        let g = solo_game();
        let p = Profile::all_first(&g);
        let better = better_routes(&g, &p, UserId(0));
        assert_eq!(better.len(), 2);
        assert!(better.iter().all(|&(_, gain)| gain > 0.0));
    }

    #[test]
    fn nash_detects_deviation_incentive() {
        let g = solo_game();
        let p = Profile::all_first(&g);
        assert!(!is_nash(&g, &p));
        assert!((max_unilateral_gain(&g, &p) - 5.0).abs() < 1e-12);
    }

    /// Fig. 1 style: reward sharing makes the "everyone chase the big task"
    /// profile unstable.
    #[test]
    fn sharing_induces_spreading() {
        let tasks = vec![
            Task::new(TaskId(0), 12.0, 0.0),
            Task::new(TaskId(1), 10.0, 0.0),
        ];
        let routes = |_: u32| {
            vec![
                Route::new(RouteId(0), vec![TaskId(0)], 0.0, 0.0),
                Route::new(RouteId(1), vec![TaskId(1)], 0.0, 0.0),
            ]
        };
        let users = (0..2)
            .map(|i| User::new(UserId(i), UserPrefs::new(0.5, 0.5, 0.5), routes(i)))
            .collect();
        let g = Game::with_paper_bounds(tasks, users, PlatformParams::new(0.5, 0.5)).unwrap();
        // Both on the 12-task: each receives 6 < 10, so both want to deviate.
        let p = Profile::all_first(&g);
        assert!(!is_nash(&g, &p));
        // One on each task: 12 vs 10 ≥ 12/2, stable.
        let split = Profile::new(&g, vec![RouteId(0), RouteId(1)]);
        assert!(is_nash(&g, &split));
    }

    #[test]
    fn ties_do_not_count_as_improvement() {
        // Two identical routes: switching gains exactly 0, must not improve.
        let tasks = vec![Task::new(TaskId(0), 10.0, 0.0)];
        let users = vec![User::new(
            UserId(0),
            UserPrefs::new(0.5, 0.5, 0.5),
            vec![
                Route::new(RouteId(0), vec![TaskId(0)], 1.0, 1.0),
                Route::new(RouteId(1), vec![TaskId(0)], 1.0, 1.0),
            ],
        )];
        let g = Game::with_paper_bounds(tasks, users, PlatformParams::new(0.5, 0.5)).unwrap();
        let p = Profile::all_first(&g);
        assert!(!best_route_set(&g, &p, UserId(0)).can_improve());
        assert!(better_routes(&g, &p, UserId(0)).is_empty());
        assert!(is_nash(&g, &p));
    }
}
