//! Theorem 5: Price-of-Anarchy bound for the structured special case.
//!
//! The paper analyzes the special case where (a) every route covers exactly
//! one task, (b) each user `i`'s recommended set is `{r'_i} ∪ R` with a
//! private route `r'_i` (its task covered by nobody else) plus a common route
//! set `R` covering the shared task set `L'`, and (c) every shared task pays
//! `w_k(x) = a + ln x`. Then with `p = (|U| + |L'| − 1) / |L'|`,
//! `P_i^min = (a + ln p)/p`, `P_i^max = a`:
//!
//! ```text
//! Σ_i max{P̄_i, P_i^min} / Σ_i max{P̄_i, P_i^max}  ≤  PoA  ≤  1
//! ```
//!
//! where `P̄_i` is the profit user `i` obtains on its private route.
//!
//! [`SpecialCaseGame`] constructs such instances (used by Table 4) and
//! [`poa_lower_bound`] evaluates the bound.

use crate::game::{Game, PlatformParams};
use crate::ids::{RouteId, TaskId, UserId};
use crate::route::Route;
use crate::task::Task;
use crate::user::{User, UserPrefs, WeightBounds};

/// Specification of a Theorem 5 special-case instance.
#[derive(Debug, Clone, PartialEq)]
pub struct SpecialCaseSpec {
    /// Base reward `a` of every shared task (`w_k(x) = a + ln x`).
    pub shared_base_reward: f64,
    /// Base rewards of each user's private task (`μ = 0`), one per user. The
    /// private-route profit `P̄_i` equals this value.
    pub private_rewards: Vec<f64>,
    /// Number of shared tasks `|L'|` (one common route per shared task).
    pub shared_tasks: usize,
}

/// A constructed special-case game together with its bookkeeping.
#[derive(Debug, Clone)]
pub struct SpecialCaseGame {
    /// The game instance (all costs zero, `α_i = 0.5` for every user so the
    /// profit is a uniform scaling of the reward share — scaling both sides
    /// of the PoA ratio leaves it unchanged).
    pub game: Game,
    /// The specification it was built from.
    pub spec: SpecialCaseSpec,
}

/// The uniform `α` used for every user in the special case. Any value inside
/// the weight bounds works; the PoA ratio is invariant to it because it
/// multiplies numerator and denominator alike.
pub const SPECIAL_CASE_ALPHA: f64 = 0.5;

impl SpecialCaseGame {
    /// Builds the special case: user `i` has private route `r'_i` (route 0,
    /// covering private task `i`) plus `|L'|` common routes, the `j`-th
    /// covering shared task `j`.
    ///
    /// # Panics
    ///
    /// Panics if `spec.shared_tasks == 0` or `spec.private_rewards` is empty.
    pub fn build(spec: SpecialCaseSpec) -> Self {
        assert!(spec.shared_tasks > 0, "need at least one shared task");
        assert!(!spec.private_rewards.is_empty(), "need at least one user");
        let n_users = spec.private_rewards.len();
        let mut tasks = Vec::with_capacity(n_users + spec.shared_tasks);
        // Private tasks first: task i belongs to user i.
        for (i, &reward) in spec.private_rewards.iter().enumerate() {
            tasks.push(Task::new(TaskId::from_index(i), reward, 0.0));
        }
        // Shared tasks follow, each with w(x) = a + ln x (μ = 1).
        for j in 0..spec.shared_tasks {
            tasks.push(Task::new(
                TaskId::from_index(n_users + j),
                spec.shared_base_reward,
                1.0,
            ));
        }
        let prefs = UserPrefs::new(SPECIAL_CASE_ALPHA, SPECIAL_CASE_ALPHA, SPECIAL_CASE_ALPHA);
        let users = (0..n_users)
            .map(|i| {
                let mut routes = Vec::with_capacity(1 + spec.shared_tasks);
                routes.push(Route::new(
                    RouteId(0),
                    vec![TaskId::from_index(i)],
                    0.0,
                    0.0,
                ));
                for j in 0..spec.shared_tasks {
                    routes.push(Route::new(
                        RouteId::from_index(1 + j),
                        vec![TaskId::from_index(n_users + j)],
                        0.0,
                        0.0,
                    ));
                }
                User::new(UserId::from_index(i), prefs, routes)
            })
            .collect();
        let game = Game::new(
            tasks,
            users,
            PlatformParams::new(0.5, 0.5),
            WeightBounds::PAPER,
        )
        .expect("special-case construction is always valid");
        Self { game, spec }
    }

    /// `p = (|U| + |L'| − 1) / |L'|` from Theorem 5.
    pub fn p(&self) -> f64 {
        let u = self.spec.private_rewards.len() as f64;
        let l = self.spec.shared_tasks as f64;
        (u + l - 1.0) / l
    }

    /// `P_i^min = (a + ln p)/p`, the worst equilibrium share on a shared task
    /// (scaled by `α`, consistently with the game's profit function).
    pub fn p_min(&self) -> f64 {
        let p = self.p();
        SPECIAL_CASE_ALPHA * (self.spec.shared_base_reward + p.ln()) / p
    }

    /// `P_i^max = a`, the best possible shared-task profit (scaled by `α`).
    pub fn p_max(&self) -> f64 {
        SPECIAL_CASE_ALPHA * self.spec.shared_base_reward
    }

    /// Private-route profit `P̄_i` of user `i` (scaled by `α`).
    pub fn private_profit(&self, user: UserId) -> f64 {
        SPECIAL_CASE_ALPHA * self.spec.private_rewards[user.index()]
    }
}

/// Exact centralized optimum of a special-case game, in closed form.
///
/// With every route covering exactly one task, total profit decomposes as
/// `α·(Σ_{private users} p_i + Σ_{shared tasks} (a + ln n_k))`. For a fixed
/// number `s` of users on shared tasks, (a) the `s` users with the
/// *smallest* private rewards should go shared, and (b) the shared counts
/// maximize `Σ_k g(n_k)` with `g(n) = a + ln n` concave increasing, so the
/// greedy marginal allocation (largest marginals first: `a` per empty task,
/// then `ln(q/(q−1))`) is optimal. Scanning `s = 0..=|U|` gives the optimum
/// in `O(|U|·(|U| + |L'|))` — the structured counterpart of the NP-hard
/// general problem, used to make Table 4 exact at scale.
pub fn special_case_optimal(sc: &SpecialCaseGame) -> f64 {
    let m = sc.spec.private_rewards.len();
    let l = sc.spec.shared_tasks;
    let a = sc.spec.shared_base_reward;
    // Private rewards sorted descending; prefix_desc[j] = sum of j largest.
    let mut privates = sc.spec.private_rewards.clone();
    privates.sort_by(|x, y| y.total_cmp(x));
    let mut prefix_desc = vec![0.0; m + 1];
    for j in 0..m {
        prefix_desc[j + 1] = prefix_desc[j] + privates[j];
    }
    // Marginal values of placing the s-th shared user, largest first. The
    // first |L'| marginals are `a` (opening a task); after that the largest
    // remaining marginal is always `ln((q+1)/q)` for the least-loaded task,
    // realized by round-robin filling.
    let mut best = f64::NEG_INFINITY;
    let mut shared_value = 0.0;
    for s in 0..=m {
        if s > 0 {
            let marginal = if s <= l {
                a
            } else {
                // Round-robin: the s-th shared user raises some task from
                // q = ceil((s-1)/l)... with identical tasks the least-loaded
                // task has floor((s-1)/l) users before this placement.
                let q = ((s - 1) / l) as f64;
                ((q + 1.0) / q.max(1.0)).ln()
            };
            shared_value += marginal;
        }
        let total = prefix_desc[m - s] + shared_value;
        best = best.max(total);
    }
    SPECIAL_CASE_ALPHA * best
}

/// Evaluates the Theorem 5 lower bound
/// `Σ_i max{P̄_i, P_i^min} / Σ_i max{P̄_i, P_i^max}` for a special-case game.
pub fn poa_lower_bound(sc: &SpecialCaseGame) -> f64 {
    let p_min = sc.p_min();
    let p_max = sc.p_max();
    let mut num = 0.0;
    let mut den = 0.0;
    for i in 0..sc.spec.private_rewards.len() {
        let pi = sc.private_profit(UserId::from_index(i));
        num += pi.max(p_min);
        den += pi.max(p_max);
    }
    num / den
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::Profile;
    use crate::response::is_nash;

    fn spec() -> SpecialCaseSpec {
        SpecialCaseSpec {
            shared_base_reward: 12.0,
            private_rewards: vec![4.0, 5.0, 6.0, 13.0],
            shared_tasks: 3,
        }
    }

    #[test]
    fn construction_shapes() {
        let sc = SpecialCaseGame::build(spec());
        assert_eq!(sc.game.user_count(), 4);
        assert_eq!(sc.game.task_count(), 4 + 3);
        for user in sc.game.users() {
            assert_eq!(user.route_count(), 1 + 3);
            // Every route covers exactly one task.
            assert!(user.routes.iter().all(|r| r.task_count() == 1));
        }
    }

    #[test]
    fn private_tasks_are_exclusive() {
        let sc = SpecialCaseGame::build(spec());
        // Task i (< |U|) is covered only by user i's route 0.
        for (i, user) in sc.game.users().iter().enumerate() {
            assert_eq!(user.routes[0].tasks, vec![TaskId::from_index(i)]);
            for (j, other) in sc.game.users().iter().enumerate() {
                if i != j {
                    assert!(other
                        .routes
                        .iter()
                        .all(|r| !r.covers(TaskId::from_index(i))));
                }
            }
        }
    }

    #[test]
    fn bound_in_unit_interval() {
        let sc = SpecialCaseGame::build(spec());
        let bound = poa_lower_bound(&sc);
        assert!(bound > 0.0 && bound <= 1.0, "bound = {bound}");
    }

    #[test]
    fn p_formula() {
        let sc = SpecialCaseGame::build(spec());
        // (4 + 3 − 1) / 3 = 2
        assert!((sc.p() - 2.0).abs() < 1e-12);
        assert!((sc.p_min() - 0.5 * (12.0 + 2f64.ln()) / 2.0).abs() < 1e-12);
        assert!((sc.p_max() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn high_private_reward_dominates_both_sides() {
        // If every private reward exceeds a, the bound is exactly 1: all
        // users take their private routes in every equilibrium and optimum.
        let sc = SpecialCaseGame::build(SpecialCaseSpec {
            shared_base_reward: 10.0,
            private_rewards: vec![20.0, 25.0],
            shared_tasks: 2,
        });
        assert!((poa_lower_bound(&sc) - 1.0).abs() < 1e-12);
        // And indeed "all private" is a Nash equilibrium.
        let p = Profile::all_first(&sc.game);
        assert!(is_nash(&sc.game, &p));
    }

    #[test]
    fn closed_form_optimum_matches_brute_force() {
        // Exhaustively enumerate small special cases and compare.
        for (privates, shared_tasks, a) in [
            (vec![3.0, 9.0], 2usize, 11.0),
            (vec![1.0, 2.0, 3.0], 2, 10.5),
            (vec![12.0, 0.5, 4.0], 1, 10.0),
            (vec![5.0, 5.0, 5.0, 5.0], 3, 14.0),
        ] {
            let sc = SpecialCaseGame::build(SpecialCaseSpec {
                shared_base_reward: a,
                private_rewards: privates.clone(),
                shared_tasks,
            });
            let m = privates.len();
            let routes = 1 + shared_tasks;
            let mut best = f64::NEG_INFINITY;
            let mut idx = vec![0usize; m];
            loop {
                let choices: Vec<RouteId> = idx.iter().map(|&r| RouteId::from_index(r)).collect();
                let p = Profile::new(&sc.game, choices);
                best = best.max(p.total_profit(&sc.game));
                let mut pos = 0;
                loop {
                    if pos == m {
                        break;
                    }
                    idx[pos] += 1;
                    if idx[pos] < routes {
                        break;
                    }
                    idx[pos] = 0;
                    pos += 1;
                }
                if pos == m {
                    break;
                }
            }
            let closed = special_case_optimal(&sc);
            assert!(
                (closed - best).abs() < 1e-9,
                "closed form {closed} vs brute force {best} for {privates:?}/{shared_tasks}/{a}"
            );
        }
    }

    #[test]
    fn equilibrium_total_profit_respects_bound() {
        // Brute-force all equilibria of a tiny special case and check the
        // Theorem 5 sandwich: worst-NE total / OPT total ≥ bound.
        let sc = SpecialCaseGame::build(SpecialCaseSpec {
            shared_base_reward: 11.0,
            private_rewards: vec![3.0, 9.0],
            shared_tasks: 2,
        });
        let g = &sc.game;
        let mut best = f64::NEG_INFINITY;
        let mut worst_ne = f64::INFINITY;
        let routes_per_user = 3;
        for c0 in 0..routes_per_user {
            for c1 in 0..routes_per_user {
                let p = Profile::new(g, vec![RouteId(c0), RouteId(c1)]);
                let total = p.total_profit(g);
                best = best.max(total);
                if is_nash(g, &p) {
                    worst_ne = worst_ne.min(total);
                }
            }
        }
        assert!(worst_ne.is_finite(), "no Nash equilibrium found");
        let ratio = worst_ne / best;
        let bound = poa_lower_bound(&sc);
        assert!(
            ratio >= bound - 1e-9,
            "PoA ratio {ratio} violates Theorem 5 bound {bound}"
        );
        assert!(ratio <= 1.0 + 1e-9);
    }
}
