//! Strongly-typed identifiers for the entities of the route-navigation game.
//!
//! The game never addresses entities by raw integers: users, tasks and routes
//! each get a newtype index. All three are plain `u32`-backed indices into the
//! owning collection (`Game::users`, `Game::tasks`, `User::routes`), which keeps
//! the hot strategy-profile state compact (see the type-size guidance in the
//! performance notes: indices are stored as `u32`, widened to `usize` at use
//! sites).

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $tag:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct $name(pub u32);

        impl $name {
            /// Returns the identifier as a `usize` index.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }

            /// Builds an identifier from a `usize` index.
            ///
            /// # Panics
            ///
            /// Panics if `index` does not fit in `u32`; game instances are
            /// bounded far below that (hundreds of users/tasks).
            #[inline]
            pub fn from_index(index: usize) -> Self {
                Self(u32::try_from(index).expect("identifier index exceeds u32::MAX"))
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($tag, "{}"), self.0)
            }
        }

        impl From<u32> for $name {
            #[inline]
            fn from(raw: u32) -> Self {
                Self(raw)
            }
        }
    };
}

id_type!(
    /// Identifier of a mobile user (vehicle driver), an index into
    /// [`crate::Game::users`].
    UserId,
    "u"
);

id_type!(
    /// Identifier of a crowdsensing task, an index into [`crate::Game::tasks`].
    TaskId,
    "t"
);

id_type!(
    /// Identifier of a route **within one user's recommended route set**
    /// [`crate::User::routes`]. Route identifiers are only meaningful relative
    /// to their owning user.
    RouteId,
    "r"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_index() {
        let id = TaskId::from_index(42);
        assert_eq!(id.index(), 42);
        assert_eq!(id, TaskId(42));
    }

    #[test]
    fn display_uses_paper_notation() {
        assert_eq!(UserId(1).to_string(), "u1");
        assert_eq!(TaskId(3).to_string(), "t3");
        assert_eq!(RouteId(0).to_string(), "r0");
    }

    #[test]
    fn ordering_follows_raw_value() {
        assert!(UserId(1) < UserId(2));
        assert!(RouteId(0) < RouteId(10));
    }

    #[test]
    fn from_u32_matches_constructor() {
        assert_eq!(UserId::from(7u32), UserId(7));
    }

    #[test]
    #[should_panic(expected = "identifier index exceeds u32::MAX")]
    fn from_index_overflow_panics() {
        let _ = UserId::from_index(usize::try_from(u64::from(u32::MAX) + 1).unwrap());
    }
}
