//! Theorem 4: upper bound on the number of decision slots to convergence.
//!
//! For better/best-response dynamics where each accepted update improves the
//! updating user's profit by at least `ΔP_min`, the number of decision slots
//! `C` satisfies
//!
//! ```text
//! C < (e_max / ΔP_min) · |U| · ( |L|·(g_max − g_min)
//!                               + (e_max/e_min)·d_max
//!                               + (e_max/e_min)·b_max )
//! ```
//!
//! where `g_min ≤ w_k(q)/q ≤ g_max` over all tasks and occupancies,
//! `d_max = φ·h_max` and `b_max = θ·c_max` are the largest route costs, and
//! `(e_min, e_max)` bound the user weights.

use crate::game::Game;
use crate::user::WeightBounds;

/// The quantities entering the Theorem 4 bound, exposed for reporting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlotBoundTerms {
    /// `g_min = min_{k,q} w_k(q)/q` over `q ∈ [1, |U|]`.
    pub g_min: f64,
    /// `g_max = max_{k,q} w_k(q)/q`.
    pub g_max: f64,
    /// `d_max`: maximum detour cost `φ·h(r)` over all recommended routes.
    pub d_max: f64,
    /// `b_max`: maximum congestion cost `θ·c(r)` over all recommended routes.
    pub b_max: f64,
    /// Weight bounds `(e_min, e_max)`.
    pub bounds: WeightBounds,
}

impl SlotBoundTerms {
    /// Extracts all terms from a game instance.
    pub fn from_game(game: &Game) -> Self {
        let max_q = u32::try_from(game.user_count().max(1)).expect("user count fits u32");
        let mut g_min = f64::INFINITY;
        let mut g_max = f64::NEG_INFINITY;
        for task in game.tasks() {
            // w_k(q)/q is monotone decreasing for the paper's parameter range
            // (a_k > μ_k), but we scan all q to stay correct for any valid
            // instance.
            for q in 1..=max_q {
                let share = task.share(q);
                g_min = g_min.min(share);
                g_max = g_max.max(share);
            }
        }
        if game.task_count() == 0 {
            g_min = 0.0;
            g_max = 0.0;
        }
        Self {
            g_min,
            g_max,
            d_max: game.params().phi * game.max_detour(),
            b_max: game.params().theta * game.max_congestion(),
            bounds: game.bounds(),
        }
    }

    /// Evaluates the Theorem 4 bound given the smallest accepted profit
    /// improvement `delta_p_min` (must be positive).
    pub fn slot_bound(&self, game: &Game, delta_p_min: f64) -> f64 {
        assert!(delta_p_min > 0.0, "ΔP_min must be positive");
        let u = game.user_count() as f64;
        let l = game.task_count() as f64;
        let e_ratio = self.bounds.e_max / self.bounds.e_min;
        (self.bounds.e_max / delta_p_min)
            * u
            * (l * (self.g_max - self.g_min) + e_ratio * self.d_max + e_ratio * self.b_max)
    }
}

/// Convenience wrapper: Theorem 4 bound for `game` given the minimum accepted
/// improvement `delta_p_min` observed (or enforced) during the run.
pub fn slot_upper_bound(game: &Game, delta_p_min: f64) -> f64 {
    SlotBoundTerms::from_game(game).slot_bound(game, delta_p_min)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::game::PlatformParams;
    use crate::ids::{RouteId, TaskId, UserId};
    use crate::route::Route;
    use crate::task::Task;
    use crate::user::{User, UserPrefs};

    fn game() -> Game {
        let tasks = vec![
            Task::new(TaskId(0), 10.0, 0.5),
            Task::new(TaskId(1), 20.0, 1.0),
        ];
        let users = (0..3)
            .map(|i| {
                User::new(
                    UserId(i),
                    UserPrefs::new(0.5, 0.5, 0.5),
                    vec![
                        Route::new(RouteId(0), vec![TaskId(0)], 0.0, 1.0),
                        Route::new(RouteId(1), vec![TaskId(1)], 5.0, 3.0),
                    ],
                )
            })
            .collect();
        Game::with_paper_bounds(tasks, users, PlatformParams::new(0.5, 0.5)).unwrap()
    }

    #[test]
    fn terms_extracted_correctly() {
        let g = game();
        let t = SlotBoundTerms::from_game(&g);
        // g_max: best share is 20 at q=1; g_min: worst is task 0 at q=3.
        assert!((t.g_max - 20.0).abs() < 1e-12);
        let expected_gmin = (10.0 + 0.5 * 3f64.ln()) / 3.0;
        assert!((t.g_min - expected_gmin).abs() < 1e-12);
        assert!((t.d_max - 2.5).abs() < 1e-12); // φ·h = 0.5·5
        assert!((t.b_max - 1.5).abs() < 1e-12); // θ·c = 0.5·3
    }

    #[test]
    fn bound_positive_and_scales_inversely_with_delta() {
        let g = game();
        let b1 = slot_upper_bound(&g, 0.1);
        let b2 = slot_upper_bound(&g, 0.2);
        assert!(b1 > 0.0);
        assert!((b1 / b2 - 2.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "ΔP_min must be positive")]
    fn zero_delta_rejected() {
        let g = game();
        let _ = slot_upper_bound(&g, 0.0);
    }

    #[test]
    fn empty_task_set_has_cost_only_bound() {
        let users = vec![User::new(
            UserId(0),
            UserPrefs::new(0.5, 0.5, 0.5),
            vec![Route::new(RouteId(0), vec![], 2.0, 2.0)],
        )];
        let g = Game::with_paper_bounds(vec![], users, PlatformParams::new(0.5, 0.5)).unwrap();
        let t = SlotBoundTerms::from_game(&g);
        assert_eq!(t.g_min, 0.0);
        assert_eq!(t.g_max, 0.0);
        assert!(t.slot_bound(&g, 0.5) > 0.0);
    }
}
