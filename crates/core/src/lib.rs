//! # vcs-core — the multi-user route-navigation potential game
//!
//! Core library of the reproduction of *"Distributed Game-Theoretical Route
//! Navigation for Vehicular Crowdsensing"* (ICPP '21). This crate implements
//! the paper's primary contribution as a standalone, substrate-agnostic game
//! model:
//!
//! * the system model of §3.1 — tasks with the logarithmic shared reward of
//!   Eq. 1 ([`Task`]), recommended routes with detour and congestion costs
//!   ([`Route`]), users with preference weights ([`User`], [`UserPrefs`]) and
//!   platform weights ([`PlatformParams`]);
//! * strategy profiles with incrementally maintained participant counts
//!   ([`Profile`]) and the user profit function `P_i(s)` of Eq. 2;
//! * the weighted potential function of Eq. 8 and the Theorem 2 identity
//!   ([`potential`], [`potential_delta`], [`weighted_potential_defect`]);
//! * better/best-response machinery and Nash-equilibrium checks
//!   ([`best_route_set`], [`better_routes`], [`is_nash`]);
//! * the incremental solver engine — cached share/potential tables, a
//!   task→users inverted index, O(Δ)-per-move potential and total-profit
//!   maintenance and dirty-set best-response invalidation ([`Engine`],
//!   [`ShareTables`]);
//! * the theoretical artifacts: Theorem 4's convergence-slot bound
//!   ([`bounds`]), Theorem 5's Price-of-Anarchy bound ([`poa`]) and the
//!   Theorem 1 set-cover reduction ([`reduction`]);
//! * the paper's illustrative instances Fig. 1 / Fig. 2 ([`examples`]).
//!
//! Route *generation* (road networks, k-shortest paths), trace synthesis, the
//! distributed runtime and the solver algorithms live in the sibling crates
//! `vcs-roadnet`, `vcs-traces`, `vcs-runtime` and `vcs-algorithms`.
//!
//! ## Quick example
//!
//! ```
//! use vcs_core::{
//!     Game, PlatformParams, Profile, Route, Task, User, UserPrefs,
//!     ids::{RouteId, TaskId, UserId},
//!     response::{best_route_set, is_nash},
//! };
//!
//! // Two tasks, one user with two candidate routes.
//! let tasks = vec![Task::new(TaskId(0), 10.0, 0.5), Task::new(TaskId(1), 18.0, 0.0)];
//! let user = User::new(
//!     UserId(0),
//!     UserPrefs::new(0.5, 0.3, 0.3),
//!     vec![
//!         Route::new(RouteId(0), vec![TaskId(0)], 0.0, 1.0),
//!         Route::new(RouteId(1), vec![TaskId(1)], 2.0, 0.5),
//!     ],
//! );
//! let game = Game::with_paper_bounds(tasks, vec![user], PlatformParams::new(0.4, 0.4)).unwrap();
//!
//! let mut profile = Profile::all_first(&game);
//! let response = best_route_set(&game, &profile, UserId(0));
//! if let Some(better) = response.first() {
//!     profile.apply_move(&game, UserId(0), better);
//! }
//! assert!(is_nash(&game, &profile));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bounds;
pub mod breakdown;
pub mod churn;
pub mod engine;
pub mod error;
pub mod examples;
pub mod game;
pub mod ids;
pub mod poa;
pub mod potential;
pub mod profile;
pub mod reduction;
pub mod response;
pub mod route;
pub mod slab;
pub mod task;
pub mod user;

pub use breakdown::{all_breakdowns, profit_breakdown, profit_breakdown_engine, ProfitBreakdown};
pub use churn::{apply_churn, ChurnEvent, UserSpec};
pub use engine::{Engine, ShareTables};
pub use error::GameError;
pub use game::{Game, PlatformParams};
pub use potential::{potential, potential_delta, weighted_potential_defect};
pub use profile::Profile;
pub use response::{best_route_set, better_routes, is_nash, BestResponse, ProfitView, EPSILON};
pub use route::Route;
pub use slab::SegmentedSlab;
pub use task::Task;
pub use user::{User, UserPrefs, WeightBounds};
