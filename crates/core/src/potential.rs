//! The weighted potential function (Eq. 8) and the Theorem 2 identity.
//!
//! The game admits the potential
//!
//! ```text
//! ϕ(s) = Σ_{k∈L} Σ_{q=1}^{n_k(s)} w_k(q)/q
//!        − Σ_{i∈U} (β_i/α_i)·d(s_i)
//!        − Σ_{i∈U} (γ_i/α_i)·b(s_i)
//! ```
//!
//! and satisfies `P_i(s') − P_i(s) = α_i · (ϕ(s') − ϕ(s))` for every
//! unilateral deviation of user `i` (Eq. 11), i.e. it is a *weighted*
//! potential game with weights `w_i = α_i`. Every profit-improving move
//! strictly increases `ϕ`, which yields the finite-improvement property the
//! distributed algorithms rely on.

use crate::game::Game;
use crate::ids::{RouteId, UserId};
use crate::profile::Profile;

/// Evaluates the potential `ϕ(s)` of `profile` from scratch in
/// `O(Σ_k n_k + Σ_i |L_{s_i}|)`.
///
/// The reference evaluation; solvers that need `ϕ` per decision slot use the
/// O(1) incrementally maintained [`crate::engine::Engine::potential`], whose
/// agreement with this function (within `1e-9`) is property-tested.
pub fn potential(game: &Game, profile: &Profile) -> f64 {
    let mut phi = 0.0;
    for task in game.tasks() {
        phi += task.potential_term(profile.participants(task.id));
    }
    for user in game.users() {
        let route = &user.routes[profile.choice(user.id).index()];
        let ratio_beta = user.prefs.beta / user.prefs.alpha;
        let ratio_gamma = user.prefs.gamma / user.prefs.alpha;
        phi -= ratio_beta * game.detour_cost(route);
        phi -= ratio_gamma * game.congestion_cost(route);
    }
    phi
}

/// Potential change `ϕ(s') − ϕ(s)` if `user` unilaterally switched to
/// `candidate`, computed incrementally without touching unaffected tasks.
///
/// Tasks covered by both the current and candidate route (`L¹` in the proof
/// of Theorem 2) cancel; tasks the user leaves (`L²`) lose their top
/// potential term `w_k(n_k)/n_k`; tasks the user joins (`L³`) gain
/// `w_k(n_k+1)/(n_k+1)`.
pub fn potential_delta(game: &Game, profile: &Profile, user: UserId, candidate: RouteId) -> f64 {
    let u = &game.users()[user.index()];
    let current = &u.routes[profile.choice(user).index()];
    let cand = &u.routes[candidate.index()];
    let mut delta = 0.0;
    for &task in &current.tasks {
        if !cand.covers(task) {
            let n = profile.participants(task);
            delta -= game.task(task).share(n);
        }
    }
    for &task in &cand.tasks {
        if !current.covers(task) {
            let n = profile.participants(task);
            delta += game.task(task).share(n + 1);
        }
    }
    let ratio_beta = u.prefs.beta / u.prefs.alpha;
    let ratio_gamma = u.prefs.gamma / u.prefs.alpha;
    delta -= ratio_beta * (game.detour_cost(cand) - game.detour_cost(current));
    delta -= ratio_gamma * (game.congestion_cost(cand) - game.congestion_cost(current));
    delta
}

/// Checks the Theorem 2 identity `P_i(s') − P_i(s) = α_i·(ϕ(s') − ϕ(s))`
/// for a single deviation, returning the absolute defect. Exact up to
/// floating-point rounding; used by tests and diagnostics.
pub fn weighted_potential_defect(
    game: &Game,
    profile: &Profile,
    user: UserId,
    candidate: RouteId,
) -> f64 {
    let profit_delta =
        profile.profit_if_switched(game, user, candidate) - profile.profit(game, user);
    let alpha = game.users()[user.index()].prefs.alpha;
    let phi_delta = potential_delta(game, profile, user, candidate);
    (profit_delta - alpha * phi_delta).abs()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::game::PlatformParams;
    use crate::ids::TaskId;
    use crate::route::Route;
    use crate::task::Task;
    use crate::user::{User, UserPrefs};

    fn game() -> Game {
        let tasks = vec![
            Task::new(TaskId(0), 11.0, 0.3),
            Task::new(TaskId(1), 15.0, 0.9),
            Task::new(TaskId(2), 18.0, 0.0),
        ];
        let users = vec![
            User::new(
                UserId(0),
                UserPrefs::new(0.4, 0.6, 0.2),
                vec![
                    Route::new(RouteId(0), vec![TaskId(0), TaskId(1)], 0.0, 2.0),
                    Route::new(RouteId(1), vec![TaskId(2)], 4.0, 0.5),
                ],
            ),
            User::new(
                UserId(1),
                UserPrefs::new(0.7, 0.3, 0.5),
                vec![
                    Route::new(RouteId(0), vec![TaskId(1), TaskId(2)], 1.0, 1.0),
                    Route::new(RouteId(1), vec![TaskId(0)], 0.0, 3.0),
                ],
            ),
            User::new(
                UserId(2),
                UserPrefs::new(0.2, 0.8, 0.8),
                vec![
                    Route::new(RouteId(0), vec![TaskId(1)], 2.0, 0.0),
                    Route::new(RouteId(1), vec![], 0.0, 0.0),
                ],
            ),
        ];
        Game::with_paper_bounds(tasks, users, PlatformParams::new(0.3, 0.6)).unwrap()
    }

    #[test]
    fn delta_matches_full_recomputation() {
        let g = game();
        let p = Profile::all_first(&g);
        for user in 0..3u32 {
            for route in 0..2u32 {
                let delta = potential_delta(&g, &p, UserId(user), RouteId(route));
                let mut q = p.clone();
                q.apply_move(&g, UserId(user), RouteId(route));
                let full = potential(&g, &q) - potential(&g, &p);
                assert!(
                    (delta - full).abs() < 1e-10,
                    "user {user} route {route}: incremental {delta} vs full {full}"
                );
            }
        }
    }

    #[test]
    fn theorem2_identity_holds() {
        let g = game();
        let mut p = Profile::all_first(&g);
        // Check the identity along a short trajectory of moves.
        let moves =
            [(0u32, 1u32), (1, 1), (2, 1), (0, 0), (1, 0)].map(|(u, r)| (UserId(u), RouteId(r)));
        for (user, route) in moves {
            let defect = weighted_potential_defect(&g, &p, user, route);
            assert!(
                defect < 1e-10,
                "Eq. 11 defect {defect} for {user} -> {route}"
            );
            p.apply_move(&g, user, route);
        }
    }

    #[test]
    fn potential_of_empty_coverage_is_cost_only() {
        let g = game();
        // All users on routes; user 2 route 1 covers nothing and has no cost.
        let p = Profile::new(&g, vec![RouteId(1), RouteId(1), RouteId(1)]);
        let phi = potential(&g, &p);
        // Tasks covered: t2 by user 0, t0 by user 1 ⇒ reward terms 18 + 11.
        let mut expected = 18.0 + 11.0;
        let u0 = &g.users()[0];
        expected -= u0.prefs.beta / u0.prefs.alpha * 0.3 * 4.0;
        expected -= u0.prefs.gamma / u0.prefs.alpha * 0.6 * 0.5;
        let u1 = &g.users()[1];
        expected -= u1.prefs.gamma / u1.prefs.alpha * 0.6 * 3.0;
        assert!((phi - expected).abs() < 1e-10, "{phi} vs {expected}");
    }

    #[test]
    fn improving_move_raises_potential() {
        let g = game();
        let p = Profile::all_first(&g);
        for user in 0..3u32 {
            let user = UserId(user);
            for route in 0..2u32 {
                let route = RouteId(route);
                let gain = p.profit_if_switched(&g, user, route) - p.profit(&g, user);
                let phi_delta = potential_delta(&g, &p, user, route);
                assert_eq!(gain > 1e-12, phi_delta > 1e-12 / 0.9, "sign mismatch");
                if gain > 0.0 {
                    assert!(phi_delta > 0.0);
                }
            }
        }
    }
}
