//! Strategy profiles and the incremental game state.
//!
//! [`Profile`] is the hot data structure of every solver: the current route
//! choice `s_i` of each user plus the participant count `n_k(s)` of each task,
//! maintained incrementally as users switch routes. All profit and potential
//! evaluations read these counts; a unilateral move costs
//! `O(|L_{s_i}| + |L_{s_i'}|)` rather than a full recount.

use crate::error::GameError;
use crate::game::Game;
use crate::ids::{RouteId, TaskId, UserId};
use serde::{Deserialize, Serialize};

/// A strategy profile `s = (s_1, …, s_M)` with the derived participant counts
/// `n_k(s)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Profile {
    choices: Vec<RouteId>,
    counts: Vec<u32>,
}

impl Profile {
    /// Builds a profile from explicit route choices, computing all counts.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds via the validation assert) if `choices` is not
    /// a legal profile for `game`; call [`Game::validate_profile`] first for
    /// untrusted input.
    pub fn new(game: &Game, choices: Vec<RouteId>) -> Self {
        debug_assert!(game.validate_profile(&choices).is_ok());
        let mut counts = vec![0u32; game.task_count()];
        for (user, &route) in game.users().iter().zip(&choices) {
            for &task in &user.routes[route.index()].tasks {
                counts[task.index()] += 1;
            }
        }
        Self { choices, counts }
    }

    /// Fallible counterpart of [`Profile::new`] for **untrusted** choices
    /// (wire-decoded protocol frames, CLI arguments): validates via
    /// [`Game::validate_profile`] and returns the error instead of relying
    /// on debug assertions.
    pub fn try_new(game: &Game, choices: Vec<RouteId>) -> Result<Self, GameError> {
        game.validate_profile(&choices)?;
        Ok(Self::new(game, choices))
    }

    /// Builds the profile where every user takes their first recommended
    /// route (index 0, by convention the shortest route).
    pub fn all_first(game: &Game) -> Self {
        Self::new(game, vec![RouteId(0); game.user_count()])
    }

    /// The route currently selected by `user`.
    #[inline]
    pub fn choice(&self, user: UserId) -> RouteId {
        self.choices[user.index()]
    }

    /// All current choices, indexed by user.
    #[inline]
    pub fn choices(&self) -> &[RouteId] {
        &self.choices
    }

    /// Participant count `n_k(s)` of task `task`.
    #[inline]
    pub fn participants(&self, task: TaskId) -> u32 {
        self.counts[task.index()]
    }

    /// All participant counts, indexed by task.
    #[inline]
    pub fn participant_counts(&self) -> &[u32] {
        &self.counts
    }

    /// Switches `user` to `new_route`, updating counts incrementally.
    /// Returns the previously selected route. Switching to the current route
    /// is a no-op.
    pub fn apply_move(&mut self, game: &Game, user: UserId, new_route: RouteId) -> RouteId {
        let old_route = self.choices[user.index()];
        if old_route == new_route {
            return old_route;
        }
        let routes = &game.users()[user.index()].routes;
        for &task in &routes[old_route.index()].tasks {
            debug_assert!(self.counts[task.index()] > 0);
            self.counts[task.index()] -= 1;
        }
        for &task in &routes[new_route.index()].tasks {
            self.counts[task.index()] += 1;
        }
        self.choices[user.index()] = new_route;
        old_route
    }

    /// Switches `user` to `new_route` given the old/new task lists directly
    /// (the engine reads them from its flattened route-task slab instead of
    /// chasing into `Game::users`). Same count updates as
    /// [`Profile::apply_move`]; no no-op check — the caller has already
    /// compared the routes.
    pub(crate) fn apply_move_tasks(
        &mut self,
        user: UserId,
        new_route: RouteId,
        old_tasks: &[TaskId],
        new_tasks: &[TaskId],
    ) {
        for &task in old_tasks {
            debug_assert!(self.counts[task.index()] > 0);
            self.counts[task.index()] -= 1;
        }
        for &task in new_tasks {
            self.counts[task.index()] += 1;
        }
        self.choices[user.index()] = new_route;
    }

    /// Appends a choice entry for a newly arrived user **without** touching
    /// the counts; the caller accounts for the user's tasks separately (via
    /// [`Profile::add_route_counts`]). Churn primitive for
    /// [`crate::Engine::add_user`].
    pub(crate) fn push_choice(&mut self, route: RouteId) {
        self.choices.push(route);
    }

    /// Adds one participant to every task in `tasks` (a user activating a
    /// route). Churn primitive; `tasks` must be a valid route task list.
    pub(crate) fn add_route_counts(&mut self, tasks: &[TaskId]) {
        for &task in tasks {
            self.counts[task.index()] += 1;
        }
    }

    /// Removes one participant from every task in `tasks` (a user leaving the
    /// platform). Churn primitive; counterpart of
    /// [`Profile::add_route_counts`].
    pub(crate) fn remove_route_counts(&mut self, tasks: &[TaskId]) {
        for &task in tasks {
            debug_assert!(self.counts[task.index()] > 0);
            self.counts[task.index()] -= 1;
        }
    }

    /// Profit `P_i(s)` of user `user` under the current profile (Eq. 2).
    ///
    /// The reward term iterates over the tasks of the user's selected route;
    /// each covered task contributes the share `w_k(n_k)/n_k` where `n_k`
    /// already includes this user.
    pub fn profit(&self, game: &Game, user: UserId) -> f64 {
        let u = &game.users()[user.index()];
        let route = &u.routes[self.choices[user.index()].index()];
        let mut reward = 0.0;
        for &task in &route.tasks {
            reward += game.task(task).share(self.counts[task.index()]);
        }
        u.prefs.alpha * reward - game.user_route_cost(user, route)
    }

    /// Hypothetical profit of `user` if they unilaterally switched to
    /// `candidate` while everyone else keeps their strategy.
    ///
    /// Computed without mutating the profile: tasks on both the current and
    /// candidate route keep their count; tasks only on the candidate gain this
    /// user (`n_k + 1`); tasks only on the current route are simply not part
    /// of the candidate's reward.
    pub fn profit_if_switched(&self, game: &Game, user: UserId, candidate: RouteId) -> f64 {
        let u = &game.users()[user.index()];
        let current = &u.routes[self.choices[user.index()].index()];
        let cand = &u.routes[candidate.index()];
        let mut reward = 0.0;
        for &task in &cand.tasks {
            let n = self.counts[task.index()];
            // If the current route already covers this task the user is part
            // of n; otherwise joining raises the count to n + 1.
            let n_after = if current.covers(task) { n } else { n + 1 };
            reward += game.task(task).share(n_after);
        }
        u.prefs.alpha * reward - game.user_route_cost(user, cand)
    }

    /// Total profit `Σ_i P_i(s)` (objective of Eq. 5).
    pub fn total_profit(&self, game: &Game) -> f64 {
        (0..game.user_count())
            .map(|i| self.profit(game, UserId::from_index(i)))
            .sum()
    }

    /// Number of tasks with at least one participant.
    pub fn covered_tasks(&self) -> usize {
        self.counts.iter().filter(|&&n| n > 0).count()
    }

    /// Recomputes all counts from scratch and checks them against the
    /// incrementally maintained ones. Test/diagnostic helper.
    pub fn counts_consistent(&self, game: &Game) -> bool {
        let fresh = Profile::new(game, self.choices.clone());
        fresh.counts == self.counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::game::PlatformParams;
    use crate::route::Route;
    use crate::task::Task;
    use crate::user::{User, UserPrefs};

    /// Two users, three tasks. User 0 routes: r0 = {t0}, r1 = {t1, t2};
    /// user 1 routes: r0 = {t1}, r1 = {t0}.
    fn game() -> Game {
        let tasks = vec![
            Task::new(TaskId(0), 10.0, 0.0),
            Task::new(TaskId(1), 12.0, 1.0),
            Task::new(TaskId(2), 20.0, 0.5),
        ];
        let users = vec![
            User::new(
                UserId(0),
                UserPrefs::new(0.5, 0.2, 0.2),
                vec![
                    Route::new(RouteId(0), vec![TaskId(0)], 0.0, 1.0),
                    Route::new(RouteId(1), vec![TaskId(1), TaskId(2)], 3.0, 2.0),
                ],
            ),
            User::new(
                UserId(1),
                UserPrefs::new(0.8, 0.3, 0.1),
                vec![
                    Route::new(RouteId(0), vec![TaskId(1)], 0.0, 0.5),
                    Route::new(RouteId(1), vec![TaskId(0)], 1.0, 0.0),
                ],
            ),
        ];
        Game::with_paper_bounds(tasks, users, PlatformParams::new(0.5, 0.5)).unwrap()
    }

    #[test]
    fn counts_reflect_choices() {
        let g = game();
        let p = Profile::all_first(&g);
        assert_eq!(p.participants(TaskId(0)), 1); // user 0 via r0
        assert_eq!(p.participants(TaskId(1)), 1); // user 1 via r0
        assert_eq!(p.participants(TaskId(2)), 0);
        assert_eq!(p.covered_tasks(), 2);
    }

    #[test]
    fn apply_move_updates_counts_incrementally() {
        let g = game();
        let mut p = Profile::all_first(&g);
        let old = p.apply_move(&g, UserId(0), RouteId(1));
        assert_eq!(old, RouteId(0));
        assert_eq!(p.participants(TaskId(0)), 0);
        assert_eq!(p.participants(TaskId(1)), 2);
        assert_eq!(p.participants(TaskId(2)), 1);
        assert!(p.counts_consistent(&g));
    }

    #[test]
    fn noop_move_changes_nothing() {
        let g = game();
        let mut p = Profile::all_first(&g);
        let snapshot = p.clone();
        p.apply_move(&g, UserId(1), RouteId(0));
        assert_eq!(p, snapshot);
    }

    #[test]
    fn profit_matches_hand_computation() {
        let g = game();
        let p = Profile::all_first(&g);
        // User 0 on r0: reward share = w_{t0}(1)/1 = 10; cost = β·φ·h + γ·θ·c
        // = 0.2·0.5·0 + 0.2·0.5·1 = 0.1. Profit = 0.5·10 − 0.1 = 4.9.
        assert!((p.profit(&g, UserId(0)) - 4.9).abs() < 1e-12);
        // User 1 on r0: share = 12; cost = 0.3·0.5·0 + 0.1·0.5·0.5 = 0.025.
        // Profit = 0.8·12 − 0.025 = 9.575.
        assert!((p.profit(&g, UserId(1)) - 9.575).abs() < 1e-12);
        assert!((p.total_profit(&g) - (4.9 + 9.575)).abs() < 1e-12);
    }

    #[test]
    fn profit_if_switched_matches_actual_switch() {
        let g = game();
        let p = Profile::all_first(&g);
        let predicted = p.profit_if_switched(&g, UserId(0), RouteId(1));
        let mut q = p.clone();
        q.apply_move(&g, UserId(0), RouteId(1));
        let actual = q.profit(&g, UserId(0));
        assert!((predicted - actual).abs() < 1e-12);
    }

    #[test]
    fn profit_if_switched_handles_shared_tasks() {
        let g = game();
        let mut p = Profile::all_first(&g);
        // Move user 1 onto t0 so both routes of user 0 interact with others.
        p.apply_move(&g, UserId(1), RouteId(1));
        // User 0 considering its own current route must reproduce profit().
        let stay = p.profit_if_switched(&g, UserId(0), p.choice(UserId(0)));
        assert!((stay - p.profit(&g, UserId(0))).abs() < 1e-12);
    }

    #[test]
    fn profile_from_explicit_choices() {
        let g = game();
        let p = Profile::new(&g, vec![RouteId(1), RouteId(1)]);
        assert_eq!(p.choice(UserId(0)), RouteId(1));
        assert_eq!(p.participants(TaskId(0)), 1);
        assert_eq!(p.participants(TaskId(1)), 1);
        assert_eq!(p.choices(), &[RouteId(1), RouteId(1)]);
    }
}
