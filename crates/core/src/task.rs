//! Crowdsensing tasks and their reward function (Eq. 1 of the paper).
//!
//! Each task `k` pays `w_k(x) = a_k + μ_k · ln x` when `x ≥ 1` users perform
//! it, and the reward is split equally so each participant receives
//! `w_k(x) / x`. With `a_k ≥ 10` and `μ_k ∈ [0, 1]` (Table 2) the per-user
//! share is strictly decreasing in `x`, which is what couples the users'
//! route decisions.

use crate::ids::TaskId;
use serde::{Deserialize, Serialize};

/// A crowdsensing task with the logarithmic reward of Eq. 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Task {
    /// Identifier; equals the task's index in [`crate::Game::tasks`].
    pub id: TaskId,
    /// `a_k`: the reward when exactly one user performs the task.
    pub base_reward: f64,
    /// `μ_k ∈ [0, 1]`: reward increment weight as more users participate.
    pub increment: f64,
    /// Optional planar location, carried for rendering and trace provenance.
    /// The game dynamics never read it.
    pub location: Option<(f64, f64)>,
}

impl Task {
    /// Creates a task without a location.
    pub fn new(id: TaskId, base_reward: f64, increment: f64) -> Self {
        Self {
            id,
            base_reward,
            increment,
            location: None,
        }
    }

    /// Creates a task pinned to a planar location.
    pub fn at(id: TaskId, base_reward: f64, increment: f64, location: (f64, f64)) -> Self {
        Self {
            id,
            base_reward,
            increment,
            location: Some(location),
        }
    }

    /// Total reward `w_k(x) = a_k + μ_k · ln x` paid when `x` users perform
    /// the task (Eq. 1).
    ///
    /// `x = 0` yields `0.0`: an unperformed task pays nothing.
    #[inline]
    pub fn reward(&self, participants: u32) -> f64 {
        if participants == 0 {
            0.0
        } else {
            self.base_reward + self.increment * f64::from(participants).ln()
        }
    }

    /// Per-participant share `w_k(x) / x` received by each of the `x` users.
    ///
    /// `x = 0` yields `0.0`.
    #[inline]
    pub fn share(&self, participants: u32) -> f64 {
        if participants == 0 {
            0.0
        } else {
            self.reward(participants) / f64::from(participants)
        }
    }

    /// The harmonic-style prefix sum `Σ_{q=1}^{x} w_k(q) / q` that the
    /// potential function accumulates per task (Eq. 8).
    ///
    /// This is the O(x) reference evaluation; hot solver loops use the
    /// precomputed prefix tables of [`crate::engine::ShareTables`], which are
    /// built by this very summation and therefore bit-identical.
    #[inline]
    pub fn potential_term(&self, participants: u32) -> f64 {
        let mut acc = 0.0;
        for q in 1..=participants {
            acc += self.share(q);
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task(a: f64, mu: f64) -> Task {
        Task::new(TaskId(0), a, mu)
    }

    #[test]
    fn single_participant_gets_base_reward() {
        let t = task(15.0, 0.7);
        assert_eq!(t.reward(1), 15.0);
        assert_eq!(t.share(1), 15.0);
    }

    #[test]
    fn reward_grows_logarithmically() {
        let t = task(10.0, 1.0);
        let w2 = t.reward(2);
        let w4 = t.reward(4);
        assert!((w2 - (10.0 + 2f64.ln())).abs() < 1e-12);
        assert!((w4 - (10.0 + 4f64.ln())).abs() < 1e-12);
        // ln is concave: the increment from 2→4 participants equals ln 2 again.
        assert!(((w4 - w2) - 2f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn zero_participants_pay_nothing() {
        let t = task(12.0, 0.5);
        assert_eq!(t.reward(0), 0.0);
        assert_eq!(t.share(0), 0.0);
        assert_eq!(t.potential_term(0), 0.0);
    }

    #[test]
    fn share_strictly_decreasing_for_paper_parameters() {
        // With a_k ≥ 10 and μ_k ≤ 1 the share w(x)/x strictly decreases in x.
        let t = task(10.0, 1.0);
        let mut prev = t.share(1);
        for x in 2..50 {
            let cur = t.share(x);
            assert!(cur < prev, "share not decreasing at x={x}: {cur} vs {prev}");
            prev = cur;
        }
    }

    #[test]
    fn potential_term_is_prefix_sum_of_shares() {
        let t = task(14.0, 0.3);
        let direct: f64 = (1..=6).map(|q| t.share(q)).sum();
        assert!((t.potential_term(6) - direct).abs() < 1e-12);
    }

    #[test]
    fn potential_term_increment_equals_new_share() {
        // φ-term bookkeeping used throughout: adding one participant to a task
        // raises the task's potential term by exactly the new share.
        let t = task(11.0, 0.9);
        for x in 0..10u32 {
            let delta = t.potential_term(x + 1) - t.potential_term(x);
            assert!((delta - t.share(x + 1)).abs() < 1e-12);
        }
    }

    #[test]
    fn location_is_carried() {
        let t = Task::at(TaskId(3), 10.0, 0.0, (1.5, -2.0));
        assert_eq!(t.location, Some((1.5, -2.0)));
    }
}
