//! Property-based tests of the routing substrate: Yen's k-shortest paths and
//! the route recommender on random synthetic cities.

use proptest::prelude::*;
use vcs_roadnet::{
    astar_path, k_shortest_paths, recommend_routes, shortest_path, CityConfig, CityKind,
    CostMetric, NodeId, RecommendConfig, RoadGraph,
};

fn arb_city() -> impl Strategy<Value = RoadGraph> {
    (3usize..7, 3usize..7, any::<u64>(), prop::bool::ANY).prop_map(|(nx, ny, seed, radial)| {
        if radial {
            CityConfig {
                kind: CityKind::Radial {
                    rings: nx.min(4),
                    spokes: ny + 3,
                    ring_spacing: 0.8,
                },
                seed,
            }
            .generate()
        } else {
            CityConfig {
                kind: CityKind::Grid {
                    nx,
                    ny,
                    spacing: 1.0,
                },
                seed,
            }
            .generate()
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Yen's paths are sorted by cost, loopless, pairwise distinct, and the
    /// first equals Dijkstra's shortest path cost.
    #[test]
    fn yen_paths_well_formed(graph in arb_city(), k in 1usize..8, seed in any::<u64>()) {
        let n = graph.node_count();
        let src = NodeId((seed % n as u64) as u32);
        let dst = NodeId(((seed / 7) % n as u64) as u32);
        prop_assume!(src != dst);
        let paths = k_shortest_paths(&graph, src, dst, k, CostMetric::Length);
        prop_assert!(!paths.is_empty(), "connected city must yield a path");
        // Sorted by length.
        for w in paths.windows(2) {
            prop_assert!(w[0].length <= w[1].length + 1e-9);
        }
        // First equals Dijkstra.
        let dijkstra = shortest_path(&graph, src, dst, CostMetric::Length).unwrap();
        prop_assert!((paths[0].length - dijkstra.length).abs() < 1e-9);
        // Simple, distinct, correct endpoints.
        for (i, p) in paths.iter().enumerate() {
            prop_assert!(!p.has_cycle(&graph, src));
            prop_assert_eq!(p.destination(&graph, src), dst);
            for q in &paths[i + 1..] {
                prop_assert_ne!(&p.edges, &q.edges);
            }
        }
    }

    /// The recommender returns ≤ max_routes diverse routes, shortest first,
    /// with consistent detour annotations.
    #[test]
    fn recommendations_well_formed(
        graph in arb_city(),
        max_routes in 1usize..6,
        seed in any::<u64>(),
    ) {
        let n = graph.node_count();
        let src = NodeId((seed % n as u64) as u32);
        let dst = NodeId(((seed / 13) % n as u64) as u32);
        prop_assume!(src != dst);
        let cfg = RecommendConfig { max_routes, ..RecommendConfig::default() };
        let routes = recommend_routes(&graph, src, dst, &cfg);
        prop_assert!(!routes.is_empty());
        prop_assert!(routes.len() <= max_routes);
        prop_assert!(routes[0].detour.abs() < 1e-9);
        let shortest = routes[0].path.length;
        for r in &routes {
            prop_assert!((r.detour - (r.path.length - shortest)).abs() < 1e-9);
            prop_assert!(r.congestion >= 0.0);
            prop_assert!(r.path.length <= cfg.max_detour_ratio * shortest + 1e-9);
        }
        for i in 0..routes.len() {
            for j in (i + 1)..routes.len() {
                prop_assert!(
                    routes[i].path.edge_overlap(&routes[j].path) <= cfg.max_overlap + 1e-9
                );
            }
        }
    }

    /// A* and Dijkstra agree on optimal cost for both metrics on any city.
    #[test]
    fn astar_equals_dijkstra(graph in arb_city(), seed in any::<u64>()) {
        let n = graph.node_count();
        let src = NodeId((seed % n as u64) as u32);
        let dst = NodeId(((seed / 11) % n as u64) as u32);
        for metric in [CostMetric::Length, CostMetric::TravelTime] {
            let a = astar_path(&graph, src, dst, metric);
            let d = shortest_path(&graph, src, dst, metric);
            match (a, d) {
                (Some(a), Some(d)) => {
                    let (ca, cd) = match metric {
                        CostMetric::Length => (a.length, d.length),
                        CostMetric::TravelTime => (a.travel_time, d.travel_time),
                    };
                    prop_assert!((ca - cd).abs() < 1e-9, "A* {ca} vs Dijkstra {cd}");
                }
                (None, None) => {}
                (a, d) => prop_assert!(false, "reachability disagreement: {a:?} vs {d:?}"),
            }
        }
    }

    /// Travel time always dominates the free-flow time and the metric orders
    /// match intuition: the time-shortest path is never slower than the
    /// length-shortest one.
    #[test]
    fn metric_consistency(graph in arb_city(), seed in any::<u64>()) {
        let n = graph.node_count();
        let src = NodeId((seed % n as u64) as u32);
        let dst = NodeId(((seed / 3) % n as u64) as u32);
        prop_assume!(src != dst);
        let by_len = shortest_path(&graph, src, dst, CostMetric::Length).unwrap();
        let by_time = shortest_path(&graph, src, dst, CostMetric::TravelTime).unwrap();
        prop_assert!(by_time.travel_time <= by_len.travel_time + 1e-9);
        prop_assert!(by_len.length <= by_time.length + 1e-9);
        for eid in &by_len.edges {
            let e = graph.edge(*eid);
            prop_assert!(e.travel_time() >= e.length / e.speed - 1e-12);
        }
    }
}
